//! # cyclic-wormhole
//!
//! A reproduction of Loren Schwiebert, *Deadlock-Free Oblivious
//! Wormhole Routing with Cyclic Dependencies* (SPAA 1997), as a
//! workspace of composable crates:
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | network | [`net`] (`wormnet`) | strongly connected directed multigraphs of nodes and (virtual) channels; topology builders; SCC / elementary-cycle / shortest-path algorithms |
//! | routing | [`route`] (`wormroute`) | oblivious routing functions `R : C × N → C`, path tables, minimal/prefix-closed/suffix-closed/coherent checkers, baseline algorithms |
//! | analysis | [`cdg`] (`wormcdg`) | channel dependency graphs, the Dally–Seitz certificate, cycle enumeration with witnesses, static deadlock candidates, shared-channel analysis |
//! | dynamics | [`sim`] (`wormsim`) | flit-level wormhole simulator (atomic buffer allocation, arbitration policies, adversarial stalls, wait-for-graph deadlock detection) |
//! | verification | [`search`] (`wormsearch`) | exhaustive reachability search over injection orders, arbitration outcomes and stall budgets; adaptive route-choice explorer |
//! | paper | [`core`] (`worm-core`) | the Cyclic Dependency algorithm (Figure 1), Figures 2–3, the Section 6 family `G(k)`, Theorem 5's conditions, the classification pipeline, the `validate` claims runner |
//!
//! Extensions beyond the paper's base model, each validated in
//! `EXPERIMENTS.md`: per-router clock skew (`sim::skew`), adaptive
//! routing with escape channels (`route::adaptive`, `sim::adaptive`,
//! `search::adaptive`), multi-channel sharing (the Section 7 open
//! problem), and Monte Carlo deadlock-probability studies.
//!
//! ## Quickstart
//!
//! ```
//! use cyclic_wormhole::core::paper::fig1;
//! use cyclic_wormhole::search::{explore, SearchConfig};
//! use cyclic_wormhole::sim::Sim;
//!
//! // The paper's headline object: an oblivious routing algorithm that
//! // is deadlock-free even though its channel dependency graph has a
//! // cycle.
//! let c = fig1::cyclic_dependency();
//! assert!(!c.cdg().is_acyclic(), "the CDG has a cycle...");
//!
//! let sim = Sim::new(&c.net, &c.table, c.message_specs(), Some(1)).unwrap();
//! let result = explore(&sim, &SearchConfig::default());
//! assert!(result.verdict.is_free(), "...yet no schedule deadlocks");
//! ```
//!
//! See `examples/` for runnable walkthroughs and `crates/bench` for
//! the experiment programs that regenerate every figure of the paper.

#![forbid(unsafe_code)]

pub use worm_core as core;
pub use wormcdg as cdg;
pub use wormnet as net;
pub use wormroute as route;
pub use wormsearch as search;
pub use wormsim as sim;
