//! # cyclic-wormhole
//!
//! A reproduction of Loren Schwiebert, *Deadlock-Free Oblivious
//! Wormhole Routing with Cyclic Dependencies* (SPAA 1997), as a
//! workspace of composable crates:
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | network | [`net`] (`wormnet`) | strongly connected directed multigraphs of nodes and (virtual) channels; topology builders; SCC / elementary-cycle / shortest-path algorithms |
//! | routing | [`route`] (`wormroute`) | oblivious routing functions `R : C × N → C`, path tables, minimal/prefix-closed/suffix-closed/coherent checkers, baseline algorithms |
//! | analysis | [`cdg`] (`wormcdg`) | channel dependency graphs, the Dally–Seitz certificate, cycle enumeration with witnesses, static deadlock candidates, shared-channel analysis |
//! | dynamics | [`sim`] (`wormsim`) | flit-level wormhole simulator (atomic buffer allocation, arbitration policies, adversarial stalls, wait-for-graph deadlock detection) |
//! | verification | [`search`] (`wormsearch`) | exhaustive reachability search over injection orders, arbitration outcomes and stall budgets; adaptive route-choice explorer |
//! | paper | [`core`] (`worm-core`) | the Cyclic Dependency algorithm (Figure 1), Figures 2–3, the Section 6 family `G(k)`, Theorem 5's conditions, the classification pipeline, the `validate` claims runner |
//! | observability | [`trace`] (`wormtrace`) | zero-dependency counters / gauges / spans behind a global [`trace::Recorder`]; JSON trace reports (`docs/TRACING.md`) |
//! | resilience | [`fault`] (`wormfault`) | deterministic fault plans (channel outages, router stalls, flit drops, injection jitter) applied through the engine's decision hook, retry/backoff policies, degraded-topology re-verification (`docs/FAULTS.md`) |
//! | diagnostics | [`lint`] (`wormlint`) | static analysis over routing specs: structural/routing/theorem lints with stable `W`-codes, severities, witness-carrying diagnostics, deterministic `wormlint/1` JSON reports (`docs/LINTS.md`) |
//! | existence | [`exist`] (`wormexist`) | two-sided static certificates of deadlock-free *routability*: does any acyclic-CDG routing exist on a fabric at all — a replayable witness schedule when one does, a checkable obstruction when none can (`docs/EXISTENCE.md`) |
//! | specification | [`spec`] (`wormspec`) | the `wormspec/1` scenario language: lexer, recursive-descent parser, typed spanned AST, caret diagnostics with stable `E`-codes, canonical printer and FNV-1a content hash (`docs/SPEC.md`) |
//! | service | [`serve`] (`wormserve`) | batch verification over specs: bounded job queue + worker pool, content-addressed verdict cache, deterministic `wormserve/1` JSON, spec lifting, differential fuzzing (`docs/SERVICE.md`) |
//!
//! Extensions beyond the paper's base model, each validated in
//! `EXPERIMENTS.md`: per-router clock skew (`sim::skew`), adaptive
//! routing with escape channels (`route::adaptive`, `sim::adaptive`,
//! `search::adaptive`), multi-channel sharing (the Section 7 open
//! problem), and Monte Carlo deadlock-probability studies.
//!
//! ## Quickstart
//!
//! ```
//! use cyclic_wormhole::core::paper::fig1;
//! use cyclic_wormhole::search::{explore, SearchConfig};
//! use cyclic_wormhole::sim::Sim;
//!
//! // The paper's headline object: an oblivious routing algorithm that
//! // is deadlock-free even though its channel dependency graph has a
//! // cycle.
//! let c = fig1::cyclic_dependency();
//! assert!(!c.cdg().is_acyclic(), "the CDG has a cycle...");
//!
//! let sim = Sim::new(&c.net, &c.table, c.message_specs(), Some(1)).unwrap();
//! let result = explore(&sim, &SearchConfig::default());
//! assert!(result.verdict.is_free(), "...yet no schedule deadlocks");
//! ```
//!
//! ## Walkthrough: mesh → routing → certificate → traffic
//!
//! The classic pipeline the paper generalizes, end to end. First,
//! build a topology and route it with dimension-order (XY) routing —
//! the textbook deadlock-free oblivious algorithm:
//!
//! ```
//! use cyclic_wormhole::net::topology::Mesh;
//! use cyclic_wormhole::route::{algorithms::xy_mesh, properties};
//!
//! // A 4x4 mesh with bidirectional links.
//! let mesh = Mesh::new(&[4, 4]);
//! let net = mesh.network();
//! assert_eq!(net.node_count(), 16);
//! assert!(net.is_strongly_connected());
//!
//! let table = xy_mesh(&mesh).expect("XY routes every pair");
//! let report = properties::analyze(net, &table);
//! assert!(report.total && report.minimal && report.coherent);
//! ```
//!
//! Deadlock freedom the classic way (Dally–Seitz): the channel
//! dependency graph is acyclic, and the topological `numbering` is
//! the certificate:
//!
//! ```
//! use cyclic_wormhole::cdg::Cdg;
//! use cyclic_wormhole::net::topology::Mesh;
//! use cyclic_wormhole::route::algorithms::xy_mesh;
//!
//! let mesh = Mesh::new(&[4, 4]);
//! let table = xy_mesh(&mesh).unwrap();
//! let cdg = Cdg::build(mesh.network(), &table);
//! assert!(cdg.is_acyclic());
//! assert!(cdg.numbering().is_some(), "Dally–Seitz certificate exists");
//! ```
//!
//! Finally, drive uniform random traffic through the flit-level
//! simulator and read the delivery statistics:
//!
//! ```
//! use cyclic_wormhole::net::topology::Mesh;
//! use cyclic_wormhole::route::algorithms::xy_mesh;
//! use cyclic_wormhole::sim::runner::{ArbitrationPolicy, Outcome, Runner};
//! use cyclic_wormhole::sim::{traffic, Sim};
//! use rand::SeedableRng;
//!
//! let mesh = Mesh::new(&[4, 4]);
//! let net = mesh.network();
//! let table = xy_mesh(&mesh).unwrap();
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let specs = traffic::uniform_random(net, &table, &mut rng, 0.05, 200, (4, 8));
//! let sim = Sim::new(net, &table, specs, None).expect("specs are routed");
//! let mut runner = Runner::new(&sim, ArbitrationPolicy::OldestFirst);
//! let outcome = runner.run(100_000);
//!
//! // XY routing cannot deadlock: every message is delivered.
//! assert!(matches!(outcome, Outcome::Delivered { .. }));
//! let stats = runner.stats();
//! assert!(stats.delivered_count() > 0);
//! assert!(stats.mean_latency().unwrap() >= 1.0);
//! assert!(stats.throughput() > 0.0);
//! ```
//!
//! See `examples/` for runnable walkthroughs (deadlock galleries,
//! skew tolerance, adaptive escape channels) and `crates/bench` for
//! the experiment programs that regenerate every figure of the paper.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use worm_core as core;
pub use wormcdg as cdg;
pub use wormexist as exist;
pub use wormfault as fault;
pub use wormlint as lint;
pub use wormnet as net;
pub use wormroute as route;
pub use wormsearch as search;
pub use wormserve as serve;
pub use wormsim as sim;
pub use wormspec as spec;
pub use wormtrace as trace;
