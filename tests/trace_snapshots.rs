//! Golden snapshots of the `wormtrace/1` and `wormtrace-summary/1`
//! JSON schemas.
//!
//! The trace formats are a public interface (docs/TRACING.md): CI
//! diffs `trace_summary.json` across commits, so the byte layout —
//! key order, indentation, escaping, span encoding — must not drift
//! silently. These tests pin it against fixtures in
//! `tests/snapshots/`, built from hand-assembled [`TraceReport`]s
//! with fixed durations (span totals are wall-clock in real runs, so
//! only synthetic reports snapshot deterministically).
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test --test trace_snapshots
//! ```
//!
//! then commit the updated `tests/snapshots/*.json` together with the
//! format change and a docs/TRACING.md update.

use std::path::PathBuf;
use std::time::Duration;

use cyclic_wormhole::trace::{summarize, SpanStat, TraceReport};

fn snapshot_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots")
}

/// Compare `actual` against the named fixture, or rewrite the fixture
/// when `UPDATE_SNAPSHOTS=1`.
fn assert_snapshot(name: &str, actual: &str) {
    let path = snapshot_dir().join(name);
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(snapshot_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); run UPDATE_SNAPSHOTS=1 cargo test --test trace_snapshots",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "snapshot {name} drifted; if intentional, regenerate with \
         UPDATE_SNAPSHOTS=1 cargo test --test trace_snapshots"
    );
}

/// A synthetic report exercising every feature of the format: plain
/// and escaped keys, zero and large values, integral and fractional
/// gauges, and spans with fixed totals.
fn sample_report() -> TraceReport {
    let mut r = TraceReport::default();
    r.counters.insert("sim.cycles".into(), 1_234);
    r.counters.insert("fault.channel_down".into(), 2);
    r.counters.insert("search.states".into(), 0);
    r.counters.insert("weird \"name\"\n".into(), u64::MAX);
    r.gauges.insert("search.frontier_peak".into(), 17.0);
    r.gauges.insert("sim.utilization".into(), 0.257_812_5);
    r.gauges.insert("bad.value".into(), f64::NAN);
    r.spans.insert(
        "fault.plan".into(),
        SpanStat {
            count: 3,
            total: Duration::from_nanos(1_500_000),
        },
    );
    r.spans.insert(
        "classify.algorithm".into(),
        SpanStat {
            count: 1,
            total: Duration::ZERO,
        },
    );
    r
}

#[test]
fn trace_report_json_matches_snapshot() {
    assert_snapshot(
        "trace_report.json",
        &sample_report().to_json("snapshot-test"),
    );
}

#[test]
fn empty_trace_report_json_matches_snapshot() {
    assert_snapshot(
        "trace_report_empty.json",
        &TraceReport::default().to_json("empty"),
    );
}

#[test]
fn trace_summary_json_matches_snapshot() {
    let full = sample_report().to_json("exp_one");
    let empty = TraceReport::default().to_json("exp_two");
    let summary = summarize([("exp_one", full.as_str()), ("exp_two", empty.as_str())]);
    assert_snapshot("trace_summary.json", &summary);
}
