//! The PR's acceptance contract, end to end: the committed Figure 1
//! spec round-trips through the language, verifies through `wormserve`
//! to the same classifier verdict as the hard-coded Rust construction,
//! and a whitespace/comment-perturbed resubmission is served from the
//! cache **bit-identically**.
//!
//! Also pins the `wormserve/1` document's structural promises: sorted
//! keys at every object level and no environment-dependent fields.

use std::path::PathBuf;

use cyclic_wormhole::core::classify::{classify_algorithm, ClassifyOptions};
use cyclic_wormhole::core::paper::fig1;
use cyclic_wormhole::serve::verdict::classifier_name;
use cyclic_wormhole::serve::{compile, verdict_json, Server, ServerConfig};

fn fig1_source() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus/fig1.wspec");
    std::fs::read_to_string(path).expect("committed fig1 spec")
}

/// A meaning-preserving rewrite: comments, blank lines, trailing
/// whitespace.
fn perturbed(source: &str) -> String {
    let mut out = String::from("# resubmitted with different surface syntax\n");
    for (i, line) in source.lines().enumerate() {
        out.push_str(line);
        if i % 3 == 0 {
            out.push_str("   ");
        }
        out.push('\n');
        if i % 5 == 0 {
            out.push('\n');
        }
    }
    out
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wormserve-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Walk a `wormserve/1` document checking every object's keys appear
/// in strictly sorted order. A tiny brace-depth scanner is enough
/// because the writer never emits `{`/`}`/`"` inside values except in
/// (escape-free) verdict names and skip reasons.
fn assert_sorted_keys(json: &str) {
    let mut stack: Vec<Option<String>> = Vec::new();
    let mut chars = json.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' => stack.push(None),
            '}' => {
                stack.pop();
            }
            '"' => {
                let mut s = String::new();
                for c in chars.by_ref() {
                    if c == '"' {
                        break;
                    }
                    s.push(c);
                }
                // A key is a string immediately followed by ':'.
                if chars.peek() == Some(&':') {
                    let last = stack.last_mut().expect("key outside object");
                    if let Some(prev) = last {
                        assert!(
                            prev.as_str() < s.as_str(),
                            "keys out of order: {prev:?} then {s:?} in {json}"
                        );
                    }
                    *last = Some(s);
                }
            }
            _ => {}
        }
    }
    assert!(stack.is_empty(), "unbalanced braces in {json}");
}

#[test]
fn fig1_spec_round_trips() {
    let source = fig1_source();
    let ast = wormspec::parse(&source).expect("fig1 parses");
    let printed = wormspec::to_spec(&ast);
    assert_eq!(wormspec::parse(&printed).expect("canonical parses"), ast);
}

#[test]
fn fig1_verdict_matches_the_hard_coded_pipeline() {
    let job = compile(&fig1_source()).expect("fig1 compiles");
    let served = verdict_json(&job);
    assert_sorted_keys(&served);

    // The hard-coded Rust construction, classified under the *same*
    // options the spec resolves to (fig1.wspec has no verify section,
    // so: static only, no search fallback).
    let c = fig1::cyclic_dependency();
    let direct = classify_algorithm(&c.net, &c.table, &job.classify_options);
    let expected = format!("\"verdict\":\"{}\"", classifier_name(&direct));
    assert!(
        served.contains(&expected),
        "served {served} vs direct {expected}"
    );
    assert!(!served.contains("elapsed"), "no timings allowed: {served}");
    assert!(!served.contains("fig1"), "no job name allowed: {served}");

    // With the search fallback enabled the spec path must land on the
    // paper's phenomenon — deadlock freedom *with* cyclic dependencies
    // — exactly like the default-options Rust pipeline.
    let searched_src = format!("{}verify {{ engine = search }}\n", fig1_source());
    let searched = compile(&searched_src).expect("fig1+search compiles");
    let spec_verdict = classify_algorithm(
        searched.network(),
        &searched.table,
        &searched.classify_options,
    );
    let rust_verdict = classify_algorithm(&c.net, &c.table, &ClassifyOptions::default());
    assert_eq!(
        classifier_name(&spec_verdict),
        classifier_name(&rust_verdict),
        "spec-driven and hard-coded pipelines disagree under search"
    );
    assert_eq!(classifier_name(&spec_verdict), "deadlock-free-with-cycles");
}

#[test]
fn perturbed_resubmission_hits_the_cache_bit_identically() {
    let dir = tmpdir("acceptance");
    let source = fig1_source();

    let server = Server::start(ServerConfig {
        workers: 2,
        queue_depth: 8,
        cache_dir: Some(dir.clone()),
        attach_traces: false,
    })
    .unwrap();
    assert!(server.submit("fig1", source.clone()));
    let first = server.shutdown();
    assert!(!first[0].cached, "first submission must compute");
    let first_verdict = first[0].verdict.as_ref().unwrap().clone();
    let first_hash = first[0].hash.clone().unwrap();

    // Resubmit with a different surface syntax: same canonical hash,
    // so the verdict replays from disk byte-for-byte.
    let rewritten = perturbed(&source);
    assert_ne!(rewritten, source);
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_depth: 8,
        cache_dir: Some(dir.clone()),
        attach_traces: false,
    })
    .unwrap();
    assert!(server.submit("fig1-rewrite", rewritten));
    let second = server.shutdown();
    assert!(
        second[0].cached,
        "perturbed resubmission must hit the cache"
    );
    assert_eq!(second[0].hash.as_deref(), Some(first_hash.as_str()));
    assert_eq!(
        second[0].verdict.as_ref().unwrap(),
        &first_verdict,
        "cache replay must be bit-identical"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn verdicts_stay_sorted_across_engine_selections() {
    for verify in [
        "",
        "verify { engine = search }\n",
        "verify { engine = sim horizon = 100 cycles }\n",
        "verify { engine = full horizon = 100 cycles }\n",
    ] {
        let source = format!(
            "wormspec/1\n\
             topology {{ kind = ring nodes = 4 }}\n\
             routing {{ engine = clockwise_ring }}\n\
             traffic {{\n\
               pattern = explicit\n\
               message \"r0\" -> \"r2\" length 2 flits\n\
               message \"r2\" -> \"r0\" length 2 flits\n\
             }}\n\
             faults {{ down c1 @ 50 cycles }}\n\
             {verify}"
        );
        let job = compile(&source).expect("spec compiles");
        let served = verdict_json(&job);
        assert_sorted_keys(&served);
        assert!(served.contains("\"schema\":\"wormserve/1\""));
    }
}
