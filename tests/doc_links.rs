//! Link checker for the documentation set: every relative link in
//! README.md, EXPERIMENTS.md, CHANGES.md and docs/*.md must point at
//! a file that exists, and every `#fragment` must match a heading
//! anchor (GitHub slug rules) in the target document.
//!
//! External (`http://`, `https://`, `mailto:`) targets are out of
//! scope — the build environment is offline — but their syntax is
//! still traversed, so malformed link markup fails the test too.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// The documentation files under check. `docs/*.md` is globbed at
/// runtime so new documents are covered automatically.
fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut files = vec![
        root.join("README.md"),
        root.join("EXPERIMENTS.md"),
        root.join("CHANGES.md"),
    ];
    let docs = root.join("docs");
    if let Ok(entries) = fs::read_dir(&docs) {
        let mut extra: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "md"))
            .collect();
        extra.sort();
        files.extend(extra);
    }
    files
}

/// Strip fenced code blocks (``` ... ```): links and headings inside
/// them are examples, not navigation.
fn strip_code_fences(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// GitHub's heading-anchor slug: lowercase; spaces become hyphens;
/// alphanumerics, hyphens and underscores survive; everything else is
/// dropped.
fn slugify(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() || c == '-' || c == '_' {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' {
                Some('-')
            } else {
                None
            }
        })
        .collect()
}

/// Remove inline markup (`code`, **bold**, [text](url)) from a
/// heading before slugification, matching how GitHub anchors render.
fn heading_text(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '`' | '*' => {}
            '[' => {}
            ']' => {
                // Skip a following "(url)" if present.
                if chars.peek() == Some(&'(') {
                    for c in chars.by_ref() {
                        if c == ')' {
                            break;
                        }
                    }
                }
            }
            c => out.push(c),
        }
    }
    out
}

/// All heading anchors of a markdown document, with GitHub's `-N`
/// suffixing for duplicates.
fn anchors(text: &str) -> Vec<String> {
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    let mut out = Vec::new();
    for line in strip_code_fences(text).lines() {
        let hashes = line.chars().take_while(|&c| c == '#').count();
        if !(1..=6).contains(&hashes) || !line[hashes..].starts_with(' ') {
            continue;
        }
        let slug = slugify(&heading_text(&line[hashes + 1..]));
        let n = seen.entry(slug.clone()).or_insert(0);
        out.push(if *n == 0 {
            slug.clone()
        } else {
            format!("{slug}-{n}")
        });
        *n += 1;
    }
    out
}

/// Extract `(text, target)` pairs for every inline markdown link.
fn links(text: &str) -> Vec<String> {
    let stripped = strip_code_fences(text);
    let bytes = stripped.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'[' {
            // Find the matching close bracket (no nesting in our docs).
            if let Some(close) = stripped[i + 1..].find(']').map(|p| i + 1 + p) {
                if bytes.get(close + 1) == Some(&b'(') {
                    if let Some(end) = stripped[close + 2..].find(')').map(|p| close + 2 + p) {
                        out.push(stripped[close + 2..end].to_string());
                        i = end + 1;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

#[test]
fn all_relative_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut errors = Vec::new();
    let files = doc_files(root);
    assert!(files.len() >= 3, "doc set unexpectedly small");
    for file in &files {
        let text = fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
        let dir = file.parent().unwrap();
        for target in links(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let (path_part, fragment) = match target.split_once('#') {
                Some((p, f)) => (p, Some(f)),
                None => (target.as_str(), None),
            };
            let resolved = if path_part.is_empty() {
                file.clone()
            } else {
                dir.join(path_part)
            };
            if !resolved.exists() {
                errors.push(format!(
                    "{}: broken link `{target}` (no such file {})",
                    file.display(),
                    resolved.display()
                ));
                continue;
            }
            if let Some(fragment) = fragment {
                let is_md = resolved.extension().is_some_and(|e| e == "md");
                if !is_md {
                    continue;
                }
                let dest = fs::read_to_string(&resolved).unwrap();
                if !anchors(&dest).iter().any(|a| a == fragment) {
                    errors.push(format!(
                        "{}: broken anchor `{target}` (no heading slug `{fragment}` in {})",
                        file.display(),
                        resolved.display()
                    ));
                }
            }
        }
    }
    assert!(
        errors.is_empty(),
        "broken documentation links:\n{}",
        errors.join("\n")
    );
}

#[test]
fn slugs_follow_github_rules() {
    assert_eq!(slugify("Search hot path"), "search-hot-path");
    assert_eq!(slugify("The `wormbench/1` schema"), "the-wormbench1-schema");
    assert_eq!(slugify("G(k): Section 6"), "gk-section-6");
    assert_eq!(
        heading_text("`exp_faults` — [fault](docs/FAULTS.md) layer"),
        "exp_faults — fault layer"
    );
}

#[test]
fn duplicate_headings_get_numeric_suffixes() {
    let text = "# Same\n\n# Same\n\n# Same\n";
    assert_eq!(anchors(text), vec!["same", "same-1", "same-2"]);
}
