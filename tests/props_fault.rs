//! Property-based determinism of the fault layer: the same seed and
//! fault plan always reproduce the same trajectory, and dead channels
//! never break the search's thread-count independence.
//!
//! The two guarantees `wormfault` leans on:
//!
//! * a [`FaultPlan`] is pure data — replaying it over the same
//!   simulation yields bit-identical outcomes, states, and fault
//!   reports, whatever the plan contains;
//! * the search's `dead_channels` masking composes with the parallel
//!   engine's determinism contract: for any dead set, 1-, 2- and
//!   4-thread sweeps return the identical [`Verdict`] *including the
//!   witness* (min-merged parents make witnesses schedule-independent).

use cyclic_wormhole::core::paper::fig1;
use cyclic_wormhole::fault::{FaultPlan, FaultRunner, RetryPolicy};
use cyclic_wormhole::net::topology::ring_unidirectional;
use cyclic_wormhole::route::algorithms::clockwise_ring;
use cyclic_wormhole::search::{explore, explore_parallel, SearchConfig};
use cyclic_wormhole::sim::runner::ArbitrationPolicy;
use cyclic_wormhole::sim::{MessageSpec, Sim};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replaying a seeded plan over Figure 1 reproduces the run
    /// bit-for-bit: outcome, final state, cycle count, fault report.
    #[test]
    fn fault_runs_replay_bit_identically(seed in any::<u64>(), active in any::<bool>()) {
        let c = fig1::cyclic_dependency();
        let sim = Sim::new(&c.net, &c.table, c.message_specs(), Some(1)).unwrap();
        let plan = FaultPlan::random(&c.net, seed, 2, 1, 25);
        let retry = if active {
            RetryPolicy::Active { max_attempts: 4, backoff: 1 }
        } else {
            RetryPolicy::Passive
        };
        let run = |plan: FaultPlan, retry: RetryPolicy| {
            let mut fr = FaultRunner::new(
                &c.net,
                &sim,
                ArbitrationPolicy::OldestFirst,
                plan,
                retry,
            );
            let outcome = fr.run(5_000);
            (outcome, fr.state().clone(), fr.time(), fr.report())
        };
        let a = run(plan.clone(), retry.clone());
        let b = run(plan, retry);
        prop_assert_eq!(a.0, b.0, "outcome diverged");
        prop_assert_eq!(a.1, b.1, "final state diverged");
        prop_assert_eq!(a.2, b.2, "cycle count diverged");
        prop_assert_eq!(a.3, b.3, "fault report diverged");
    }

    /// For any dead-channel set on the deadlockable 4-ring, the
    /// sequential engine and the parallel engine at 2 and 4 threads
    /// agree on the verdict — witness included.
    #[test]
    fn dead_channel_verdicts_are_thread_count_independent(
        dead_mask in 0u8..16,
        length in 2usize..5,
    ) {
        let (net, nodes) = ring_unidirectional(4);
        let table = clockwise_ring(&net, &nodes).unwrap();
        let specs: Vec<MessageSpec> = (0..4)
            .map(|i| MessageSpec::new(nodes[i], nodes[(i + 2) % 4], length))
            .collect();
        let sim = Sim::new(&net, &table, specs, Some(1)).unwrap();
        let dead: Vec<_> = net
            .channels()
            .map(|ch| ch.id())
            .enumerate()
            .filter(|(i, _)| dead_mask & (1 << i) != 0)
            .map(|(_, id)| id)
            .collect();
        let mut cfg = SearchConfig::with_dead_channels(dead);
        cfg.stall_budget = 0;
        cfg.max_states = 500_000;

        let sequential = explore(&sim, &cfg);
        for threads in [2usize, 4] {
            let parallel = explore_parallel(&sim, &cfg, threads);
            prop_assert_eq!(
                &sequential.verdict,
                &parallel.verdict,
                "verdict diverged at {} threads", threads
            );
        }
    }

    /// Abandonment is monotone in the attempt budget: allowing more
    /// retries never abandons more messages.
    #[test]
    fn more_attempts_never_abandon_more(seed in any::<u64>()) {
        let (net, nodes) = ring_unidirectional(4);
        let table = clockwise_ring(&net, &nodes).unwrap();
        let specs: Vec<MessageSpec> = (0..4)
            .map(|i| MessageSpec::new(nodes[i], nodes[(i + 1) % 4], 2))
            .collect();
        let sim = Sim::new(&net, &table, specs, Some(1)).unwrap();
        let plan = FaultPlan::random(&net, seed, 2, 0, 20);
        let abandoned_with = |max_attempts: u32| {
            let mut fr = FaultRunner::new(
                &net,
                &sim,
                ArbitrationPolicy::OldestFirst,
                plan.clone(),
                RetryPolicy::Active { max_attempts, backoff: 1 },
            );
            let _ = fr.run(2_000);
            fr.report().abandoned.len()
        };
        prop_assert!(abandoned_with(6) <= abandoned_with(2));
    }
}
