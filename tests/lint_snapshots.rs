//! Golden snapshot of the `wormlint/1` corpus report.
//!
//! `LINT_corpus.json` at the repository root is exactly the output of
//! `wormlint --json` over the built-in corpus. It is a public
//! interface twice over: CI byte-compares a fresh run against it (the
//! lint gate), and docs/LINTS.md documents its schema. This test pins
//! the committed bytes so any change to a lint's message, witness
//! layout, or the JSON writer shows up as a reviewable diff.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test --test lint_snapshots
//! ```
//!
//! then commit the updated `LINT_corpus.json` together with the change
//! and a docs/LINTS.md update.

use std::path::PathBuf;

use wormbench::lintcorpus::corpus;
use wormlint::{reports_to_json, LintConfig, LintReport, Registry};

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("LINT_corpus.json")
}

/// Render the corpus exactly as `wormlint --json` does (default
/// severities, no `--deny-warnings`).
fn render_corpus() -> String {
    let registry = Registry::with_default_lints();
    let config = LintConfig::default();
    let targets = corpus();
    let reports: Vec<(String, LintReport)> = targets
        .iter()
        .map(|t| (t.name.clone(), t.run(&registry, &config)))
        .collect();
    let named: Vec<(&str, &LintReport)> = reports.iter().map(|(n, r)| (n.as_str(), r)).collect();
    reports_to_json(&named)
}

#[test]
fn corpus_json_matches_committed_snapshot() {
    let actual = render_corpus();
    let path = snapshot_path();
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some_and(|v| v == "1") {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); run UPDATE_SNAPSHOTS=1 cargo test --test lint_snapshots",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "LINT_corpus.json drifted; if intentional, regenerate with \
         UPDATE_SNAPSHOTS=1 cargo test --test lint_snapshots and update docs/LINTS.md"
    );
}

#[test]
fn snapshot_is_wormlint_1_with_stable_codes() {
    let text = std::fs::read_to_string(snapshot_path()).expect("committed snapshot");
    assert!(text.starts_with("{\n  \"schema\": \"wormlint/1\",\n"));
    assert!(text.ends_with("}\n"), "single trailing newline");
    // Every code in the snapshot is a known registered code.
    let known: Vec<String> = Registry::with_default_lints()
        .lints()
        .iter()
        .map(|l| format!("\"{}\"", l.code()))
        .collect();
    for line in text.lines() {
        let Some(rest) = line.trim_start().strip_prefix("\"code\": ") else {
            continue;
        };
        let code = rest.trim_end_matches(',');
        assert!(
            known.iter().any(|k| k == code),
            "unknown lint code {code} in snapshot"
        );
    }
}
