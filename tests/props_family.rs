//! Property-based tests for the shared-channel cycle family: every
//! randomly parameterized construction has the structural shape the
//! paper's analysis relies on.

use cyclic_wormhole::cdg::{enumerate_candidates, sharing};
use cyclic_wormhole::core::family::{CycleMessageSpec, SharedCycleSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = SharedCycleSpec> {
    prop::collection::vec((1usize..4, 1usize..5, any::<bool>(), 0usize..2), 2..5).prop_map(
        |params| SharedCycleSpec {
            messages: params
                .into_iter()
                .map(|(d, g, shares, group)| {
                    if shares {
                        CycleMessageSpec::shared_in_group(group, d, g, 1)
                    } else {
                        CycleMessageSpec::private(d, g, 1)
                    }
                })
                .collect(),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every construction is a legal Definition-1 network with a total
    /// oblivious routing function and exactly one CDG cycle (the ring).
    #[test]
    fn constructions_are_well_formed(spec in arb_spec()) {
        let c = spec.build();
        prop_assert!(c.net.is_strongly_connected());
        prop_assert!(c.table.is_total(&c.net));
        prop_assert!(c.table.compile(&c.net).is_ok());
        let cdg = c.cdg();
        prop_assert!(!cdg.is_acyclic());
        let cycles = cdg.cycles();
        prop_assert_eq!(cycles.len(), 1, "only the ring cycle");
        prop_assert_eq!(&cycles[0], &c.cycle());
        prop_assert_eq!(c.cycle().len(), c.ring.len());
    }

    /// The canonical candidate is always among the enumerated ones,
    /// and with reach = 1 it is unique.
    #[test]
    fn canonical_candidate_is_enumerated(spec in arb_spec()) {
        let c = spec.build();
        let cdg = c.cdg();
        let (cands, complete) = enumerate_candidates(&cdg, &c.cycle(), 100_000);
        prop_assert!(complete);
        prop_assert_eq!(cands.len(), 1, "reach-1 constructions have one candidate");
        let canonical = c.canonical_candidate();
        let mut a = cands[0].segments.clone();
        let mut b = canonical.segments.clone();
        a.sort_by_key(|s| s.msg);
        b.sort_by_key(|s| s.msg);
        prop_assert_eq!(a, b);
    }

    /// Sharing analysis: the outside-shared channels are exactly the
    /// group channels with at least two sharing messages, each used by
    /// the group's members.
    #[test]
    fn sharing_matches_groups(spec in arb_spec()) {
        let c = spec.build();
        let cycle = c.cycle();
        let candidate = c.canonical_candidate();
        let analysis = sharing::analyze(&c.net, &c.table, &cycle, &candidate);

        // Expected: for each group, count sharing members.
        let mut group_counts = std::collections::BTreeMap::new();
        for m in &spec.messages {
            if m.uses_shared {
                *group_counts.entry(m.shared_group).or_insert(0usize) += 1;
            }
        }
        let expected_outside: usize =
            group_counts.values().filter(|&&n| n >= 2).count();
        let shared_chans = c.shared_channels();
        let outside: Vec<_> = analysis
            .outside()
            .filter(|s| shared_chans.contains(&s.channel))
            .collect();
        prop_assert_eq!(outside.len(), expected_outside);
        for s in outside {
            prop_assert!(s.users.len() >= 2);
        }
    }

    /// Candidate minimum lengths equal the g parameters, and message
    /// geometry matches the spec for every sharing message.
    #[test]
    fn geometry_round_trips(spec in arb_spec()) {
        let c = spec.build();
        let cycle = c.cycle();
        let candidate = c.canonical_candidate();
        for (seg, b) in candidate.segments.iter().zip(&c.built) {
            prop_assert_eq!(seg.msg, b.pair);
            prop_assert_eq!(seg.channels.len(), b.spec.g);
        }
        // `c.cs` is the channel of the *first group in use* (builder
        // convention), not necessarily group 0.
        let first_group = spec
            .messages
            .iter()
            .filter(|m| m.uses_shared)
            .map(|m| m.shared_group)
            .min();
        for b in &c.built {
            let g = sharing::geometry(&c.net, &c.table, &cycle, b.pair, Some(c.cs));
            prop_assert_eq!(g.a, b.spec.a());
            if b.spec.uses_shared && Some(b.spec.shared_group) == first_group {
                prop_assert_eq!(g.d, Some(b.spec.d));
            } else {
                // Other groups / private sources never traverse cs.
                prop_assert_eq!(g.d, None);
            }
        }
    }
}

/// Regression (`props_family.proptest-regressions`, case
/// `5cbaa549…`): a construction whose **only** sharing message sits
/// in a non-zero group, preceded by a private message. The
/// `geometry_round_trips` property originally assumed `c.cs` was the
/// channel of group 0; the builder's actual convention is "the first
/// group *in use*" — here group 1 — so the old expectation looked up
/// the wrong channel and read `d = None` where `Some(d)` was correct.
/// Kept as a named case so the builder convention can't regress
/// silently.
#[test]
fn regression_single_sharer_in_nonzero_group() {
    let spec = SharedCycleSpec {
        messages: vec![
            CycleMessageSpec::private(1, 1, 1),
            CycleMessageSpec::shared_in_group(1, 1, 1, 1),
        ],
    };
    let c = spec.build();
    let cycle = c.cycle();

    // cs is group 1's channel (the only group in use), and the
    // sharing message's access distance round-trips through it.
    let g1 = sharing::geometry(&c.net, &c.table, &cycle, c.built[1].pair, Some(c.cs));
    assert_eq!(g1.d, Some(1));
    assert_eq!(g1.a, spec.messages[1].a());

    // The private message never traverses cs.
    let g0 = sharing::geometry(&c.net, &c.table, &cycle, c.built[0].pair, Some(c.cs));
    assert_eq!(g0.d, None);
    assert_eq!(g0.a, spec.messages[0].a());

    // And with a single sharer the channel is not outside-shared.
    let candidate = c.canonical_candidate();
    let analysis = sharing::analyze(&c.net, &c.table, &cycle, &candidate);
    let shared = c.shared_channels();
    assert_eq!(
        analysis
            .outside()
            .filter(|s| shared.contains(&s.channel))
            .count(),
        0,
        "one sharer does not make a shared channel"
    );
}
