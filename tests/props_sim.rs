//! Property-based tests for the simulator: the engine invariants hold
//! under arbitrary topologies, workloads, and decision sequences.

use cyclic_wormhole::net::topology::{line, ring_unidirectional, Mesh};
use cyclic_wormhole::net::{Network, NodeId};
use cyclic_wormhole::route::algorithms::{clockwise_ring, shortest_path_table};
use cyclic_wormhole::route::TableRouting;
use cyclic_wormhole::sim::{Decisions, MessageId, MessageSpec, Sim};
use proptest::prelude::*;

/// A deterministic pseudo-random decision source driven by proptest
/// input, so every run is reproducible from the failing case.
struct DecisionDriver {
    words: Vec<u32>,
    pos: usize,
}

impl DecisionDriver {
    fn new(words: Vec<u32>) -> Self {
        DecisionDriver { words, pos: 0 }
    }

    fn next(&mut self) -> u32 {
        if self.words.is_empty() {
            return 0;
        }
        let w = self.words[self.pos % self.words.len()];
        self.pos += 1;
        w.wrapping_mul(2654435761).wrapping_add(self.pos as u32)
    }

    /// Random subset of a small id list.
    fn subset(&mut self, items: &[MessageId]) -> Vec<MessageId> {
        let mask = self.next();
        items
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 32)) != 0)
            .map(|(_, &m)| m)
            .collect()
    }
}

fn arb_topology() -> impl Strategy<Value = (Network, Vec<NodeId>, TableRouting)> {
    prop_oneof![
        (2usize..6).prop_map(|n| {
            let (net, nodes) = line(n);
            let table = shortest_path_table(&net).expect("line routes");
            (net, nodes, table)
        }),
        (3usize..6).prop_map(|n| {
            let (net, nodes) = ring_unidirectional(n);
            let table = clockwise_ring(&net, &nodes).expect("ring routes");
            (net, nodes, table)
        }),
        ((2usize..4), (2usize..4)).prop_map(|(w, h)| {
            let mesh = Mesh::new(&[w, h]);
            let table = shortest_path_table(mesh.network()).expect("mesh routes");
            let nodes: Vec<NodeId> = mesh.network().nodes().collect();
            (mesh.into_network(), nodes, table)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the decisions, every engine step preserves flit
    /// conservation, worm contiguity, capacity bounds, and atomic
    /// buffer allocation (all encoded in `check_invariants`).
    #[test]
    fn engine_invariants_hold_under_arbitrary_decisions(
        (net, nodes, table) in arb_topology(),
        raw_messages in prop::collection::vec((0usize..36, 0usize..36, 1usize..6), 1..5),
        words in prop::collection::vec(any::<u32>(), 1..64),
        steps in 1usize..120,
        capacity in 1usize..4,
    ) {
        let specs: Vec<MessageSpec> = raw_messages
            .iter()
            .map(|&(s, d, len)| {
                let src = nodes[s % nodes.len()];
                let mut dst = nodes[d % nodes.len()];
                if dst == src {
                    dst = nodes[(d + 1) % nodes.len()];
                }
                MessageSpec::new(src, dst, len)
            })
            .filter(|m| table.path(m.src, m.dst).is_some())
            .collect();
        prop_assume!(!specs.is_empty());

        let sim = Sim::new(&net, &table, specs, Some(capacity)).expect("routed");
        let mut state = sim.initial_state();
        let mut driver = DecisionDriver::new(words);
        for _ in 0..steps {
            let pending = sim.pending(&state);
            let in_flight: Vec<MessageId> = sim
                .messages()
                .filter(|&m| state.is_started(m) && !state.is_delivered(m, sim.length(m)))
                .collect();
            let inject = driver.subset(&pending);
            let stalls = driver.subset(&in_flight);
            let requests = sim.header_requests(&state, &inject, &stalls);
            let mut winners = std::collections::BTreeMap::new();
            for (chan, reqs) in requests {
                if reqs.len() > 1 {
                    let pick = driver.next() as usize % reqs.len();
                    winners.insert(chan, reqs[pick]);
                }
            }
            sim.step(
                &mut state,
                &Decisions {
                    inject,
                    stalls,
                    winners,
                    ..Decisions::default()
                },
            );
            sim.check_invariants(&state);
        }
    }

    /// Delivered simulations leave the network empty: every channel
    /// queue is released once all tails pass.
    #[test]
    fn delivery_empties_the_network(
        (net, nodes, table) in arb_topology(),
        raw in prop::collection::vec((0usize..36, 0usize..36, 1usize..5), 1..4),
    ) {
        let specs: Vec<MessageSpec> = raw
            .iter()
            .map(|&(s, d, len)| {
                let src = nodes[s % nodes.len()];
                let mut dst = nodes[d % nodes.len()];
                if dst == src {
                    dst = nodes[(d + 1) % nodes.len()];
                }
                MessageSpec::new(src, dst, len)
            })
            .filter(|m| table.path(m.src, m.dst).is_some())
            .collect();
        prop_assume!(!specs.is_empty());
        let sim = Sim::new(&net, &table, specs, Some(1)).expect("routed");
        let mut state = sim.initial_state();
        for _ in 0..5_000 {
            let d = Decisions {
                inject: sim.pending(&state),
                ..Decisions::default()
            };
            sim.step(&mut state, &d);
            sim.check_invariants(&state);
            if sim.all_delivered(&state) {
                break;
            }
            if sim.find_deadlock(&state).is_some() {
                // Rings can deadlock; that is fine for this property —
                // the emptiness claim only applies to delivered runs.
                return Ok(());
            }
        }
        if sim.all_delivered(&state) {
            prop_assert!(state.channels.iter().all(Option::is_none));
        }
    }

    /// Stalled cycles never change state (freezing is exact) and
    /// deadlock detection is stable under stuttering.
    #[test]
    fn stall_everything_is_identity(
        (net, nodes, table) in arb_topology(),
        len in 1usize..5,
        warm in 0usize..10,
    ) {
        let src = nodes[0];
        let dst = *nodes.last().expect("nodes");
        prop_assume!(src != dst && table.path(src, dst).is_some());
        let sim = Sim::new(&net, &table, vec![MessageSpec::new(src, dst, len)], Some(1))
            .expect("routed");
        let mut state = sim.initial_state();
        for _ in 0..warm {
            let d = Decisions {
                inject: sim.pending(&state),
                ..Decisions::default()
            };
            sim.step(&mut state, &d);
        }
        let in_flight: Vec<MessageId> = sim
            .messages()
            .filter(|&m| state.is_started(m) && !state.is_delivered(m, sim.length(m)))
            .collect();
        let before = state.clone();
        let deadlock_before = sim.find_deadlock(&state);
        sim.step(&mut state, &Decisions {
            stalls: in_flight,
            ..Decisions::default()
        });
        prop_assert_eq!(&before, &state);
        prop_assert_eq!(deadlock_before, sim.find_deadlock(&state));
    }
}
