//! Larger-scale soak tests: the simulator at sizes well beyond the
//! paper's examples. Run in release (`cargo test --release`) — in
//! debug these take noticeably longer but still complete.

use cyclic_wormhole::cdg::Cdg;
use cyclic_wormhole::net::topology::{Mesh, Torus};
use cyclic_wormhole::route::algorithms::{dateline_torus, dimension_order};
use cyclic_wormhole::sim::runner::{ArbitrationPolicy, Outcome, Runner};
use cyclic_wormhole::sim::{traffic, Sim};
use rand::SeedableRng;

#[test]
fn mesh_12x12_heavy_uniform_traffic_delivers() {
    let mesh = Mesh::new(&[12, 12]);
    let table = dimension_order(&mesh).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let specs = traffic::uniform_random(mesh.network(), &table, &mut rng, 0.08, 150, (2, 10));
    assert!(specs.len() > 1_000, "heavy load: {}", specs.len());
    let sim = Sim::new(mesh.network(), &table, specs, Some(2)).unwrap();
    let mut runner = Runner::new(&sim, ArbitrationPolicy::OldestFirst);
    let outcome = runner.run(2_000_000);
    assert!(matches!(outcome, Outcome::Delivered { .. }), "{outcome:?}");
    let stats = runner.stats();
    assert_eq!(stats.delivered_count(), sim.message_count());
    assert!(
        stats.throughput() > 1.0,
        "throughput {}",
        stats.throughput()
    );
}

#[test]
fn torus_6x6_dateline_under_bit_complement_like_load() {
    let torus = Torus::new(&[6, 6], 2);
    let table = dateline_torus(&torus).unwrap();
    // Every node to its antipode.
    let specs: Vec<_> = torus
        .network()
        .nodes()
        .filter_map(|n| {
            let c = torus.coords(n);
            let d = [(c[0] + 3) % 6, (c[1] + 3) % 6];
            (c != d).then(|| cyclic_wormhole::sim::MessageSpec::new(n, torus.node(&d), 6))
        })
        .collect();
    let sim = Sim::new(torus.network(), &table, specs, Some(1)).unwrap();
    let mut runner = Runner::new(&sim, ArbitrationPolicy::Adversarial { favored: vec![] });
    let outcome = runner.run(1_000_000);
    assert!(
        matches!(outcome, Outcome::Delivered { .. }),
        "dateline torus must never deadlock: {outcome:?}"
    );
}

#[test]
fn cdg_scales_to_a_16x16_mesh() {
    let mesh = Mesh::new(&[16, 16]);
    let table = dimension_order(&mesh).unwrap();
    let cdg = Cdg::build(mesh.network(), &table);
    assert!(cdg.is_acyclic());
    assert!(cdg.numbering().is_some());
    // 16x16 mesh: 2*(15*16)*2 = 960 channels.
    assert_eq!(cdg.channel_count(), 960);
    assert!(cdg.edge_count() > 1_000);
}
