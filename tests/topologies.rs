//! Cluster-scale topology builders and their production routing
//! engines: structural invariants, certified static verdicts, and
//! three-way differential agreement.
//!
//! Three layers of checking:
//!
//! 1. **Structural invariants** — node/channel counts against the
//!    closed-form formulas, virtual-channel layering per family, and
//!    the expected diameter.
//! 2. **Differential agreement** — on the downscaled instances the CI
//!    smoke suite uses, `worm_core::classify`, the `wormlint`
//!    registry, and bounded exhaustive search must tell the same
//!    story: the production engines are deadlock-free, the no-VC
//!    dragonfly misconfiguration deadlocks.
//! 3. **Scale** — the 330-node full mesh (108,570 channels, above the
//!    10^5 bar) earns a certified `free-acyclic` verdict with the
//!    W209 down/up numbering certificate even in a debug build.

use cyclic_wormhole::core::classify::{classify_algorithm, AlgorithmVerdict, ClassifyOptions};
use cyclic_wormhole::net::graph::SccEngineKind;
use cyclic_wormhole::net::topology::{complete, Dragonfly, FatTree, FatTreeTier};
use cyclic_wormhole::net::Network;
use cyclic_wormhole::route::algorithms::{dragonfly_minimal, fattree_updown, fullmesh_vcfree};
use cyclic_wormhole::search::{explore, SearchConfig};
use cyclic_wormhole::sim::{MessageSpec, Sim};
use wormbench::scenarios::large_topology_scenarios;
use wormlint::{LintConfig, LintContext, Registry, StaticVerdict};

/// Largest finite shortest-path distance over all node pairs.
fn diameter(net: &Network) -> usize {
    net.nodes()
        .flat_map(|src| net.distances_from(src))
        .flatten()
        .max()
        .expect("non-empty network")
}

#[test]
fn dragonfly_structural_invariants() {
    let (groups, routers) = (5, 4);
    let df = Dragonfly::new(groups, routers);
    let net = df.network();
    assert_eq!(net.node_count(), groups * routers);
    // Minimal VC-ordered lanes: every ordered in-group router pair gets
    // a local channel per local lane; every unordered group pair gets
    // one global link (two directed channels) per global lane.
    let locals = groups * routers * (routers - 1) * df.local_lanes().len();
    let globals = groups * (groups - 1) * df.global_lanes().len();
    assert_eq!(net.channel_count(), locals + globals);
    // Lane layering: locals on {0, 2}, globals on {1} — the strictly
    // increasing local/global/local sequence behind the W208
    // certificate.
    assert_eq!(df.local_lanes(), &[0, 2]);
    assert_eq!(df.global_lanes(), &[1]);
    let lanes: std::collections::BTreeSet<u8> = net.channels().map(|c| c.vc()).collect();
    assert_eq!(lanes.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    // Minimal routing is local/global/local: diameter 3.
    assert_eq!(diameter(net), 3);

    let valiant = Dragonfly::new_valiant(groups, routers);
    assert_eq!(valiant.local_lanes(), &[0, 2, 4]);
    assert_eq!(valiant.global_lanes(), &[1, 3]);
}

#[test]
fn fattree_structural_invariants() {
    let k = 4;
    let ft = FatTree::new(k);
    let net = ft.network();
    let half = k / 2;
    // (k/2)^2 cores + k pods of k/2 aggregation + k/2 edge switches.
    assert_eq!(net.node_count(), half * half + k * (half + half));
    let (mut cores, mut aggs, mut edges) = (0, 0, 0);
    for node in net.nodes() {
        match ft.tier(node) {
            FatTreeTier::Core => cores += 1,
            FatTreeTier::Aggregation => aggs += 1,
            FatTreeTier::Edge => edges += 1,
        }
    }
    assert_eq!((cores, aggs, edges), (half * half, k * half, k * half));
    // Each tier boundary carries k * (k/2)^2 links, each bidirectional.
    assert_eq!(net.channel_count(), 2 * 2 * k * half * half);
    // Up*/down* needs no virtual channels: a single lane everywhere.
    assert!(net.channels().all(|c| c.vc() == 0));
    // Edge-to-edge across pods: up through an aggregation switch and a
    // core, down the far side — diameter 4.
    assert_eq!(diameter(net), 4);
}

#[test]
fn fullmesh_structural_invariants() {
    let n = 12;
    let (net, nodes) = complete(n);
    assert_eq!(nodes.len(), n);
    assert_eq!(net.node_count(), n);
    assert_eq!(net.channel_count(), n * (n - 1));
    assert!(net.channels().all(|c| c.vc() == 0));
    assert_eq!(diameter(&net), 1);
}

/// The stable label `worm_core::classify` verdicts are compared under.
fn classify_label(v: &AlgorithmVerdict) -> &'static str {
    match v {
        AlgorithmVerdict::DeadlockFreeAcyclic { .. } => "free-acyclic",
        AlgorithmVerdict::DeadlockFreeWithCycles { .. } => "free-cyclic",
        AlgorithmVerdict::Deadlockable { .. } => "deadlockable",
        AlgorithmVerdict::Unknown { .. } => "unknown",
    }
}

/// Enumeration budgets for the cyclic no-VC instance, mirroring the
/// bench harness: Corollary 1 decides it from the node-function
/// property plus CDG cyclicity, so a handful of cycles suffices —
/// unbounded enumeration on a deeply cyclic CDG is exactly what the
/// certified pipeline avoids.
const MAX_CYCLES: usize = 8;
const MAX_CANDIDATES: usize = 256;

/// Classifier and lint registry agree with each scenario's expected
/// verdict on the downscaled (CI smoke) instances under *both*
/// incremental-SCC engines, and each family carries its Dally–Seitz
/// numbering certificate regardless of engine.
#[test]
fn downscaled_scenarios_certify_expected_verdicts() {
    let registry = Registry::with_default_lints();
    let expected_certificate = [
        ("topo_dragonfly_min", Some("W208")),
        ("topo_fattree_updown", Some("W209")),
        ("topo_fullmesh_vcfree", Some("W209")),
        ("topo_dragonfly_novc", None),
    ];
    let scenarios = large_topology_scenarios(true);
    assert_eq!(scenarios.len(), expected_certificate.len());
    for s in &scenarios {
        for engine in SccEngineKind::ALL {
            let opts = ClassifyOptions {
                max_cycles: MAX_CYCLES,
                max_candidates: MAX_CANDIDATES,
                use_search: false,
                scc_engine: engine,
                ..ClassifyOptions::default()
            };
            let verdict = classify_algorithm(&s.net, &s.table, &opts);
            assert_eq!(
                classify_label(&verdict),
                s.expected_verdict,
                "{} ({})",
                s.name,
                engine.name()
            );

            let config = LintConfig {
                max_cycles: MAX_CYCLES,
                max_candidates: MAX_CANDIDATES,
                scc_engine: engine,
                ..LintConfig::default()
            };
            let report = registry.run(&s.net, &s.table, &config);
            assert_eq!(
                report.verdict.name(),
                s.expected_verdict,
                "{} ({})",
                s.name,
                engine.name()
            );

            let (_, cert) = expected_certificate
                .iter()
                .find(|(name, _)| *name == s.name)
                .expect("unexpected scenario name");
            if let Some(code) = cert {
                assert!(
                    report.diagnostics.iter().any(|d| &d.code == code),
                    "{} ({}): missing numbering certificate {code}",
                    s.name,
                    engine.name()
                );
            }
        }
    }
}

/// On the downscaled no-VC dragonfly the *refutation witness* — the
/// classifier's full cycle/candidate structure and the rendered lint
/// report, witnesses included — must be byte-identical across the two
/// SCC engines: the engine choice may change construction cost, never
/// what is reported.
#[test]
fn downscaled_novc_refutation_witness_identical_across_engines() {
    let scenarios = large_topology_scenarios(true);
    let novc = scenarios
        .iter()
        .find(|s| s.name == "topo_dragonfly_novc")
        .expect("novc scenario present");

    let per_engine: Vec<(String, String)> = SccEngineKind::ALL
        .iter()
        .map(|&engine| {
            let opts = ClassifyOptions {
                max_cycles: MAX_CYCLES,
                max_candidates: MAX_CANDIDATES,
                use_search: false,
                scc_engine: engine,
                ..ClassifyOptions::default()
            };
            let verdict = classify_algorithm(&novc.net, &novc.table, &opts);
            assert!(
                matches!(verdict, AlgorithmVerdict::Deadlockable { .. }),
                "novc must be refuted ({})",
                engine.name()
            );
            let config = LintConfig {
                max_cycles: MAX_CYCLES,
                max_candidates: MAX_CANDIDATES,
                scc_engine: engine,
                ..LintConfig::default()
            };
            let report = Registry::with_default_lints().run(&novc.net, &novc.table, &config);
            assert_eq!(report.verdict, StaticVerdict::Deadlockable);
            (format!("{verdict:?}"), report.render())
        })
        .collect();
    assert_eq!(
        per_engine[0].0, per_engine[1].0,
        "classifier refutation witness differs between engines"
    );
    assert_eq!(
        per_engine[0].1, per_engine[1].1,
        "rendered lint report differs between engines"
    );
}

/// Bounded exhaustive search confirms both sides of the static story
/// on the downscaled instances: a reachable-deadlock certificate of
/// the no-VC dragonfly deadlocks for real, and an adversarial message
/// set on the certified-free dragonfly cannot be deadlocked.
#[test]
fn downscaled_search_agrees_with_static_verdicts() {
    let scenarios = large_topology_scenarios(true);

    let novc = scenarios
        .iter()
        .find(|s| s.name == "topo_dragonfly_novc")
        .expect("novc scenario present");
    // The static certificate must be search-confirmed under either SCC
    // engine (the lint context streams the CDG through the selected
    // engine; the candidates it surfaces must deadlock for real).
    for engine in SccEngineKind::ALL {
        let ctx = LintContext::build_with_engine(
            &novc.net,
            &novc.table,
            MAX_CYCLES,
            MAX_CANDIDATES,
            engine,
        );
        assert!(!ctx.scc_acyclic, "novc CDG is cyclic ({})", engine.name());
        let mut confirmed = 0;
        for (_, ca) in ctx.candidates() {
            if ca.class.reachable() != Some(true) || confirmed > 0 {
                continue;
            }
            let specs: Vec<MessageSpec> = ca
                .candidate
                .segments
                .iter()
                .map(|seg| MessageSpec::new(seg.msg.0, seg.msg.1, seg.channels.len()))
                .collect();
            let sim = Sim::new(&novc.net, &novc.table, specs, Some(1)).expect("certificate routes");
            let result = explore(&sim, &SearchConfig::default());
            assert!(
                result.verdict.is_deadlock(),
                "novc certificate not search-confirmed ({})",
                engine.name()
            );
            confirmed += 1;
        }
        assert_eq!(
            confirmed,
            1,
            "no reachable-deadlock certificate found ({})",
            engine.name()
        );
    }

    // The certified-free dragonfly under the same adversarial shape:
    // four minimal-length messages chasing each other through distinct
    // groups, the pattern that deadlocks the no-VC variant.
    let df = Dragonfly::new(5, 4);
    let table = dragonfly_minimal(&df).expect("routes");
    let specs: Vec<MessageSpec> = (0..4)
        .map(|g| {
            let src = df.node(g, 1);
            let dst = df.node((g + 1) % 4, 2);
            let len = table.path(src, dst).expect("routed").channels().len();
            MessageSpec::new(src, dst, len)
        })
        .collect();
    let sim = Sim::new(df.network(), &table, specs, Some(1)).expect("routes");
    let result = explore(&sim, &SearchConfig::default());
    assert!(
        result.verdict.is_free(),
        "search deadlocked the certified-free dragonfly"
    );
}

/// The full-scale mesh stays certified above the 10^5-channel bar even
/// in a debug build: 330 nodes, 108,570 channels, verdict
/// `free-acyclic` with the W209 down/up certificate.
#[test]
fn full_scale_mesh_certifies_in_debug() {
    let (net, nodes) = complete(330);
    assert!(net.channel_count() >= 100_000);
    let table = fullmesh_vcfree(&net, &nodes).expect("routes");
    let report = Registry::with_default_lints().run(&net, &table, &LintConfig::default());
    assert_eq!(report.verdict, StaticVerdict::FreeAcyclic);
    assert!(report.diagnostics.iter().any(|d| d.code == "W209"));
}

/// `fattree_updown` routes between every pair of edge switches and
/// uses every physical link in the fabric (the W004 dead-channel lint
/// stays quiet on the smoke instance for the edge-to-edge table).
#[test]
fn fattree_updown_covers_every_link() {
    let ft = FatTree::new(4);
    let table = fattree_updown(&ft).expect("routes");
    let mut used = vec![false; ft.network().channel_count()];
    for (_, path) in table.iter() {
        for &c in path.channels() {
            used[c.index()] = true;
        }
    }
    assert!(
        used.iter().all(|&u| u),
        "up*/down* must exercise every channel"
    );
}
