//! Property-based tests for the analysis layers: routing properties,
//! CDG structure, candidate validity, and search/simulation agreement.

use cyclic_wormhole::cdg::{enumerate_candidates, sharing, Cdg};
use cyclic_wormhole::core::family::{CycleMessageSpec, SharedCycleSpec};
use cyclic_wormhole::net::topology::Mesh;
use cyclic_wormhole::route::algorithms::{dimension_order, random_table};
use cyclic_wormhole::route::properties;
use cyclic_wormhole::search::{explore, SearchConfig};
use cyclic_wormhole::sim::runner::{ArbitrationPolicy, Outcome, Runner};
use cyclic_wormhole::sim::{MessageSpec, Sim};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dimension-order routing is minimal, coherent, compiles to a
    /// routing function, and has an acyclic CDG — on every mesh shape.
    #[test]
    fn dor_properties_on_every_mesh(w in 2usize..5, h in 1usize..4, d3 in 1usize..3) {
        prop_assume!(w * h * d3 >= 2);
        let mesh = Mesh::new(&[w, h, d3]);
        let table = dimension_order(&mesh).expect("routes");
        let report = properties::analyze(mesh.network(), &table);
        prop_assert!(report.total && report.minimal && report.coherent);
        prop_assert!(table.compile(mesh.network()).is_ok());
        prop_assert!(Cdg::build(mesh.network(), &table).is_acyclic());
    }

    /// Random routing tables always produce structurally valid CDGs:
    /// every edge witness's path really contains the edge, and every
    /// enumerated candidate is a legal Definition-6 configuration.
    #[test]
    fn random_tables_produce_valid_candidates(seed in 0u64..500, detour in 0usize..3) {
        let mesh = Mesh::new(&[3, 2]);
        let net = mesh.network();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let table = random_table(net, &mut rng, detour).expect("routes");
        let cdg = Cdg::build(net, &table);

        for (&(c1, c2), witnesses) in cdg.edges() {
            for &(s, d) in witnesses {
                let path = table.path(s, d).expect("witness routed");
                let chans = path.channels();
                let ok = chans.windows(2).any(|w| w[0] == c1 && w[1] == c2);
                prop_assert!(ok, "witness does not induce edge");
            }
        }

        for cycle in cdg.cycles_bounded(200).into_iter().flatten() {
            let (candidates, _) = enumerate_candidates(&cdg, &cycle, 200);
            for cand in candidates {
                // Segments tile the cycle.
                let total: usize = cand.segments.iter().map(|s| s.channels.len()).sum();
                prop_assert_eq!(total, cycle.len());
                prop_assert!(cand.segments.len() >= 2);
                // Each owner holds consecutive channels of its path and
                // wants the next segment's head.
                let k = cand.segments.len();
                for i in 0..k {
                    let cur = &cand.segments[i];
                    let next = &cand.segments[(i + 1) % k];
                    let path = table.path(cur.msg.0, cur.msg.1).expect("routed");
                    let chans = path.channels();
                    let start = chans
                        .iter()
                        .position(|&c| c == cur.channels[0])
                        .expect("held channels on path");
                    for (j, &held) in cur.channels.iter().enumerate() {
                        prop_assert_eq!(chans[start + j], held);
                    }
                    prop_assert_eq!(chans[start + cur.channels.len()], next.channels[0]);
                }
            }
        }
    }

    /// Whenever the exhaustive search certifies deadlock freedom for a
    /// message set, no concrete policy run can deadlock.
    #[test]
    fn search_freedom_implies_run_freedom(seed in 0u64..200) {
        let mesh = Mesh::new(&[2, 2]);
        let net = mesh.network();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let table = random_table(net, &mut rng, 1).expect("routes");
        let nodes: Vec<_> = net.nodes().collect();
        let specs: Vec<MessageSpec> = (0..3)
            .map(|i| {
                let s = nodes[(seed as usize + i) % nodes.len()];
                let d = nodes[(seed as usize + i + 1) % nodes.len()];
                MessageSpec::new(s, d, 2 + i % 3)
            })
            .filter(|m| table.path(m.src, m.dst).is_some())
            .collect();
        prop_assume!(!specs.is_empty());

        let sim = Sim::new(net, &table, specs, Some(1)).expect("routed");
        let result = explore(&sim, &SearchConfig::default());
        if result.verdict.is_free() {
            for policy in [
                ArbitrationPolicy::LowestId,
                ArbitrationPolicy::Adversarial { favored: vec![] },
            ] {
                let mut runner = Runner::new(&sim, policy);
                let outcome = runner.run(50_000);
                let deadlocked = matches!(outcome, Outcome::Deadlock { .. });
                prop_assert!(!deadlocked);
            }
        }
    }

    /// The search is deterministic: same inputs, same verdict and
    /// state count.
    #[test]
    fn search_is_deterministic(d1 in 1usize..4, d2 in 1usize..4) {
        let spec = SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(d1, 3, 1),
                CycleMessageSpec::shared(d2, 3, 1),
            ],
        };
        let c = spec.build();
        let sim = Sim::new(&c.net, &c.table, c.message_specs(), Some(1)).expect("routed");
        let a = explore(&sim, &SearchConfig::default());
        let b = explore(&sim, &SearchConfig::default());
        prop_assert_eq!(a.verdict.is_free(), b.verdict.is_free());
        prop_assert_eq!(a.states_explored, b.states_explored);
    }

    /// Sharing analysis geometry is internally consistent on arbitrary
    /// family instances: d + 1 + a <= path length, and the entry
    /// channel is the first ring channel.
    #[test]
    fn family_geometry_consistent(
        params in prop::collection::vec((1usize..4, 1usize..5), 2..5),
    ) {
        let spec = SharedCycleSpec {
            messages: params
                .iter()
                .map(|&(d, g)| CycleMessageSpec::shared(d, g, 1))
                .collect(),
        };
        let c = spec.build();
        let cycle = c.cycle();
        for b in &c.built {
            let g = sharing::geometry(&c.net, &c.table, &cycle, b.pair, Some(c.cs));
            prop_assert_eq!(g.d, Some(b.spec.d));
            prop_assert_eq!(g.a, b.spec.a());
            prop_assert_eq!(g.entry_index, 1 + b.spec.d);
            prop_assert_eq!(g.path_len, 1 + b.spec.d + b.spec.a());
        }
    }
}
