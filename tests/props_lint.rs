//! Differential tests for `wormlint`: every static claim the lints
//! make is cross-checked against the classifier
//! (`worm_core::classify`) and the exhaustive reachability search
//! (`wormsearch`).
//!
//! Three kinds of agreement are enforced:
//!
//! 1. **Verdict compatibility** — the lint verdict never contradicts
//!    `classify_algorithm` (which may additionally use search), on the
//!    whole corpus and on randomly generated routing tables.
//! 2. **"Provably free" means search-free** — whenever the lints
//!    declare a spec `free-acyclic`/`free-cyclic`, the exhaustive
//!    search over that spec's benchmark scenario finds no deadlock.
//! 3. **Certificates are reachable** — every Theorem 2/3/4/5
//!    reachable-deadlock certificate is confirmed by searching the
//!    certificate's own message set (sweeping small adversarial stall
//!    budgets: the paper's router can differ from this crate's
//!    conservative one by one stall on boundary geometries, see
//!    `verify_theorems_with_search` in `worm_core::classify`).

use cyclic_wormhole::core::classify::{classify_algorithm, AlgorithmVerdict, ClassifyOptions};
use cyclic_wormhole::net::topology::Mesh;
use cyclic_wormhole::net::Network;
use cyclic_wormhole::route::algorithms::random_table;
use cyclic_wormhole::route::TableRouting;
use cyclic_wormhole::search::{explore, SearchConfig};
use cyclic_wormhole::sim::{MessageSpec, Sim};
use proptest::prelude::*;
use rand::SeedableRng;
use wormbench::lintcorpus::corpus;
use wormbench::scenarios::search_scenarios;
use wormlint::{LintConfig, LintContext, Registry, StaticVerdict};

/// `true` when a lint verdict and a classifier verdict could describe
/// the same spec. The lint verdict is coarser (no search), so
/// `Undecided` is compatible with everything and the classifier's
/// `Unknown` contradicts nothing.
fn compatible(lint: StaticVerdict, classifier: &AlgorithmVerdict) -> bool {
    match lint {
        StaticVerdict::FreeAcyclic => {
            matches!(classifier, AlgorithmVerdict::DeadlockFreeAcyclic { .. })
        }
        StaticVerdict::FreeCyclic => matches!(
            classifier,
            AlgorithmVerdict::DeadlockFreeWithCycles { .. } | AlgorithmVerdict::Unknown { .. }
        ),
        StaticVerdict::Deadlockable => matches!(
            classifier,
            AlgorithmVerdict::Deadlockable { .. } | AlgorithmVerdict::Unknown { .. }
        ),
        StaticVerdict::Undecided => true,
    }
}

/// Search the candidate's own message set (minimum lengths) for any
/// deadlock, sweeping stall budgets `0..=2`.
fn certificate_confirmed(
    net: &Network,
    table: &TableRouting,
    ctx_candidate: &wormlint::CandidateAnalysis,
) -> bool {
    let specs: Vec<MessageSpec> = ctx_candidate
        .candidate
        .segments
        .iter()
        .map(|s| MessageSpec::new(s.msg.0, s.msg.1, s.channels.len()))
        .collect();
    let Ok(sim) = Sim::new(net, table, specs, Some(1)) else {
        return false;
    };
    (0..=2).any(|stall_budget| {
        explore(
            &sim,
            &SearchConfig {
                stall_budget,
                ..SearchConfig::default()
            },
        )
        .verdict
        .is_deadlock()
    })
}

/// 1a. Corpus-wide verdict compatibility with the classifier.
///
/// The exhaustive-search fallback makes classification of the larger
/// `G(k)` instances expensive in debug builds, so those are compared
/// without search (`Unknown` then contradicts nothing).
#[test]
fn corpus_lint_verdicts_agree_with_classifier() {
    let registry = Registry::with_default_lints();
    let config = LintConfig::default();
    for t in corpus() {
        let report = t.run(&registry, &config);
        let opts = ClassifyOptions {
            use_search: !t.name.starts_with('g') && t.name != "fig1",
            ..ClassifyOptions::default()
        };
        let classifier = classify_algorithm(&t.net, &t.table, &opts);
        assert!(
            compatible(report.verdict, &classifier),
            "{}: lint {} vs classifier {classifier:?}",
            t.name,
            report.verdict
        );
    }
}

/// 1b. The search-assisted classifier agrees with the lint verdict on
/// the specs the theorems fully decide — including that `free-cyclic`
/// (Figure 3(a)/(b)) survives the classifier's exhaustive search.
#[test]
fn theorem_decided_corpus_verdicts_match_search_assisted_classifier() {
    let registry = Registry::with_default_lints();
    let config = LintConfig::default();
    for t in corpus() {
        let report = t.run(&registry, &config);
        if report.verdict == StaticVerdict::Undecided {
            continue;
        }
        let classifier = classify_algorithm(&t.net, &t.table, &ClassifyOptions::default());
        let matches = match report.verdict {
            StaticVerdict::FreeAcyclic => {
                matches!(classifier, AlgorithmVerdict::DeadlockFreeAcyclic { .. })
            }
            StaticVerdict::FreeCyclic => {
                matches!(classifier, AlgorithmVerdict::DeadlockFreeWithCycles { .. })
            }
            StaticVerdict::Deadlockable => {
                matches!(classifier, AlgorithmVerdict::Deadlockable { .. })
            }
            StaticVerdict::Undecided => unreachable!(),
        };
        assert!(
            matches,
            "{}: lint {} vs search-assisted classifier {classifier:?}",
            t.name, report.verdict
        );
    }
}

/// 2. "Provably deadlock-free" lint verdicts agree with the search:
///    scenarios whose corpus target the lints certify free never
///    deadlock under exhaustive search, and `Deadlockable` targets'
///    scenarios do.
#[test]
fn lint_verdicts_agree_with_search_on_scenarios() {
    let registry = Registry::with_default_lints();
    let config = LintConfig::default();
    let verdicts: std::collections::BTreeMap<String, StaticVerdict> = corpus()
        .iter()
        .map(|t| (t.name.clone(), t.run(&registry, &config).verdict))
        .collect();
    let mut checked = 0;
    for s in search_scenarios() {
        // The larger family instances are too slow for debug-mode
        // exhaustive search here; they are covered by e2e_paper.rs.
        if matches!(s.name.as_str(), "g3" | "g4" | "g5") {
            continue;
        }
        let lint = verdicts[&s.name];
        let result = explore(&s.sim, &s.plain_config());
        match lint {
            StaticVerdict::FreeAcyclic | StaticVerdict::FreeCyclic => {
                assert!(
                    result.verdict.is_free(),
                    "{}: lint says free, search found a deadlock",
                    s.name
                );
            }
            StaticVerdict::Deadlockable => {
                assert!(
                    result.verdict.is_deadlock(),
                    "{}: lint certified a deadlock, search found none",
                    s.name
                );
            }
            StaticVerdict::Undecided => {} // no static claim to check
        }
        checked += 1;
    }
    assert!(checked >= 9, "scenario coverage collapsed ({checked})");
}

/// 3. Every Theorem 2/3/4/5 reachable-deadlock certificate in the
///    corpus is search-confirmed on the certificate's own message set.
#[test]
fn deadlock_certificates_are_search_confirmed() {
    let mut confirmed = 0;
    for t in corpus() {
        let ctx = LintContext::build(&t.net, &t.table, 10_000, 10_000);
        for (_, ca) in ctx.candidates() {
            if ca.class.reachable() != Some(true) {
                continue;
            }
            assert!(
                certificate_confirmed(&t.net, &t.table, ca),
                "{}: certificate {:?} not search-confirmed",
                t.name,
                ca.candidate.describe(&t.net)
            );
            confirmed += 1;
        }
    }
    // fig2 + four reachable fig3 scenarios + the ring cycles all carry
    // certificates; if this count collapses the test went vacuous.
    assert!(confirmed >= 6, "only {confirmed} certificates confirmed");
}

/// JSON reports are byte-deterministic across repeated runs (the
/// committed `LINT_corpus.json` relies on this; `tests/lint_snapshots.rs`
/// pins the actual bytes).
#[test]
fn json_reports_are_deterministic() {
    let registry = Registry::with_default_lints();
    let config = LintConfig::default();
    let render = || {
        let targets = corpus();
        let reports: Vec<(String, wormlint::LintReport)> = targets
            .iter()
            .map(|t| (t.name.clone(), t.run(&registry, &config)))
            .collect();
        let named: Vec<(&str, &wormlint::LintReport)> =
            reports.iter().map(|(n, r)| (n.as_str(), r)).collect();
        wormlint::reports_to_json(&named)
    };
    let a = render();
    let b = render();
    assert_eq!(a, b);
    assert!(a.starts_with("{\n  \"schema\": \"wormlint/1\","));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random routing tables: the lint verdict never contradicts the
    /// search-assisted classifier, and certified-free specs really
    /// have no reachable candidate.
    #[test]
    fn random_tables_lint_agrees_with_classifier(seed in 0u64..400, detour in 0usize..3) {
        let mesh = Mesh::new(&[3, 2]);
        let net = mesh.network();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let table = random_table(net, &mut rng, detour).expect("routes");

        let report = Registry::with_default_lints().run(net, &table, &LintConfig::default());
        let classifier = classify_algorithm(net, &table, &ClassifyOptions::default());
        prop_assert!(
            compatible(report.verdict, &classifier),
            "seed {seed}: lint {} vs classifier {classifier:?}",
            report.verdict
        );

        // Structural sanity on the random spec's diagnostics: W2xx
        // diagnostics appear iff the CDG is cyclic.
        let has_cycle_diag = report.diagnostics.iter().any(|d| d.code.starts_with("W2"));
        let cyclic = !matches!(classifier, AlgorithmVerdict::DeadlockFreeAcyclic { .. });
        prop_assert_eq!(has_cycle_diag, cyclic, "seed {}", seed);
    }
}
