//! Round-trip and canonicalization properties of `wormspec/1`.
//!
//! The spec language makes two guarantees this suite pins:
//!
//! 1. **`parse(print(ast)) == ast`** — the canonical printer loses
//!    nothing the AST keeps, and printing is idempotent (the canonical
//!    form is a fixed point).
//! 2. **Hash stability** — the content hash is taken over the
//!    canonical text, so comments, whitespace, key order, and
//!    spelled-out defaults never change it; different scenarios do.
//!
//! Random specs come from `wormserve::specgen` (seeded, deterministic)
//! so the properties range over every topology family and section the
//! generator can emit.

use cyclic_wormhole::serve::specgen::generate;
use proptest::prelude::*;

/// Deterministically sprinkle comments, blank lines, and trailing
/// whitespace over a source without touching its meaning.
fn perturb(source: &str, seed: u64) -> String {
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64: cheap, deterministic, good enough to vary sites.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut out = String::new();
    for line in source.lines() {
        match next() % 4 {
            0 => out.push_str("# perturbation comment\n"),
            1 => out.push('\n'),
            _ => {}
        }
        out.push_str(line);
        if next() % 3 == 0 {
            out.push_str("   ");
        }
        out.push_str(if next() % 5 == 0 {
            "  # trailing note\n"
        } else {
            "\n"
        });
    }
    out
}

proptest! {
    #[test]
    fn parse_print_is_identity_and_idempotent(seed in 0u64..500) {
        let source = generate(seed);
        let ast = wormspec::parse(&source).expect("generated specs parse");
        let printed = wormspec::to_spec(&ast);
        let reparsed = wormspec::parse(&printed).expect("canonical text parses");
        prop_assert_eq!(&reparsed, &ast, "parse(print(ast)) != ast for seed {}", seed);
        prop_assert_eq!(
            wormspec::to_spec(&reparsed),
            printed,
            "printing is not idempotent for seed {}",
            seed
        );
    }

    #[test]
    fn hash_ignores_comments_and_whitespace(seed in 0u64..500, noise in 0u64..1000) {
        let source = generate(seed);
        let ast = wormspec::parse(&source).expect("generated specs parse");
        let perturbed = perturb(&source, noise);
        let perturbed_ast = wormspec::parse(&perturbed)
            .unwrap_or_else(|e| panic!("{}", e.render(&perturbed, "perturbed")));
        prop_assert_eq!(
            wormspec::content_hash_hex(&ast),
            wormspec::content_hash_hex(&perturbed_ast),
            "hash moved under perturbation (seed {}, noise {})",
            seed,
            noise
        );
    }
}

#[test]
fn hash_ignores_key_order_and_spelled_defaults() {
    let variants = [
        // Canonical-ish ordering.
        "wormspec/1\ntopology { kind = ring nodes = 4 }\nrouting { engine = clockwise_ring }\n",
        // Keys reordered.
        "wormspec/1\ntopology { nodes = 4 kind = ring }\nrouting { engine = clockwise_ring }\n",
        // Heavy reformatting.
        "wormspec/1\n\n\ntopology {\n\n  nodes = 4\n  kind = ring\n}\nrouting {\n  engine = clockwise_ring\n}\n",
    ];
    let hashes: Vec<String> = variants
        .iter()
        .map(|v| wormspec::content_hash_hex(&wormspec::parse(v).unwrap()))
        .collect();
    assert_eq!(hashes[0], hashes[1]);
    assert_eq!(hashes[0], hashes[2]);

    // Spelled-out channel defaults hash identically to omitted ones.
    let explicit = "wormspec/1\ntopology { kind = explicit node \"a\" node \"b\" channel \"a\" -> \"b\" node \"c\" channel \"b\" -> \"c\" channel \"c\" -> \"a\" }\nrouting { engine = shortest_path }\n";
    let spelled = "wormspec/1\ntopology { kind = explicit node \"a\" node \"b\" channel \"a\" -> \"b\" lane 0 cap 1 flits node \"c\" channel \"b\" -> \"c\" channel \"c\" -> \"a\" }\nrouting { engine = shortest_path }\n";
    assert_eq!(
        wormspec::content_hash_hex(&wormspec::parse(explicit).unwrap()),
        wormspec::content_hash_hex(&wormspec::parse(spelled).unwrap()),
    );
}

#[test]
fn different_scenarios_hash_differently() {
    let a = wormspec::parse(
        "wormspec/1\ntopology { kind = ring nodes = 4 }\nrouting { engine = clockwise_ring }\n",
    )
    .unwrap();
    let b = wormspec::parse(
        "wormspec/1\ntopology { kind = ring nodes = 5 }\nrouting { engine = clockwise_ring }\n",
    )
    .unwrap();
    let c = wormspec::parse("wormspec/1\ntopology { kind = ring nodes = 4 vcs = 2 lanes }\nrouting { engine = dateline_ring }\n").unwrap();
    let (ha, hb, hc) = (
        wormspec::content_hash_hex(&a),
        wormspec::content_hash_hex(&b),
        wormspec::content_hash_hex(&c),
    );
    assert_ne!(ha, hb);
    assert_ne!(ha, hc);
    assert_ne!(hb, hc);
}
