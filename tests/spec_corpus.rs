//! The committed `.wspec` corpus under `corpus/` must be *equivalent*
//! to the hard-coded lint-corpus constructions: building each spec
//! through the resolution seams and linting the result must reproduce
//! the committed `LINT_corpus.json` golden **byte for byte**.
//!
//! The corpus has two kinds of files:
//!
//! - **hand-written** named-topology specs (`mesh_3x3_dor`,
//!   `ring4_clockwise`, ...) — maintained by hand, never regenerated;
//! - **machine-lifted** explicit specs (`fig1`, `fig2`, `fig3_*`,
//!   `g1`..`g5`) — produced by `wormserve::lift` from the paper
//!   constructions. To regenerate after an intentional change:
//!
//!   ```text
//!   UPDATE_SPECS=1 cargo test --test spec_corpus
//!   ```
//!
//!   then commit the updated files together with the change.

use std::collections::BTreeSet;
use std::path::PathBuf;

use wormbench::lintcorpus::corpus;
use wormlint::{reports_to_json, LintConfig, LintReport, Registry};
use wormnet::spec::build_topology;
use wormroute::spec::table_from_spec;

/// The machine-lifted subset (everything else is hand-written).
const LIFTED: &[&str] = &[
    "fig1", "fig2", "fig3_a", "fig3_b", "fig3_c", "fig3_d", "fig3_e", "fig3_f", "g1", "g2", "g3",
    "g4", "g5",
];

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn spec_path(name: &str) -> PathBuf {
    corpus_dir().join(format!("{name}.wspec"))
}

fn maybe_regenerate() {
    if std::env::var_os("UPDATE_SPECS").is_none_or(|v| v != "1") {
        return;
    }
    for target in corpus() {
        if !LIFTED.contains(&target.name.as_str()) {
            continue;
        }
        let spec = wormserve::lift(&target.net, &target.table);
        // `to_spec` emits the header itself; splice the comment banner
        // in between so the file still has exactly one header line.
        let text = format!(
            "wormspec/1\n\n# Machine-lifted from the `{}` lint-corpus construction.\n# Regenerate with: UPDATE_SPECS=1 cargo test --test spec_corpus\n{}",
            target.name,
            wormspec::to_spec(&spec)
                .strip_prefix("wormspec/1\n")
                .expect("canonical text starts with the header")
        );
        std::fs::write(spec_path(&target.name), text).expect("write lifted spec");
    }
}

/// Build a committed spec through the resolution seams and lint it.
fn lint_from_wspec(name: &str, registry: &Registry, config: &LintConfig) -> LintReport {
    let path = spec_path(name);
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing {} ({e}); lifted specs regenerate with UPDATE_SPECS=1 cargo test --test spec_corpus",
            path.display()
        )
    });
    let spec = wormspec::parse(&source)
        .unwrap_or_else(|e| panic!("{}", e.render(&source, &path.display().to_string())));
    let topo = build_topology(&spec.topology)
        .unwrap_or_else(|e| panic!("{}", e.render(&source, &path.display().to_string())));
    let table = table_from_spec(&spec.routing, &topo)
        .unwrap_or_else(|e| panic!("{}", e.render(&source, &path.display().to_string())));
    registry.run(topo.network(), &table, config)
}

#[test]
fn wspec_corpus_reproduces_the_golden_lint_report() {
    maybe_regenerate();
    let registry = Registry::with_default_lints();
    let config = LintConfig::default();
    let targets = corpus();
    let reports: Vec<(String, LintReport)> = targets
        .iter()
        .map(|t| (t.name.clone(), lint_from_wspec(&t.name, &registry, &config)))
        .collect();
    let named: Vec<(&str, &LintReport)> = reports.iter().map(|(n, r)| (n.as_str(), r)).collect();
    let actual = reports_to_json(&named);
    let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("LINT_corpus.json");
    let golden = std::fs::read_to_string(&golden_path).expect("committed golden");
    assert_eq!(
        golden, actual,
        "the .wspec corpus no longer reproduces LINT_corpus.json — the \
         spec-driven build diverged from the hard-coded constructions"
    );
}

#[test]
fn every_target_has_a_spec_and_no_spec_is_stray() {
    let expected: BTreeSet<String> = corpus().iter().map(|t| t.name.clone()).collect();
    let committed: BTreeSet<String> = std::fs::read_dir(corpus_dir())
        .expect("corpus/ exists")
        .filter_map(Result::ok)
        .filter_map(|e| {
            let path = e.path();
            (path.extension().and_then(|x| x.to_str()) == Some("wspec"))
                .then(|| path.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    assert_eq!(expected, committed);
}

#[test]
fn committed_specs_are_round_trip_stable() {
    for target in corpus() {
        let source = std::fs::read_to_string(spec_path(&target.name)).expect("spec file");
        let spec = wormspec::parse(&source).expect("committed spec parses");
        let printed = wormspec::to_spec(&spec);
        let reparsed = wormspec::parse(&printed).expect("canonical text parses");
        assert_eq!(
            reparsed, spec,
            "{}: parse∘print must be identity",
            target.name
        );
        assert_eq!(
            wormspec::content_hash_hex(&spec),
            wormspec::content_hash_hex(&reparsed),
            "{}: hash must survive canonicalization",
            target.name
        );
    }
}

#[test]
fn lifted_specs_match_a_fresh_lift() {
    for target in corpus() {
        if !LIFTED.contains(&target.name.as_str()) {
            continue;
        }
        let source = std::fs::read_to_string(spec_path(&target.name)).expect("spec file");
        let committed = wormspec::parse(&source).expect("committed spec parses");
        let fresh = wormserve::lift(&target.net, &target.table);
        assert_eq!(
            committed, fresh,
            "{}: committed lifted spec drifted from the construction; \
             regenerate with UPDATE_SPECS=1 cargo test --test spec_corpus",
            target.name
        );
    }
}
