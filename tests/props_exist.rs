//! Property tests for the existence engine's two-sided certificates
//! on random topologies, plus degraded-topology agreement with
//! `wormfault::reverify`.
//!
//! The soundness contract under test:
//!
//! * **exists** ⇒ the witness materialises into a routing of *every*
//!   reachable demand whose CDG is acyclic (the classic Dally–Seitz
//!   certificate re-checks it with no reference to the engine);
//! * **impossible** ⇒ the obstruction re-validates in isolation
//!   ([`wormexist::check_obstruction`]) and every random routing
//!   proposed on the fabric has a cyclic CDG;
//! * **degraded** ⇒ [`wormfault::reverify`]'s `routability` taxonomy
//!   is exactly the composition of the degraded classifier verdict and
//!   the masked existence verdict — fault scenarios can tell "this
//!   routing broke but another exists" from "no routing can exist".

use cyclic_wormhole::cdg::Cdg;
use cyclic_wormhole::core::classify::ClassifyOptions;
use cyclic_wormhole::fault::{reverify, FaultPlan, FaultRoutability};
use cyclic_wormhole::net::{ChannelId, Network, NodeId};
use cyclic_wormhole::route::algorithms::random_table;
use proptest::prelude::*;
use rand::SeedableRng;
use wormexist::{
    analyze, analyze_masked, check_obstruction, witness_table, ExistOptions, ExistenceVerdict,
};

/// Build a multigraph from a node count and a raw edge list (entries
/// taken mod `n`; self-loops dropped; duplicate arcs become extra
/// lanes, exercising the multichannel path of the engine).
fn build_net(n: usize, raw: &[(usize, usize)]) -> Network {
    let mut net = Network::new();
    let nodes = net.add_nodes("v", n);
    let mut lane = std::collections::HashMap::new();
    for &(u, v) in raw {
        let (u, v) = (u % n, v % n);
        if u == v {
            continue;
        }
        let vc = lane.entry((u, v)).or_insert(0u8);
        net.add_channel_vc(nodes[u], nodes[v], *vc);
        *vc = vc.wrapping_add(1);
    }
    net
}

/// The engine's two-sided soundness on an arbitrary fabric.
fn assert_two_sided_sound(net: &Network, seed: u64) {
    let report = analyze(net, &ExistOptions::default());
    match report.verdict {
        ExistenceVerdict::Exists => {
            let witness = report.witness.as_ref().expect("exists carries a witness");
            let table = witness_table(net, witness).expect("witness materialises");
            assert_eq!(table.len(), report.demands, "witness covers every demand");
            assert!(
                Cdg::build(net, &table).is_acyclic(),
                "witness CDG must be acyclic"
            );
            for (&(src, dst), path) in table.iter() {
                assert!(path.is_node_simple(net));
                assert_eq!(path.src(net), src);
                assert_eq!(path.dst(net), dst);
            }
        }
        ExistenceVerdict::Impossible => {
            let obs = report
                .obstruction
                .as_ref()
                .expect("impossible carries an obstruction");
            assert!(
                check_obstruction(net, &[], obs),
                "obstruction re-validates in isolation"
            );
            // No random routing may contradict the verdict. Partial
            // tables (disconnected fabrics) prove nothing and are
            // skipped; an acyclic *total* routing would be a bug.
            for s in 0..4u64 {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ s);
                let Ok(table) = random_table(net, &mut rng, (s % 2) as usize) else {
                    continue;
                };
                if !table.is_total(net) {
                    continue;
                }
                assert!(
                    !Cdg::build(net, &table).is_acyclic(),
                    "random total routing contradicts an impossible verdict"
                );
            }
        }
        ExistenceVerdict::Unknown => {
            // Finite budgets: no claim to check, but the report must
            // then carry neither certificate.
            assert!(report.witness.is_none() && report.obstruction.is_none());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Two-sided certificate soundness on uniformly random fabrics.
    #[test]
    fn random_fabrics_get_sound_certificates(
        n in 2usize..9,
        raw in prop::collection::vec((0usize..9, 0usize..9), 1..40),
        seed in 0u64..1u64 << 32,
    ) {
        let net = build_net(n, &raw);
        assert_two_sided_sound(&net, seed);
    }

    /// Masked analysis agrees with analysing the surviving fabric:
    /// killing channels and re-running must match the verdict of the
    /// network with those channels structurally absent.
    #[test]
    fn masked_analysis_matches_the_amputated_fabric(
        n in 2usize..8,
        raw in prop::collection::vec((0usize..8, 0usize..8), 2..30),
        kill in prop::collection::vec(any::<bool>(), 2..30),
    ) {
        let net = build_net(n, &raw);
        let down: Vec<ChannelId> = net
            .channels()
            .filter(|c| *kill.get(c.id().index()).unwrap_or(&false))
            .map(|c| c.id())
            .collect();
        let masked = analyze_masked(&net, &down, &ExistOptions::default());

        // Rebuild the fabric without the down channels (same node set,
        // same channel multiplicities otherwise).
        let mut amputated = Network::new();
        let nodes = amputated.add_nodes("v", n);
        for c in net.channels() {
            if !down.contains(&c.id()) {
                amputated.add_channel_vc(
                    nodes[c.src().index()],
                    nodes[c.dst().index()],
                    c.vc(),
                );
            }
        }
        let direct = analyze(&amputated, &ExistOptions::default());
        prop_assert_eq!(masked.verdict, direct.verdict);
        prop_assert_eq!(masked.demands, direct.demands);
        prop_assert_eq!(masked.sccs, direct.sccs);
    }

    /// `wormfault::reverify`'s routability taxonomy is exactly the
    /// composition of its two inputs, and its embedded existence
    /// report agrees with a standalone masked analysis.
    #[test]
    fn reverify_routability_agrees_with_masked_existence(
        n in 3usize..7,
        raw in prop::collection::vec((0usize..7, 0usize..7), 4..24),
        detour in 0usize..2,
        table_seed in 0u64..1u64 << 32,
        kill in prop::collection::vec(any::<bool>(), 0..24),
    ) {
        let net = build_net(n, &raw);
        let mut rng = rand::rngs::StdRng::seed_from_u64(table_seed);
        let Ok(table) = random_table(&net, &mut rng, detour) else {
            // Disconnected fabric: no total routing to re-verify.
            return Ok(());
        };
        let mut plan = FaultPlan::new();
        let mut down = Vec::new();
        for c in net.channels() {
            if *kill.get(c.id().index()).unwrap_or(&false) {
                plan = plan.channel_down(c.id(), 1);
                down.push(c.id());
            }
        }
        let r = reverify(&net, &table, &plan, &ClassifyOptions::default());
        let standalone = analyze_masked(&net, &down, &ExistOptions::default());
        prop_assert_eq!(r.degraded.existence.verdict, standalone.verdict);
        prop_assert_eq!(&r.degraded.existence.down, &standalone.down);

        let expect = if r.degraded.is_deadlock_free() == Some(true) {
            FaultRoutability::RoutingSurvives
        } else {
            match standalone.verdict {
                ExistenceVerdict::Exists => FaultRoutability::ReroutableDamage,
                ExistenceVerdict::Impossible => FaultRoutability::FabricUnroutable,
                ExistenceVerdict::Unknown => FaultRoutability::Unknown,
            }
        };
        prop_assert_eq!(r.routability, expect);
    }
}

#[test]
fn fabric_unroutable_is_reachable_in_the_taxonomy() {
    // Directed triangle, single lane: deadlockable table, impossible
    // fabric — the case the taxonomy exists to name.
    let mut net = Network::new();
    let nodes = net.add_nodes("v", 3);
    for i in 0..3 {
        net.add_channel(nodes[i], nodes[(i + 1) % 3]);
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let table = random_table(&net, &mut rng, 0).expect("triangle routes");
    let r = reverify(&net, &table, &FaultPlan::new(), &ClassifyOptions::default());
    assert_eq!(r.routability, FaultRoutability::FabricUnroutable);
    assert_eq!(
        r.degraded.existence.verdict,
        ExistenceVerdict::Impossible,
        "single-lane triangle admits no deadlock-free routing"
    );
}

#[test]
fn witness_paths_ascend_the_schedule() {
    // The structural reason witness CDGs are acyclic: every path's
    // channels appear in strictly increasing schedule position. Check
    // it explicitly on one nontrivial fabric (two-lane ring).
    let mut net = Network::new();
    let nodes = net.add_nodes("r", 5);
    for i in 0..5 {
        net.add_channel_vc(nodes[i], nodes[(i + 1) % 5], 0);
        net.add_channel_vc(nodes[i], nodes[(i + 1) % 5], 1);
    }
    let report = analyze(&net, &ExistOptions::default());
    assert_eq!(report.verdict, ExistenceVerdict::Exists);
    let witness = report.witness.unwrap();
    let pos: std::collections::HashMap<ChannelId, usize> = witness
        .order
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, i))
        .collect();
    let table = witness_table(&net, &witness).unwrap();
    let all: Vec<(NodeId, NodeId)> = table.iter().map(|(&p, _)| p).collect();
    assert_eq!(all.len(), 20, "5-node ring has 20 ordered pairs");
    for (_, path) in table.iter() {
        let positions: Vec<usize> = path.channels().iter().map(|c| pos[c]).collect();
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "witness path must ascend the schedule: {positions:?}"
        );
    }
}
