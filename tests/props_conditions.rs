//! Randomized validation of the Theorem 5 checker: on the calibrated
//! regime (three adjacent sharers, reach 1, minimum lengths, parking
//! conditions 4–6 satisfied) the eight-condition verdict must agree
//! with exhaustive reachability search on every randomly generated
//! instance.
//!
//! The parking regime (conditions 4–6 violated) is excluded here
//! because realizing those deadlocks requires the duplicate-instance
//! adversary the paper's own proofs invoke — covered scenario-by-
//! scenario in `worm-core`'s Figure 3 suite instead.

use cyclic_wormhole::core::conditions::eight_conditions;
use cyclic_wormhole::core::family::{CycleMessageSpec, SharedCycleSpec};
use cyclic_wormhole::search::{explore, SearchConfig};
use cyclic_wormhole::sim::{MessageSpec, Sim};
use proptest::prelude::*;

/// Generate a three-sharer spec with distinct access distances and
/// parking-free geometry (`a_i > d_i` for all three).
fn arb_three_sharers() -> impl Strategy<Value = SharedCycleSpec> {
    // d values distinct in 1..=5; g values sized to keep a > d.
    (
        prop::sample::subsequence((1usize..=5).collect::<Vec<_>>(), 3),
        prop::collection::vec(0usize..3, 3),
        // permutation selector for cycle order
        0usize..6,
    )
        .prop_map(|(mut ds, g_extra, perm)| {
            ds.sort_unstable();
            // ds[0] < ds[1] < ds[2]; assign to z, y, x.
            let mk = |d: usize, extra: usize| {
                // g >= d ensures a = g + 1 > d (conditions 4-6 hold).
                CycleMessageSpec::shared(d, d + extra + 1, 1)
            };
            let z = mk(ds[0], g_extra[0]);
            let y = mk(ds[1], g_extra[1]);
            let x = mk(ds[2], g_extra[2]);
            // Arrange in one of the 6 cyclic orders (cyclic rotations
            // are equivalent; the two distinct circular orders are
            // [x,z,y] and [x,y,z], but include all for robustness).
            let arrangement = match perm {
                0 => vec![x, z, y],
                1 => vec![x, y, z],
                2 => vec![z, x, y],
                3 => vec![z, y, x],
                4 => vec![y, x, z],
                _ => vec![y, z, x],
            };
            SharedCycleSpec {
                messages: arrangement,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn checker_agrees_with_search_on_parking_free_instances(
        spec in arb_three_sharers(),
    ) {
        let c = spec.build();
        let cycle = c.cycle();
        let candidate = c.canonical_candidate();
        let analysis =
            cyclic_wormhole::cdg::sharing::analyze(&c.net, &c.table, &cycle, &candidate);
        let shared = analysis
            .outside()
            .find(|s| s.channel == c.cs)
            .expect("cs shared outside");
        let ec = eight_conditions(&c.net, &c.table, &cycle, &candidate, shared)
            .expect("three sharers");
        // This generator keeps the parking conditions satisfied.
        prop_assert!(ec.conditions[3], "condition 4 must hold by construction");
        prop_assert!(ec.conditions[4], "condition 5 must hold by construction");
        prop_assert!(ec.conditions[5], "condition 6 must hold by construction");

        // Ground truth: exhaustive search at adversarial minimum
        // lengths.
        let specs: Vec<MessageSpec> = c
            .built
            .iter()
            .map(|b| MessageSpec::new(b.pair.0, b.pair.1, b.spec.g))
            .collect();
        let sim = Sim::new(&c.net, &c.table, specs, Some(1)).expect("routed");
        let result = explore(&sim, &SearchConfig::default());
        let search_unreachable = result.verdict.is_free();

        prop_assert_eq!(
            ec.unreachable(),
            search_unreachable,
            "checker vs search mismatch: failing = {:?}, spec = {:?}",
            ec.failing(),
            c.built.iter().map(|b| (b.spec.d, b.spec.g)).collect::<Vec<_>>()
        );
    }
}
