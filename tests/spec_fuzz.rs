//! Seeded differential-fuzz smoke: `wormserve::specgen` generates
//! valid specs whose three independent verdict sources — the lint
//! registry, the theorem classifier, and the exhaustive search — must
//! never contradict each other.
//!
//! The sweep is fixed-seed (0..N) so CI failures reproduce exactly
//! with `wormserve --fuzz N --seed 0`; a failure message carries the
//! offending seed and the generated source.

use cyclic_wormhole::serve::specgen::{differential, generate};

const SWEEP: u64 = 24;

#[test]
fn generated_specs_compile_and_round_trip() {
    for seed in 0..SWEEP {
        let source = generate(seed);
        let ast = wormspec::parse(&source)
            .unwrap_or_else(|e| panic!("seed {seed}: {}", e.render(&source, "specgen")));
        let printed = wormspec::to_spec(&ast);
        let reparsed = wormspec::parse(&printed).expect("canonical parses");
        assert_eq!(reparsed, ast, "seed {seed}: round trip failed");
    }
}

#[test]
fn lint_classifier_and_search_never_contradict() {
    let mut checked_search = 0;
    for seed in 0..SWEEP {
        let report = differential(seed);
        assert!(
            report.failures.is_empty(),
            "seed {seed} disagreed: {:?}\n--- generated spec ---\n{}",
            report.failures,
            report.source
        );
        if report.search.is_some() {
            checked_search += 1;
        }
    }
    // The sweep must actually exercise the third oracle sometimes,
    // not just skip every search for being too large.
    assert!(
        checked_search > 0,
        "no seed in 0..{SWEEP} produced a searchable scenario"
    );
}
