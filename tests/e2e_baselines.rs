//! Baseline algorithms end-to-end: Dally–Seitz-safe algorithms never
//! deadlock under any traffic we throw at them; the known-deadlockable
//! ring fails in every analysis layer consistently.

use cyclic_wormhole::cdg::Cdg;
use cyclic_wormhole::core::classify::{classify_algorithm, AlgorithmVerdict, ClassifyOptions};
use cyclic_wormhole::net::topology::{ring_unidirectional, ring_with_vcs, Hypercube, Mesh, Torus};
use cyclic_wormhole::route::algorithms::{
    clockwise_ring, dateline_ring, dateline_torus, dimension_order, ecube,
};
use cyclic_wormhole::route::TableRouting;
use cyclic_wormhole::sim::runner::{ArbitrationPolicy, Outcome, Runner};
use cyclic_wormhole::sim::{traffic, Sim};
use rand::SeedableRng;

fn assert_never_deadlocks(net: &cyclic_wormhole::net::Network, table: &TableRouting, seed: u64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let specs = traffic::uniform_random(net, table, &mut rng, 0.15, 120, (2, 8));
    assert!(!specs.is_empty());
    // One-flit buffers, adversarial arbitration: the harshest setting.
    let sim = Sim::new(net, table, specs, Some(1)).expect("routed");
    let mut runner = Runner::new(&sim, ArbitrationPolicy::Adversarial { favored: vec![] });
    let outcome = runner.run(2_000_000);
    assert!(
        matches!(outcome, Outcome::Delivered { .. }),
        "expected delivery, got {outcome:?}"
    );
}

#[test]
fn xy_mesh_survives_adversarial_traffic() {
    let mesh = Mesh::new(&[5, 5]);
    let table = dimension_order(&mesh).unwrap();
    assert!(Cdg::build(mesh.network(), &table).is_acyclic());
    assert_never_deadlocks(mesh.network(), &table, 11);
}

#[test]
fn ecube_survives_adversarial_traffic() {
    let cube = Hypercube::new(4);
    let table = ecube(&cube).unwrap();
    assert!(Cdg::build(cube.network(), &table).is_acyclic());
    assert_never_deadlocks(cube.network(), &table, 12);
}

#[test]
fn dateline_ring_survives_adversarial_traffic() {
    let (net, nodes) = ring_with_vcs(7, 2);
    let table = dateline_ring(&net, &nodes).unwrap();
    assert!(Cdg::build(&net, &table).is_acyclic());
    assert_never_deadlocks(&net, &table, 13);
}

#[test]
fn dateline_torus_survives_adversarial_traffic() {
    let torus = Torus::new(&[4, 4], 2);
    let table = dateline_torus(&torus).unwrap();
    assert!(Cdg::build(torus.network(), &table).is_acyclic());
    assert_never_deadlocks(torus.network(), &table, 14);
}

/// The clockwise ring fails consistently across all layers: cyclic
/// CDG, classified deadlockable, and actually deadlocks in simulation.
#[test]
fn clockwise_ring_fails_everywhere() {
    let (net, nodes) = ring_unidirectional(5);
    let table = clockwise_ring(&net, &nodes).unwrap();
    assert!(!Cdg::build(&net, &table).is_acyclic());
    let verdict = classify_algorithm(&net, &table, &ClassifyOptions::default());
    assert!(matches!(verdict, AlgorithmVerdict::Deadlockable { .. }));

    // Saturating ring traffic under adversarial arbitration must
    // actually deadlock.
    let specs: Vec<_> = (0..5)
        .map(|i| cyclic_wormhole::sim::MessageSpec::new(nodes[i], nodes[(i + 3) % 5], 6))
        .collect();
    let sim = Sim::new(&net, &table, specs, Some(1)).unwrap();
    let mut runner = Runner::new(&sim, ArbitrationPolicy::Adversarial { favored: vec![] });
    assert!(runner.run(10_000).is_deadlock());
}

/// Torus without dateline lanes is deadlockable (the reason the lanes
/// exist), and the classifier proves it.
#[test]
fn single_lane_torus_is_deadlockable() {
    use cyclic_wormhole::net::NodeId;
    let torus = Torus::new(&[4], 1);
    let net = torus.network();
    let table = TableRouting::from_node_paths(net, |s, d| {
        let k = 4;
        let (si, di) = (s.index(), d.index());
        let fwd = (di + k - si) % k;
        let step: isize = if fwd <= k - fwd { 1 } else { -1 };
        let mut walk = vec![s];
        let mut i = si as isize;
        while i as usize != di {
            i = (i + step).rem_euclid(k as isize);
            walk.push(NodeId::from_index(i as usize));
        }
        Some(walk)
    })
    .unwrap();
    let verdict = classify_algorithm(net, &table, &ClassifyOptions::default());
    assert!(
        matches!(verdict, AlgorithmVerdict::Deadlockable { .. }),
        "{verdict:?}"
    );
}
