//! Clock-skew end-to-end tests (Section 6's physical claim): the
//! paper's constructions tolerate bounded per-router skew, and skew
//! composes correctly with the rest of the machinery.

use cyclic_wormhole::core::paper::{fig1, generalized};
use cyclic_wormhole::net::topology::Mesh;
use cyclic_wormhole::route::algorithms::dimension_order;
use cyclic_wormhole::sim::runner::{ArbitrationPolicy, Outcome, Runner};
use cyclic_wormhole::sim::skew::SkewModel;
use cyclic_wormhole::sim::{MessageSpec, Sim};
use rand::SeedableRng;

#[test]
fn fig1_tolerates_random_bounded_skew() {
    let c = fig1::cyclic_dependency();
    for seed in 0..10u64 {
        let sim = Sim::new(&c.net, &c.table, c.message_specs(), Some(1)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let skew = SkewModel::uniform_random(&c.net, &mut rng, 4);
        let mut runner =
            Runner::new(&sim, ArbitrationPolicy::Adversarial { favored: vec![] }).with_skew(skew);
        let outcome = runner.run(50_000);
        assert!(
            matches!(outcome, Outcome::Delivered { .. }),
            "seed {seed}: {outcome:?}"
        );
    }
}

#[test]
fn generalized_family_tolerates_tight_skew() {
    for k in 1..=2 {
        let c = generalized::generalized(k);
        let sim = Sim::new(
            &c.net,
            &c.table,
            generalized::minimum_length_specs(&c),
            Some(1),
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        // Period 3 is the tightest *live* skew: with period 2, two
        // adjacent routers pausing on alternating phases never share
        // an active cycle and the link starves (a liveness artifact of
        // duty-cycled routers, not a deadlock). At period >= 3 any two
        // routers are jointly active at least one cycle in three.
        let skew = SkewModel::uniform_random(&c.net, &mut rng, 3);
        let mut runner =
            Runner::new(&sim, ArbitrationPolicy::Adversarial { favored: vec![] }).with_skew(skew);
        let outcome = runner.run(100_000);
        assert!(
            matches!(outcome, Outcome::Delivered { .. }),
            "G({k}): {outcome:?}"
        );
    }
}

#[test]
fn skew_slows_but_does_not_break_mesh_traffic() {
    let mesh = Mesh::new(&[4, 4]);
    let table = dimension_order(&mesh).unwrap();
    let specs: Vec<MessageSpec> = mesh
        .network()
        .nodes()
        .filter_map(|n| {
            let c = mesh.coords(n);
            let d = [3 - c[0], 3 - c[1]];
            (c != d).then(|| MessageSpec::new(n, mesh.node(&d), 4))
        })
        .collect();

    let sim = Sim::new(mesh.network(), &table, specs, Some(1)).unwrap();
    let baseline = {
        let mut r = Runner::new(&sim, ArbitrationPolicy::OldestFirst);
        match r.run(100_000) {
            Outcome::Delivered { cycles } => cycles,
            o => panic!("{o:?}"),
        }
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let skew = SkewModel::uniform_random(mesh.network(), &mut rng, 3);
    let mut r = Runner::new(&sim, ArbitrationPolicy::OldestFirst).with_skew(skew);
    match r.run(100_000) {
        Outcome::Delivered { cycles } => {
            assert!(cycles > baseline, "skew must cost cycles");
            // One pause in three is at most a ~2x slowdown plus
            // second-order blocking effects; be generous.
            assert!(cycles < baseline * 4, "{cycles} vs {baseline}");
        }
        o => panic!("{o:?}"),
    }
}

#[test]
fn single_paused_router_delays_exactly_its_traffic() {
    // A message that avoids the paused router is unaffected.
    let mesh = Mesh::new(&[3, 1]);
    let table = dimension_order(&mesh).unwrap();
    let a = mesh.node(&[0, 0]);
    let b = mesh.node(&[1, 0]);
    let c = mesh.node(&[2, 0]);
    let specs = vec![MessageSpec::new(a, b, 2), MessageSpec::new(c, b, 2)];
    let sim = Sim::new(mesh.network(), &table, specs, Some(1)).unwrap();

    // Pause node a's queues: the c -> b message never touches them.
    let skew = SkewModel::none(mesh.network()).with_pause(a, 2, 0);
    let mut r = Runner::new(&sim, ArbitrationPolicy::OldestFirst).with_skew(skew);
    assert!(matches!(r.run(1_000), Outcome::Delivered { .. }));
    // Queues at `a` host only incoming channels; neither message
    // enters them, so latencies match the unskewed run.
    let lat_skewed: Vec<_> = (0..2)
        .map(|i| {
            r.stats()
                .latency(cyclic_wormhole::sim::MessageId::from_index(i))
        })
        .collect();
    let mut r2 = Runner::new(&sim, ArbitrationPolicy::OldestFirst);
    assert!(matches!(r2.run(1_000), Outcome::Delivered { .. }));
    let lat_plain: Vec<_> = (0..2)
        .map(|i| {
            r2.stats()
                .latency(cyclic_wormhole::sim::MessageId::from_index(i))
        })
        .collect();
    assert_eq!(lat_skewed, lat_plain);
}
