//! Three-way cross-check of the existence engine on the full 20-target
//! corpus and on ≥100 fuzzed specs: the Mendlovic–Matias verdict must
//! agree with the classifier + exhaustive-search pipeline from both
//! sides.
//!
//! * **exists** ⇒ the witness schedule materialises into a total
//!   routing of the reachable demands which the *existing* pipeline
//!   re-certifies deadlock-free: acyclic CDG, `classify_algorithm` =
//!   `DeadlockFreeAcyclic`, and `wormlint` = `free-acyclic`.
//! * **impossible** ⇒ the obstruction witness is checkable in
//!   isolation ([`wormexist::check_obstruction`]) *and* the verdict is
//!   refuted empirically: every total routing the differential fuzzer
//!   proposes on that fabric has a cyclic CDG, and on the corpus
//!   instance (`ring4_clockwise`) the exhaustive search exhibits a
//!   reachable deadlock in it.
//!
//! The fuzzed sweep reuses `wormserve::specgen` (the same seeds the
//! `spec-gate` fuzzes) so disagreements reproduce exactly by seed.

use cyclic_wormhole::cdg::Cdg;
use cyclic_wormhole::core::classify::{classify_algorithm, AlgorithmVerdict, ClassifyOptions};
use cyclic_wormhole::net::Network;
use cyclic_wormhole::route::algorithms::random_table;
use cyclic_wormhole::search::{explore, SearchConfig};
use cyclic_wormhole::serve::compile;
use cyclic_wormhole::serve::specgen::generate;
use cyclic_wormhole::serve::verdict::MAX_SEARCH_MESSAGES;
use cyclic_wormhole::sim::{MessageSpec, Sim};
use rand::SeedableRng;
use wormbench::lintcorpus::corpus;
use wormexist::{analyze, check_obstruction, witness_table, ExistOptions, ExistenceVerdict};
use wormlint::{LintConfig, Registry, StaticVerdict};

/// Seeds swept in the fuzzed cross-check (acceptance floor: ≥100).
const FUZZ_SWEEP: u64 = 120;

/// Random routings proposed per `impossible` fabric.
const REFUTATION_SAMPLES: u64 = 16;

/// An `exists` verdict is only as good as its witness: materialise
/// the schedule into a routing table and push it through the whole
/// pre-existing pipeline.
fn assert_witness_recertified(name: &str, net: &Network) {
    let report = analyze(net, &ExistOptions::default());
    assert_eq!(
        report.verdict,
        ExistenceVerdict::Exists,
        "{name}: expected exists"
    );
    let witness = report.witness.as_ref().expect("exists carries a witness");
    let table = witness_table(net, witness).unwrap_or_else(|e| {
        panic!("{name}: witness failed to materialise: {e}");
    });
    assert_eq!(
        table.len(),
        report.demands,
        "{name}: witness routing must cover every reachable demand"
    );
    let cdg = Cdg::build(net, &table);
    assert!(cdg.is_acyclic(), "{name}: witness CDG must be acyclic");
    let verdict = classify_algorithm(net, &table, &ClassifyOptions::default());
    assert!(
        matches!(verdict, AlgorithmVerdict::DeadlockFreeAcyclic { .. }),
        "{name}: classifier rejected the witness: {verdict:?}"
    );
    let lint = Registry::with_default_lints().run(net, &table, &LintConfig::default());
    assert_eq!(
        lint.verdict,
        StaticVerdict::FreeAcyclic,
        "{name}: wormlint rejected the witness"
    );
}

/// An `impossible` verdict must survive isolation checking *and*
/// empirical refutation: every fuzzer-proposed total routing on the
/// fabric has a cyclic CDG (an acyclic one would be a counterexample
/// to the obstruction).
fn assert_obstruction_refutes_fuzzed_routings(name: &str, net: &Network, seed_base: u64) {
    let report = analyze(net, &ExistOptions::default());
    assert_eq!(
        report.verdict,
        ExistenceVerdict::Impossible,
        "{name}: expected impossible"
    );
    let obs = report
        .obstruction
        .as_ref()
        .expect("impossible carries an obstruction");
    assert!(
        check_obstruction(net, &[], obs),
        "{name}: obstruction failed its isolated re-check"
    );
    for s in 0..REFUTATION_SAMPLES {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed_base ^ s);
        let detour = (s % 3) as usize;
        let Ok(table) = random_table(net, &mut rng, detour) else {
            continue;
        };
        if !table.is_total(net) {
            continue;
        }
        let cdg = Cdg::build(net, &table);
        assert!(
            !cdg.is_acyclic(),
            "{name}: fuzzer routing (seed {s}, detour {detour}) has an acyclic CDG — \
             counterexample to the obstruction"
        );
    }
}

#[test]
fn corpus_existence_verdicts_are_recertified_by_the_pipeline() {
    let mut exists = 0;
    let mut impossible = 0;
    for t in corpus() {
        let report = analyze(&t.net, &ExistOptions::default());
        match report.verdict {
            ExistenceVerdict::Exists => {
                assert_witness_recertified(&t.name, &t.net);
                exists += 1;
            }
            ExistenceVerdict::Impossible => {
                assert_obstruction_refutes_fuzzed_routings(&t.name, &t.net, 0xC0FFEE);
                impossible += 1;
            }
            ExistenceVerdict::Unknown => {
                panic!("{}: the corpus must never be undecided", t.name)
            }
        }
    }
    assert_eq!(exists + impossible, 20, "the corpus has 20 targets");
    assert_eq!(
        impossible, 1,
        "exactly the single-lane ring is unroutable ({impossible} were)"
    );
}

#[test]
fn the_ring_obstruction_is_refuted_by_exhaustive_search() {
    // The one impossible corpus fabric: the engine's deficiency
    // obstruction says *every* table deadlocks. On a unidirectional
    // ring there is exactly one path per pair, so the clockwise table
    // is the only total routing — search its cyclic configuration
    // exhaustively and exhibit the deadlock.
    let t = corpus()
        .into_iter()
        .find(|t| t.name == "ring4_clockwise")
        .expect("corpus has the ring");
    let report = analyze(&t.net, &ExistOptions::default());
    assert_eq!(report.verdict, ExistenceVerdict::Impossible);

    // One message per ring hop (r0->r2, r1->r3, r2->r0, r3->r1): the
    // four two-hop messages that together occupy the whole ring.
    let specs: Vec<MessageSpec> = (0..4)
        .map(|i| {
            MessageSpec::new(
                wormnet::NodeId::from_index(i),
                wormnet::NodeId::from_index((i + 2) % 4),
                2,
            )
        })
        .collect();
    let sim = Sim::new(&t.net, &t.table, specs, Some(1)).expect("ring routes its pairs");
    let result = explore(&sim, &SearchConfig::default());
    assert!(
        result.verdict.is_deadlock(),
        "exhaustive search must exhibit the deadlock the obstruction promises"
    );
}

#[test]
fn fuzzed_specs_agree_with_the_pipeline() {
    let mut exists = 0;
    let mut impossible = 0;
    for seed in 0..FUZZ_SWEEP {
        let source = generate(seed);
        let job = compile(&source)
            .unwrap_or_else(|e| panic!("seed {seed}: {}", e.render(&source, "specgen")));
        let name = format!("fuzz seed {seed}");
        let report = analyze(job.network(), &job.exist_options);
        match report.verdict {
            ExistenceVerdict::Exists => {
                assert_witness_recertified(&name, job.network());
                exists += 1;
            }
            ExistenceVerdict::Impossible => {
                assert_obstruction_refutes_fuzzed_routings(&name, job.network(), seed);
                impossible += 1;
            }
            ExistenceVerdict::Unknown => {
                // Budgets are finite; unknown contradicts nothing. The
                // sweep assertions below keep this path from hiding a
                // regression that turns everything undecided.
            }
        }
    }
    assert!(
        exists >= 50,
        "the sweep must exercise the witness side broadly ({exists} seeds)"
    );
    assert!(
        impossible >= 1,
        "the sweep must exercise the obstruction side ({impossible} seeds)"
    );
}

#[test]
fn deadlockable_tables_on_routable_fabrics_never_contradict_exists() {
    // The sharper differential, on the corpus instance built for it:
    // fig2's table has a search-exhibitable deadlock, yet the fabric's
    // existence verdict is `exists`. Search finding the deadlock in
    // *that table* must not be mistaken for unroutability — the
    // witness routing of the same fabric stays certified.
    let c = cyclic_wormhole::core::paper::fig2::two_message_deadlock();
    let report = analyze(&c.net, &ExistOptions::default());
    assert_eq!(report.verdict, ExistenceVerdict::Exists);

    let specs = c.message_specs();
    assert!(specs.len() <= MAX_SEARCH_MESSAGES);
    let sim = Sim::new(&c.net, &c.table, specs, Some(1)).expect("fig2 routes its messages");
    assert!(
        explore(&sim, &SearchConfig::default())
            .verdict
            .is_deadlock(),
        "fig2's table must deadlock under search"
    );
    assert_witness_recertified("fig2 (witness)", &c.net);
}
