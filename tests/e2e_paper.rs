//! End-to-end reproduction of the paper's results through the public
//! facade: every headline claim, exercised across all six crates.

use cyclic_wormhole::core::classify::{classify_algorithm, AlgorithmVerdict, ClassifyOptions};
use cyclic_wormhole::core::paper::{fig1, fig2, fig3, generalized};
use cyclic_wormhole::search::{explore, min_stall_budget, replay, SearchConfig, Verdict};
use cyclic_wormhole::sim::runner::{ArbitrationPolicy, Outcome, Runner};
use cyclic_wormhole::sim::Sim;

/// The paper's central claim, through the full classification
/// pipeline: the Cyclic Dependency algorithm is deadlock-free *with*
/// cyclic dependencies. The four-sharer cycle is outside Theorems 2-5,
/// so the classifier must fall back to exhaustive search and still
/// certify freedom.
#[test]
fn cyclic_dependency_classified_deadlock_free_with_cycles() {
    let c = fig1::cyclic_dependency();
    let verdict = classify_algorithm(&c.net, &c.table, &ClassifyOptions::default());
    let AlgorithmVerdict::DeadlockFreeWithCycles { cycles } = &verdict else {
        panic!("expected DeadlockFreeWithCycles, got {verdict:?}");
    };
    assert_eq!(cycles.len(), 1);
    assert_eq!(cycles[0].reachable(), Some(false));
    assert!(cycles[0].enumeration_complete);
    assert_eq!(verdict.is_deadlock_free(), Some(true));
}

/// Figure 2 through the pipeline: Theorem 4 decides it without search.
#[test]
fn figure2_classified_deadlockable_by_theorem4() {
    use cyclic_wormhole::core::classify::CycleClass;
    let c = fig2::two_message_deadlock();
    let verdict = classify_algorithm(&c.net, &c.table, &ClassifyOptions::default());
    let AlgorithmVerdict::Deadlockable { cycles } = &verdict else {
        panic!("expected Deadlockable, got {verdict:?}");
    };
    let decided_by_theorem = cycles
        .iter()
        .flat_map(|cv| &cv.candidates)
        .any(|cand| matches!(cand.class, CycleClass::TwoSharers) && cand.reachable == Some(true));
    assert!(decided_by_theorem, "Theorem 4 should decide Figure 2");
}

/// The adversarial simulator and the exhaustive search agree on every
/// Figure 3 scenario: scenarios the search calls deadlockable do
/// deadlock under some run, and scenarios it calls free never do.
#[test]
fn figure3_search_and_simulation_agree() {
    for s in fig3::all_scenarios() {
        let c = s.spec.build();
        let specs = s.message_specs(&c);
        let sim = Sim::new(&c.net, &c.table, specs, Some(1)).expect("routed");
        let search_free = explore(&sim, &SearchConfig::default()).verdict.is_free();
        assert_eq!(search_free, s.paper_unreachable, "scenario ({})", s.name);

        if search_free {
            // No policy run may deadlock either.
            for policy in [
                ArbitrationPolicy::LowestId,
                ArbitrationPolicy::RoundRobin,
                ArbitrationPolicy::OldestFirst,
                ArbitrationPolicy::Adversarial { favored: vec![] },
            ] {
                let mut runner = Runner::new(&sim, policy);
                let outcome = runner.run(10_000);
                assert!(
                    !matches!(outcome, Outcome::Deadlock { .. }),
                    "scenario ({}) deadlocked under a policy run",
                    s.name
                );
            }
        }
    }
}

/// Every deadlock witness the search produces must replay to the same
/// wait-for cycle.
#[test]
fn witnesses_replay_faithfully() {
    for s in fig3::all_scenarios()
        .into_iter()
        .filter(|s| !s.paper_unreachable)
    {
        let c = s.spec.build();
        let sim = Sim::new(&c.net, &c.table, s.message_specs(&c), Some(1)).expect("routed");
        let Verdict::DeadlockReachable(witness) = explore(&sim, &SearchConfig::default()).verdict
        else {
            panic!("scenario ({}) should deadlock", s.name);
        };
        let members = replay(&sim, &witness).expect("witness replays to deadlock");
        assert_eq!(members, witness.members, "scenario ({})", s.name);
    }
}

/// Section 6 through the facade: minimum stall budget grows linearly.
#[test]
fn generalized_family_budget_grows() {
    let mut previous = 0;
    for k in 1..=3usize {
        let c = generalized::generalized(k);
        let sim = Sim::new(
            &c.net,
            &c.table,
            generalized::minimum_length_specs(&c),
            Some(1),
        )
        .expect("routed");
        let (min, _) = min_stall_budget(&sim, (k + 3) as u32, 8_000_000);
        let min = min.expect("deadlock reachable with stalls");
        assert_eq!(min, (k + 1) as u32, "G({k})");
        assert!(min > previous);
        previous = min;
    }
}

/// Buffer depth never flips Figure 1's verdict (Section 3: deadlock
/// freedom must be independent of buffer sizes).
#[test]
fn fig1_free_across_buffer_depths() {
    let c = fig1::cyclic_dependency();
    for depth in [1usize, 2, 3, 5] {
        let sim = Sim::new(&c.net, &c.table, c.message_specs(), Some(depth)).expect("routed");
        let r = explore(&sim, &SearchConfig::default());
        assert!(r.verdict.is_free(), "depth {depth}: {:?}", r.verdict);
    }
}
