//! Differential tests for the parallel work-stealing search engine.
//!
//! The sequential depth-first [`explore`] is the oracle: on every
//! scenario — random small topologies under proptest, plus the paper's
//! Figure 1–3 instances — the parallel engine must return the same
//! verdict, its witnesses must replay into a real deadlock, and the
//! witness must be identical for every thread count.

use cyclic_wormhole::net::topology::{line, ring_unidirectional, Mesh};
use cyclic_wormhole::net::Network;
use cyclic_wormhole::route::algorithms::{clockwise_ring, shortest_path_table, xy_mesh};
use cyclic_wormhole::route::TableRouting;
use cyclic_wormhole::search::{
    explore, explore_parallel, min_stall_budget, min_stall_budget_parallel, replay, SearchConfig,
    Verdict,
};
use cyclic_wormhole::sim::{MessageSpec, Sim};
use proptest::prelude::*;

/// A random small scenario: topology, routing table, and 2–5 messages
/// with lengths 1–4 (indices are folded onto the node count).
fn build_scenario(
    kind: usize,
    n: usize,
    msgs: &[(usize, usize, usize)],
) -> Option<(Network, TableRouting, Vec<MessageSpec>)> {
    let (net, nodes, table) = match kind {
        0 => {
            let (net, nodes) = ring_unidirectional(n);
            let table = clockwise_ring(&net, &nodes).ok()?;
            (net, nodes, table)
        }
        1 => {
            let (net, nodes) = line(n);
            let table = shortest_path_table(&net).ok()?;
            (net, nodes, table)
        }
        _ => {
            let mesh = Mesh::new(&[2, n.min(3)]);
            let table = xy_mesh(&mesh).ok()?;
            let nodes: Vec<_> = (0..mesh.network().node_count())
                .map(cyclic_wormhole::net::NodeId::from_index)
                .collect();
            (mesh.network().clone(), nodes, table)
        }
    };
    let count = nodes.len();
    let specs: Vec<MessageSpec> = msgs
        .iter()
        .map(|&(s, d, len)| {
            let src = nodes[s % count];
            let mut dst = nodes[d % count];
            if dst == src {
                dst = nodes[(d + 1) % count];
            }
            MessageSpec::new(src, dst, len)
        })
        .filter(|m| m.src != m.dst)
        .collect();
    if specs.len() < 2 {
        return None;
    }
    Some((net, table, specs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Core differential: parallel (4 workers) verdict == sequential
    /// verdict on random ring/line/mesh scenarios; deadlock witnesses
    /// replay; deadlock-free runs visit identical state counts.
    #[test]
    fn parallel_matches_sequential_oracle(
        kind in 0usize..3,
        n in 3usize..=5,
        budget in 0u32..=1,
        msgs in prop::collection::vec((0usize..8, 0usize..8, 1usize..=4), 2..=5),
    ) {
        let Some((net, table, specs)) = build_scenario(kind, n, &msgs) else {
            return Err(TestCaseError::Reject("degenerate scenario".into()));
        };
        let Ok(sim) = Sim::new(&net, &table, specs, Some(1)) else {
            return Err(TestCaseError::Reject("unroutable".into()));
        };
        let config = SearchConfig {
            stall_budget: budget,
            max_states: 400_000,
            dead_channels: Vec::new(),
            ..SearchConfig::default()
        };
        let seq = explore(&sim, &config);
        let par = explore_parallel(&sim, &config, 4);

        prop_assert_eq!(seq.verdict.is_deadlock(), par.verdict.is_deadlock());
        prop_assert_eq!(seq.verdict.is_free(), par.verdict.is_free());
        prop_assert_eq!(seq.verdict.is_inconclusive(), par.verdict.is_inconclusive());
        if par.verdict.is_free() {
            // Both engines exhaust the same deduplicated reachable set.
            prop_assert_eq!(seq.states_explored, par.states_explored);
        }
        if let Verdict::DeadlockReachable(witness) = &par.verdict {
            let members = replay(&sim, witness);
            prop_assert!(members.is_some(), "parallel witness must replay");
            prop_assert_eq!(&members.unwrap(), &witness.members);
        }
    }

    /// Witness round-trip and minimality: whenever the parallel engine
    /// reports a deadlock, the schedule replays into the same deadlock
    /// and no proper prefix of it is already deadlocked (the witness
    /// is minimal in cycle count).
    #[test]
    fn parallel_witness_is_minimal_prefix(
        n in 3usize..=5,
        msgs in prop::collection::vec((0usize..8, 0usize..8, 2usize..=4), 2..=4),
    ) {
        let Some((net, table, specs)) = build_scenario(0, n, &msgs) else {
            return Err(TestCaseError::Reject("degenerate scenario".into()));
        };
        let Ok(sim) = Sim::new(&net, &table, specs, Some(1)) else {
            return Err(TestCaseError::Reject("unroutable".into()));
        };
        let par = explore_parallel(&sim, &SearchConfig::default(), 4);
        let Verdict::DeadlockReachable(witness) = &par.verdict else {
            return Ok(());
        };
        let mut state = sim.initial_state();
        for (i, d) in witness.decisions.iter().enumerate() {
            // Prefix of length i: not yet deadlocked.
            prop_assert!(
                sim.find_deadlock(&state).is_none(),
                "prefix of length {} already deadlocked",
                i
            );
            sim.step(&mut state, d);
        }
        let members = sim.find_deadlock(&state);
        prop_assert!(members.is_some(), "full witness must deadlock");
        prop_assert_eq!(&members.unwrap(), &witness.members);
    }

    /// Thread-count independence: 1, 2, and 5 workers produce the
    /// identical witness (decisions and members) and state count.
    #[test]
    fn parallel_witness_is_thread_count_independent(
        n in 3usize..=4,
        budget in 0u32..=1,
        msgs in prop::collection::vec((0usize..8, 0usize..8, 2usize..=3), 2..=4),
    ) {
        let Some((net, table, specs)) = build_scenario(0, n, &msgs) else {
            return Err(TestCaseError::Reject("degenerate scenario".into()));
        };
        let Ok(sim) = Sim::new(&net, &table, specs, Some(1)) else {
            return Err(TestCaseError::Reject("unroutable".into()));
        };
        let config = SearchConfig {
            stall_budget: budget,
            max_states: 400_000,
            dead_channels: Vec::new(),
            ..SearchConfig::default()
        };
        let reference = explore_parallel(&sim, &config, 1);
        for threads in [2, 5] {
            let result = explore_parallel(&sim, &config, threads);
            prop_assert_eq!(result.states_explored, reference.states_explored);
            match (&reference.verdict, &result.verdict) {
                (Verdict::DeadlockReachable(a), Verdict::DeadlockReachable(b)) => {
                    prop_assert_eq!(a, b, "witness differs at {} threads", threads);
                }
                (a, b) => prop_assert_eq!(a, b),
            }
        }
    }
}

/// Paper instance differentials: Figure 1 (free with cyclic CDG),
/// Figure 2 (two-message deadlock), all at 4 worker threads.
#[test]
fn fig1_and_fig2_instances_agree_across_engines() {
    use cyclic_wormhole::core::paper::{fig1, fig2};

    let c = fig1::cyclic_dependency();
    let sim = Sim::new(&c.net, &c.table, c.message_specs(), Some(1)).unwrap();
    let seq = explore(&sim, &SearchConfig::default());
    let par = explore_parallel(&sim, &SearchConfig::default(), 4);
    assert!(seq.verdict.is_free(), "{:?}", seq.verdict);
    assert!(par.verdict.is_free(), "{:?}", par.verdict);
    assert_eq!(seq.states_explored, par.states_explored);

    let c = fig2::two_message_deadlock();
    let sim = Sim::new(&c.net, &c.table, c.message_specs(), Some(1)).unwrap();
    let seq = explore(&sim, &SearchConfig::default());
    let par = explore_parallel(&sim, &SearchConfig::default(), 4);
    assert!(seq.verdict.is_deadlock(), "{:?}", seq.verdict);
    let Verdict::DeadlockReachable(witness) = &par.verdict else {
        panic!(
            "parallel must find the Figure 2 deadlock: {:?}",
            par.verdict
        );
    };
    let members = replay(&sim, witness).expect("witness replays");
    assert_eq!(&members, &witness.members);
}

/// Theorem oracle: on each Figure 3 scenario (a)–(f), the parallel
/// exhaustive search must agree with the paper's Theorem 5 verdict —
/// (a),(b) unreachable (deadlock-free), (c)–(f) deadlockable — and
/// with the worm-core classification pipeline.
#[test]
fn fig3_scenarios_parallel_search_matches_theorem_and_classifier() {
    use cyclic_wormhole::core::classify::{classify_algorithm, ClassifyOptions};
    use cyclic_wormhole::core::paper::fig3;

    for s in fig3::all_scenarios() {
        let c = s.spec.build();
        let sim = Sim::new(&c.net, &c.table, s.message_specs(&c), Some(1)).expect("routed");
        let par = explore_parallel(&sim, &SearchConfig::default(), 4);
        assert_eq!(
            par.verdict.is_free(),
            s.paper_unreachable,
            "scenario ({}): search {:?} vs paper unreachable={}",
            s.name,
            par.verdict,
            s.paper_unreachable
        );
        if let Verdict::DeadlockReachable(witness) = &par.verdict {
            let members = replay(&sim, witness).expect("fig3 witness replays");
            assert_eq!(&members, &witness.members, "scenario ({})", s.name);
        }

        // The classification pipeline (theorems + search fallback,
        // running the parallel engine) must agree on the algorithm.
        let verdict = classify_algorithm(
            &c.net,
            &c.table,
            &ClassifyOptions {
                search_threads: 4,
                ..ClassifyOptions::default()
            },
        );
        assert_eq!(
            verdict.is_deadlock_free(),
            Some(s.paper_unreachable),
            "scenario ({}): classifier {:?}",
            s.name,
            verdict
        );
    }
}

/// Regression: exceeding `max_states` must return
/// `Verdict::Inconclusive` carrying the states-visited count — on both
/// engines — never a spurious freedom claim.
#[test]
fn tiny_state_cap_is_inconclusive_with_count() {
    // A deadlock-free instance, so neither engine can exit early via a
    // goal: the only legal outcome under a tiny cap is Inconclusive.
    let (net, _) = line(4);
    let table = shortest_path_table(&net).unwrap();
    let nodes: Vec<_> = (0..4)
        .map(cyclic_wormhole::net::NodeId::from_index)
        .collect();
    let specs = vec![
        MessageSpec::new(nodes[0], nodes[3], 3),
        MessageSpec::new(nodes[3], nodes[0], 3),
        MessageSpec::new(nodes[1], nodes[3], 2),
    ];
    let sim = Sim::new(&net, &table, specs, Some(1)).unwrap();

    let full = explore(&sim, &SearchConfig::default());
    assert!(full.verdict.is_free());
    assert!(full.states_explored > 4, "cap below the true state count");

    let config = SearchConfig {
        stall_budget: 0,
        max_states: 4,
        dead_channels: Vec::new(),
        ..SearchConfig::default()
    };
    for result in [explore(&sim, &config), explore_parallel(&sim, &config, 4)] {
        let Verdict::Inconclusive { states_visited } = result.verdict else {
            panic!("tiny cap must be inconclusive: {:?}", result.verdict);
        };
        assert!(
            states_visited > 4,
            "count reflects where the search stopped"
        );
        assert_eq!(states_visited, result.states_explored);
    }
}

/// The budget scan built on the parallel engine agrees with the
/// sequential scan on the minimum adversarial stall budget.
#[test]
fn budget_scans_agree_on_minimum() {
    let (net, nodes) = ring_unidirectional(4);
    let table = clockwise_ring(&net, &nodes).unwrap();
    let specs = vec![
        MessageSpec::new(nodes[0], nodes[3], 3),
        MessageSpec::new(nodes[2], nodes[1], 3),
    ];
    let sim = Sim::new(&net, &table, specs, Some(1)).unwrap();
    let (seq_min, _) = min_stall_budget(&sim, 3, 1_000_000);
    let (par_min, par_trail) = min_stall_budget_parallel(&sim, 3, 1_000_000, 4);
    assert_eq!(seq_min, par_min);
    assert!(par_trail.iter().all(|r| r.metrics.threads == 4));
}
