//! Conformance: the fault layer with an **empty plan** is
//! bit-identical to the fault-free engine.
//!
//! This is the contract that makes `wormfault` trustworthy: faults
//! are applied through the decision-hook seam, and when no fault
//! fires the hook must be invisible — same outcomes, same final
//! states, same cycle counts, same statistics, and the same trace
//! report (no stray `fault.*` counters or `fault.plan` spans). Any
//! divergence here means the hook path perturbs the engine, and every
//! faulted result would be suspect.
//!
//! Checked on the paper's Figures 1–3 constructions and on seeded
//! random mesh traffic, plus the analogous search-side contract: an
//! empty `dead_channels` set leaves `explore` verdicts identical.

use std::sync::{Arc, Mutex, OnceLock};

use cyclic_wormhole::core::paper::{fig1, fig2, fig3};
use cyclic_wormhole::fault::{FaultOutcome, FaultPlan, FaultRunner, RetryPolicy};
use cyclic_wormhole::net::topology::Mesh;
use cyclic_wormhole::net::Network;
use cyclic_wormhole::route::algorithms::xy_mesh;
use cyclic_wormhole::route::TableRouting;
use cyclic_wormhole::search::{explore, SearchConfig};
use cyclic_wormhole::sim::runner::{ArbitrationPolicy, Outcome, Runner};
use cyclic_wormhole::sim::{traffic, MessageSpec, Sim};
use cyclic_wormhole::trace::{MemoryRecorder, TraceReport};
use rand::SeedableRng;

/// The wormtrace recorder is process-global; tests that install one
/// must not interleave.
fn trace_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Span totals are wall-clock and never bit-stable; zero them so
/// reports compare on structure and counts only.
fn normalized(mut report: TraceReport) -> TraceReport {
    for stat in report.spans.values_mut() {
        stat.total = std::time::Duration::ZERO;
    }
    report
}

/// All the workloads the contract is checked on.
fn workloads() -> Vec<(&'static str, Network, TableRouting, Vec<MessageSpec>)> {
    let mut out = Vec::new();
    let c = fig1::cyclic_dependency();
    out.push(("fig1", c.net.clone(), c.table.clone(), c.message_specs()));
    let c = fig2::two_message_deadlock();
    out.push(("fig2", c.net.clone(), c.table.clone(), c.message_specs()));
    for s in fig3::all_scenarios() {
        let c = s.spec.build();
        let specs = s.message_specs(&c);
        out.push(("fig3", c.net.clone(), c.table.clone(), specs));
    }
    for seed in [1u64, 7, 42] {
        let mesh = Mesh::new(&[3, 3]);
        let table = xy_mesh(&mesh).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let specs = traffic::uniform_random(mesh.network(), &table, &mut rng, 0.2, 40, (2, 6));
        out.push(("mesh", mesh.network().clone(), table, specs));
    }
    out
}

fn outcomes_match(base: &Outcome, faulted: &FaultOutcome) -> bool {
    match (base, faulted) {
        (Outcome::Delivered { cycles: a }, FaultOutcome::Delivered { cycles: b }) => a == b,
        (
            Outcome::Deadlock {
                members: a,
                at_cycle: ta,
            },
            FaultOutcome::Deadlock {
                members: b,
                at_cycle: tb,
            },
        ) => a == b && ta == tb,
        (Outcome::Timeout { cycles: a }, FaultOutcome::Timeout { cycles: b }) => a == b,
        _ => false,
    }
}

#[test]
fn empty_plan_is_bit_identical_on_every_workload() {
    for (name, net, table, specs) in workloads() {
        let sim = Sim::new(&net, &table, specs, Some(1)).expect("routed");
        for policy in [ArbitrationPolicy::OldestFirst, ArbitrationPolicy::LowestId] {
            let mut plain = Runner::new(&sim, policy.clone());
            let base = plain.run(10_000);

            let mut faulted = FaultRunner::new(
                &net,
                &sim,
                policy.clone(),
                FaultPlan::new(),
                RetryPolicy::Passive,
            );
            let under_fault = faulted.run(10_000);

            assert!(
                outcomes_match(&base, &under_fault),
                "{name}/{policy:?}: outcome diverged: {base:?} vs {under_fault:?}"
            );
            assert_eq!(
                plain.state(),
                faulted.state(),
                "{name}: final state diverged"
            );
            assert_eq!(plain.time(), faulted.time(), "{name}: step count diverged");
            assert_eq!(plain.stats(), faulted.stats(), "{name}: stats diverged");
            assert_eq!(
                faulted.report(),
                cyclic_wormhole::fault::FaultReport::default(),
                "{name}: empty plan reported fault activity"
            );
        }
    }
}

#[test]
fn empty_plan_trace_reports_are_identical() {
    let _guard = trace_lock().lock().unwrap();
    for (name, net, table, specs) in workloads() {
        let sim = Sim::new(&net, &table, specs, Some(1)).expect("routed");

        let rec = Arc::new(MemoryRecorder::new());
        cyclic_wormhole::trace::install(rec.clone());
        let mut plain = Runner::new(&sim, ArbitrationPolicy::OldestFirst);
        let _ = plain.run(10_000);
        cyclic_wormhole::trace::uninstall();
        let base_report = normalized(rec.snapshot());

        let rec = Arc::new(MemoryRecorder::new());
        cyclic_wormhole::trace::install(rec.clone());
        let mut faulted = FaultRunner::new(
            &net,
            &sim,
            ArbitrationPolicy::OldestFirst,
            FaultPlan::new(),
            RetryPolicy::Passive,
        );
        let _ = faulted.run(10_000);
        cyclic_wormhole::trace::uninstall();
        let fault_report = normalized(rec.snapshot());

        assert_eq!(
            base_report, fault_report,
            "{name}: trace reports diverged under the empty plan"
        );
        assert!(
            !fault_report
                .counters
                .keys()
                .any(|k| k.starts_with("fault.")),
            "{name}: empty plan leaked fault.* counters"
        );
        assert!(
            !fault_report.spans.contains_key("fault.plan"),
            "{name}: empty plan opened a fault.plan span"
        );
    }
}

#[test]
fn empty_dead_channel_set_leaves_search_verdicts_identical() {
    for (name, net, table, specs) in workloads() {
        if name == "mesh" {
            // The exhaustive search is built for the paper's small
            // scenarios; the random-traffic workloads exceed its
            // injectable-set bound.
            continue;
        }
        let sim = Sim::new(&net, &table, specs, Some(1)).expect("routed");
        let base = explore(
            &sim,
            &SearchConfig {
                stall_budget: 0,
                max_states: 300_000,
                dead_channels: Vec::new(),
                ..SearchConfig::default()
            },
        );
        // Same budgets through the `with_dead_channels` constructor.
        let mut cfg = SearchConfig::with_dead_channels(Vec::new());
        cfg.stall_budget = 0;
        cfg.max_states = 300_000;
        let aligned = explore(&sim, &cfg);
        assert_eq!(base.verdict, aligned.verdict, "{name}: verdict diverged");
        assert_eq!(
            base.states_explored, aligned.states_explored,
            "{name}: state counts diverged"
        );
    }
}
