//! Conformance: the fault layer with an **empty plan** is
//! bit-identical to the fault-free engine.
//!
//! This is the contract that makes `wormfault` trustworthy: faults
//! are applied through the decision-hook seam, and when no fault
//! fires the hook must be invisible — same outcomes, same final
//! states, same cycle counts, same statistics, and the same trace
//! report (no stray `fault.*` counters or `fault.plan` spans). Any
//! divergence here means the hook path perturbs the engine, and every
//! faulted result would be suspect.
//!
//! Checked on the paper's Figures 1–3 constructions and on seeded
//! random mesh traffic, plus the analogous search-side contract: an
//! empty `dead_channels` set leaves `explore` verdicts identical.

use std::sync::{Arc, Mutex, OnceLock};

use cyclic_wormhole::core::paper::{fig1, fig2, fig3};
use cyclic_wormhole::fault::{FaultOutcome, FaultPlan, FaultRunner, RetryPolicy};
use cyclic_wormhole::net::topology::Mesh;
use cyclic_wormhole::net::Network;
use cyclic_wormhole::route::algorithms::xy_mesh;
use cyclic_wormhole::route::TableRouting;
use cyclic_wormhole::search::{explore, SearchConfig};
use cyclic_wormhole::sim::runner::{ArbitrationPolicy, EngineKind, Outcome, Runner};
use cyclic_wormhole::sim::{traffic, MessageSpec, Sim};
use cyclic_wormhole::trace::{MemoryRecorder, TraceReport};
use rand::SeedableRng;

/// The wormtrace recorder is process-global; tests that install one
/// must not interleave.
fn trace_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Span totals are wall-clock and never bit-stable; zero them so
/// reports compare on structure and counts only.
fn normalized(mut report: TraceReport) -> TraceReport {
    for stat in report.spans.values_mut() {
        stat.total = std::time::Duration::ZERO;
    }
    report
}

/// All the workloads the contract is checked on.
fn workloads() -> Vec<(&'static str, Network, TableRouting, Vec<MessageSpec>)> {
    let mut out = Vec::new();
    let c = fig1::cyclic_dependency();
    out.push(("fig1", c.net.clone(), c.table.clone(), c.message_specs()));
    let c = fig2::two_message_deadlock();
    out.push(("fig2", c.net.clone(), c.table.clone(), c.message_specs()));
    for s in fig3::all_scenarios() {
        let c = s.spec.build();
        let specs = s.message_specs(&c);
        out.push(("fig3", c.net.clone(), c.table.clone(), specs));
    }
    for seed in [1u64, 7, 42] {
        let mesh = Mesh::new(&[3, 3]);
        let table = xy_mesh(&mesh).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let specs = traffic::uniform_random(mesh.network(), &table, &mut rng, 0.2, 40, (2, 6));
        out.push(("mesh", mesh.network().clone(), table, specs));
    }
    out
}

fn outcomes_match(base: &Outcome, faulted: &FaultOutcome) -> bool {
    match (base, faulted) {
        (Outcome::Delivered { cycles: a }, FaultOutcome::Delivered { cycles: b }) => a == b,
        (
            Outcome::Deadlock {
                members: a,
                at_cycle: ta,
            },
            FaultOutcome::Deadlock {
                members: b,
                at_cycle: tb,
            },
        ) => a == b && ta == tb,
        (Outcome::Timeout { cycles: a }, FaultOutcome::Timeout { cycles: b }) => a == b,
        _ => false,
    }
}

#[test]
fn empty_plan_is_bit_identical_on_every_workload() {
    for (name, net, table, specs) in workloads() {
        let sim = Sim::new(&net, &table, specs, Some(1)).expect("routed");
        for engine in [EngineKind::Stepping, EngineKind::Event] {
            for policy in [ArbitrationPolicy::OldestFirst, ArbitrationPolicy::LowestId] {
                let mut plain = Runner::new(&sim, policy.clone()).with_engine(engine);
                let base = plain.run(10_000);

                let mut faulted = FaultRunner::new(
                    &net,
                    &sim,
                    policy.clone(),
                    FaultPlan::new(),
                    RetryPolicy::Passive,
                )
                .with_engine(engine);
                let under_fault = faulted.run(10_000);

                assert!(
                    outcomes_match(&base, &under_fault),
                    "{name}/{engine:?}/{policy:?}: outcome diverged: {base:?} vs {under_fault:?}"
                );
                assert_eq!(
                    plain.state(),
                    faulted.state(),
                    "{name}/{engine:?}: final state diverged"
                );
                assert_eq!(
                    plain.time(),
                    faulted.time(),
                    "{name}/{engine:?}: step count diverged"
                );
                assert_eq!(
                    plain.stats(),
                    faulted.stats(),
                    "{name}/{engine:?}: stats diverged"
                );
                assert_eq!(
                    faulted.report(),
                    cyclic_wormhole::fault::FaultReport::default(),
                    "{name}/{engine:?}: empty plan reported fault activity"
                );
            }
        }
    }
}

/// Non-empty plans: the fault layer applies its plan through the
/// decision-hook seam, so the *same* plan on the *same* workload must
/// behave bit-identically under both engines — outcomes, final
/// states, cycle counts, statistics, and the fault report itself
/// (outages applied, drops fired, retries spent). This is the other
/// half of the conformance story: `wormfault` results are
/// engine-independent, so the event core can run degraded-topology
/// re-verification at full speed.
#[test]
fn seeded_random_plans_agree_across_engines() {
    for (name, net, table, specs) in workloads() {
        let sim = Sim::new(&net, &table, specs, Some(1)).expect("routed");
        for seed in [1u64, 9, 23] {
            let plan = FaultPlan::random(&net, seed, 2, 2, 400);
            for retry in [
                RetryPolicy::Passive,
                RetryPolicy::Active {
                    max_attempts: 3,
                    backoff: 2,
                },
            ] {
                let mut stepping = FaultRunner::new(
                    &net,
                    &sim,
                    ArbitrationPolicy::OldestFirst,
                    plan.clone(),
                    retry.clone(),
                )
                .with_engine(EngineKind::Stepping);
                let oracle = stepping.run(10_000);

                let mut event = FaultRunner::new(
                    &net,
                    &sim,
                    ArbitrationPolicy::OldestFirst,
                    plan.clone(),
                    retry.clone(),
                )
                .with_engine(EngineKind::Event);
                let candidate = event.run(10_000);

                assert_eq!(
                    oracle, candidate,
                    "{name}/seed{seed}/{retry:?}: fault outcome diverged between engines"
                );
                assert_eq!(
                    stepping.state(),
                    event.state(),
                    "{name}/seed{seed}/{retry:?}: final state diverged"
                );
                assert_eq!(
                    stepping.time(),
                    event.time(),
                    "{name}/seed{seed}/{retry:?}: cycle count diverged"
                );
                assert_eq!(
                    stepping.stats(),
                    event.stats(),
                    "{name}/seed{seed}/{retry:?}: stats diverged"
                );
                assert_eq!(
                    stepping.report(),
                    event.report(),
                    "{name}/seed{seed}/{retry:?}: fault report diverged"
                );
            }
        }
    }
}

/// Hand-crafted plans hitting every event kind (outage windows,
/// router stalls, flit drops, injection delay) with an aggressive
/// retry budget: both engines must agree, including on abandoned
/// messages in `DeliveredPartial`.
#[test]
fn crafted_plans_with_retry_backoff_agree_across_engines() {
    for (name, net, table, specs) in workloads() {
        let sim = Sim::new(&net, &table, specs, Some(1)).expect("routed");
        let victim = cyclic_wormhole::net::ChannelId::from_index(net.channel_count() / 2);
        let node = net.nodes().next().expect("nonempty network");
        let msgs: Vec<_> = sim.messages().collect();
        let mut plan = FaultPlan::new()
            .channel_outage(victim, 2, 30)
            .router_stall(node, 5, 8);
        if let Some(&m) = msgs.first() {
            plan = plan.inject_delay(m, 6).flit_drop(m, 12);
        }
        let retry = RetryPolicy::Active {
            max_attempts: 2,
            backoff: 1,
        };

        let mut stepping = FaultRunner::new(
            &net,
            &sim,
            ArbitrationPolicy::OldestFirst,
            plan.clone(),
            retry.clone(),
        )
        .with_engine(EngineKind::Stepping);
        let oracle = stepping.run(10_000);

        let mut event = FaultRunner::new(&net, &sim, ArbitrationPolicy::OldestFirst, plan, retry)
            .with_engine(EngineKind::Event);
        let candidate = event.run(10_000);

        assert_eq!(oracle, candidate, "{name}: crafted-plan outcome diverged");
        assert_eq!(stepping.state(), event.state(), "{name}: state diverged");
        assert_eq!(stepping.stats(), event.stats(), "{name}: stats diverged");
        assert_eq!(
            stepping.report(),
            event.report(),
            "{name}: fault report diverged"
        );
    }
}

#[test]
fn empty_plan_trace_reports_are_identical() {
    let _guard = trace_lock().lock().unwrap();
    for (name, net, table, specs) in workloads() {
        let sim = Sim::new(&net, &table, specs, Some(1)).expect("routed");

        let rec = Arc::new(MemoryRecorder::new());
        cyclic_wormhole::trace::install(rec.clone());
        let mut plain = Runner::new(&sim, ArbitrationPolicy::OldestFirst);
        let _ = plain.run(10_000);
        cyclic_wormhole::trace::uninstall();
        let base_report = normalized(rec.snapshot());

        let rec = Arc::new(MemoryRecorder::new());
        cyclic_wormhole::trace::install(rec.clone());
        let mut faulted = FaultRunner::new(
            &net,
            &sim,
            ArbitrationPolicy::OldestFirst,
            FaultPlan::new(),
            RetryPolicy::Passive,
        );
        let _ = faulted.run(10_000);
        cyclic_wormhole::trace::uninstall();
        let fault_report = normalized(rec.snapshot());

        assert_eq!(
            base_report, fault_report,
            "{name}: trace reports diverged under the empty plan"
        );
        assert!(
            !fault_report
                .counters
                .keys()
                .any(|k| k.starts_with("fault.")),
            "{name}: empty plan leaked fault.* counters"
        );
        assert!(
            !fault_report.spans.contains_key("fault.plan"),
            "{name}: empty plan opened a fault.plan span"
        );
    }
}

#[test]
fn empty_dead_channel_set_leaves_search_verdicts_identical() {
    for (name, net, table, specs) in workloads() {
        if name == "mesh" {
            // The exhaustive search is built for the paper's small
            // scenarios; the random-traffic workloads exceed its
            // injectable-set bound.
            continue;
        }
        let sim = Sim::new(&net, &table, specs, Some(1)).expect("routed");
        let base = explore(
            &sim,
            &SearchConfig {
                stall_budget: 0,
                max_states: 300_000,
                dead_channels: Vec::new(),
                ..SearchConfig::default()
            },
        );
        // Same budgets through the `with_dead_channels` constructor.
        let mut cfg = SearchConfig::with_dead_channels(Vec::new());
        cfg.stall_budget = 0;
        cfg.max_states = 300_000;
        let aligned = explore(&sim, &cfg);
        assert_eq!(base.verdict, aligned.verdict, "{name}: verdict diverged");
        assert_eq!(
            base.states_explored, aligned.states_explored,
            "{name}: state counts diverged"
        );
    }
}
