//! Hand-computed answers for `wormroute::properties` on three known
//! specs: the paper's Figure 1 algorithm, dimension-order routing on a
//! 3×3 mesh, and the clockwise unidirectional 4-ring.
//!
//! The property checkers (Definitions 7–9, minimality, Corollary 1's
//! `R : N × N → C` form) anchor both the classifier's theorem
//! applications and the `wormlint` `W1xx` lints, so each verdict here
//! is derived on paper, not from the implementation.

use cyclic_wormhole::core::paper::fig1;
use cyclic_wormhole::net::topology::{ring_unidirectional, Mesh};
use cyclic_wormhole::route::algorithms::{clockwise_ring, dimension_order};
use cyclic_wormhole::route::properties;

/// Figure 1's Cyclic Dependency algorithm.
///
/// Hand derivation: the algorithm is total by construction. It is
/// *not* minimal — e.g. traffic injected at the source detours through
/// the access channels and around the router ring, taking more hops
/// than the shortest route. It is not suffix-closed (Definition 8):
/// a winding path's tail from an intermediate router disagrees with
/// the direct table entry from that router — precisely why Corollary 2
/// cannot certify Figure 1 and the paper needs the Section 4 argument.
/// Non-coherence follows (coherent = prefix- and suffix-closed).
#[test]
fn fig1_hand_computed_properties() {
    let c = fig1::cyclic_dependency();
    let report = properties::analyze(&c.net, &c.table);
    assert!(report.total, "Figure 1 routes every ordered pair");
    assert!(!report.minimal, "the winding routes are non-minimal");
    assert!(!report.suffix_closed, "tails disagree with direct routes");
    assert!(!report.coherent, "not suffix-closed, so not coherent");
    assert!(
        !report.node_function,
        "next channel depends on more than (current node, destination)"
    );

    // Spot checks on the standalone checkers used by the lints.
    assert_eq!(properties::is_minimal(&c.net, &c.table), report.minimal);
    assert_eq!(
        properties::is_suffix_closed(&c.net, &c.table),
        report.suffix_closed
    );
    assert_eq!(properties::is_coherent(&c.net, &c.table), report.coherent);
}

/// Dimension-order routing on a 3×3 mesh.
///
/// Hand derivation: DOR corrects the X coordinate, then Y. Every hop
/// reduces the Manhattan distance by one, so routes are minimal (for
/// the 3×3 mesh the route from (x1,y1) to (x2,y2) uses exactly
/// |x1−x2| + |y1−y2| channels). Any suffix of an X-then-Y staircase is
/// itself the X-then-Y staircase of its start point, and likewise for
/// prefixes, so the function is coherent; since the next channel
/// depends only on the current node and the destination, it is in
/// Corollary 1's `R : N × N → C` form. Minimal routes cannot revisit a
/// node.
#[test]
fn mesh_dor_hand_computed_properties() {
    let mesh = Mesh::new(&[3, 3]);
    let table = dimension_order(&mesh).expect("DOR routes the mesh");
    let net = mesh.network();
    let report = properties::analyze(net, &table);
    assert!(report.total);
    assert!(report.minimal);
    assert!(report.prefix_closed);
    assert!(report.suffix_closed);
    assert!(report.coherent);
    assert!(report.node_simple);
    assert!(report.node_function);

    // Minimality, concretely: corner (0,0) to corner (2,2) is 4 hops.
    let a = mesh.node(&[0, 0]);
    let b = mesh.node(&[2, 2]);
    let path = table.path(a, b).expect("routed");
    assert_eq!(path.len(), 4);
}

/// Clockwise routing on the unidirectional 4-ring.
///
/// Hand derivation: with only clockwise channels, the clockwise route
/// *is* the only route, hence minimal (d(i,j) = (j−i) mod 4). A suffix
/// of "go clockwise until you arrive" is again "go clockwise until you
/// arrive", so the function is suffix-closed, prefix-closed, and
/// coherent; the next channel depends only on the current node, which
/// is the strongest form of `R : N × N → C`. Deadlock-freedom is a
/// separate question — the CDG is the full ring cycle — which is
/// exactly the Theorem 2 instance `wormlint` flags as W202.
#[test]
fn ring_clockwise_hand_computed_properties() {
    let (net, nodes) = ring_unidirectional(4);
    let table = clockwise_ring(&net, &nodes).expect("clockwise routes the ring");
    let report = properties::analyze(&net, &table);
    assert!(report.total);
    assert!(report.minimal);
    assert!(report.prefix_closed);
    assert!(report.suffix_closed);
    assert!(report.coherent);
    assert!(report.node_simple);
    assert!(report.node_function);

    // Distances, concretely: 3 hops from node 1 back around to node 0.
    let path = table.path(nodes[1], nodes[0]).expect("routed");
    assert_eq!(path.len(), 3);
    // And the suffix property, concretely: the tail of 1→0 from node 3
    // is the registered path 3→0.
    let nodes_on_path = path.nodes(&net);
    assert_eq!(nodes_on_path, vec![nodes[1], nodes[2], nodes[3], nodes[0]]);
    let tail = table.path(nodes[3], nodes[0]).expect("routed");
    assert_eq!(tail.len(), 1);
}
