//! Property-based tests for the adaptive engine, including the
//! cross-engine check: on a singleton (table-derived) relation the
//! adaptive engine must behave exactly like the oblivious one.

use cyclic_wormhole::net::topology::Mesh;
use cyclic_wormhole::route::adaptive::{from_table, fully_adaptive_minimal};
use cyclic_wormhole::route::algorithms::dimension_order;
use cyclic_wormhole::sim::adaptive::{
    AdaptiveDecisions, AdaptivePolicy, AdaptiveRunner, AdaptiveSim,
};
use cyclic_wormhole::sim::runner::{ArbitrationPolicy, Outcome, Runner};
use cyclic_wormhole::sim::{MessageSpec, Sim};
use proptest::prelude::*;

fn mesh_messages(mesh: &Mesh, raw: &[(usize, usize, usize)]) -> Vec<MessageSpec> {
    let n = mesh.network().node_count();
    raw.iter()
        .filter_map(|&(s, d, len)| {
            let src = cyclic_wormhole::net::NodeId::from_index(s % n);
            let dst = cyclic_wormhole::net::NodeId::from_index(d % n);
            (src != dst).then(|| MessageSpec::new(src, dst, len))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cross-engine equivalence: a singleton adaptive relation derived
    /// from dimension-order routing delivers the same workload in the
    /// same number of cycles as the oblivious engine under matching
    /// greedy policies.
    #[test]
    fn singleton_adaptive_matches_oblivious(
        w in 2usize..4,
        h in 2usize..4,
        raw in prop::collection::vec((0usize..16, 0usize..16, 1usize..5), 1..4),
    ) {
        let mesh = Mesh::new(&[w, h]);
        let table = dimension_order(&mesh).expect("routes");
        let specs = mesh_messages(&mesh, &raw);
        prop_assume!(!specs.is_empty());

        // Oblivious run, lowest-id arbitration.
        let sim = Sim::new(mesh.network(), &table, specs.clone(), Some(1)).expect("routed");
        let mut runner = Runner::new(&sim, ArbitrationPolicy::LowestId);
        let oblivious = runner.run(100_000);

        // Adaptive run over the singleton relation, greedy first-free
        // (identical tie-breaking: lowest message id claims first).
        let relation = from_table(mesh.network(), &table).expect("compiles");
        let asim = AdaptiveSim::new(mesh.network(), relation, specs, Some(1)).expect("routed");
        let mut arunner = AdaptiveRunner::new(&asim, AdaptivePolicy::FirstFree);
        let adaptive = arunner.run(100_000);

        match (&oblivious, &adaptive) {
            (Outcome::Delivered { cycles: a }, Outcome::Delivered { cycles: b }) => {
                prop_assert_eq!(a, b, "same delivery time");
            }
            (a, b) => prop_assert!(false, "outcomes diverge: {:?} vs {:?}", a, b),
        }
        // Per-message delivery times match too.
        for m in sim.messages() {
            prop_assert_eq!(
                runner.stats().delivered_at[m.index()],
                arunner.stats().delivered_at[m.index()]
            );
        }
    }

    /// Adaptive engine invariants hold under arbitrary greedy-ish
    /// decision sequences on fully adaptive meshes.
    #[test]
    fn adaptive_invariants_hold(
        w in 2usize..4,
        h in 2usize..4,
        raw in prop::collection::vec((0usize..16, 0usize..16, 1usize..5), 1..4),
        words in prop::collection::vec(any::<u64>(), 1..32),
        steps in 1usize..80,
    ) {
        let mesh = Mesh::new(&[w, h]);
        let routing = fully_adaptive_minimal(&mesh);
        let specs = mesh_messages(&mesh, &raw);
        prop_assume!(!specs.is_empty());
        let sim = AdaptiveSim::new(mesh.network(), routing, specs, Some(1)).expect("routed");
        let mut state = sim.initial_state();
        let mut pos = 0usize;
        let mut next = || {
            let v = words[pos % words.len()].wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(pos as u64);
            pos += 1;
            v
        };
        for _ in 0..steps {
            let mut moves = std::collections::BTreeMap::new();
            let mut claimed = Vec::new();
            for (m, opts) in sim.free_options(&state) {
                let w = next();
                // Sometimes hold the header back.
                if w % 4 == 0 {
                    continue;
                }
                let remaining: Vec<_> =
                    opts.into_iter().filter(|c| !claimed.contains(c)).collect();
                if remaining.is_empty() {
                    continue;
                }
                let pick = remaining[(w as usize / 4) % remaining.len()];
                claimed.push(pick);
                moves.insert(m, pick);
            }
            sim.step(&mut state, &AdaptiveDecisions { moves, stalls: vec![] });
            sim.check_invariants(&state);
        }
        // Taken prefixes never exceed a minimal path's length on a
        // minimal relation.
        for m in sim.messages() {
            let spec = sim.spec(m);
            prop_assert!(
                state.taken[m.index()].len() <= mesh.manhattan(spec.src, spec.dst)
            );
        }
    }

    /// On minimal adaptive relations, delivered messages take exactly
    /// Manhattan-many hops, whatever the route chosen.
    #[test]
    fn adaptive_minimal_paths_are_minimal(seed in 0u64..300) {
        let mesh = Mesh::new(&[3, 3]);
        let routing = fully_adaptive_minimal(&mesh);
        let specs = vec![
            MessageSpec::new(mesh.node(&[0, 0]), mesh.node(&[2, 1]), 3),
            MessageSpec::new(mesh.node(&[2, 2]), mesh.node(&[0, 1]), 3),
        ];
        let sim = AdaptiveSim::new(mesh.network(), routing, specs, Some(1)).expect("routed");
        let mut runner = AdaptiveRunner::new(&sim, AdaptivePolicy::Seeded(seed));
        let outcome = runner.run(10_000);
        let delivered = matches!(outcome, Outcome::Delivered { .. });
        prop_assert!(delivered);
        let state = runner.state();
        for m in sim.messages() {
            let spec = sim.spec(m);
            prop_assert_eq!(
                state.taken[m.index()].len(),
                mesh.manhattan(spec.src, spec.dst)
            );
        }
    }
}
