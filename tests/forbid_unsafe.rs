//! Workspace-wide memory-safety policy check.
//!
//! Every library crate in the workspace (the root crate and each
//! `crates/*` member) must open with `#![forbid(unsafe_code)]`, and no
//! source file anywhere in `src/`, `tests/`, `examples/` or `benches/`
//! may contain an `unsafe` block or function. The compiler enforces
//! the attribute per crate; this test enforces that the attribute is
//! *present* everywhere — including in future crates — so the policy
//! cannot silently erode.
//!
//! The `shims/*` stand-ins for third-party crates are exempt from the
//! attribute requirement (they mirror external APIs) but still must
//! not use `unsafe`; in practice all current shims forbid it too.

use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Every `src/lib.rs` that must carry the attribute.
fn library_roots(root: &Path) -> Vec<PathBuf> {
    let mut libs = vec![root.join("src/lib.rs")];
    let crates = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates)
        .expect("crates/ exists")
        .flatten()
        .map(|e| e.path().join("src/lib.rs"))
        .filter(|p| p.is_file())
        .collect();
    members.sort();
    assert!(
        members.len() >= 9,
        "expected at least nine workspace library crates, found {}",
        members.len()
    );
    libs.extend(members);
    libs
}

/// Recursively collect `.rs` files under `dir`.
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_library_crate_forbids_unsafe_code() {
    let root = workspace_root();
    let mut missing = Vec::new();
    for lib in library_roots(&root) {
        let text = fs::read_to_string(&lib).unwrap();
        if !text.contains("#![forbid(unsafe_code)]") {
            missing.push(lib);
        }
    }
    assert!(
        missing.is_empty(),
        "crates missing #![forbid(unsafe_code)]: {missing:?}"
    );
}

#[test]
fn no_source_file_uses_unsafe() {
    let root = workspace_root();
    let mut files = Vec::new();
    for top in ["src", "tests", "examples", "benches", "crates", "shims"] {
        rust_sources(&root.join(top), &mut files);
    }
    files.sort();
    assert!(files.len() > 50, "source scan found too few files");
    let mut offenders = Vec::new();
    let this_file = root.join("tests/forbid_unsafe.rs");
    for file in files {
        if file == this_file {
            continue; // the scanner itself must spell the keyword
        }
        let text = fs::read_to_string(&file).unwrap();
        for (i, line) in text.lines().enumerate() {
            // Strip line comments; `unsafe` in prose (like this test's
            // own docs) doesn't count, so require the keyword form.
            let code = line.split("//").next().unwrap_or("");
            let mentions_keyword = code
                .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                .any(|w| w == "unsafe");
            if mentions_keyword && !code.contains("forbid(unsafe_code)") {
                offenders.push(format!("{}:{}", file.display(), i + 1));
            }
        }
    }
    assert!(offenders.is_empty(), "unsafe code found at: {offenders:?}");
}
