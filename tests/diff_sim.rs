//! Differential suite: the event-driven core against the stepping
//! oracle.
//!
//! `EngineKind::Event` promises **bit-identical** behaviour to the
//! cycle-synchronous stepping engine — same outcomes, same final
//! [`SimState`], same cycle counts, same [`Stats`], and the same
//! `sim.*` trace counters — across every feature that reaches the
//! engine: arbitration policies, stall plans, clock skew, decision
//! hooks, and mid-run stats observation. This file holds that
//! contract on the paper's constructions (Figures 1–3, dateline and
//! clockwise rings) and on proptest-generated random topologies and
//! workloads. Any divergence is an event-core bug by definition: the
//! stepping engine is the model written straight from Section 3 of
//! the paper.

use std::sync::{Arc, Mutex, OnceLock};

use cyclic_wormhole::core::paper::{fig1, fig2, fig3};
use cyclic_wormhole::net::topology::{line, ring_unidirectional, ring_with_vcs, Mesh};
use cyclic_wormhole::net::{Network, NodeId};
use cyclic_wormhole::route::algorithms::{
    clockwise_ring, dateline_ring, shortest_path_table, xy_mesh,
};
use cyclic_wormhole::route::TableRouting;
use cyclic_wormhole::sim::hooks::DecisionHook;
use cyclic_wormhole::sim::runner::{ArbitrationPolicy, EngineKind, Outcome, Runner, StallPlan};
use cyclic_wormhole::sim::skew::SkewModel;
use cyclic_wormhole::sim::{traffic, Decisions, MessageSpec, Sim, SimState};
use cyclic_wormhole::trace::{MemoryRecorder, TraceReport};
use proptest::prelude::*;
use rand::SeedableRng;

/// The wormtrace recorder is process-global; tests that install one
/// must not interleave.
fn trace_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Span totals are wall-clock and never bit-stable; zero them so
/// reports compare on structure and counts only.
fn normalized(mut report: TraceReport) -> TraceReport {
    for stat in report.spans.values_mut() {
        stat.total = std::time::Duration::ZERO;
    }
    report
}

/// Configuration for one differential run.
#[derive(Clone, Default)]
struct RunConfig {
    stalls: Option<StallPlan>,
    skew: Option<SkewModel>,
}

fn build_runner<'a>(
    sim: &'a Sim,
    policy: &ArbitrationPolicy,
    cfg: &RunConfig,
    kind: EngineKind,
) -> Runner<'a> {
    let mut r = Runner::new(sim, policy.clone()).with_engine(kind);
    if let Some(stalls) = &cfg.stalls {
        r = r.with_stalls(stalls.clone());
    }
    if let Some(skew) = &cfg.skew {
        r = r.with_skew(skew.clone());
    }
    r
}

/// Run the scenario under both engines and assert every observable is
/// bit-identical. Returns the (shared) outcome for callers that want
/// to assert on it.
fn assert_engines_agree(
    label: &str,
    sim: &Sim,
    policy: &ArbitrationPolicy,
    cfg: &RunConfig,
    max_cycles: u64,
) -> Outcome {
    let mut stepping = build_runner(sim, policy, cfg, EngineKind::Stepping);
    let oracle = stepping.run(max_cycles);
    let mut event = build_runner(sim, policy, cfg, EngineKind::Event);
    let candidate = event.run(max_cycles);

    assert_eq!(
        oracle, candidate,
        "{label}/{policy:?}: outcome diverged between engines"
    );
    assert_eq!(
        stepping.state(),
        event.state(),
        "{label}/{policy:?}: final state diverged"
    );
    assert_eq!(
        stepping.time(),
        event.time(),
        "{label}/{policy:?}: cycle count diverged"
    );
    assert_eq!(
        stepping.stats(),
        event.stats(),
        "{label}/{policy:?}: stats diverged"
    );
    oracle
}

/// All four arbitration policies; `favored` seeds the adversarial
/// policy's priority list from the workload's own message ids.
fn all_policies(sim: &Sim) -> Vec<ArbitrationPolicy> {
    vec![
        ArbitrationPolicy::LowestId,
        ArbitrationPolicy::RoundRobin,
        ArbitrationPolicy::OldestFirst,
        ArbitrationPolicy::Adversarial {
            favored: sim.messages().take(2).collect(),
        },
    ]
}

/// The paper constructions plus seeded random mesh traffic.
fn workloads() -> Vec<(&'static str, Network, TableRouting, Vec<MessageSpec>)> {
    let mut out = Vec::new();
    let c = fig1::cyclic_dependency();
    out.push(("fig1", c.net.clone(), c.table.clone(), c.message_specs()));
    let c = fig2::two_message_deadlock();
    out.push(("fig2", c.net.clone(), c.table.clone(), c.message_specs()));
    for s in fig3::all_scenarios() {
        let c = s.spec.build();
        let specs = s.message_specs(&c);
        out.push(("fig3", c.net.clone(), c.table.clone(), specs));
    }
    for seed in [3u64, 11, 42] {
        let mesh = Mesh::new(&[4, 4]);
        let table = xy_mesh(&mesh).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let specs = traffic::uniform_random(mesh.network(), &table, &mut rng, 0.3, 30, (2, 6));
        out.push(("mesh4x4", mesh.network().clone(), table, specs));
    }
    out
}

#[test]
fn figures_and_mesh_agree_under_all_policies() {
    for (name, net, table, specs) in workloads() {
        let sim = Sim::new(&net, &table, specs, Some(1)).expect("routed");
        for policy in all_policies(&sim) {
            assert_engines_agree(name, &sim, &policy, &RunConfig::default(), 10_000);
        }
    }
}

#[test]
fn deeper_queues_agree() {
    for capacity in [2usize, 3] {
        for (name, net, table, specs) in workloads() {
            let sim = Sim::new(&net, &table, specs, Some(capacity)).expect("routed");
            assert_engines_agree(
                name,
                &sim,
                &ArbitrationPolicy::OldestFirst,
                &RunConfig::default(),
                10_000,
            );
        }
    }
}

#[test]
fn dateline_and_clockwise_rings_agree() {
    // Clockwise unidirectional rings: all-around traffic deadlocks
    // without virtual channels; the dateline split delivers. Both
    // verdicts must be engine-independent.
    for n in [3usize, 4, 6] {
        let (net, nodes) = ring_unidirectional(n);
        let table = clockwise_ring(&net, &nodes).expect("ring routes");
        let specs: Vec<MessageSpec> = (0..n)
            .map(|i| MessageSpec::new(nodes[i], nodes[(i + n - 1) % n], 3))
            .collect();
        let sim = Sim::new(&net, &table, specs, Some(1)).expect("routed");
        for policy in all_policies(&sim) {
            assert_engines_agree("clockwise", &sim, &policy, &RunConfig::default(), 10_000);
        }
    }
    for n in [4usize, 5, 6] {
        let (net, nodes) = ring_with_vcs(n, 2);
        let table = dateline_ring(&net, &nodes).expect("dateline routes");
        let specs: Vec<MessageSpec> = (0..n)
            .map(|i| MessageSpec::new(nodes[i], nodes[(i + n - 1) % n], 3))
            .collect();
        let sim = Sim::new(&net, &table, specs, Some(1)).expect("routed");
        for policy in all_policies(&sim) {
            let outcome =
                assert_engines_agree("dateline", &sim, &policy, &RunConfig::default(), 10_000);
            assert!(
                matches!(outcome, Outcome::Delivered { .. }),
                "dateline ring must deliver (n={n}, {policy:?})"
            );
        }
    }
}

#[test]
fn stall_plans_agree() {
    for (name, net, table, specs) in workloads() {
        let sim = Sim::new(&net, &table, specs, Some(1)).expect("routed");
        // Stall each message on a deterministic comb of cycles.
        let mut plan = StallPlan::new();
        for (i, m) in sim.messages().enumerate() {
            let phase = (i as u64) % 5;
            plan.insert(m, (0..8).map(|k| phase + 3 * k).collect());
        }
        let cfg = RunConfig {
            stalls: Some(plan),
            ..RunConfig::default()
        };
        for policy in all_policies(&sim) {
            assert_engines_agree(name, &sim, &policy, &cfg, 10_000);
        }
    }
}

#[test]
fn clock_skew_agrees() {
    for (name, net, table, specs) in workloads() {
        let sim = Sim::new(&net, &table, specs, Some(1)).expect("routed");
        let mut skew = SkewModel::none(&net);
        for (i, node) in net.nodes().enumerate() {
            if i % 2 == 0 {
                let period = 4 + (i as u64 % 3);
                skew = skew.with_pause(node, period, i as u64 % period);
            }
        }
        let cfg = RunConfig {
            skew: Some(skew),
            ..RunConfig::default()
        };
        for policy in all_policies(&sim) {
            assert_engines_agree(name, &sim, &policy, &cfg, 10_000);
        }
    }
}

/// A deterministic hook exercising every mutation the seam allows:
/// pruning injections, stalling in-flight worms, and freezing
/// channels — the same operations `wormfault` performs.
struct ChaosHook {
    victim_channel: usize,
}

impl DecisionHook for ChaosHook {
    fn adjust(&mut self, sim: &Sim, state: &SimState, time: u64, d: &mut Decisions) {
        if time.is_multiple_of(3) && !d.inject.is_empty() {
            let keep = d.inject.len().div_ceil(2);
            d.inject.truncate(keep);
        }
        if time % 5 == 1 {
            if let Some(m) = sim
                .messages()
                .find(|&m| state.is_started(m) && !state.is_delivered(m, sim.length(m)))
            {
                if !d.stalls.contains(&m) {
                    d.stalls.push(m);
                }
            }
        }
        if time % 7 == 2 {
            let c = cyclic_wormhole::net::ChannelId::from_index(self.victim_channel);
            if !d.frozen.contains(&c) {
                d.frozen.push(c);
            }
        }
    }
}

#[test]
fn hooked_runs_agree() {
    for (name, net, table, specs) in workloads() {
        let sim = Sim::new(&net, &table, specs, Some(1)).expect("routed");
        let victim = net.channel_count() / 2;
        for policy in all_policies(&sim) {
            let mut stepping = Runner::new(&sim, policy.clone()).with_engine(EngineKind::Stepping);
            let mut hook = ChaosHook {
                victim_channel: victim,
            };
            let oracle = stepping.run_hooked(10_000, &mut hook);

            let mut event = Runner::new(&sim, policy.clone()).with_engine(EngineKind::Event);
            let mut hook = ChaosHook {
                victim_channel: victim,
            };
            let candidate = event.run_hooked(10_000, &mut hook);

            assert_eq!(oracle, candidate, "{name}/{policy:?}: hooked outcome");
            assert_eq!(
                stepping.state(),
                event.state(),
                "{name}/{policy:?}: hooked final state"
            );
            assert_eq!(
                stepping.stats(),
                event.stats(),
                "{name}/{policy:?}: hooked stats"
            );
        }
    }
}

/// Mid-run observation: `stats()` must be exact after every single
/// step, not only at run end (the event core settles its interval
/// accounting at observation points).
#[test]
fn lockstep_stats_agree_every_cycle() {
    for (name, net, table, specs) in workloads() {
        let sim = Sim::new(&net, &table, specs, Some(1)).expect("routed");
        let mut stepping =
            Runner::new(&sim, ArbitrationPolicy::OldestFirst).with_engine(EngineKind::Stepping);
        let mut event =
            Runner::new(&sim, ArbitrationPolicy::OldestFirst).with_engine(EngineKind::Event);
        for cycle in 0..300u64 {
            stepping.step();
            event.step();
            assert_eq!(
                stepping.state(),
                event.state(),
                "{name}: state diverged at cycle {cycle}"
            );
            assert_eq!(
                stepping.stats(),
                event.stats(),
                "{name}: stats diverged at cycle {cycle}"
            );
        }
    }
}

#[test]
fn trace_reports_agree() {
    let _guard = trace_lock().lock().unwrap();
    for (name, net, table, specs) in workloads() {
        let sim = Sim::new(&net, &table, specs, Some(1)).expect("routed");

        let rec = Arc::new(MemoryRecorder::new());
        cyclic_wormhole::trace::install(rec.clone());
        let mut stepping =
            Runner::new(&sim, ArbitrationPolicy::OldestFirst).with_engine(EngineKind::Stepping);
        let _ = stepping.run(10_000);
        cyclic_wormhole::trace::uninstall();
        let oracle = normalized(rec.snapshot());

        let rec = Arc::new(MemoryRecorder::new());
        cyclic_wormhole::trace::install(rec.clone());
        let mut event =
            Runner::new(&sim, ArbitrationPolicy::OldestFirst).with_engine(EngineKind::Event);
        let _ = event.run(10_000);
        cyclic_wormhole::trace::uninstall();
        let candidate = normalized(rec.snapshot());

        assert_eq!(
            oracle, candidate,
            "{name}: sim.* trace counters diverged between engines"
        );
    }
}

fn arb_topology() -> impl Strategy<Value = (Network, Vec<NodeId>, TableRouting)> {
    prop_oneof![
        (2usize..6).prop_map(|n| {
            let (net, nodes) = line(n);
            let table = shortest_path_table(&net).expect("line routes");
            (net, nodes, table)
        }),
        (3usize..6).prop_map(|n| {
            let (net, nodes) = ring_unidirectional(n);
            let table = clockwise_ring(&net, &nodes).expect("ring routes");
            (net, nodes, table)
        }),
        (4usize..6).prop_map(|n| {
            let (net, nodes) = ring_with_vcs(n, 2);
            let table = dateline_ring(&net, &nodes).expect("dateline routes");
            (net, nodes, table)
        }),
        ((2usize..4), (2usize..4)).prop_map(|(w, h)| {
            let mesh = Mesh::new(&[w, h]);
            let table = shortest_path_table(mesh.network()).expect("mesh routes");
            let nodes: Vec<NodeId> = mesh.network().nodes().collect();
            (mesh.into_network(), nodes, table)
        }),
    ]
}

fn arb_policy() -> impl Strategy<Value = ArbitrationPolicy> {
    prop_oneof![
        Just(ArbitrationPolicy::LowestId),
        Just(ArbitrationPolicy::RoundRobin),
        Just(ArbitrationPolicy::OldestFirst),
        Just(ArbitrationPolicy::Adversarial { favored: vec![] }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary topology, traffic, capacity, policy, stall comb and
    /// skew: both engines agree on everything observable.
    #[test]
    fn engines_agree_on_random_workloads(
        (net, nodes, table) in arb_topology(),
        raw_messages in prop::collection::vec((0usize..36, 0usize..36, 1usize..6), 1..6),
        policy in arb_policy(),
        capacity in 1usize..4,
        stall_seed in any::<u32>(),
        skew_period in prop_oneof![Just(None), (3u64..8).prop_map(Some)],
    ) {
        let specs: Vec<MessageSpec> = raw_messages
            .iter()
            .map(|&(s, d, len)| {
                let src = nodes[s % nodes.len()];
                let mut dst = nodes[d % nodes.len()];
                if dst == src {
                    dst = nodes[(d + 1) % nodes.len()];
                }
                MessageSpec::new(src, dst, len)
            })
            .filter(|m| table.path(m.src, m.dst).is_some())
            .collect();
        prop_assume!(!specs.is_empty());
        let sim = Sim::new(&net, &table, specs, Some(capacity)).expect("routed");

        // Deterministic stall comb derived from the seed.
        let mut plan = StallPlan::new();
        let mut x = stall_seed;
        for m in sim.messages() {
            x = x.wrapping_mul(2654435761).wrapping_add(12345);
            if x.is_multiple_of(3) {
                let phase = u64::from(x % 7);
                plan.insert(m, (0..6).map(|k| phase + 2 * k).collect());
            }
        }
        let mut skew = SkewModel::none(&net);
        if let Some(period) = skew_period {
            for (i, node) in net.nodes().enumerate() {
                if i % 3 == 0 {
                    skew = skew.with_pause(node, period, i as u64 % period);
                }
            }
        }
        let cfg = RunConfig { stalls: Some(plan), skew: Some(skew) };
        assert_engines_agree("random", &sim, &policy, &cfg, 2_000);
    }

    /// Random decision sequences applied identically through the hook
    /// seam on both engines (the hook overrides injections/stalls with
    /// its own pseudo-random choices each cycle).
    #[test]
    fn engines_agree_under_random_hooks(
        (net, nodes, table) in arb_topology(),
        raw_messages in prop::collection::vec((0usize..36, 0usize..36, 1usize..5), 1..5),
        words in prop::collection::vec(any::<u32>(), 1..32),
    ) {
        let specs: Vec<MessageSpec> = raw_messages
            .iter()
            .map(|&(s, d, len)| {
                let src = nodes[s % nodes.len()];
                let mut dst = nodes[d % nodes.len()];
                if dst == src {
                    dst = nodes[(d + 1) % nodes.len()];
                }
                MessageSpec::new(src, dst, len)
            })
            .filter(|m| table.path(m.src, m.dst).is_some())
            .collect();
        prop_assume!(!specs.is_empty());
        let sim = Sim::new(&net, &table, specs, Some(1)).expect("routed");

        struct WordHook {
            words: Vec<u32>,
        }
        impl DecisionHook for WordHook {
            fn adjust(&mut self, sim: &Sim, state: &SimState, time: u64, d: &mut Decisions) {
                let w = self.words[time as usize % self.words.len()]
                    .wrapping_mul(2654435761)
                    .wrapping_add(time as u32);
                d.inject.retain(|m| w & (1 << (m.index() % 16)) != 0);
                for m in sim.messages() {
                    if state.is_started(m)
                        && !state.is_delivered(m, sim.length(m))
                        && w & (1 << (16 + m.index() % 16)) != 0
                        && !d.stalls.contains(&m)
                    {
                        d.stalls.push(m);
                    }
                }
            }
        }

        let mut stepping = Runner::new(&sim, ArbitrationPolicy::OldestFirst)
            .with_engine(EngineKind::Stepping);
        let mut hook = WordHook { words: words.clone() };
        let oracle = stepping.run_hooked(2_000, &mut hook);

        let mut event = Runner::new(&sim, ArbitrationPolicy::OldestFirst)
            .with_engine(EngineKind::Event);
        let mut hook = WordHook { words };
        let candidate = event.run_hooked(2_000, &mut hook);

        prop_assert_eq!(oracle, candidate);
        prop_assert_eq!(stepping.state(), event.state());
        prop_assert_eq!(stepping.stats(), event.stats());
    }
}
