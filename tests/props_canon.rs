//! Differential properties of symmetry canonicalization: on randomly
//! generated rotation-symmetric family instances, the canonicalized
//! search must agree with the uncanonicalized sequential oracle on
//! every verdict, the identity canonicalizer must be a bit-identical
//! no-op, and the parallel engine must agree with the sequential one
//! on the quotient space.

use std::sync::Arc;

use cyclic_wormhole::core::family::{CycleMessageSpec, SharedCycleSpec};
use cyclic_wormhole::core::symmetry::{family_canonicalizer, invariant_rotations};
use cyclic_wormhole::search::{
    explore, explore_parallel, replay, IdentityCanonicalizer, SearchConfig, Verdict,
};
use cyclic_wormhole::sim::Sim;
use proptest::prelude::*;

/// A rotation-symmetric spec: a random block of message shapes
/// repeated `reps >= 2` times, so rotation by the block length is an
/// invariance by construction.
fn arb_symmetric_spec() -> impl Strategy<Value = (SharedCycleSpec, usize)> {
    (
        prop::collection::vec((1usize..3, 1usize..4, any::<bool>()), 1..3),
        2usize..4,
    )
        .prop_map(|(block, reps)| {
            let block: Vec<CycleMessageSpec> = block
                .into_iter()
                .map(|(d, g, shares)| {
                    if shares {
                        CycleMessageSpec::shared(d, g, 1)
                    } else {
                        CycleMessageSpec::private(d, g, 1)
                    }
                })
                .collect();
            let len = block.len();
            let messages: Vec<CycleMessageSpec> =
                block.iter().cloned().cycle().take(len * reps).collect();
            (SharedCycleSpec { messages }, len)
        })
}

fn verdict_kind(v: &Verdict) -> &'static str {
    match v {
        Verdict::DeadlockReachable(_) => "deadlock",
        Verdict::DeadlockFree => "free",
        Verdict::Inconclusive { .. } => "inconclusive",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A repeated-block instance always yields a derivable,
    /// verdict-preserving canonicalizer, and the quotient space is
    /// never larger than the full one.
    #[test]
    fn canonicalized_search_agrees_with_oracle(
        (spec, block) in arb_symmetric_spec(),
        budget in 0u32..2,
    ) {
        let c = spec.build();
        let k = c.built.len();
        // Rotation by the block length is a spec invariance by
        // construction, so the derivation must find it.
        prop_assert!(invariant_rotations(&c).contains(&block) || block == k);
        let sim = Sim::new(&c.net, &c.table, c.message_specs(), Some(1)).unwrap();
        let canon = family_canonicalizer(&c, &sim);
        prop_assert!(canon.is_some(), "repeated block must derive a symmetry");
        let canon = canon.unwrap();
        prop_assert!(canon.order() >= 1);

        let config = SearchConfig {
            stall_budget: budget,
            max_states: 200_000,
            ..SearchConfig::default()
        };
        let plain = explore(&sim, &config);
        let folded = explore(&sim, &config.clone().canonicalized(canon));
        prop_assert_eq!(
            verdict_kind(&plain.verdict),
            verdict_kind(&folded.verdict),
            "canonicalization changed the verdict"
        );
        if !plain.verdict.is_inconclusive() {
            prop_assert!(folded.states_explored <= plain.states_explored);
        }
        // A deadlock witness found on the quotient space must replay
        // to a real deadlock on the unquotiented simulator.
        if let Verdict::DeadlockReachable(w) = &folded.verdict {
            prop_assert!(replay(&sim, w).is_some(), "quotient witness failed to replay");
        }
    }

    /// The identity canonicalizer reproduces the plain search exactly:
    /// same verdict, same state count, same dedup counters.
    #[test]
    fn identity_canonicalizer_is_a_noop(
        (spec, _block) in arb_symmetric_spec(),
        budget in 0u32..2,
    ) {
        let c = spec.build();
        let sim = Sim::new(&c.net, &c.table, c.message_specs(), Some(1)).unwrap();
        let config = SearchConfig {
            stall_budget: budget,
            max_states: 200_000,
            ..SearchConfig::default()
        };
        let plain = explore(&sim, &config);
        let ident = explore(
            &sim,
            &config.clone().canonicalized(Arc::new(IdentityCanonicalizer)),
        );
        prop_assert_eq!(&plain.verdict, &ident.verdict);
        prop_assert_eq!(plain.states_explored, ident.states_explored);
        prop_assert_eq!(plain.metrics.dedup_hits, ident.metrics.dedup_hits);
        prop_assert_eq!(plain.metrics.dedup_lookups, ident.metrics.dedup_lookups);
    }

    /// The parallel engine explores the same quotient space as the
    /// sequential oracle: same verdict kind, same distinct-state
    /// count, at every thread count.
    #[test]
    fn parallel_canonicalized_agrees(
        (spec, _block) in arb_symmetric_spec(),
        budget in 0u32..2,
    ) {
        let c = spec.build();
        let sim = Sim::new(&c.net, &c.table, c.message_specs(), Some(1)).unwrap();
        let Some(canon) = family_canonicalizer(&c, &sim) else {
            return Err(TestCaseError::Reject("no symmetry derived".into()));
        };
        let config = SearchConfig {
            stall_budget: budget,
            max_states: 200_000,
            ..SearchConfig::default()
        }
        .canonicalized(canon);
        let seq = explore(&sim, &config);
        if seq.verdict.is_inconclusive() {
            return Err(TestCaseError::Reject("state cap hit".into()));
        }
        let reference = explore_parallel(&sim, &config, 1);
        for threads in [1, 4] {
            let par = explore_parallel(&sim, &config, threads);
            prop_assert_eq!(
                verdict_kind(&seq.verdict),
                verdict_kind(&par.verdict),
                "threads = {}", threads
            );
            if seq.verdict.is_free() {
                // Both engines exhaust the same quotiented reachable set.
                prop_assert_eq!(seq.states_explored, par.states_explored);
            }
            // BFS layer counts are schedule-independent even on the
            // quotient space: every thread count visits the same
            // number of states before the goal layer completes.
            prop_assert_eq!(reference.states_explored, par.states_explored);
            if let Verdict::DeadlockReachable(w) = &par.verdict {
                prop_assert!(replay(&sim, w).is_some(), "parallel quotient witness failed to replay");
            }
        }
    }
}
