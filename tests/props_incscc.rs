//! Adversarial differential harness for the incremental SCC engines.
//!
//! The HKMST balanced two-way engine is pinned to two oracles on the
//! same edge-insertion sequence:
//!
//! * **Tarjan** (`tarjan_scc` on the accumulated graph): final
//!   component partition and acyclicity after *every* insertion;
//! * **Pearce–Kelly** (`IncrementalScc`): the per-insertion cycle
//!   verdict (`add_edge`'s return) must agree at every step, so the
//!   two engines are interchangeable behind the `SccEngine` seam.
//!
//! Generators cover the shapes that historically break online order
//! maintenance: uniformly random sequences, dense cyclic CDG-shaped
//! graphs (local cliques bridged into rings, the no-VC dragonfly
//! pattern), pre-sorted and reverse-topological insertion orders
//! (all-consistent vs. all-violating extremes), mega-component merge
//! chains, and self-loop / duplicate-edge degeneracies.

use cyclic_wormhole::net::graph::{
    tarjan_scc, AdjList, HkmstScc, IncrementalScc, SccEngine, SccEngineKind,
};
use proptest::prelude::*;

/// Canonical Tarjan partition: each component sorted, components
/// ordered by smallest member — the form both engines' `components()`
/// emit.
fn tarjan_canonical(g: &AdjList) -> Vec<Vec<usize>> {
    let mut comps = tarjan_scc(g);
    for c in &mut comps {
        c.sort_unstable();
    }
    comps.sort_by_key(|c| c[0]);
    comps
}

/// Drive one edge sequence through HKMST, Pearce–Kelly and batch
/// Tarjan, asserting three-way agreement at every insertion point.
fn assert_sequence_agrees(n: usize, edges: &[(usize, usize)]) {
    let mut hkmst = HkmstScc::new(n);
    let mut pk = IncrementalScc::new(n);
    let mut g = AdjList::new(n);
    for (step, &(u, v)) in edges.iter().enumerate() {
        g.add_edge(u, v);
        let h_cycle = hkmst.add_edge(u, v);
        let p_cycle = pk.add_edge(u, v);
        assert_eq!(
            h_cycle, p_cycle,
            "step {step} ({u}->{v}): engines disagree on the cycle verdict"
        );
        let expect = tarjan_canonical(&g);
        assert_eq!(
            hkmst.components(),
            expect,
            "step {step} ({u}->{v}): HKMST diverged from Tarjan"
        );
        assert_eq!(
            pk.components(),
            expect,
            "step {step} ({u}->{v}): Pearce-Kelly diverged from Tarjan"
        );
        assert_eq!(hkmst.is_acyclic(), pk.is_acyclic(), "step {step}");
        assert_eq!(hkmst.component_count(), pk.component_count(), "step {step}");
    }
}

/// A dense cyclic CDG-shaped instance: `groups` local cliques (every
/// intra-group edge both ways, like the all-to-all local channels of a
/// dragonfly group) bridged into a global ring, the structure that
/// makes the no-VC dragonfly CDG adversarial for order maintenance.
fn cdg_shaped_edges(groups: usize, size: usize) -> (usize, Vec<(usize, usize)>) {
    let n = groups * size;
    let mut edges = Vec::new();
    for gidx in 0..groups {
        let base = gidx * size;
        for a in 0..size {
            for b in 0..size {
                if a != b {
                    edges.push((base + a, base + b));
                }
            }
        }
        edges.push((base, ((gidx + 1) % groups) * size));
    }
    (n, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Uniformly random insertion sequences: the bread-and-butter
    /// differential.
    #[test]
    fn random_sequences_agree(
        n in 2usize..14,
        raw in prop::collection::vec((0usize..14, 0usize..14), 0..48),
    ) {
        let edges: Vec<(usize, usize)> =
            raw.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        assert_sequence_agrees(n, &edges);
    }

    /// The same sequences through the `SccEngine` wrapper: the seam
    /// must not change any verdict.
    #[test]
    fn engine_seam_is_transparent(
        n in 2usize..10,
        raw in prop::collection::vec((0usize..10, 0usize..10), 0..30),
    ) {
        let edges: Vec<(usize, usize)> =
            raw.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let mut direct = HkmstScc::new(n);
        let mut wrapped = SccEngine::new(SccEngineKind::Hkmst, n);
        let mut oracle = SccEngine::new(SccEngineKind::PearceKelly, n);
        for &(u, v) in &edges {
            let d = direct.add_edge(u, v);
            prop_assert_eq!(wrapped.add_edge(u, v), d);
            prop_assert_eq!(oracle.add_edge(u, v), d);
            prop_assert_eq!(wrapped.components(), direct.components());
            prop_assert_eq!(oracle.components(), direct.components());
        }
        prop_assert_eq!(wrapped.is_acyclic(), oracle.is_acyclic());
    }

    /// Random sequences under an artificially cramped tag space, so
    /// the HKMST order-maintenance relabel path runs constantly.
    #[test]
    fn cramped_tag_space_agrees(
        n in 2usize..12,
        gap in 1u64..4,
        raw in prop::collection::vec((0usize..12, 0usize..12), 0..40),
    ) {
        let mut hkmst = HkmstScc::with_initial_gap(n, gap);
        let mut g = AdjList::new(n);
        for &(u, v) in &raw {
            let (u, v) = (u % n, v % n);
            g.add_edge(u, v);
            hkmst.add_edge(u, v);
            prop_assert_eq!(hkmst.components(), tarjan_canonical(&g));
        }
    }
}

#[test]
fn dense_cyclic_cdg_shaped_graphs() {
    // Bridged local cliques — the miniature of the no-VC dragonfly
    // CDG. Insert in generator order, then in reverse, then shuffled
    // deterministically.
    use rand::{RngExt, SeedableRng};
    for (groups, size) in [(3, 3), (4, 4), (5, 3)] {
        let (n, edges) = cdg_shaped_edges(groups, size);
        assert_sequence_agrees(n, &edges);
        let reversed: Vec<_> = edges.iter().rev().copied().collect();
        assert_sequence_agrees(n, &reversed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut shuffled = edges.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.random_range(0..i + 1));
        }
        assert_sequence_agrees(n, &shuffled);
    }
}

#[test]
fn presorted_insertion_order_never_violates() {
    // Edges inserted in topological order (u < v throughout) never
    // trigger the violation path; the engines must stay acyclic and
    // agree with Tarjan trivially.
    let n = 24;
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1..n).step_by(3) {
            edges.push((u, v));
        }
    }
    assert_sequence_agrees(n, &edges);
}

#[test]
fn reverse_topological_insertion_order_always_violates() {
    // Every edge (u > v in initial-order terms) is an order violation
    // with an empty affected region or a long one — the all-violating
    // extreme of the reorder logic, still acyclic throughout.
    let n = 24;
    let mut edges = Vec::new();
    for u in (0..n).rev() {
        for v in (0..u).step_by(3) {
            edges.push((u, v));
        }
    }
    assert_sequence_agrees(n, &edges);
}

#[test]
fn mega_component_merge_chain() {
    // Grow one giant SCC by absorbing rings one at a time: every merge
    // extends the dominant component, stressing adjacency compaction
    // and tag reuse of the survivor.
    let rings = 8;
    let size = 5;
    let n = rings * size;
    let mut edges = Vec::new();
    for r in 0..rings {
        let base = r * size;
        for i in 0..size {
            edges.push((base + i, base + (i + 1) % size));
        }
    }
    for r in 0..rings - 1 {
        edges.push((r * size, (r + 1) * size));
        edges.push(((r + 1) * size, r * size));
    }
    assert_sequence_agrees(n, &edges);
}

#[test]
fn self_loops_and_duplicate_edges() {
    // Self-loops flip acyclicity without merging; duplicates must be
    // idempotent on the partition no matter how often they arrive.
    let edges = [
        (0, 1),
        (0, 1),
        (1, 2),
        (2, 2),
        (1, 2),
        (2, 0),
        (2, 0),
        (0, 0),
        (3, 1),
        (3, 1),
    ];
    assert_sequence_agrees(4, &edges);
}

#[test]
fn parallel_branch_merges_capture_every_branch() {
    // Two disjoint v ⇒ u branches closed by one back edge: the merge
    // set must contain both branches (a first-path-only merge is the
    // classic incremental-SCC bug).
    let edges = [
        (1, 2),
        (2, 5),
        (1, 3),
        (3, 4),
        (4, 5),
        (5, 1),
        // Then extend the component through a second closure.
        (5, 6),
        (6, 1),
    ];
    assert_sequence_agrees(7, &edges);
}
