//! The [`Lint`] trait.

use crate::context::LintContext;
use crate::diagnostic::{Diagnostic, Severity};

/// One named check over a routing specification.
///
/// A lint reads the shared [`LintContext`] and emits zero or more
/// [`Diagnostic`]s. Implementations must be deterministic (same spec,
/// same diagnostics in the same order) and must stamp every diagnostic
/// with their own [`code`](Lint::code) and [`name`](Lint::name) — the
/// registry asserts this in debug builds.
pub trait Lint {
    /// Stable code, `W` followed by three digits. The leading digit
    /// picks the range: 0 = structure, 1 = routing, 2 = CDG/theorems.
    fn code(&self) -> &'static str;

    /// Stable kebab-case name.
    fn name(&self) -> &'static str;

    /// One-line description for catalogs and docs.
    fn description(&self) -> &'static str;

    /// Which part of the paper the lint operationalizes (e.g.
    /// `"Theorem 4"`, `"Definition 8 / Corollary 2"`), or a hygiene
    /// note for structural lints.
    fn paper_anchor(&self) -> &'static str;

    /// Severity applied when the run's config has no override for this
    /// code.
    fn default_severity(&self) -> Severity;

    /// Run the check. `severity` is the already-resolved effective
    /// severity for this run; every emitted diagnostic must carry it.
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic>;
}
