//! The `wormlint/1` machine-readable report format.
//!
//! Hand-rolled (the workspace has no serde) but strict: all object
//! keys are emitted in sorted order, strings are JSON-escaped, the
//! document ends with a single trailing newline, and the same reports
//! always produce byte-identical output. CI re-parses the result with
//! an independent checker (sorted keys, stable codes) and byte-compares
//! the committed corpus snapshot.
//!
//! Schema (`wormlint/1`):
//!
//! ```json
//! {
//!   "schema": "wormlint/1",
//!   "targets": {
//!     "<name>": {
//!       "diagnostics": [
//!         {
//!           "code": "W203",
//!           "entities": ["cycle:c0->c1", "channel:cs(...)"],
//!           "lint": "reachable-deadlock-two-sharers",
//!           "message": "...",
//!           "severity": "warn",
//!           "witness": {"shared_channel": "...", "sharers": "2"}
//!         }
//!       ],
//!       "summary": {"allow": 1, "deny": 0, "warn": 2},
//!       "verdict": "deadlockable"
//!     }
//!   }
//! }
//! ```

use crate::registry::LintReport;

/// The schema identifier stamped into every JSON report.
pub const SCHEMA: &str = "wormlint/1";

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_report(out: &mut String, report: &LintReport, indent: &str) {
    let pad = format!("{indent}  ");
    out.push_str("{\n");
    out.push_str(&format!("{pad}\"diagnostics\": ["));
    let mut first = true;
    for d in &report.diagnostics {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str(&format!("{pad}  {{\n"));
        out.push_str(&format!("{pad}    \"code\": \"{}\",\n", escape(d.code)));
        out.push_str(&format!("{pad}    \"entities\": ["));
        for (i, e) in d.entities.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", escape(e)));
        }
        out.push_str("],\n");
        out.push_str(&format!("{pad}    \"lint\": \"{}\",\n", escape(d.lint)));
        out.push_str(&format!(
            "{pad}    \"message\": \"{}\",\n",
            escape(&d.message)
        ));
        out.push_str(&format!(
            "{pad}    \"severity\": \"{}\",\n",
            d.severity.name()
        ));
        out.push_str(&format!("{pad}    \"witness\": {{"));
        let mut wfirst = true;
        for (k, v) in &d.witness {
            out.push_str(if wfirst { "\n" } else { ",\n" });
            wfirst = false;
            out.push_str(&format!("{pad}      \"{}\": \"{}\"", escape(k), escape(v)));
        }
        if wfirst {
            out.push_str("}\n");
        } else {
            out.push_str(&format!("\n{pad}    }}\n"));
        }
        out.push_str(&format!("{pad}  }}"));
    }
    if first {
        out.push_str("],\n");
    } else {
        out.push_str(&format!("\n{pad}],\n"));
    }
    out.push_str(&format!(
        "{pad}\"summary\": {{\"allow\": {}, \"deny\": {}, \"warn\": {}}},\n",
        report.allow_count(),
        report.deny_count(),
        report.warn_count(),
    ));
    out.push_str(&format!(
        "{pad}\"verdict\": \"{}\"\n",
        report.verdict.name()
    ));
    out.push_str(&format!("{indent}}}"));
}

/// Serialize named reports as a `wormlint/1` document.
///
/// Target names must arrive pre-sorted (the corpus and CLI guarantee
/// this); the function debug-asserts it so the sorted-keys invariant
/// holds over the whole document.
pub fn reports_to_json(reports: &[(&str, &LintReport)]) -> String {
    debug_assert!(
        reports.windows(2).all(|w| w[0].0 < w[1].0),
        "target names must be sorted and unique"
    );
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{}\",\n", escape(SCHEMA)));
    out.push_str("  \"targets\": {");
    let mut first = true;
    for (name, report) in reports {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str(&format!("    \"{}\": ", escape(name)));
        push_report(&mut out, report, "    ");
    }
    out.push_str(if first { "}\n" } else { "\n  }\n" });
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{LintConfig, Registry};
    use worm_core::paper::{fig1, fig2};

    /// Minimal JSON validator: structure, string escapes, and the
    /// sorted-key invariant on every object.
    fn check_json(s: &str) {
        let chars: Vec<char> = s.chars().collect();
        let mut pos = 0usize;
        check_value(&chars, &mut pos);
        skip_ws(&chars, &mut pos);
        assert_eq!(pos, chars.len(), "trailing garbage after JSON value");
    }

    fn skip_ws(c: &[char], pos: &mut usize) {
        while *pos < c.len() && c[*pos].is_whitespace() {
            *pos += 1;
        }
    }

    fn check_value(c: &[char], pos: &mut usize) {
        skip_ws(c, pos);
        match c[*pos] {
            '{' => check_object(c, pos),
            '[' => check_array(c, pos),
            '"' => {
                check_string(c, pos);
            }
            _ => {
                // number / true / false / null
                let start = *pos;
                while *pos < c.len() && !",}] \n".contains(c[*pos]) {
                    *pos += 1;
                }
                assert!(*pos > start, "empty scalar at {pos}");
            }
        }
    }

    fn check_object(c: &[char], pos: &mut usize) {
        assert_eq!(c[*pos], '{');
        *pos += 1;
        let mut keys: Vec<String> = Vec::new();
        loop {
            skip_ws(c, pos);
            if c[*pos] == '}' {
                *pos += 1;
                break;
            }
            if !keys.is_empty() {
                assert_eq!(c[*pos], ',', "expected comma at {pos}");
                *pos += 1;
                skip_ws(c, pos);
            }
            let key = check_string(c, pos);
            if let Some(prev) = keys.last() {
                assert!(prev < &key, "keys out of order: {prev:?} before {key:?}");
            }
            keys.push(key);
            skip_ws(c, pos);
            assert_eq!(c[*pos], ':', "expected colon at {pos}");
            *pos += 1;
            check_value(c, pos);
        }
    }

    fn check_array(c: &[char], pos: &mut usize) {
        assert_eq!(c[*pos], '[');
        *pos += 1;
        let mut first = true;
        loop {
            skip_ws(c, pos);
            if c[*pos] == ']' {
                *pos += 1;
                break;
            }
            if !first {
                assert_eq!(c[*pos], ',', "expected comma at {pos}");
                *pos += 1;
            }
            first = false;
            check_value(c, pos);
        }
    }

    fn check_string(c: &[char], pos: &mut usize) -> String {
        assert_eq!(c[*pos], '"', "expected string at {pos}");
        *pos += 1;
        let mut out = String::new();
        while c[*pos] != '"' {
            if c[*pos] == '\\' {
                *pos += 1;
                assert!("\"\\nrtu".contains(c[*pos]), "bad escape at {pos}");
                if c[*pos] == 'u' {
                    *pos += 4;
                }
            }
            out.push(c[*pos]);
            *pos += 1;
        }
        *pos += 1;
        out
    }

    #[test]
    fn corpus_reports_are_valid_sorted_json() {
        let registry = Registry::with_default_lints();
        let config = LintConfig::default();
        let c1 = fig1::cyclic_dependency();
        let c2 = fig2::two_message_deadlock();
        let r1 = registry.run(&c1.net, &c1.table, &config);
        let r2 = registry.run(&c2.net, &c2.table, &config);
        let json = reports_to_json(&[("fig1", &r1), ("fig2", &r2)]);
        check_json(&json);
        assert!(json.starts_with("{\n  \"schema\": \"wormlint/1\",\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"verdict\": \"deadlockable\""));
        // Byte-determinism across runs.
        let r1b = registry.run(&c1.net, &c1.table, &config);
        let r2b = registry.run(&c2.net, &c2.table, &config);
        assert_eq!(json, reports_to_json(&[("fig1", &r1b), ("fig2", &r2b)]));
    }

    #[test]
    fn empty_report_serializes() {
        let report = LintReport {
            diagnostics: Vec::new(),
            verdict: crate::StaticVerdict::FreeAcyclic,
        };
        let json = reports_to_json(&[("empty", &report)]);
        check_json(&json);
        assert!(json.contains("\"diagnostics\": []"));
    }
}
