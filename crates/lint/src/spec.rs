//! Resolve a `wormspec/1` verify section into a [`LintConfig`].
//!
//! Severity overrides are validated against the default registry's
//! lint codes, so `lint { W999 = allow }` is an `E014` resolution
//! error instead of a silently ignored key.

use wormnet::graph::SccEngineKind;
use wormspec::ast::{SccName, SeverityName, Verify};
use wormspec::diag::{codes, SpecError};

use crate::{LintConfig, Registry, Severity};

/// Map a spec SCC name onto the engine selector.
pub fn scc_engine(name: Option<SccName>) -> SccEngineKind {
    match name {
        Some(SccName::PearceKelly) => SccEngineKind::PearceKelly,
        Some(SccName::Hkmst) | None => SccEngineKind::Hkmst,
    }
}

fn severity(name: SeverityName) -> Severity {
    match name {
        SeverityName::Allow => Severity::Allow,
        SeverityName::Warn => Severity::Warn,
        SeverityName::Deny => Severity::Deny,
    }
}

/// Resolve the verify section (absent = all defaults) into a lint
/// configuration.
pub fn config_from_spec(verify: Option<&Verify>) -> Result<LintConfig, SpecError> {
    let mut config = LintConfig::default();
    let Some(v) = verify else {
        return Ok(config);
    };
    if !v.lint.is_empty() {
        let registry = Registry::with_default_lints();
        let known: Vec<&'static str> = registry.lints().iter().map(|l| l.code()).collect();
        for o in &v.lint {
            if !known.contains(&o.code.value.as_str()) {
                return Err(SpecError::new(
                    codes::RESOLVE,
                    format!(
                        "unknown lint code `{}` (see docs/LINTS.md for the catalog)",
                        o.code.value
                    ),
                    o.code.span,
                ));
            }
            config
                .overrides
                .insert(o.code.value.clone(), severity(o.severity.value));
        }
    }
    if let Some(d) = &v.deny_warnings {
        config.deny_warnings = d.value;
    }
    if let Some(m) = &v.max_cycles {
        config.max_cycles = usize::try_from(m.value)
            .map_err(|_| SpecError::new(codes::RANGE, "`max_cycles` out of range", m.span))?;
    }
    if let Some(m) = &v.max_candidates {
        config.max_candidates = usize::try_from(m.value)
            .map_err(|_| SpecError::new(codes::RANGE, "`max_candidates` out of range", m.span))?;
    }
    config.scc_engine = scc_engine(v.scc.as_ref().map(|s| s.value));
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormspec::parse;

    fn resolve(src: &str) -> Result<LintConfig, SpecError> {
        config_from_spec(parse(src).expect("spec parses").verify.as_ref())
    }

    #[test]
    fn defaults_match_the_rust_defaults() {
        let from_none = config_from_spec(None).unwrap();
        let from_empty = resolve(
            "wormspec/1\ntopology { kind = ring nodes = 4 }\nrouting { engine = clockwise_ring }\nverify { }\n",
        )
        .unwrap();
        let rust = LintConfig::default();
        for c in [&from_none, &from_empty] {
            assert_eq!(c.overrides, rust.overrides);
            assert_eq!(c.deny_warnings, rust.deny_warnings);
            assert_eq!(c.max_cycles, rust.max_cycles);
            assert_eq!(c.scc_engine, rust.scc_engine);
        }
    }

    #[test]
    fn overrides_budgets_and_engine_resolve() {
        let c = resolve(
            "wormspec/1\n\
             topology { kind = ring nodes = 4 }\n\
             routing { engine = clockwise_ring }\n\
             verify {\n\
               scc = pearce_kelly\n\
               max_cycles = 500\n\
               deny_warnings = true\n\
               lint { W101 = allow W201 = deny }\n\
             }\n",
        )
        .unwrap();
        assert_eq!(c.overrides.get("W101"), Some(&Severity::Allow));
        assert_eq!(c.overrides.get("W201"), Some(&Severity::Deny));
        assert_eq!(c.max_cycles, 500);
        assert!(c.deny_warnings);
        assert_eq!(c.scc_engine, SccEngineKind::PearceKelly);
    }

    #[test]
    fn unknown_lint_codes_fail_to_resolve() {
        let e = resolve(
            "wormspec/1\ntopology { kind = ring nodes = 4 }\nrouting { engine = clockwise_ring }\nverify { lint { W999 = allow } }\n",
        )
        .unwrap_err();
        assert_eq!(e.code, codes::RESOLVE);
    }
}
