//! Severities and structured diagnostics.

use std::collections::BTreeMap;
use std::fmt;

/// How seriously a reported finding is taken.
///
/// Severity is a *policy* attached to a lint code, not a property of
/// the finding itself: a run can promote or demote any code via
/// [`crate::LintConfig`], and `--deny-warnings` promotes every `Warn`
/// to `Deny`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: recorded in the report, never fails a run.
    Allow,
    /// A finding worth attention (the default for theorem-derived
    /// deadlock certificates: on a research corpus they are expected
    /// results, not spec errors).
    Warn,
    /// A spec error: the run fails.
    Deny,
}

impl Severity {
    /// Stable lowercase name used in JSON and human output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }

    /// Parse the stable name back (accepts the three [`Severity::name`]
    /// strings).
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "allow" => Some(Severity::Allow),
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding of one lint over one spec.
///
/// Everything in a diagnostic is a plain string with a stable,
/// deterministic rendering: entity references use the
/// `kind:description` convention (`node:r0`, `channel:n1->n2#0`,
/// `pair:Src->r3`, `cycle:c4->c5->c6`) and the witness is an ordered
/// key/value map, so diagnostics sort and serialize identically on
/// every run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code (`W0xx` structure, `W1xx` routing, `W2xx`
    /// CDG/theorems).
    pub code: &'static str,
    /// The lint's kebab-case name.
    pub lint: &'static str,
    /// Effective severity after per-run configuration.
    pub severity: Severity,
    /// One-line human message.
    pub message: String,
    /// References to the entities the finding is about.
    pub entities: Vec<String>,
    /// Concrete witness data (paths, counts, condition scorecards, …).
    pub witness: BTreeMap<String, String>,
}

impl Diagnostic {
    /// A diagnostic with empty entities/witness, to be filled in.
    pub fn new(
        code: &'static str,
        lint: &'static str,
        severity: Severity,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            lint,
            severity,
            message: message.into(),
            entities: Vec::new(),
            witness: BTreeMap::new(),
        }
    }

    /// Append an entity reference.
    pub fn entity(mut self, kind: &str, desc: impl fmt::Display) -> Self {
        self.entities.push(format!("{kind}:{desc}"));
        self
    }

    /// Insert a witness fact.
    pub fn fact(mut self, key: impl Into<String>, value: impl fmt::Display) -> Self {
        self.witness.insert(key.into(), value.to_string());
        self
    }

    /// Render the human-readable form (multi-line: header, entities,
    /// witness facts).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{}[{}] {}: {}",
            self.severity, self.code, self.lint, self.message
        );
        for e in &self.entities {
            let _ = write!(out, "\n  at {e}");
        }
        for (k, v) in &self.witness {
            let _ = write!(out, "\n  {k} = {v}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_names_round_trip() {
        for s in [Severity::Allow, Severity::Warn, Severity::Deny] {
            assert_eq!(Severity::parse(s.name()), Some(s));
        }
        assert_eq!(Severity::parse("error"), None);
        assert!(Severity::Allow < Severity::Warn && Severity::Warn < Severity::Deny);
    }

    #[test]
    fn render_includes_entities_and_witness() {
        let d = Diagnostic::new("W001", "self-loop-channel", Severity::Deny, "channel loops")
            .entity("channel", "n0->n0#0")
            .fact("index", 3);
        let r = d.render();
        assert!(r.starts_with("deny[W001] self-loop-channel: channel loops"));
        assert!(r.contains("at channel:n0->n0#0"));
        assert!(r.contains("index = 3"));
    }
}
