//! The precomputed analysis every lint reads.
//!
//! Building the context does all of the expensive work once — CDG
//! construction, cycle and candidate enumeration, sharing analysis,
//! and the purely static theorem classification — so individual lints
//! are cheap projections over shared data.

use worm_core::conditions::{eight_conditions, EightConditions};
use wormcdg::sharing::{self, SharingAnalysis};
use wormcdg::{enumerate_candidates, Cdg, CdgBuilder, CdgCycle, DeadlockCandidate};
use wormexist::{ExistOptions, ExistenceReport};
use wormnet::graph::SccEngineKind;
use wormnet::Network;
use wormroute::properties::{self, PropertyReport};
use wormroute::TableRouting;

/// What the Section 5 theorems say about one static candidate, with no
/// search assistance. This mirrors `worm_core::classify::CycleClass`
/// minus the search-decided variants: wormlint is a static pass, so
/// what the theorems leave open stays [`StaticClass::OutOfScope`].
#[derive(Clone, Debug)]
pub enum StaticClass {
    /// No channel shared outside the cycle — Theorem 2 (and
    /// Corollaries 1–3): the deadlock is reachable.
    NoOutsideSharing,
    /// One outside channel shared by exactly two messages — Theorem 4:
    /// the deadlock is reachable.
    TwoSharers,
    /// Minimal routing, one outside channel shared by every
    /// configuration message — Theorem 3: the deadlock is reachable.
    MinimalAllShare,
    /// One outside channel shared by exactly three messages —
    /// Theorem 5's eight conditions decide: unreachable iff all hold.
    ThreeSharers(EightConditions),
    /// Outside the theorems' scope (≥ 4 sharers on the single outside
    /// channel, several outside shared channels, or inapplicable
    /// geometry): static analysis cannot decide.
    OutOfScope,
}

impl StaticClass {
    /// `Some(true)` = the theorems certify a reachable deadlock,
    /// `Some(false)` = they certify the configuration unreachable,
    /// `None` = out of scope.
    pub fn reachable(&self) -> Option<bool> {
        match self {
            StaticClass::NoOutsideSharing
            | StaticClass::TwoSharers
            | StaticClass::MinimalAllShare => Some(true),
            StaticClass::ThreeSharers(ec) => Some(!ec.unreachable()),
            StaticClass::OutOfScope => None,
        }
    }
}

/// One static deadlock candidate with its sharing analysis and
/// theorem classification.
#[derive(Clone, Debug)]
pub struct CandidateAnalysis {
    /// The candidate configuration.
    pub candidate: DeadlockCandidate,
    /// Its shared channels (inside/outside the cycle).
    pub sharing: SharingAnalysis,
    /// What the theorems conclude.
    pub class: StaticClass,
}

/// One CDG cycle with its (bounded) candidate enumeration.
#[derive(Clone, Debug)]
pub struct CycleAnalysis {
    /// The cycle.
    pub cycle: CdgCycle,
    /// Analyses of its static candidates.
    pub candidates: Vec<CandidateAnalysis>,
    /// Whether enumeration covered every candidate (false when the
    /// budget ran out — the cycle can then never be certified free).
    pub enumeration_complete: bool,
}

/// Everything the lints read: the spec plus derived analyses.
pub struct LintContext<'a> {
    /// The network under analysis.
    pub net: &'a Network,
    /// The routing table under analysis.
    pub table: &'a TableRouting,
    /// Definition 7–9 + minimality + Corollary 1 property report.
    pub properties: PropertyReport,
    /// The channel dependency graph.
    pub cdg: Cdg,
    /// Whether the incremental-SCC engine certified the CDG acyclic
    /// while it streamed the table — the fact the `W208`/`W209`
    /// certificates and the overall verdict rest on. Always equals
    /// [`Cdg::is_acyclic`] (both engines are differentially pinned to
    /// the batch Tarjan answer).
    pub scc_acyclic: bool,
    /// Which incremental-SCC engine built the context.
    pub scc_engine: SccEngineKind,
    /// Elementary CDG cycles with candidate analyses (the first
    /// `max_cycles` in streamed order when the budget ran out).
    pub cycles: Vec<CycleAnalysis>,
    /// Whether `cycles` holds *every* elementary cycle. When `false`
    /// the cycle budget was exceeded: `Deadlockable` findings remain
    /// sound, but the spec can never be certified free.
    pub cycles_complete: bool,
    /// The existence engine's verdict for the *network* (independent
    /// of the table under analysis): does any deadlock-free routing
    /// exist at all? Read by the `W3xx` lint family.
    pub existence: ExistenceReport,
}

impl<'a> LintContext<'a> {
    /// Build the context on the default SCC engine, enumerating at
    /// most `max_cycles` elementary cycles and `max_candidates`
    /// candidates per cycle.
    pub fn build(
        net: &'a Network,
        table: &'a TableRouting,
        max_cycles: usize,
        max_candidates: usize,
    ) -> Self {
        Self::build_with_engine(
            net,
            table,
            max_cycles,
            max_candidates,
            SccEngineKind::default(),
        )
    }

    /// Build the context, streaming the CDG through the selected
    /// incremental-SCC engine. The engine's online verdict gates cycle
    /// enumeration (and lands in [`LintContext::scc_acyclic`]); the
    /// finished [`Cdg`] is identical either way.
    pub fn build_with_engine(
        net: &'a Network,
        table: &'a TableRouting,
        max_cycles: usize,
        max_candidates: usize,
        engine: SccEngineKind,
    ) -> Self {
        let props = properties::analyze(net, table);
        let mut builder = CdgBuilder::with_engine(net, engine);
        builder.add_table(table);
        let scc_acyclic = builder.is_acyclic();
        let cdg = builder.finish();
        debug_assert_eq!(scc_acyclic, cdg.is_acyclic());
        let (cycles, cycles_complete) = if scc_acyclic {
            (Vec::new(), true)
        } else {
            let (raw, complete) = cdg.cycles_streamed(max_cycles);
            let analyzed = raw
                .into_iter()
                .map(|cycle| analyze_cycle(net, table, &cdg, cycle, props.minimal, max_candidates))
                .collect();
            (analyzed, complete)
        };
        let existence = wormexist::analyze(net, &ExistOptions::default());
        LintContext {
            net,
            table,
            properties: props,
            cdg,
            scc_acyclic,
            scc_engine: engine,
            cycles,
            cycles_complete,
            existence,
        }
    }

    /// Does the static pass certify *this* table deadlockable? The
    /// same fold the overall verdict uses, before any search
    /// assistance: Corollary 1, or a theorem-certified reachable
    /// candidate on a cyclic CDG.
    pub fn statically_deadlockable(&self) -> bool {
        !self.scc_acyclic
            && (self.properties.node_function
                || self
                    .candidates()
                    .any(|(_, ca)| ca.class.reachable() == Some(true)))
    }

    /// Iterate every candidate analysis across all enumerated cycles.
    pub fn candidates(&self) -> impl Iterator<Item = (&CycleAnalysis, &CandidateAnalysis)> {
        self.cycles
            .iter()
            .flat_map(|cy| cy.candidates.iter().map(move |ca| (cy, ca)))
    }
}

fn analyze_cycle(
    net: &Network,
    table: &TableRouting,
    cdg: &Cdg,
    cycle: CdgCycle,
    minimal: bool,
    max_candidates: usize,
) -> CycleAnalysis {
    let (candidates, enumeration_complete) = enumerate_candidates(cdg, &cycle, max_candidates);
    let candidates = candidates
        .into_iter()
        .map(|candidate| {
            let sharing = sharing::analyze(net, table, &cycle, &candidate);
            let class = classify_static(net, table, &cycle, &candidate, &sharing, minimal);
            CandidateAnalysis {
                candidate,
                sharing,
                class,
            }
        })
        .collect();
    CycleAnalysis {
        cycle,
        candidates,
        enumeration_complete,
    }
}

/// The static-only half of `worm_core::classify_candidate`: apply
/// Theorems 2–5 in the same order, but never fall back to search.
fn classify_static(
    net: &Network,
    table: &TableRouting,
    cycle: &CdgCycle,
    candidate: &DeadlockCandidate,
    sharing: &SharingAnalysis,
    minimal: bool,
) -> StaticClass {
    let outside: Vec<_> = sharing.outside().collect();
    if outside.is_empty() {
        return StaticClass::NoOutsideSharing;
    }
    if outside.len() == 1 {
        let shared = outside[0];
        let mut users = shared.users.clone();
        users.sort_unstable();
        users.dedup();
        if users.len() == 2 {
            return StaticClass::TwoSharers;
        }
        if minimal && users.len() == candidate.segments.len() {
            return StaticClass::MinimalAllShare;
        }
        if users.len() == 3 {
            if let Ok(ec) = eight_conditions(net, table, cycle, candidate, shared) {
                return StaticClass::ThreeSharers(ec);
            }
        }
    }
    StaticClass::OutOfScope
}

#[cfg(test)]
mod tests {
    use super::*;
    use worm_core::paper::{fig1, fig2, fig3};
    use wormnet::topology::ring_unidirectional;
    use wormroute::algorithms::clockwise_ring;

    #[test]
    fn ring_candidates_are_theorem2() {
        let (net, nodes) = ring_unidirectional(4);
        let table = clockwise_ring(&net, &nodes).unwrap();
        let ctx = LintContext::build(&net, &table, 10_000, 10_000);
        assert!(!ctx.cdg.is_acyclic());
        assert!(ctx.cycles_complete);
        assert_eq!(ctx.cycles.len(), 1);
        assert!(!ctx.cycles[0].candidates.is_empty());
        for ca in &ctx.cycles[0].candidates {
            assert!(matches!(ca.class, StaticClass::NoOutsideSharing));
            assert_eq!(ca.class.reachable(), Some(true));
        }
    }

    #[test]
    fn fig1_is_out_of_scope_statically() {
        // Four messages share c_s: Theorems 3–5 do not apply and
        // Theorem 2 is defeated by the outside sharing, so the static
        // pass must leave the candidate open.
        let c = fig1::cyclic_dependency();
        let ctx = LintContext::build(&c.net, &c.table, 10_000, 10_000);
        let (_, ca) = ctx.candidates().next().expect("fig1 has its candidate");
        assert!(matches!(ca.class, StaticClass::OutOfScope));
        assert_eq!(ca.class.reachable(), None);
    }

    #[test]
    fn fig2_is_theorem4() {
        let c = fig2::two_message_deadlock();
        let ctx = LintContext::build(&c.net, &c.table, 10_000, 10_000);
        let (_, ca) = ctx.candidates().next().expect("fig2 has its candidate");
        assert!(matches!(ca.class, StaticClass::TwoSharers));
    }

    #[test]
    fn fig3_scenarios_match_theorem5() {
        for s in fig3::all_scenarios() {
            let c = s.spec.build();
            let ctx = LintContext::build(&c.net, &c.table, 10_000, 10_000);
            let three_sharer = ctx
                .candidates()
                .find_map(|(_, ca)| match &ca.class {
                    StaticClass::ThreeSharers(ec) => Some(ec.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("scenario ({}) must hit Theorem 5", s.name));
            assert_eq!(
                three_sharer.unreachable(),
                s.paper_unreachable,
                "scenario ({})",
                s.name
            );
        }
    }
}
