//! # wormlint
//!
//! A static analysis pass over routing specifications.
//!
//! The paper's Section 5 results (Theorem 2, Corollaries 1–3,
//! Theorems 3–5) are *static* statements about routing functions and
//! channel-dependency-graph structure, yet the classification pipeline
//! in `worm_core::classify` only consults them on the way to a final
//! verdict. This crate turns them — together with basic spec-hygiene
//! checks — into a diagnostics framework: a [`Lint`] trait, a
//! [`Registry`] of lints with stable codes, [`Severity`] levels with
//! per-run overrides, and structured [`Diagnostic`]s carrying entity
//! references and concrete witnesses (the path violating
//! suffix-closure, the two-sharer Theorem 4 certificate, the Theorem 5
//! eight-condition scorecard, …).
//!
//! Reports render human-readable and as sorted-key `wormlint/1` JSON
//! (see `docs/LINTS.md` for the full catalog and schema).
//!
//! Code ranges:
//!
//! * `W0xx` — structural integrity of the network/table (self-loops,
//!   duplicate channels, unroutable pairs, dead channels, dead path
//!   tails);
//! * `W1xx` — routing-function properties (minimality, Definition 7–9
//!   closures, Corollary 1's `R : N × N → C` form);
//! * `W2xx` — CDG and theorem analysis (cycle census, Theorem 2/3/4
//!   reachable-deadlock certificates, Theorem 5 scorecards,
//!   out-of-scope cycles).
//!
//! The analysis is purely static — no simulation or search runs — and
//! deterministic: the same spec always produces byte-identical output.
//! The differential test suite (`tests/props_lint.rs`) cross-checks
//! every verdict against the classifier and the exhaustive
//! reachability search.
//!
//! ```
//! use worm_core::paper::fig2;
//! use wormlint::{LintConfig, Registry, StaticVerdict};
//!
//! let c = fig2::two_message_deadlock();
//! let report = Registry::with_default_lints().run(&c.net, &c.table, &LintConfig::default());
//! // Figure 2 is the two-sharer instance: Theorem 4 certifies a
//! // reachable deadlock, statically.
//! assert_eq!(report.verdict, StaticVerdict::Deadlockable);
//! assert!(report.diagnostics.iter().any(|d| d.code == "W203"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod context;
pub mod diagnostic;
pub mod json;
pub mod lint;
pub mod lints;
pub mod registry;
pub mod spec;

pub use context::{CandidateAnalysis, CycleAnalysis, LintContext, StaticClass};
pub use diagnostic::{Diagnostic, Severity};
pub use json::{reports_to_json, SCHEMA};
pub use lint::Lint;
pub use registry::{LintConfig, LintReport, Registry, StaticVerdict};
