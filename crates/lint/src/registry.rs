//! The lint registry: configuration, execution, and reports.

use std::collections::BTreeMap;

use crate::context::LintContext;
use crate::diagnostic::{Diagnostic, Severity};
use crate::lint::Lint;
use crate::lints::default_lints;
use wormnet::Network;
use wormroute::TableRouting;

/// Per-run lint configuration.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Per-code severity overrides (`"W101" -> Allow` silences the
    /// non-minimality warning, `"W004" -> Deny` promotes dead channels
    /// to errors). Unknown codes are ignored.
    pub overrides: BTreeMap<String, Severity>,
    /// Promote every effective `Warn` to `Deny` (applied after
    /// `overrides`).
    pub deny_warnings: bool,
    /// Budget for elementary-cycle enumeration.
    pub max_cycles: usize,
    /// Budget for candidate enumeration per cycle.
    pub max_candidates: usize,
    /// Which incremental-SCC engine streams the CDG and decides the
    /// acyclicity the `W208`/`W209` certificates and the verdict rest
    /// on. Diagnostics are engine-independent (differentially tested);
    /// only the construction cost differs.
    pub scc_engine: wormnet::graph::SccEngineKind,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            overrides: BTreeMap::new(),
            deny_warnings: false,
            max_cycles: 10_000,
            max_candidates: 10_000,
            scc_engine: wormnet::graph::SccEngineKind::default(),
        }
    }
}

impl LintConfig {
    /// The effective severity for a lint under this config.
    pub fn severity_for(&self, lint: &dyn Lint) -> Severity {
        let base = self
            .overrides
            .get(lint.code())
            .copied()
            .unwrap_or_else(|| lint.default_severity());
        if self.deny_warnings && base == Severity::Warn {
            Severity::Deny
        } else {
            base
        }
    }
}

/// What the static analysis concludes about deadlock freedom.
///
/// This is deliberately coarser than `worm_core::classify::Verdict`:
/// with no search fallback, everything the theorems leave open is
/// [`StaticVerdict::Undecided`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StaticVerdict {
    /// The CDG is acyclic: deadlock-free by Theorem 1 (Dally–Seitz).
    FreeAcyclic,
    /// The CDG has cycles, but every enumerated candidate is certified
    /// unreachable by Theorem 5 — the paper's phenomenon: cyclic
    /// dependencies without deadlock.
    FreeCyclic,
    /// At least one candidate carries a Theorem 2/3/4/5
    /// reachable-deadlock certificate.
    Deadlockable,
    /// Some candidate (or an exhausted enumeration budget) falls
    /// outside the theorems: only exhaustive search can decide.
    Undecided,
}

impl StaticVerdict {
    /// Stable lowercase name used in JSON and human output.
    pub fn name(self) -> &'static str {
        match self {
            StaticVerdict::FreeAcyclic => "free-acyclic",
            StaticVerdict::FreeCyclic => "free-cyclic",
            StaticVerdict::Deadlockable => "deadlockable",
            StaticVerdict::Undecided => "undecided",
        }
    }
}

impl std::fmt::Display for StaticVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of one registry run over one spec.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Every diagnostic, sorted by `(code, entities, message)`.
    pub diagnostics: Vec<Diagnostic>,
    /// The static deadlock-freedom verdict.
    pub verdict: StaticVerdict,
}

impl LintReport {
    /// Diagnostics at a given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `Deny` diagnostics — nonzero fails a gated run.
    pub fn deny_count(&self) -> usize {
        self.count(Severity::Deny)
    }

    /// `Warn` diagnostics.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// `Allow` diagnostics.
    pub fn allow_count(&self) -> usize {
        self.count(Severity::Allow)
    }

    /// Sorted per-code diagnostic counts.
    pub fn counts_by_code(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for d in &self.diagnostics {
            *counts.entry(d.code).or_insert(0) += 1;
        }
        counts
    }

    /// Render the full human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}", d.render());
        }
        let _ = write!(
            out,
            "verdict: {} ({} deny, {} warn, {} allow)",
            self.verdict,
            self.deny_count(),
            self.warn_count(),
            self.allow_count(),
        );
        out
    }
}

/// An ordered collection of lints with stable codes.
pub struct Registry {
    lints: Vec<Box<dyn Lint>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry { lints: Vec::new() }
    }

    /// A registry holding every built-in lint.
    pub fn with_default_lints() -> Self {
        Registry {
            lints: default_lints(),
        }
    }

    /// Register a lint. Panics on a duplicate code: codes are the
    /// stable public identity of a lint.
    pub fn register(&mut self, lint: Box<dyn Lint>) {
        assert!(
            self.lints.iter().all(|l| l.code() != lint.code()),
            "duplicate lint code {}",
            lint.code()
        );
        self.lints.push(lint);
    }

    /// The registered lints, in registration (= code) order.
    pub fn lints(&self) -> &[Box<dyn Lint>] {
        &self.lints
    }

    /// Run every registered lint over a spec.
    ///
    /// Diagnostics are re-sorted by `(code, entities, message)` so the
    /// report is deterministic regardless of lint registration order.
    pub fn run(&self, net: &Network, table: &TableRouting, config: &LintConfig) -> LintReport {
        let _span = wormtrace::span("lint.run");
        wormtrace::counter("lint.runs", 1);
        let ctx = LintContext::build_with_engine(
            net,
            table,
            config.max_cycles,
            config.max_candidates,
            config.scc_engine,
        );
        let mut diagnostics = Vec::new();
        for lint in &self.lints {
            let severity = config.severity_for(lint.as_ref());
            let found = lint.check(&ctx, severity);
            debug_assert!(
                found.iter().all(|d| d.code == lint.code()
                    && d.lint == lint.name()
                    && d.severity == severity),
                "lint {} emitted a mislabelled diagnostic",
                lint.code()
            );
            diagnostics.extend(found);
        }
        diagnostics.sort_by(|a, b| {
            (a.code, &a.entities, &a.message).cmp(&(b.code, &b.entities, &b.message))
        });
        let verdict = verdict(&ctx);
        wormtrace::counter("lint.diagnostics", diagnostics.len() as u64);
        for d in &diagnostics {
            wormtrace::counter(
                match d.severity {
                    Severity::Allow => "lint.allow",
                    Severity::Warn => "lint.warn",
                    Severity::Deny => "lint.deny",
                },
                1,
            );
        }
        LintReport {
            diagnostics,
            verdict,
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_default_lints()
    }
}

/// Fold the per-candidate theorem classifications into one verdict.
fn verdict(ctx: &LintContext<'_>) -> StaticVerdict {
    if ctx.scc_acyclic {
        return StaticVerdict::FreeAcyclic;
    }
    // Corollary 1: a node-function algorithm admits no false resource
    // cycles, so a cyclic CDG alone certifies a reachable deadlock —
    // no cycle enumeration needed (W105 carries the explanation).
    if ctx.properties.node_function {
        return StaticVerdict::Deadlockable;
    }
    let mut open = !ctx.cycles_complete || ctx.cycles.iter().any(|cy| !cy.enumeration_complete);
    let mut deadlock = false;
    for (_, ca) in ctx.candidates() {
        match ca.class.reachable() {
            Some(true) => deadlock = true,
            Some(false) => {}
            None => open = true,
        }
    }
    if deadlock {
        StaticVerdict::Deadlockable
    } else if open {
        StaticVerdict::Undecided
    } else {
        StaticVerdict::FreeCyclic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use worm_core::paper::fig1;
    use wormnet::topology::{ring_unidirectional, Mesh};
    use wormroute::algorithms::{clockwise_ring, dimension_order};

    #[test]
    fn acyclic_mesh_is_free() {
        let mesh = Mesh::new(&[3, 3]);
        let table = dimension_order(&mesh).unwrap();
        let net = mesh.network();
        let report = Registry::with_default_lints().run(net, &table, &LintConfig::default());
        assert_eq!(report.verdict, StaticVerdict::FreeAcyclic);
        assert_eq!(report.deny_count(), 0);
        // Acyclic CDG: no cycle diagnostics at all.
        assert!(report.diagnostics.iter().all(|d| !d.code.starts_with("W2")));
    }

    #[test]
    fn unidirectional_ring_is_deadlockable() {
        let (net, nodes) = ring_unidirectional(4);
        let table = clockwise_ring(&net, &nodes).unwrap();
        let report = Registry::with_default_lints().run(&net, &table, &LintConfig::default());
        assert_eq!(report.verdict, StaticVerdict::Deadlockable);
        assert!(report.diagnostics.iter().any(|d| d.code == "W202"));
    }

    #[test]
    fn overrides_and_deny_warnings_change_severity() {
        let (net, nodes) = ring_unidirectional(4);
        let table = clockwise_ring(&net, &nodes).unwrap();
        let registry = Registry::with_default_lints();

        let mut config = LintConfig::default();
        config.overrides.insert("W202".to_string(), Severity::Allow);
        let report = registry.run(&net, &table, &config);
        assert!(report
            .diagnostics
            .iter()
            .filter(|d| d.code == "W202")
            .all(|d| d.severity == Severity::Allow));

        let config = LintConfig {
            deny_warnings: true,
            ..LintConfig::default()
        };
        let report = registry.run(&net, &table, &config);
        assert!(report.deny_count() > 0, "warnings promoted to deny");
    }

    #[test]
    fn diagnostics_sorted_and_counts_consistent() {
        let c = fig1::cyclic_dependency();
        let report = Registry::with_default_lints().run(&c.net, &c.table, &LintConfig::default());
        let keys: Vec<_> = report
            .diagnostics
            .iter()
            .map(|d| (d.code, d.entities.clone(), d.message.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(
            report.deny_count() + report.warn_count() + report.allow_count(),
            report.diagnostics.len()
        );
        assert_eq!(
            report.counts_by_code().values().sum::<usize>(),
            report.diagnostics.len()
        );
    }

    #[test]
    fn duplicate_code_panics() {
        let mut registry = Registry::with_default_lints();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            registry.register(Box::new(crate::lints::structure::SelfLoopChannel));
        }));
        assert!(result.is_err());
    }
}
