//! `W2xx`: CDG cycles and the Section 5 theorems.
//!
//! These lints project the [`crate::context::StaticClass`]
//! classification (computed once in the context) into diagnostics:
//! reachable-deadlock *certificates* for Theorems 2–4 and Theorem 5's
//! failing scorecards, false-resource-cycle scorecards when all eight
//! conditions hold, and honest `out-of-scope` findings where the
//! theorems say nothing and only exhaustive search can decide.

use crate::context::{CandidateAnalysis, CycleAnalysis, LintContext, StaticClass};
use crate::diagnostic::{Diagnostic, Severity};
use crate::lint::Lint;
use crate::lints::pair_ref;
use wormcdg::sharing::{self, SharedChannel};
use wormcdg::CdgCycle;

/// Render a cycle as a `cycle:` entity (`c4->c5->c6`).
fn cycle_ref(cycle: &CdgCycle) -> String {
    cycle
        .channels
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join("->")
}

/// The single outside shared channel of a candidate, when there is
/// exactly one (the geometry Theorems 3–5 are stated over).
fn single_outside(ca: &CandidateAnalysis) -> Option<&SharedChannel> {
    let mut it = ca.sharing.outside();
    let first = it.next()?;
    it.next().is_none().then_some(first)
}

/// Attach the shared-channel facts (`d_i` distances per sharer) to a
/// certificate diagnostic.
fn sharer_facts(
    ctx: &LintContext<'_>,
    cycle: &CdgCycle,
    shared: &SharedChannel,
    mut d: Diagnostic,
) -> Diagnostic {
    let mut users = shared.users.clone();
    users.sort_unstable();
    users.dedup();
    d = d
        .entity("channel", ctx.net.channel(shared.channel))
        .fact("shared_channel", ctx.net.channel(shared.channel))
        .fact("sharers", users.len());
    for (i, &m) in users.iter().enumerate() {
        let g = sharing::geometry(ctx.net, ctx.table, cycle, m, Some(shared.channel));
        d = d.fact(
            format!("sharer_{i}"),
            format!(
                "{} (d={}, a={})",
                pair_ref(ctx.net, m),
                g.d.map(|v| v.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                g.a
            ),
        );
    }
    d
}

/// Shared base for per-candidate certificate diagnostics.
fn candidate_diag(
    lint: &dyn Lint,
    ctx: &LintContext<'_>,
    cy: &CycleAnalysis,
    ca: &CandidateAnalysis,
    severity: Severity,
    message: String,
) -> Diagnostic {
    Diagnostic::new(lint.code(), lint.name(), severity, message)
        .entity("cycle", cycle_ref(&cy.cycle))
        .fact("configuration", ca.candidate.describe(ctx.net))
        .fact("messages", ca.candidate.segments.len())
}

/// `W201`: one census line per elementary CDG cycle.
pub struct CdgCycleCensus;

impl Lint for CdgCycleCensus {
    fn code(&self) -> &'static str {
        "W201"
    }
    fn name(&self) -> &'static str {
        "cdg-cycle-census"
    }
    fn description(&self) -> &'static str {
        "inventory of every elementary CDG cycle: length, static candidates, and how the Section 5 theorems classify them"
    }
    fn paper_anchor(&self) -> &'static str {
        "Definition 4; Theorem 1 (Dally-Seitz); Definition 6"
    }
    fn default_severity(&self) -> Severity {
        Severity::Allow
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        ctx.cycles
            .iter()
            .map(|cy| {
                let mut reachable = 0usize;
                let mut unreachable = 0usize;
                let mut open = 0usize;
                for ca in &cy.candidates {
                    match ca.class.reachable() {
                        Some(true) => reachable += 1,
                        Some(false) => unreachable += 1,
                        None => open += 1,
                    }
                }
                let inside_only = cy
                    .candidates
                    .iter()
                    .filter(|ca| ca.sharing.outside().count() == 0)
                    .count();
                Diagnostic::new(
                    self.code(),
                    self.name(),
                    severity,
                    format!(
                        "cycle of {} channels: {} candidate configuration(s) ({reachable} reachable, {unreachable} unreachable, {open} undecided by theorems)",
                        cy.cycle.len(),
                        cy.candidates.len(),
                    ),
                )
                .entity("cycle", cycle_ref(&cy.cycle))
                .fact("length", cy.cycle.len())
                .fact("candidates", cy.candidates.len())
                .fact("enumeration_complete", cy.enumeration_complete)
                .fact("theorem_reachable", reachable)
                .fact("theorem_unreachable", unreachable)
                .fact("theorem_open", open)
                .fact("candidates_sharing_inside_only", inside_only)
            })
            .collect()
    }
}

/// `W202`: Theorem 2 certificates — no outside sharing.
pub struct Theorem2NoOutsideSharing;

impl Lint for Theorem2NoOutsideSharing {
    fn code(&self) -> &'static str {
        "W202"
    }
    fn name(&self) -> &'static str {
        "reachable-deadlock-no-outside-sharing"
    }
    fn description(&self) -> &'static str {
        "a candidate whose shared channels (if any) all lie inside the cycle: every message reaches its blocking position independently, so the deadlock is reachable"
    }
    fn paper_anchor(&self) -> &'static str {
        "Theorem 2; Corollaries 1-3"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        ctx.candidates()
            .filter(|(_, ca)| matches!(ca.class, StaticClass::NoOutsideSharing))
            .map(|(cy, ca)| {
                let inside: Vec<String> = ca
                    .sharing
                    .inside()
                    .map(|s| ctx.net.channel(s.channel).to_string())
                    .collect();
                candidate_diag(
                    self,
                    ctx,
                    cy,
                    ca,
                    severity,
                    format!(
                        "reachable deadlock (Theorem 2): {}-message configuration shares no channel outside the cycle",
                        ca.candidate.segments.len(),
                    ),
                )
                .fact(
                    "inside_shared_channels",
                    if inside.is_empty() {
                        "none".to_string()
                    } else {
                        inside.join(", ")
                    },
                )
            })
            .collect()
    }
}

/// `W203`: Theorem 4 certificates — one outside channel, two sharers.
pub struct Theorem4TwoSharers;

impl Lint for Theorem4TwoSharers {
    fn code(&self) -> &'static str {
        "W203"
    }
    fn name(&self) -> &'static str {
        "reachable-deadlock-two-sharers"
    }
    fn description(&self) -> &'static str {
        "exactly two messages share the single outside channel: the second can always wait out the first, so the deadlock is reachable"
    }
    fn paper_anchor(&self) -> &'static str {
        "Theorem 4"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        ctx.candidates()
            .filter(|(_, ca)| matches!(ca.class, StaticClass::TwoSharers))
            .map(|(cy, ca)| {
                let shared = single_outside(ca).expect("TwoSharers has one outside channel");
                let d = candidate_diag(
                    self,
                    ctx,
                    cy,
                    ca,
                    severity,
                    format!(
                        "reachable deadlock (Theorem 4): two messages share outside channel {}",
                        ctx.net.channel(shared.channel),
                    ),
                );
                sharer_facts(ctx, &cy.cycle, shared, d)
            })
            .collect()
    }
}

/// `W204`: Theorem 5 scorecards with all eight conditions holding —
/// certified false resource cycles.
pub struct Theorem5Unreachable;

impl Lint for Theorem5Unreachable {
    fn code(&self) -> &'static str {
        "W204"
    }
    fn name(&self) -> &'static str {
        "false-resource-cycle-three-sharers"
    }
    fn description(&self) -> &'static str {
        "three sharers and all eight conditions hold: the configuration is unreachable — cyclic dependencies without deadlock, the paper's phenomenon"
    }
    fn paper_anchor(&self) -> &'static str {
        "Theorem 5 (all conditions hold); Figure 3(a)-(b)"
    }
    fn default_severity(&self) -> Severity {
        Severity::Allow
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        scorecards(self, ctx, severity, true)
    }
}

/// `W205`: Theorem 5 scorecards with failing conditions — reachable
/// deadlocks.
pub struct Theorem5Reachable;

impl Lint for Theorem5Reachable {
    fn code(&self) -> &'static str {
        "W205"
    }
    fn name(&self) -> &'static str {
        "reachable-deadlock-three-sharers"
    }
    fn description(&self) -> &'static str {
        "three sharers with at least one of the eight conditions violated: the adversary can schedule the deadlock"
    }
    fn paper_anchor(&self) -> &'static str {
        "Theorem 5 (some condition fails); Figure 3(c)-(f)"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        scorecards(self, ctx, severity, false)
    }
}

/// Emit Theorem 5 scorecard diagnostics for candidates whose
/// `unreachable()` verdict matches `want_unreachable`.
fn scorecards(
    lint: &dyn Lint,
    ctx: &LintContext<'_>,
    severity: Severity,
    want_unreachable: bool,
) -> Vec<Diagnostic> {
    ctx.candidates()
        .filter_map(|(cy, ca)| match &ca.class {
            StaticClass::ThreeSharers(ec) if ec.unreachable() == want_unreachable => {
                Some((cy, ca, ec))
            }
            _ => None,
        })
        .map(|(cy, ca, ec)| {
            let shared = single_outside(ca).expect("ThreeSharers has one outside channel");
            let message = if want_unreachable {
                "false resource cycle (Theorem 5): all eight conditions hold, the configuration is unreachable".to_string()
            } else {
                format!(
                    "reachable deadlock (Theorem 5): condition(s) {} violated",
                    ec.failing()
                        .iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                )
            };
            let mut d = candidate_diag(lint, ctx, cy, ca, severity, message);
            d = sharer_facts(ctx, &cy.cycle, shared, d);
            d = d
                .fact("m_x", pair_ref(ctx.net, ec.x))
                .fact("m_y", pair_ref(ctx.net, ec.y))
                .fact("m_z", pair_ref(ctx.net, ec.z));
            for (i, ok) in ec.conditions.iter().enumerate() {
                d = d.fact(format!("condition_{}", i + 1), if *ok { "holds" } else { "violated" });
            }
            d
        })
        .collect()
}

/// `W206`: Theorem 3 certificates — minimal routing, everyone shares.
pub struct Theorem3MinimalAllShare;

impl Lint for Theorem3MinimalAllShare {
    fn code(&self) -> &'static str {
        "W206"
    }
    fn name(&self) -> &'static str {
        "reachable-deadlock-minimal-all-share"
    }
    fn description(&self) -> &'static str {
        "minimal routing where every configuration message uses the single outside shared channel: the deadlock is reachable"
    }
    fn paper_anchor(&self) -> &'static str {
        "Theorem 3"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        ctx.candidates()
            .filter(|(_, ca)| matches!(ca.class, StaticClass::MinimalAllShare))
            .map(|(cy, ca)| {
                let shared = single_outside(ca).expect("MinimalAllShare has one outside channel");
                let d = candidate_diag(
                    self,
                    ctx,
                    cy,
                    ca,
                    severity,
                    format!(
                        "reachable deadlock (Theorem 3): minimal routing, all {} messages share {}",
                        ca.candidate.segments.len(),
                        ctx.net.channel(shared.channel),
                    ),
                );
                sharer_facts(ctx, &cy.cycle, shared, d)
            })
            .collect()
    }
}

/// `W207`: what the theorems leave open.
pub struct OutOfScopeCycle;

impl Lint for OutOfScopeCycle {
    fn code(&self) -> &'static str {
        "W207"
    }
    fn name(&self) -> &'static str {
        "cycle-outside-theorem-scope"
    }
    fn description(&self) -> &'static str {
        "a candidate (or cycle/candidate enumeration budget) the Section 5 theorems cannot decide; only exhaustive reachability search settles it"
    }
    fn paper_anchor(&self) -> &'static str {
        "Section 7 (open problems: >=4 sharers, several shared channels)"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if !ctx.cycles_complete {
            out.push(
                Diagnostic::new(
                    self.code(),
                    self.name(),
                    severity,
                    format!(
                        "CDG cycle enumeration budget exceeded after {} cycle(s): the spec cannot be certified free statically",
                        ctx.cycles.len(),
                    ),
                )
                .fact("cycles_enumerated", ctx.cycles.len()),
            );
        }
        for cy in &ctx.cycles {
            if !cy.enumeration_complete {
                out.push(
                    Diagnostic::new(
                        self.code(),
                        self.name(),
                        severity,
                        "candidate enumeration budget exceeded: the cycle cannot be certified free"
                            .to_string(),
                    )
                    .entity("cycle", cycle_ref(&cy.cycle)),
                );
            }
            for ca in &cy.candidates {
                if !matches!(ca.class, StaticClass::OutOfScope) {
                    continue;
                }
                let outside: Vec<_> = ca.sharing.outside().collect();
                let sharers = outside
                    .iter()
                    .map(|s| {
                        let mut u = s.users.clone();
                        u.sort_unstable();
                        u.dedup();
                        u.len()
                    })
                    .max()
                    .unwrap_or(0);
                out.push(
                    candidate_diag(
                        self,
                        ctx,
                        cy,
                        ca,
                        severity,
                        format!(
                            "Theorems 2-5 do not apply ({} outside shared channel(s), up to {sharers} sharers): verdict requires exhaustive search",
                            outside.len(),
                        ),
                    )
                    .fact("outside_shared_channels", outside.len())
                    .fact("max_sharers", sharers),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::{LintConfig, Registry, StaticVerdict};
    use worm_core::paper::{fig1, fig2, fig3, generalized};

    fn codes(report: &crate::LintReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn fig1_and_gk_are_undecided_with_zero_deny() {
        let registry = Registry::with_default_lints();
        let mut targets = vec![("fig1", fig1::cyclic_dependency())];
        for k in 1..=3 {
            targets.push(("gk", generalized::generalized(k)));
        }
        for (name, c) in targets {
            let report = registry.run(&c.net, &c.table, &LintConfig::default());
            assert_eq!(report.verdict, StaticVerdict::Undecided, "{name}");
            assert_eq!(report.deny_count(), 0, "{name}: {:?}", codes(&report));
            assert!(codes(&report).contains(&"W207"), "{name}");
            assert!(codes(&report).contains(&"W201"), "{name}");
        }
    }

    #[test]
    fn fig2_certified_by_theorem4() {
        let c = fig2::two_message_deadlock();
        let report = Registry::with_default_lints().run(&c.net, &c.table, &LintConfig::default());
        assert_eq!(report.verdict, StaticVerdict::Deadlockable);
        let w203 = report
            .diagnostics
            .iter()
            .find(|d| d.code == "W203")
            .expect("Theorem 4 certificate");
        assert_eq!(w203.witness["sharers"], "2");
        assert!(w203.witness.contains_key("sharer_0"));
        assert!(w203.witness["shared_channel"].contains("cs"));
    }

    #[test]
    fn fig3_scorecards_split_by_verdict() {
        for s in fig3::all_scenarios() {
            let c = s.spec.build();
            let report =
                Registry::with_default_lints().run(&c.net, &c.table, &LintConfig::default());
            if s.paper_unreachable {
                assert_eq!(report.verdict, StaticVerdict::FreeCyclic, "({})", s.name);
                let w204 = report
                    .diagnostics
                    .iter()
                    .find(|d| d.code == "W204")
                    .unwrap_or_else(|| panic!("({}) needs a W204 scorecard", s.name));
                assert!(w204
                    .witness
                    .iter()
                    .filter(|(k, _)| k.starts_with("condition_"))
                    .all(|(_, v)| v == "holds"));
            } else {
                assert_eq!(report.verdict, StaticVerdict::Deadlockable, "({})", s.name);
                let w205 = report
                    .diagnostics
                    .iter()
                    .find(|d| d.code == "W205")
                    .unwrap_or_else(|| panic!("({}) needs a W205 certificate", s.name));
                for v in s.violated_conditions {
                    assert_eq!(
                        w205.witness[&format!("condition_{v}")],
                        "violated",
                        "({}) condition {v}",
                        s.name
                    );
                }
            }
        }
    }
}
