//! `W301`–`W304`: the existence axis.
//!
//! Every other lint judges the routing *under analysis*; these judge
//! the *network*: does any deadlock-free (acyclic-CDG) routing exist
//! at all? The verdict comes from `wormexist`'s two-sided engine and
//! is orthogonal to the W1xx/W2xx findings — a table can be
//! deadlockable on a perfectly routable fabric (`W303`), and a fabric
//! can be unroutable no matter what table anyone writes (`W302`).
//! None of these lints moves the overall `StaticVerdict`, which keeps
//! describing the given routing.

use wormexist::{ExistenceVerdict, ObstructionKind};

use crate::context::LintContext;
use crate::diagnostic::{Diagnostic, Severity};
use crate::lint::Lint;

/// Most obstruction channels listed as entities before truncating.
const MAX_WITNESS_CHANNELS: usize = 8;

/// `W301`: a constructive existence witness.
pub struct ExistenceWitness;

impl Lint for ExistenceWitness {
    fn code(&self) -> &'static str {
        "W301"
    }
    fn name(&self) -> &'static str {
        "existence-witness"
    }
    fn description(&self) -> &'static str {
        "a deadlock-free routing exists for this network: the engine ships a one-pass channel schedule from which an acyclic-CDG routing table can be materialised and re-certified"
    }
    fn paper_anchor(&self) -> &'static str {
        "Mendlovic-Matias existence condition (PAPERS.md); Theorem 1 (Dally-Seitz)"
    }
    fn default_severity(&self) -> Severity {
        Severity::Allow
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let report = &ctx.existence;
        if report.verdict != ExistenceVerdict::Exists {
            return Vec::new();
        }
        let Some(witness) = &report.witness else {
            return Vec::new();
        };
        vec![Diagnostic::new(
            self.code(),
            self.name(),
            severity,
            format!(
                "a deadlock-free routing exists: a {}-channel schedule covers all {} reachable pair(s) ({} certificate)",
                witness.order.len(),
                report.demands,
                report.kind_name(),
            ),
        )
        .fact("demands", report.demands)
        .fact("kind", report.kind_name())
        .fact("sccs", report.sccs)
        .fact("witness_channels", witness.order.len())]
    }
}

/// `W302`: an obstruction witness — no routing can exist.
pub struct ExistenceObstruction;

impl Lint for ExistenceObstruction {
    fn code(&self) -> &'static str {
        "W302"
    }
    fn name(&self) -> &'static str {
        "existence-obstruction"
    }
    fn description(&self) -> &'static str {
        "no deadlock-free (acyclic-CDG) routing can exist for this network: a violating sub-network blocks every possible table, not just the one under analysis"
    }
    fn paper_anchor(&self) -> &'static str {
        "Mendlovic-Matias existence condition (PAPERS.md)"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let report = &ctx.existence;
        let Some(obs) = &report.obstruction else {
            return Vec::new();
        };
        let why = match &obs.kind {
            ObstructionKind::Deficiency { required } => format!(
                "its {}-node strongly connected component has only {} internal channel(s); one-way gossip needs {required}",
                obs.nodes.len(),
                obs.channels.len(),
            ),
            ObstructionKind::PrecedenceCycle { cycle } => format!(
                "{} forced scheduling precedences between bottleneck channels form a cycle",
                cycle.len(),
            ),
            ObstructionKind::Exhausted { states } => format!(
                "exhaustive schedule search ({states} game states) refuted its {}-node component",
                obs.nodes.len(),
            ),
        };
        let mut d = Diagnostic::new(
            self.code(),
            self.name(),
            severity,
            format!("no deadlock-free routing can exist: {why}"),
        )
        .fact("kind", obs.kind.name())
        .fact("obstruction_nodes", obs.nodes.len())
        .fact("obstruction_channels", obs.channels.len());
        if let ObstructionKind::Deficiency { required } = &obs.kind {
            d = d.fact("required_channels", required);
        }
        let listed = match &obs.kind {
            ObstructionKind::PrecedenceCycle { cycle } => cycle,
            _ => &obs.channels,
        };
        for &c in listed.iter().take(MAX_WITNESS_CHANNELS) {
            d = d.entity("channel", ctx.net.channel(c));
        }
        vec![d]
    }
}

/// `W303`: this routing is deadlockable, but the fabric is not.
pub struct DeadlockableButRoutable;

impl Lint for DeadlockableButRoutable {
    fn code(&self) -> &'static str {
        "W303"
    }
    fn name(&self) -> &'static str {
        "deadlockable-but-routable"
    }
    fn description(&self) -> &'static str {
        "the routing under analysis is statically deadlockable, yet a deadlock-free routing exists for the same network — the table is at fault, not the fabric"
    }
    fn paper_anchor(&self) -> &'static str {
        "Mendlovic-Matias existence condition (PAPERS.md); Section 5 theorems"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        if ctx.existence.verdict != ExistenceVerdict::Exists || !ctx.statically_deadlockable() {
            return Vec::new();
        }
        vec![Diagnostic::new(
            self.code(),
            self.name(),
            severity,
            format!(
                "the table is at fault, not the fabric: this routing is statically deadlockable, but a {}-certificate schedule routes all {} reachable pair(s) deadlock-free",
                ctx.existence.kind_name(),
                ctx.existence.demands,
            ),
        )
        .fact("demands", ctx.existence.demands)
        .fact("kind", ctx.existence.kind_name())]
    }
}

/// `W304`: the existence engine ran out of certificate budget.
pub struct ExistenceUndecided;

impl Lint for ExistenceUndecided {
    fn code(&self) -> &'static str {
        "W304"
    }
    fn name(&self) -> &'static str {
        "existence-undecided"
    }
    fn description(&self) -> &'static str {
        "the existence engine found no certificate from either side within budget: existence of a deadlock-free routing for this network is open"
    }
    fn paper_anchor(&self) -> &'static str {
        "Mendlovic-Matias existence condition (PAPERS.md)"
    }
    fn default_severity(&self) -> Severity {
        Severity::Allow
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let report = &ctx.existence;
        if report.verdict != ExistenceVerdict::Unknown {
            return Vec::new();
        }
        vec![Diagnostic::new(
            self.code(),
            self.name(),
            severity,
            format!(
                "existence undecided: {} component(s) over {} SCC(s) exhausted the certificate budgets with no witness and no obstruction",
                report.components, report.sccs,
            ),
        )
        .fact("components", report.components)
        .fact("demands", report.demands)
        .fact("sccs", report.sccs)]
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::{LintConfig, Registry, StaticVerdict};
    use wormnet::topology::{ring_unidirectional, Mesh};
    use wormroute::algorithms::{clockwise_ring, dimension_order};

    fn codes(net: &wormnet::Network, table: &wormroute::TableRouting) -> Vec<&'static str> {
        Registry::with_default_lints()
            .run(net, table, &LintConfig::default())
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn free_mesh_earns_the_witness_and_nothing_else() {
        let mesh = Mesh::new(&[3, 3]);
        let table = dimension_order(&mesh).unwrap();
        let c = codes(mesh.network(), &table);
        assert!(c.contains(&"W301"), "{c:?}");
        assert!(
            !c.contains(&"W302") && !c.contains(&"W303") && !c.contains(&"W304"),
            "{c:?}"
        );
    }

    #[test]
    fn single_lane_ring_is_obstructed_and_never_w303() {
        // The clockwise ring is deadlockable, but so is every other
        // routing on this fabric: W302, not W303, and the verdict
        // still describes the table.
        let (net, nodes) = ring_unidirectional(4);
        let table = clockwise_ring(&net, &nodes).unwrap();
        let report = Registry::with_default_lints().run(&net, &table, &LintConfig::default());
        assert_eq!(report.verdict, StaticVerdict::Deadlockable);
        let c: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(c.contains(&"W302"), "{c:?}");
        assert!(!c.contains(&"W301") && !c.contains(&"W303"), "{c:?}");
    }

    #[test]
    fn deadlockable_table_on_a_routable_fabric_is_w303() {
        // Two VC lanes make the ring fabric routable, but routing
        // everything on lane 0 stays deadlockable: the table is at
        // fault, and W303 says so.
        let mut net = wormnet::Network::new();
        let nodes = net.add_nodes("r", 4);
        let mut lane0 = Vec::new();
        for i in 0..4 {
            let j = (i + 1) % 4;
            lane0.push(net.add_channel_vc(nodes[i], nodes[j], 0));
            net.add_channel_vc(nodes[i], nodes[j], 1);
        }
        let mut table = wormroute::TableRouting::new();
        for (s, &src) in nodes.iter().enumerate() {
            for hops in 1..4 {
                let dst = nodes[(s + hops) % 4];
                let chans: Vec<_> = (0..hops).map(|h| lane0[(s + h) % 4]).collect();
                let path = wormroute::Path::from_channels(&net, chans).unwrap();
                table.insert(&net, src, dst, path).unwrap();
            }
        }
        let report = Registry::with_default_lints().run(&net, &table, &LintConfig::default());
        assert_eq!(report.verdict, StaticVerdict::Deadlockable);
        let c: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(c.contains(&"W301") && c.contains(&"W303"), "{c:?}");
        assert!(!c.contains(&"W302"), "{c:?}");
    }
}
