//! The built-in lint suite.
//!
//! Codes are stable and documented in `docs/LINTS.md`:
//!
//! | Range | Module | Concern |
//! |---|---|---|
//! | `W0xx` | [`structure`] | network/table integrity |
//! | `W1xx` | [`routing`] | routing-function properties (Definitions 7–9, Corollary 1) |
//! | `W201`–`W207` | [`theorems`] | CDG cycles and the Section 5 theorems |
//! | `W208`–`W209` | [`certificates`] | positive Dally–Seitz numbering certificates |
//! | `W3xx` | [`existence`] | two-sided existence certificates for the network itself |

pub mod certificates;
pub mod existence;
pub mod routing;
pub mod structure;
pub mod theorems;

use crate::lint::Lint;
use wormnet::Network;
use wormroute::Path;

/// Every built-in lint, in code order.
pub fn default_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(structure::SelfLoopChannel),
        Box::new(structure::DuplicateChannel),
        Box::new(structure::UnroutablePairs),
        Box::new(structure::DeadChannel),
        Box::new(structure::DeadPathTail),
        Box::new(routing::NonMinimalRoute),
        Box::new(routing::SuffixClosureViolation),
        Box::new(routing::PrefixClosureViolation),
        Box::new(routing::NodeRevisit),
        Box::new(routing::NodeFunctionForm),
        Box::new(theorems::CdgCycleCensus),
        Box::new(theorems::Theorem2NoOutsideSharing),
        Box::new(theorems::Theorem4TwoSharers),
        Box::new(theorems::Theorem5Unreachable),
        Box::new(theorems::Theorem5Reachable),
        Box::new(theorems::Theorem3MinimalAllShare),
        Box::new(theorems::OutOfScopeCycle),
        Box::new(certificates::VcMonotoneCertificate),
        Box::new(certificates::DownUpCertificate),
        Box::new(existence::ExistenceWitness),
        Box::new(existence::ExistenceObstruction),
        Box::new(existence::DeadlockableButRoutable),
        Box::new(existence::ExistenceUndecided),
    ]
}

/// `src->dst` in node names — the `pair:` entity convention.
pub(crate) fn pair_ref(net: &Network, (s, d): (wormnet::NodeId, wormnet::NodeId)) -> String {
    format!("{}->{}", net.node_name(s), net.node_name(d))
}

/// A path's node walk in node names (`a->b->c`).
pub(crate) fn walk(net: &Network, path: &Path) -> String {
    path.nodes(net)
        .iter()
        .map(|&n| net.node_name(n).to_string())
        .collect::<Vec<_>>()
        .join("->")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_sorted_and_well_formed() {
        let lints = default_lints();
        let codes: Vec<&str> = lints.iter().map(|l| l.code()).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, codes, "codes must be unique and in sorted order");
        for l in &lints {
            let code = l.code();
            assert_eq!(code.len(), 4, "{code}");
            assert!(code.starts_with('W'), "{code}");
            assert!(code[1..].chars().all(|c| c.is_ascii_digit()), "{code}");
            assert!(!l.name().is_empty() && !l.description().is_empty());
            assert!(!l.paper_anchor().is_empty());
        }
    }
}
