//! `W0xx`: structural integrity of the network and table.

use std::collections::BTreeSet;

use crate::context::LintContext;
use crate::diagnostic::{Diagnostic, Severity};
use crate::lint::Lint;
use crate::lints::{pair_ref, walk};

/// `W001`: a channel whose endpoints coincide.
pub struct SelfLoopChannel;

impl Lint for SelfLoopChannel {
    fn code(&self) -> &'static str {
        "W001"
    }
    fn name(&self) -> &'static str {
        "self-loop-channel"
    }
    fn description(&self) -> &'static str {
        "a channel from a node to itself can never appear on a path and poisons CDG construction"
    }
    fn paper_anchor(&self) -> &'static str {
        "Section 2 model (channels connect neighbouring nodes)"
    }
    fn default_severity(&self) -> Severity {
        Severity::Deny
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        ctx.net
            .channels()
            .filter(|c| c.src() == c.dst())
            .map(|c| {
                Diagnostic::new(
                    self.code(),
                    self.name(),
                    severity,
                    format!("channel {c} is a self-loop"),
                )
                .entity("channel", c)
                .entity("node", ctx.net.node_name(c.src()))
            })
            .collect()
    }
}

/// `W002`: two channels with identical (src, dst, vc).
pub struct DuplicateChannel;

impl Lint for DuplicateChannel {
    fn code(&self) -> &'static str {
        "W002"
    }
    fn name(&self) -> &'static str {
        "duplicate-channel"
    }
    fn description(&self) -> &'static str {
        "two channels with the same endpoints and virtual-channel index are indistinguishable to an oblivious router"
    }
    fn paper_anchor(&self) -> &'static str {
        "Section 2 model (virtual channels are distinct resources)"
    }
    fn default_severity(&self) -> Severity {
        Severity::Deny
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let mut seen = BTreeSet::new();
        ctx.net
            .channels()
            .filter(|c| !seen.insert((c.src(), c.dst(), c.vc())))
            .map(|c| {
                Diagnostic::new(
                    self.code(),
                    self.name(),
                    severity,
                    format!("channel {c} duplicates an earlier channel on the same link and lane"),
                )
                .entity("channel", c)
            })
            .collect()
    }
}

/// `W003`: the network is not strongly connected, or the table leaves
/// ordered pairs unrouted.
pub struct UnroutablePairs;

impl Lint for UnroutablePairs {
    fn code(&self) -> &'static str {
        "W003"
    }
    fn name(&self) -> &'static str {
        "unroutable-pair"
    }
    fn description(&self) -> &'static str {
        "a total oblivious algorithm must route every ordered pair; disconnection makes that impossible"
    }
    fn paper_anchor(&self) -> &'static str {
        "Definition 3 (routing algorithm totality); Section 2 (strongly connected interconnection)"
    }
    fn default_severity(&self) -> Severity {
        Severity::Deny
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let nodes: Vec<_> = ctx.net.nodes().collect();
        if !ctx.net.is_strongly_connected() {
            let dist = ctx.net.all_pairs_distances();
            let witness = nodes
                .iter()
                .flat_map(|&u| nodes.iter().map(move |&v| (u, v)))
                .find(|&(u, v)| u != v && dist[u.index()][v.index()].is_none());
            let mut d = Diagnostic::new(
                self.code(),
                self.name(),
                severity,
                "network is not strongly connected".to_string(),
            );
            if let Some(pair) = witness {
                d = d
                    .entity("pair", pair_ref(ctx.net, pair))
                    .fact("unreachable_pair", pair_ref(ctx.net, pair));
            }
            out.push(d);
        }
        let missing: Vec<(wormnet::NodeId, wormnet::NodeId)> = nodes
            .iter()
            .flat_map(|&u| nodes.iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| u != v && ctx.table.path(u, v).is_none())
            .collect();
        if !missing.is_empty() {
            let mut d = Diagnostic::new(
                self.code(),
                self.name(),
                severity,
                format!(
                    "routing table is not total: {} unrouted pair(s)",
                    missing.len()
                ),
            )
            .fact("unrouted_pairs", missing.len());
            for &pair in missing.iter().take(3) {
                d = d.entity("pair", pair_ref(ctx.net, pair));
            }
            out.push(d);
        }
        out
    }
}

/// `W004`: a channel no routed path uses.
pub struct DeadChannel;

impl Lint for DeadChannel {
    fn code(&self) -> &'static str {
        "W004"
    }
    fn name(&self) -> &'static str {
        "dead-channel"
    }
    fn description(&self) -> &'static str {
        "a channel outside every routed path is dead hardware: it cannot carry traffic and never appears in the CDG"
    }
    fn paper_anchor(&self) -> &'static str {
        "Definition 4 (the CDG contains exactly the channels the algorithm uses)"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        // Past this many dead channels, collapse into one summary
        // diagnostic: a deliberately partial table (e.g. switch-only
        // fat-tree routing) would otherwise drown the report.
        const PER_CHANNEL_LIMIT: usize = 16;
        let mut used = vec![false; ctx.net.channel_count()];
        for (_, path) in ctx.table.iter() {
            for c in path.channels() {
                used[c.index()] = true;
            }
        }
        let dead: Vec<_> = ctx
            .net
            .channels()
            .filter(|c| !used[c.id().index()])
            .collect();
        if dead.len() <= PER_CHANNEL_LIMIT {
            return dead
                .into_iter()
                .map(|c| {
                    Diagnostic::new(
                        self.code(),
                        self.name(),
                        severity,
                        format!("channel {c} is used by no routed path"),
                    )
                    .entity("channel", c)
                })
                .collect();
        }
        let mut d = Diagnostic::new(
            self.code(),
            self.name(),
            severity,
            format!(
                "{} of {} channels are used by no routed path",
                dead.len(),
                ctx.net.channel_count(),
            ),
        )
        .fact("dead_channels", dead.len());
        for (i, c) in dead.iter().take(3).enumerate() {
            d = d.entity("channel", c).fact(format!("example_{i}"), c);
        }
        vec![d]
    }
}

/// `W005`: a table entry whose path passes through its own destination
/// before ending — everything after the first arrival is a dead tail.
pub struct DeadPathTail;

impl Lint for DeadPathTail {
    fn code(&self) -> &'static str {
        "W005"
    }
    fn name(&self) -> &'static str {
        "dead-table-entry"
    }
    fn description(&self) -> &'static str {
        "a path that reaches its destination and keeps going carries dead channels: the worm would already have been consumed, yet the spec manufactures phantom CDG dependencies from the tail"
    }
    fn paper_anchor(&self) -> &'static str {
        "Section 2 model (messages are consumed at their destination)"
    }
    fn default_severity(&self) -> Severity {
        Severity::Deny
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (&(src, dst), path) in ctx.table.iter() {
            let nodes = path.nodes(ctx.net);
            let Some(first) = nodes[..nodes.len() - 1].iter().position(|&n| n == dst) else {
                continue;
            };
            let dead = nodes.len() - 1 - first;
            out.push(
                Diagnostic::new(
                    self.code(),
                    self.name(),
                    severity,
                    format!(
                        "path for {} passes through its destination at hop {first} and continues for {dead} dead channel(s)",
                        pair_ref(ctx.net, (src, dst)),
                    ),
                )
                .entity("pair", pair_ref(ctx.net, (src, dst)))
                .fact("path", walk(ctx.net, path))
                .fact("first_arrival_hop", first)
                .fact("dead_channels", dead),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::{LintConfig, Registry};
    use wormnet::topology::line;
    use wormnet::Network;
    use wormroute::{Path, TableRouting};

    fn run(net: &Network, table: &TableRouting) -> Vec<crate::Diagnostic> {
        Registry::with_default_lints()
            .run(net, table, &LintConfig::default())
            .diagnostics
    }

    #[test]
    fn duplicate_detected_and_no_self_loop_possible() {
        // `Network::add_channel_full` rejects self-loops outright, so
        // W001 is defence in depth for future construction paths; W002
        // is reachable today.
        let mut net = Network::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.add_channel(a, b);
        net.add_channel(b, a);
        net.add_channel(a, b); // duplicate of the first channel
        let table = TableRouting::new();
        let diags = run(&net, &table);
        assert!(!diags.iter().any(|d| d.code == "W001"));
        let w2 = diags.iter().find(|d| d.code == "W002").expect("W002");
        assert_eq!(w2.severity, crate::Severity::Deny);
    }

    #[test]
    fn missing_pairs_summarized() {
        let (net, nodes) = line(3);
        let mut table = TableRouting::new();
        table
            .insert(
                &net,
                nodes[0],
                nodes[1],
                Path::from_nodes(&net, &[nodes[0], nodes[1]]).unwrap(),
            )
            .unwrap();
        let diags = run(&net, &table);
        let w3 = diags.iter().find(|d| d.code == "W003").expect("W003");
        assert_eq!(w3.witness["unrouted_pairs"], "5");
        assert!(!w3.entities.is_empty());
    }

    #[test]
    fn dead_channel_detected() {
        let (net, nodes) = line(3);
        // Route only 0->1; every other channel is dead.
        let mut table = TableRouting::new();
        table
            .insert(
                &net,
                nodes[0],
                nodes[1],
                Path::from_nodes(&net, &[nodes[0], nodes[1]]).unwrap(),
            )
            .unwrap();
        let dead = run(&net, &table)
            .iter()
            .filter(|d| d.code == "W004")
            .count();
        assert_eq!(dead, 3, "three of the line's four channels are unused");
    }

    #[test]
    fn dead_tail_detected() {
        let (net, nodes) = line(3);
        let mut table = TableRouting::new();
        // 0 -> 1 -> 2 -> 1: arrives at node 1 (hop 1), then wanders on.
        table
            .insert(
                &net,
                nodes[0],
                nodes[1],
                Path::from_nodes(&net, &[nodes[0], nodes[1], nodes[2], nodes[1]]).unwrap(),
            )
            .unwrap();
        let diags = run(&net, &table);
        let w5 = diags.iter().find(|d| d.code == "W005").expect("W005");
        assert_eq!(w5.witness["first_arrival_hop"], "1");
        assert_eq!(w5.witness["dead_channels"], "2");
    }
}
