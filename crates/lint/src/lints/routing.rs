//! `W1xx`: routing-function properties (Definitions 7–9, minimality,
//! Corollary 1's `R : N × N → C` form).
//!
//! The boolean predicates live in `wormroute::properties`; the lints
//! here re-walk the table to extract *witnesses* — the first concrete
//! violation in deterministic table order — alongside the totals.

use crate::context::LintContext;
use crate::diagnostic::{Diagnostic, Severity};
use crate::lint::Lint;
use crate::lints::{pair_ref, walk};

/// `W101`: paths longer than the shortest path for their pair.
pub struct NonMinimalRoute;

impl Lint for NonMinimalRoute {
    fn code(&self) -> &'static str {
        "W101"
    }
    fn name(&self) -> &'static str {
        "non-minimal-route"
    }
    fn description(&self) -> &'static str {
        "a detour past the shortest path; deliberate in the paper's constructions (Theorem 3 rules out minimal variants) but a red flag in production specs"
    }
    fn paper_anchor(&self) -> &'static str {
        "Section 1 (minimal routing); Theorem 3"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let mut count = 0usize;
        let mut worst: Option<((wormnet::NodeId, wormnet::NodeId), usize, usize)> = None;
        // The table iterates grouped by source, so one BFS per source
        // serves every pair it originates (vs. one BFS per pair).
        let mut cached: Option<(wormnet::NodeId, Vec<Option<usize>>)> = None;
        for (&pair, path) in ctx.table.iter() {
            if cached.as_ref().map(|(s, _)| *s) != Some(pair.0) {
                cached = Some((pair.0, ctx.net.distances_from(pair.0)));
            }
            let (_, from_src) = cached.as_ref().expect("cache was just refreshed");
            let Some(dist) = from_src[pair.1.index()] else {
                continue; // W003 reports disconnection
            };
            if path.len() > dist {
                count += 1;
                if worst.is_none_or(|(_, len, d)| path.len() - dist > len - d) {
                    worst = Some((pair, path.len(), dist));
                }
            }
        }
        let Some((pair, len, dist)) = worst else {
            return Vec::new();
        };
        vec![Diagnostic::new(
            self.code(),
            self.name(),
            severity,
            format!(
                "{count} of {} routed pair(s) take non-minimal paths (worst: {} uses {len} channels, distance {dist})",
                ctx.table.len(),
                pair_ref(ctx.net, pair),
            ),
        )
        .entity("pair", pair_ref(ctx.net, pair))
        .fact("nonminimal_pairs", count)
        .fact("worst_pair", pair_ref(ctx.net, pair))
        .fact("worst_path", walk(ctx.net, ctx.table.path(pair.0, pair.1).expect("routed")))
        .fact("worst_path_len", len)
        .fact("worst_distance", dist)]
    }
}

/// `W102`: Definition 8 violations — a path's suffix from an
/// intermediate node differs from (or is missing as) the registered
/// path for that node.
pub struct SuffixClosureViolation;

impl Lint for SuffixClosureViolation {
    fn code(&self) -> &'static str {
        "W102"
    }
    fn name(&self) -> &'static str {
        "suffix-closure-violation"
    }
    fn description(&self) -> &'static str {
        "without suffix-closure, Corollary 2's guarantee (no false resource cycles) is forfeited: a cyclic CDG no longer implies a reachable deadlock"
    }
    fn paper_anchor(&self) -> &'static str {
        "Definition 8; Corollary 2"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let mut count = 0usize;
        let mut first: Option<Diagnostic> = None;
        for (&(src, dst), path) in ctx.table.iter() {
            let nodes = path.nodes(ctx.net);
            let interior = nodes.iter().enumerate().take(nodes.len() - 1).skip(1);
            for (pos, &v) in interior {
                if v == dst {
                    continue; // the suffix from dst is empty
                }
                let suffix = path.suffix_from_pos(pos).expect("interior position");
                let registered = ctx.table.path(v, dst);
                if registered == Some(&suffix) {
                    continue;
                }
                count += 1;
                if first.is_none() {
                    first = Some(
                        Diagnostic::new(self.code(), self.name(), severity, String::new())
                            .entity("pair", pair_ref(ctx.net, (src, dst)))
                            .entity("node", ctx.net.node_name(v))
                            .fact("pair", pair_ref(ctx.net, (src, dst)))
                            .fact("via", ctx.net.node_name(v))
                            .fact("path", walk(ctx.net, path))
                            .fact("expected_suffix", walk(ctx.net, &suffix))
                            .fact(
                                "registered",
                                registered
                                    .map(|p| walk(ctx.net, p))
                                    .unwrap_or_else(|| "unrouted".to_string()),
                            ),
                    );
                }
            }
        }
        let Some(mut d) = first else {
            return Vec::new();
        };
        d.message = format!(
            "routing is not suffix-closed: {count} violation(s); e.g. the path for {} passes {} but {} is routed differently",
            d.witness["pair"], d.witness["via"], d.witness["via"],
        );
        d = d.fact("violations", count);
        vec![d]
    }
}

/// `W103`: Definition 7 violations — the registered path to an
/// intermediate node (first occurrence) is not the corresponding
/// prefix.
pub struct PrefixClosureViolation;

impl Lint for PrefixClosureViolation {
    fn code(&self) -> &'static str {
        "W103"
    }
    fn name(&self) -> &'static str {
        "prefix-closure-violation"
    }
    fn description(&self) -> &'static str {
        "one of the three legs of Definition 9 coherence; coherent algorithms get Corollary 3's exactness"
    }
    fn paper_anchor(&self) -> &'static str {
        "Definition 7; Corollary 3"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let mut count = 0usize;
        let mut first: Option<Diagnostic> = None;
        for (&(src, dst), path) in ctx.table.iter() {
            let nodes = path.nodes(ctx.net);
            for (i, &v) in nodes[1..nodes.len() - 1].iter().enumerate() {
                if v == src {
                    continue; // prefix to the source is empty
                }
                // Only the first occurrence of v is constrained.
                if nodes.iter().position(|&n| n == v) != Some(i + 1) {
                    continue;
                }
                let prefix = path.prefix_to(ctx.net, v);
                let registered = ctx.table.path(src, v);
                if let (Some(prefix), Some(registered)) = (&prefix, registered) {
                    if registered == prefix {
                        continue;
                    }
                }
                count += 1;
                if first.is_none() {
                    first = Some(
                        Diagnostic::new(self.code(), self.name(), severity, String::new())
                            .entity("pair", pair_ref(ctx.net, (src, dst)))
                            .entity("node", ctx.net.node_name(v))
                            .fact("pair", pair_ref(ctx.net, (src, dst)))
                            .fact("via", ctx.net.node_name(v))
                            .fact("path", walk(ctx.net, path))
                            .fact(
                                "expected_prefix",
                                prefix
                                    .as_ref()
                                    .map(|p| walk(ctx.net, p))
                                    .unwrap_or_else(|| "?".to_string()),
                            )
                            .fact(
                                "registered",
                                registered
                                    .map(|p| walk(ctx.net, p))
                                    .unwrap_or_else(|| "unrouted".to_string()),
                            ),
                    );
                }
            }
        }
        let Some(mut d) = first else {
            return Vec::new();
        };
        d.message = format!(
            "routing is not prefix-closed: {count} violation(s); e.g. the path for {} reaches {} off the registered route",
            d.witness["pair"], d.witness["via"],
        );
        d = d.fact("violations", count);
        vec![d]
    }
}

/// `W104`: a routed path visits some node twice.
pub struct NodeRevisit;

impl Lint for NodeRevisit {
    fn code(&self) -> &'static str {
        "W104"
    }
    fn name(&self) -> &'static str {
        "node-revisit"
    }
    fn description(&self) -> &'static str {
        "a path through the same node twice breaks Definition 9 coherence and wastes channels"
    }
    fn paper_anchor(&self) -> &'static str {
        "Definition 9 (coherent routing never visits a node twice)"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let mut count = 0usize;
        let mut first: Option<Diagnostic> = None;
        for (&pair, path) in ctx.table.iter() {
            if path.is_node_simple(ctx.net) {
                continue;
            }
            count += 1;
            if first.is_none() {
                let nodes = path.nodes(ctx.net);
                let revisited = nodes
                    .iter()
                    .enumerate()
                    .find(|(i, n)| nodes[..*i].contains(n))
                    .map(|(_, &n)| n)
                    .expect("non-simple walk has a repeat");
                first = Some(
                    Diagnostic::new(self.code(), self.name(), severity, String::new())
                        .entity("pair", pair_ref(ctx.net, pair))
                        .entity("node", ctx.net.node_name(revisited))
                        .fact("pair", pair_ref(ctx.net, pair))
                        .fact("path", walk(ctx.net, path))
                        .fact("revisited_node", ctx.net.node_name(revisited)),
                );
            }
        }
        let Some(mut d) = first else {
            return Vec::new();
        };
        d.message = format!(
            "{count} routed path(s) revisit a node; e.g. {} passes {} twice",
            d.witness["pair"], d.witness["revisited_node"],
        );
        d = d.fact("revisiting_paths", count);
        vec![d]
    }
}

/// `W105`: positive detection of Corollary 1's `R : N × N → C` class.
pub struct NodeFunctionForm;

impl Lint for NodeFunctionForm {
    fn code(&self) -> &'static str {
        "W105"
    }
    fn name(&self) -> &'static str {
        "node-function-form"
    }
    fn description(&self) -> &'static str {
        "the next channel depends only on (current node, destination): by Corollary 1 such an algorithm has no false resource cycles, so any CDG cycle here is a real deadlock"
    }
    fn paper_anchor(&self) -> &'static str {
        "Corollary 1"
    }
    fn default_severity(&self) -> Severity {
        Severity::Allow
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        if !ctx.properties.node_function {
            return Vec::new();
        }
        let cyclic = !ctx.cdg.is_acyclic();
        vec![Diagnostic::new(
            self.code(),
            self.name(),
            severity,
            if cyclic {
                "algorithm has the form R : N x N -> C and a cyclic CDG: by Corollary 1 a reachable deadlock exists".to_string()
            } else {
                "algorithm has the form R : N x N -> C (every cyclic dependency would be a real deadlock; this CDG is acyclic)".to_string()
            },
        )
        .fact("cdg_cyclic", cyclic)
        .fact("suffix_closed", ctx.properties.suffix_closed)]
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::{LintConfig, Registry, StaticVerdict};
    use wormnet::topology::ring_unidirectional;
    use wormroute::algorithms::clockwise_ring;
    use wormroute::{Path, TableRouting};

    #[test]
    fn clockwise_ring_gets_node_function_form_and_no_property_warnings() {
        let (net, nodes) = ring_unidirectional(4);
        let table = clockwise_ring(&net, &nodes).unwrap();
        let report = Registry::with_default_lints().run(&net, &table, &LintConfig::default());
        assert!(report.diagnostics.iter().any(|d| d.code == "W105"));
        for code in ["W101", "W102", "W103", "W104"] {
            assert!(
                !report.diagnostics.iter().any(|d| d.code == code),
                "{code} must not fire on the coherent ring"
            );
        }
        assert_eq!(report.verdict, StaticVerdict::Deadlockable);
    }

    #[test]
    fn suffix_and_prefix_witnesses_are_concrete() {
        use wormnet::topology::line;
        let (net, nodes) = line(4);
        let mut table = TableRouting::new();
        table
            .insert(
                &net,
                nodes[0],
                nodes[3],
                Path::from_nodes(&net, &[nodes[0], nodes[1], nodes[2], nodes[3]]).unwrap(),
            )
            .unwrap();
        let report = Registry::with_default_lints().run(&net, &table, &LintConfig::default());
        let w102 = report
            .diagnostics
            .iter()
            .find(|d| d.code == "W102")
            .expect("missing suffixes violate Definition 8");
        assert_eq!(w102.witness["registered"], "unrouted");
        assert_eq!(w102.witness["violations"], "2");
        assert!(w102.witness["expected_suffix"].contains("->"));
        let w103 = report
            .diagnostics
            .iter()
            .find(|d| d.code == "W103")
            .expect("missing prefixes violate Definition 7");
        assert_eq!(w103.witness["violations"], "2");
    }

    #[test]
    fn nonminimal_detour_measured() {
        use wormnet::topology::line;
        let (net, nodes) = line(4);
        let mut table = TableRouting::new();
        // (1,0) the long way round: 1-2-1-0 (3 channels, distance 1).
        table
            .insert(
                &net,
                nodes[1],
                nodes[0],
                Path::from_nodes(&net, &[nodes[1], nodes[2], nodes[1], nodes[0]]).unwrap(),
            )
            .unwrap();
        let report = Registry::with_default_lints().run(&net, &table, &LintConfig::default());
        let w101 = report
            .diagnostics
            .iter()
            .find(|d| d.code == "W101")
            .expect("detour");
        assert_eq!(w101.witness["worst_path_len"], "3");
        assert_eq!(w101.witness["worst_distance"], "1");
        let w104 = report
            .diagnostics
            .iter()
            .find(|d| d.code == "W104")
            .expect("revisit");
        assert_eq!(w104.witness["revisited_node"], "l1");
    }
}
