//! `W208`–`W209`: positive acyclic-numbering certificates.
//!
//! `FreeAcyclic` says *that* the CDG is acyclic; these lints say *why*,
//! by recognising the two orderings production engines are built
//! around. Each certificate names a concrete strictly-increasing
//! channel numbering — exactly what Theorem 1 (Dally–Seitz) asks for —
//! so a reviewer can audit the freedom argument without re-deriving
//! it from the dependency graph:
//!
//! * **W208** (`vc-monotone-path-certificate`): every multi-hop path
//!   climbs strictly through virtual-channel lanes, so numbering
//!   channels lexicographically by `(lane, id)` orders the CDG. This
//!   is the ordered-VC discipline of dragonfly minimal/valiant
//!   engines and InfiniBand-style SL-to-VL maps.
//! * **W209** (`down-up-path-certificate`): every path's node indices
//!   strictly descend and then strictly ascend, so no dependency ever
//!   leads from an ascending channel back to a descending one —
//!   up*/down* fat-tree routing and the VC-free full-mesh scheme.
//!
//! Both fire only when the CDG really is acyclic and at least one
//! multi-hop path exists (a table of single hops has no dependencies
//! and needs no certificate).

use crate::context::LintContext;
use crate::diagnostic::{Diagnostic, Severity};
use crate::lint::Lint;

/// `W208`: strictly increasing virtual-channel lanes along every path.
pub struct VcMonotoneCertificate;

impl Lint for VcMonotoneCertificate {
    fn code(&self) -> &'static str {
        "W208"
    }
    fn name(&self) -> &'static str {
        "vc-monotone-path-certificate"
    }
    fn description(&self) -> &'static str {
        "every multi-hop path climbs strictly through VC lanes: numbering channels by (lane, id) is a Dally-Seitz certificate, so the algorithm is deadlock-free by construction"
    }
    fn paper_anchor(&self) -> &'static str {
        "Theorem 1 (Dally-Seitz acyclic numbering)"
    }
    fn default_severity(&self) -> Severity {
        Severity::Allow
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        // Acyclicity as certified online by the selected SCC engine
        // (HKMST or Pearce–Kelly — identical by differential test).
        if !ctx.scc_acyclic {
            return Vec::new();
        }
        let mut multi_hop = 0usize;
        let mut max_lane = 0u8;
        for (_, path) in ctx.table.iter() {
            let chans = path.channels();
            if chans.len() < 2 {
                continue;
            }
            multi_hop += 1;
            for w in chans.windows(2) {
                let (a, b) = (ctx.net.channel(w[0]).vc(), ctx.net.channel(w[1]).vc());
                if a >= b {
                    return Vec::new();
                }
                max_lane = max_lane.max(b);
            }
        }
        if multi_hop == 0 {
            return Vec::new();
        }
        vec![Diagnostic::new(
            self.code(),
            self.name(),
            severity,
            format!(
                "deadlock-free by VC ordering: all {multi_hop} multi-hop path(s) use strictly increasing lanes (numbering channels by (lane, id) is acyclic)",
            ),
        )
        .fact("multi_hop_paths", multi_hop)
        .fact("max_lane", max_lane)
        .fact("numbering", "(vc lane, channel id), lexicographic")]
    }
}

/// `W209`: node indices strictly descend then strictly ascend on every
/// path.
pub struct DownUpCertificate;

impl Lint for DownUpCertificate {
    fn code(&self) -> &'static str {
        "W209"
    }
    fn name(&self) -> &'static str {
        "down-up-path-certificate"
    }
    fn description(&self) -> &'static str {
        "every path's node indices strictly descend then strictly ascend (up*/down* form): descending channels numbered before ascending ones is a Dally-Seitz certificate"
    }
    fn paper_anchor(&self) -> &'static str {
        "Theorem 1 (Dally-Seitz acyclic numbering)"
    }
    fn default_severity(&self) -> Severity {
        Severity::Allow
    }
    fn check(&self, ctx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        if !ctx.scc_acyclic {
            return Vec::new();
        }
        let mut multi_hop = 0usize;
        for (_, path) in ctx.table.iter() {
            let idx: Vec<usize> = path.nodes(ctx.net).iter().map(|n| n.index()).collect();
            if idx.len() > 2 {
                multi_hop += 1;
            }
            let turn = idx.windows(2).take_while(|w| w[0] > w[1]).count();
            if !idx[turn..].windows(2).all(|w| w[0] < w[1]) {
                return Vec::new();
            }
        }
        if multi_hop == 0 {
            return Vec::new();
        }
        vec![Diagnostic::new(
            self.code(),
            self.name(),
            severity,
            format!(
                "deadlock-free by down/up ordering: all {multi_hop} multi-hop path(s) descend then ascend in node index, so no ascending channel ever waits on a descending one",
            ),
        )
        .fact("multi_hop_paths", multi_hop)
        .fact(
            "numbering",
            "descending channels by falling source index, then ascending channels by rising source index",
        )]
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::{LintConfig, Registry, StaticVerdict};
    use wormnet::topology::{complete, ring_unidirectional, Dragonfly, FatTree, Mesh};
    use wormroute::algorithms::{
        clockwise_ring, dragonfly_minimal, dragonfly_valiant, fattree_updown, fullmesh_vcfree,
        xy_mesh,
    };

    fn codes(net: &wormnet::Network, table: &wormroute::TableRouting) -> Vec<&'static str> {
        Registry::with_default_lints()
            .run(net, table, &LintConfig::default())
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn dragonfly_engines_earn_the_vc_certificate() {
        // Minimal needs 3 lanes ([0,2] local, [1] global); valiant
        // needs the 5-lane layout of `new_valiant`.
        let cases = [
            (
                Dragonfly::new(5, 4),
                dragonfly_minimal as fn(&Dragonfly) -> _,
            ),
            (Dragonfly::new_valiant(5, 4), dragonfly_valiant),
        ];
        for (df, engine) in &cases {
            let table = engine(df).unwrap();
            let report =
                Registry::with_default_lints().run(df.network(), &table, &LintConfig::default());
            assert_eq!(report.verdict, StaticVerdict::FreeAcyclic);
            let c = codes(df.network(), &table);
            assert!(c.contains(&"W208"), "{c:?}");
            assert!(!c.contains(&"W209"), "{c:?}");
        }
    }

    #[test]
    fn fattree_and_fullmesh_earn_the_down_up_certificate() {
        let ft = FatTree::new(4);
        let table = fattree_updown(&ft).unwrap();
        let c = codes(ft.network(), &table);
        assert!(c.contains(&"W209"), "{c:?}");
        assert!(!c.contains(&"W208"), "{c:?}");

        let (net, nodes) = complete(9);
        let table = fullmesh_vcfree(&net, &nodes).unwrap();
        let c = codes(&net, &table);
        assert!(c.contains(&"W209"), "{c:?}");
        assert!(!c.contains(&"W208"), "{c:?}");
    }

    #[test]
    fn no_certificate_on_cyclic_or_unordered_specs() {
        let (net, nodes) = ring_unidirectional(4);
        let c = codes(&net, &clockwise_ring(&net, &nodes).unwrap());
        assert!(!c.contains(&"W208") && !c.contains(&"W209"), "{c:?}");

        // XY on the mesh is free but neither lane-ordered (one lane)
        // nor down/up (a +x then -y path ascends before descending).
        let mesh = Mesh::new(&[3, 3]);
        let c = codes(mesh.network(), &xy_mesh(&mesh).unwrap());
        assert!(!c.contains(&"W208") && !c.contains(&"W209"), "{c:?}");
    }
}
