//! Seeded random spec generation and three-way differential fuzzing.
//!
//! [`generate`] emits a syntactically and semantically valid
//! `wormspec/1` source from a seed: a topology/engine pair drawn from a
//! compatibility menu, optionally seeded uniform traffic, optionally a
//! verify section. Everything downstream of the seed is deterministic,
//! so a fuzz failure is reproducible from its seed alone.
//!
//! [`differential`] then runs the three independent verdict sources the
//! repo already maintains — the lint registry, the theorem classifier,
//! and the exhaustive search — over the generated spec and
//! cross-checks them with the same soundness relation
//! `tests/props_lint.rs` pins:
//!
//! - lint `free-acyclic` must coincide with the classifier's acyclic
//!   certificate;
//! - a lint `free-*` verdict contradicts a classifier `deadlockable`;
//! - lint `deadlockable` contradicts a classifier deadlock-freedom
//!   proof;
//! - a search-reachable deadlock (an actual witness interleaving)
//!   contradicts *any* freedom claim from the other two.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wormlint::{Registry, StaticVerdict};
use wormsearch::{explore, Verdict as SearchVerdict};
use wormsim::Sim;

use crate::compile::{compile, CompiledJob};

/// Generate a valid spec source from `seed`.
pub fn generate(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::from("wormspec/1\n");
    let nodes;
    match rng.random_range(0u32..6) {
        0 => {
            let x = rng.random_range(2u64..=3);
            let y = rng.random_range(2u64..=3);
            nodes = x * y;
            let engine = match rng.random_range(0u32..4) {
                0 => "dimension_order",
                1 => "xy_mesh",
                2 => "west_first",
                _ => "negative_first",
            };
            out.push_str(&format!("topology {{ kind = mesh dims = [{x}, {y}] }}\n"));
            out.push_str(&format!("routing {{ engine = {engine} }}\n"));
        }
        1 => {
            nodes = rng.random_range(3u64..=6);
            if rng.random_bool(0.5) {
                out.push_str(&format!("topology {{ kind = ring nodes = {nodes} }}\n"));
                out.push_str("routing { engine = clockwise_ring }\n");
            } else {
                out.push_str(&format!(
                    "topology {{ kind = ring nodes = {nodes} vcs = 2 lanes }}\n"
                ));
                out.push_str("routing { engine = dateline_ring }\n");
            }
        }
        2 => {
            let dim = rng.random_range(2u64..=3);
            nodes = 1 << dim;
            out.push_str(&format!("topology {{ kind = hypercube dim = {dim} }}\n"));
            out.push_str("routing { engine = ecube }\n");
        }
        3 => {
            nodes = rng.random_range(3u64..=5);
            let engine = match rng.random_range(0u32..2) {
                0 => "fullmesh_direct",
                _ => "fullmesh_vcfree",
            };
            out.push_str(&format!("topology {{ kind = complete nodes = {nodes} }}\n"));
            out.push_str(&format!("routing {{ engine = {engine} }}\n"));
        }
        4 => {
            let x = rng.random_range(3u64..=4);
            nodes = x * x;
            out.push_str(&format!(
                "topology {{ kind = torus dims = [{x}, {x}] vcs = 2 lanes }}\n"
            ));
            out.push_str("routing { engine = dateline_torus }\n");
        }
        _ => {
            let groups = rng.random_range(3u64..=4);
            nodes = groups * 2;
            out.push_str(&format!(
                "topology {{ kind = dragonfly groups = {groups} routers = 2 }}\n"
            ));
            out.push_str("routing { engine = dragonfly_minimal }\n");
        }
    }
    let _ = nodes;
    if rng.random_bool(0.75) {
        let rate = match rng.random_range(0u32..3) {
            0 => "0.1",
            1 => "0.2",
            _ => "0.35",
        };
        let horizon = rng.random_range(5u64..=15);
        let tseed = rng.random_range(0u64..1_000_000);
        let length = rng.random_range(1u64..=3);
        out.push_str(&format!(
            "traffic {{ pattern = uniform rate = {rate} horizon = {horizon} cycles seed = {tseed} length = {length} flits }}\n"
        ));
    }
    if rng.random_bool(0.5) {
        let engine = if rng.random_bool(0.5) {
            "search"
        } else {
            "static"
        };
        let stall = rng.random_range(0u64..=1);
        out.push_str(&format!(
            "verify {{ engine = {engine} max_states = 20000 stall_budget = {stall} cycles }}\n"
        ));
    }
    out
}

/// The three verdicts plus any cross-check failures for one seed.
pub struct DifferentialReport {
    /// The generating seed.
    pub seed: u64,
    /// The generated source.
    pub source: String,
    /// Canonical hash (when the spec compiled).
    pub hash: Option<String>,
    /// Lint-registry verdict.
    pub lint: Option<StaticVerdict>,
    /// Classifier deadlock-freedom answer.
    pub classifier_free: Option<Option<bool>>,
    /// Search verdict name over the resolved traffic, when any.
    pub search: Option<&'static str>,
    /// Human-readable contradiction descriptions (empty = consistent).
    pub failures: Vec<String>,
}

fn check_lint_vs_classifier(
    lint: StaticVerdict,
    classifier: &worm_core::classify::AlgorithmVerdict,
    failures: &mut Vec<String>,
) {
    use worm_core::classify::AlgorithmVerdict;
    let free = classifier.is_deadlock_free();
    match lint {
        StaticVerdict::FreeAcyclic => {
            if !matches!(classifier, AlgorithmVerdict::DeadlockFreeAcyclic { .. }) {
                failures.push(format!(
                    "lint free-acyclic but classifier {}",
                    crate::verdict::classifier_name(classifier)
                ));
            }
        }
        StaticVerdict::FreeCyclic => {
            if free == Some(false) {
                failures.push("lint free-cyclic but classifier deadlockable".into());
            }
        }
        StaticVerdict::Deadlockable => {
            if free == Some(true) {
                failures.push("lint deadlockable but classifier deadlock-free".into());
            }
        }
        StaticVerdict::Undecided => {}
    }
}

fn search_over(job: &CompiledJob) -> Option<(SearchVerdict, &'static str)> {
    if job.messages.is_empty() || job.messages.len() > crate::verdict::MAX_SEARCH_MESSAGES {
        return None;
    }
    let sim = Sim::new(
        job.network(),
        &job.table,
        job.messages.clone(),
        job.capacity,
    )
    .ok()?;
    let result = explore(&sim, &job.search_config);
    let name = match result.verdict {
        SearchVerdict::DeadlockReachable(_) => "deadlock-reachable",
        SearchVerdict::DeadlockFree => "deadlock-free",
        SearchVerdict::Inconclusive { .. } => "inconclusive",
    };
    Some((result.verdict, name))
}

/// Generate a spec from `seed` and cross-check lint, classifier, and
/// search against each other.
pub fn differential(seed: u64) -> DifferentialReport {
    let source = generate(seed);
    let mut report = DifferentialReport {
        seed,
        source: source.clone(),
        hash: None,
        lint: None,
        classifier_free: None,
        search: None,
        failures: Vec::new(),
    };
    let job = match compile(&source) {
        Ok(job) => job,
        Err(e) => {
            report.failures.push(format!(
                "generated spec failed to compile: {}",
                e.render(&source, "specgen")
            ));
            return report;
        }
    };
    report.hash = Some(job.hash.clone());

    let registry = Registry::with_default_lints();
    let lint_report = registry.run(job.network(), &job.table, &job.lint_config);
    report.lint = Some(lint_report.verdict);

    let classifier =
        worm_core::classify::classify_algorithm(job.network(), &job.table, &job.classify_options);
    report.classifier_free = Some(classifier.is_deadlock_free());
    check_lint_vs_classifier(lint_report.verdict, &classifier, &mut report.failures);

    if let Some((verdict, name)) = search_over(&job) {
        report.search = Some(name);
        if matches!(verdict, SearchVerdict::DeadlockReachable(_)) {
            // An explicit witness interleaving beats any freedom claim.
            if classifier.is_deadlock_free() == Some(true) {
                report
                    .failures
                    .push("search found a deadlock but the classifier proved freedom".into());
            }
            if matches!(
                lint_report.verdict,
                StaticVerdict::FreeAcyclic | StaticVerdict::FreeCyclic
            ) {
                report
                    .failures
                    .push("search found a deadlock but lint certified freedom".into());
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(generate(42), generate(42));
        // Different seeds explore the menu (not a guarantee per pair,
        // but these two are known to differ).
        assert_ne!(generate(0), generate(1));
    }

    #[test]
    fn generated_specs_always_compile() {
        for seed in 0..40 {
            let source = generate(seed);
            compile(&source)
                .unwrap_or_else(|e| panic!("seed {seed}: {}", e.render(&source, "specgen")));
        }
    }

    #[test]
    fn a_small_differential_sweep_is_consistent() {
        for seed in 0..12 {
            let report = differential(seed);
            assert!(
                report.failures.is_empty(),
                "seed {seed} disagreed: {:?}\n{}",
                report.failures,
                report.source
            );
        }
    }
}
