//! The content-addressed on-disk result cache.
//!
//! One file per canonical spec: `<dir>/<hash>.json`, where `<hash>` is
//! the 16-hex-digit `wormspec` content hash and the payload is the
//! `wormserve/1` verdict document byte-for-byte. Because the hash is
//! taken over the *canonical* text, any surface rewrite of a spec —
//! whitespace, comments, key order, spelled-out defaults — hits the
//! same entry, and because the verdict document is deterministic, a hit
//! can be replayed without rerunning any engine and without byte drift.
//!
//! Stores write to a `.tmp` sibling and rename into place, so a crash
//! mid-write can leave a stray temp file but never a torn entry.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A directory of verdict documents keyed by canonical spec hash.
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    /// The directory backing this cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for a canonical hash.
    pub fn entry_path(&self, hash: &str) -> PathBuf {
        self.dir.join(format!("{hash}.json"))
    }

    /// The stored verdict for `hash`, if present.
    pub fn lookup(&self, hash: &str) -> Option<String> {
        fs::read_to_string(self.entry_path(hash)).ok()
    }

    /// Store `verdict` under `hash` atomically (write-temp + rename).
    pub fn store(&self, hash: &str, verdict: &str) -> io::Result<()> {
        let tmp = self.dir.join(format!("{hash}.json.tmp"));
        fs::write(&tmp, verdict)?;
        fs::rename(&tmp, self.entry_path(hash))
    }

    /// Entry count (for monitoring and tests).
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wormserve-cache-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_lookup_replays_the_exact_bytes() {
        let cache = ResultCache::open(tmpdir("roundtrip")).unwrap();
        assert!(cache.lookup("00112233aabbccdd").is_none());
        let verdict = "{\"schema\":\"wormserve/1\"}";
        cache.store("00112233aabbccdd", verdict).unwrap();
        assert_eq!(cache.lookup("00112233aabbccdd").as_deref(), Some(verdict));
        assert_eq!(cache.len(), 1);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn entries_are_isolated_by_hash() {
        let cache = ResultCache::open(tmpdir("isolated")).unwrap();
        cache.store("aaaaaaaaaaaaaaaa", "A").unwrap();
        cache.store("bbbbbbbbbbbbbbbb", "B").unwrap();
        assert_eq!(cache.lookup("aaaaaaaaaaaaaaaa").as_deref(), Some("A"));
        assert_eq!(cache.lookup("bbbbbbbbbbbbbbbb").as_deref(), Some("B"));
        assert_eq!(cache.len(), 2);
        let _ = fs::remove_dir_all(cache.dir());
    }
}
