//! Compile a `wormspec/1` source into a runnable verification job.
//!
//! Compilation chains the per-crate resolution seams in dependency
//! order — topology, routing, traffic, faults, then the verify
//! configuration objects — so a [`CompiledJob`] holds everything the
//! verdict engines need and no spec-shaped data survives past this
//! point. The canonical text and content hash are computed here too:
//! they are what the result cache keys on.

use worm_core::classify::ClassifyOptions;
use wormexist::ExistOptions;
use wormfault::FaultPlan;
use wormlint::LintConfig;
use wormnet::spec::BuiltTopology;
use wormroute::TableRouting;
use wormsearch::SearchConfig;
use wormsim::skew::SkewModel;
use wormsim::MessageSpec;
use wormspec::ast::{Spec, VerifyEngine};
use wormspec::diag::{codes, SpecError};

/// Simulation budget when the spec does not set `horizon` in
/// `verify { ... }`.
pub const DEFAULT_HORIZON: u64 = 10_000;

/// A fully resolved job: the parsed spec plus every engine input.
pub struct CompiledJob {
    /// The parsed (canonical-by-construction) AST.
    pub spec: Spec,
    /// The canonical text (`wormspec::canonical`).
    pub canonical: String,
    /// The 16-hex-digit content hash of the canonical text.
    pub hash: String,
    /// The built topology (keeps the typed builder alive for engines
    /// that need coordinates).
    pub topology: BuiltTopology,
    /// The resolved routing relation.
    pub table: TableRouting,
    /// The resolved message list (pattern messages first, explicit
    /// `message` declarations appended).
    pub messages: Vec<MessageSpec>,
    /// The resolved clock-skew model (no-op when the spec has none).
    pub skew: SkewModel,
    /// The resolved fault plan (empty when the spec has no faults).
    pub plan: FaultPlan,
    /// Lint registry configuration.
    pub lint_config: LintConfig,
    /// Classifier options (search fallback, budgets, SCC engine).
    pub classify_options: ClassifyOptions,
    /// Existence-engine budgets (the two-sided routability verdict).
    pub exist_options: ExistOptions,
    /// Exhaustive-search budgets.
    pub search_config: SearchConfig,
    /// `verify { capacity = N flits }` buffer override for the
    /// simulator and search.
    pub capacity: Option<usize>,
    /// `verify { horizon = N cycles }` simulation budget.
    pub horizon: u64,
    /// Which verdict engines to run.
    pub engine: VerifyEngine,
}

impl std::fmt::Debug for CompiledJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledJob")
            .field("hash", &self.hash)
            .field("topology", &self.topology)
            .field("messages", &self.messages.len())
            .field("engine", &self.engine)
            .finish_non_exhaustive()
    }
}

impl CompiledJob {
    /// The network under analysis.
    pub fn network(&self) -> &wormnet::Network {
        self.topology.network()
    }
}

/// Parse and resolve `source` into a [`CompiledJob`].
///
/// Every failure is a [`SpecError`] with a span into `source`, whether
/// it came from the parser or from a downstream resolution seam.
pub fn compile(source: &str) -> Result<CompiledJob, SpecError> {
    let spec = wormspec::parse(source)?;
    let canonical = wormspec::canonical(&spec);
    let hash = wormspec::content_hash_hex(&spec);
    let topology = wormnet::spec::build_topology(&spec.topology)?;
    let table = wormroute::spec::table_from_spec(&spec.routing, &topology)?;
    let (messages, skew) = match &spec.traffic {
        Some(t) => (
            wormsim::spec::messages_from_spec(t, &topology, &table)?,
            wormsim::spec::skew_from_spec(t, &topology)?,
        ),
        None => (Vec::new(), SkewModel::none(topology.network())),
    };
    let plan = match &spec.faults {
        Some(f) => wormfault::spec::plan_from_spec(f, topology.network(), messages.len())?,
        None => FaultPlan::new(),
    };
    let verify = spec.verify.as_ref();
    let lint_config = wormlint::spec::config_from_spec(verify)?;
    let classify_options = worm_core::spec::options_from_spec(verify)?;
    let exist_options = wormexist::spec::options_from_spec(verify)?;
    let search_config = wormsearch::spec::config_from_spec(verify)?;
    let capacity = match verify.and_then(|v| v.capacity.as_ref()) {
        Some(c) => {
            let cap = usize::try_from(c.value.value)
                .map_err(|_| SpecError::new(codes::RANGE, "`capacity` out of range", c.span))?;
            if cap == 0 {
                return Err(SpecError::new(
                    codes::RANGE,
                    "`capacity` must be at least 1 flit",
                    c.span,
                ));
            }
            Some(cap)
        }
        None => None,
    };
    let horizon = verify
        .and_then(|v| v.horizon.as_ref())
        .map(|h| h.value.value)
        .unwrap_or(DEFAULT_HORIZON);
    let engine = verify
        .and_then(|v| v.engine.as_ref().map(|e| e.value))
        .unwrap_or_default();
    Ok(CompiledJob {
        spec,
        canonical,
        hash,
        topology,
        table,
        messages,
        skew,
        plan,
        lint_config,
        classify_options,
        exist_options,
        search_config,
        capacity,
        horizon,
        engine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_minimal_spec_compiles_end_to_end() {
        let job = compile(
            "wormspec/1\n\
             topology { kind = ring nodes = 4 }\n\
             routing { engine = clockwise_ring }\n",
        )
        .unwrap();
        assert_eq!(job.network().node_count(), 4);
        assert!(job.messages.is_empty());
        assert_eq!(job.plan.len(), 0);
        assert_eq!(job.horizon, DEFAULT_HORIZON);
        assert_eq!(job.engine, VerifyEngine::Static);
        assert_eq!(job.hash.len(), 16);
    }

    #[test]
    fn the_hash_tracks_canonical_text_not_surface_syntax() {
        let a = compile(
            "wormspec/1\ntopology { kind = ring nodes = 4 }\nrouting { engine = clockwise_ring }\n",
        )
        .unwrap();
        let b = compile(
            "wormspec/1\n# a comment\ntopology {\n  nodes = 4\n  kind = ring\n}\nrouting { engine = clockwise_ring }\n",
        )
        .unwrap();
        assert_eq!(a.hash, b.hash);
        assert_eq!(a.canonical, b.canonical);
    }

    #[test]
    fn verify_settings_reach_the_engine_inputs() {
        let job = compile(
            "wormspec/1\n\
             topology { kind = ring nodes = 4 }\n\
             routing { engine = clockwise_ring }\n\
             traffic { pattern = explicit message \"r0\" -> \"r2\" length 2 flits }\n\
             verify { engine = full capacity = 2 flits horizon = 500 cycles }\n",
        )
        .unwrap();
        assert_eq!(job.engine, VerifyEngine::Full);
        assert_eq!(job.capacity, Some(2));
        assert_eq!(job.horizon, 500);
        assert_eq!(job.messages.len(), 1);
    }

    #[test]
    fn downstream_resolution_errors_surface_with_spans() {
        let e = compile(
            "wormspec/1\ntopology { kind = ring nodes = 4 }\nrouting { engine = clockwise_ring }\nverify { capacity = 0 flits }\n",
        )
        .unwrap_err();
        assert_eq!(e.code, codes::RANGE);
    }
}
