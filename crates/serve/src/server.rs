//! The batch verification server: a worker pool over a bounded queue,
//! with cache-first execution and graceful drain on shutdown.
//!
//! Submission is multi-producer (`Server::submit` clones are cheap and
//! thread-safe via the shared queue) and blocks when the queue is at
//! capacity — a client can never race the pool into unbounded memory.
//! Each worker compiles a job, consults the content-addressed cache,
//! and either replays the stored verdict byte-for-byte (a *hit*: no
//! engine runs) or computes, stores, and returns a fresh one.
//! [`Server::shutdown`] closes the queue, lets every worker drain what
//! was already accepted, joins the pool, and hands back all results in
//! submission order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use wormtrace::MemoryRecorder;

use crate::cache::ResultCache;
use crate::compile::compile;
use crate::queue::JobQueue;
use crate::verdict::verdict_json;

/// Server tuning knobs.
pub struct ServerConfig {
    /// Worker threads (minimum 1).
    pub workers: usize,
    /// Queue capacity before `submit` blocks (minimum 1).
    pub queue_depth: usize,
    /// Result cache directory; `None` disables caching.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Attach a `wormtrace` report to each *computed* job result.
    /// Cache hits run no engines, so they carry no trace.
    pub attach_traces: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_depth: 64,
            cache_dir: None,
            attach_traces: false,
        }
    }
}

struct Job {
    index: usize,
    name: String,
    source: String,
}

/// The outcome of one submitted spec.
pub struct JobResult {
    /// The name given at submission (reporting only — never part of
    /// the verdict document).
    pub name: String,
    /// Canonical spec hash (present whenever the spec compiled).
    pub hash: Option<String>,
    /// The `wormserve/1` verdict document, or the rendered spec error.
    pub verdict: Result<String, String>,
    /// Whether the verdict was replayed from the cache.
    pub cached: bool,
    /// The `wormtrace/1` report for computed jobs, when enabled.
    pub trace: Option<String>,
}

/// The global trace recorder is process-wide state, so tracing workers
/// serialize their verify-and-snapshot window through this lock; the
/// non-tracing path never takes it.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn run_job(job: &Job, cache: Option<&ResultCache>, attach_traces: bool) -> JobResult {
    let compiled = match compile(&job.source) {
        Ok(compiled) => compiled,
        Err(e) => {
            return JobResult {
                name: job.name.clone(),
                hash: None,
                verdict: Err(e.render(&job.source, &job.name)),
                cached: false,
                trace: None,
            }
        }
    };
    if let Some(cache) = cache {
        if let Some(stored) = cache.lookup(&compiled.hash) {
            return JobResult {
                name: job.name.clone(),
                hash: Some(compiled.hash),
                verdict: Ok(stored),
                cached: true,
                trace: None,
            };
        }
    }
    let (verdict, trace) = if attach_traces {
        let _guard = TRACE_LOCK.lock().expect("trace lock poisoned");
        let recorder = Arc::new(MemoryRecorder::default());
        wormtrace::install(Arc::clone(&recorder) as Arc<dyn wormtrace::Recorder>);
        let verdict = verdict_json(&compiled);
        wormtrace::uninstall();
        let report = recorder.snapshot().to_json(&compiled.hash);
        (verdict, Some(report))
    } else {
        (verdict_json(&compiled), None)
    };
    if let Some(cache) = cache {
        // A store failure degrades to cache-miss-next-time; the verdict
        // itself is already in hand.
        let _ = cache.store(&compiled.hash, &verdict);
    }
    JobResult {
        name: job.name.clone(),
        hash: Some(compiled.hash),
        verdict: Ok(verdict),
        cached: false,
        trace,
    }
}

/// A running worker pool. Dropping without [`Server::shutdown`]
/// detaches the workers; call `shutdown` to drain and collect.
pub struct Server {
    queue: Arc<JobQueue<Job>>,
    results: Arc<Mutex<Vec<(usize, JobResult)>>>,
    workers: Vec<JoinHandle<()>>,
    submitted: AtomicUsize,
}

impl Server {
    /// Start the worker pool.
    pub fn start(config: ServerConfig) -> std::io::Result<Self> {
        let cache = match &config.cache_dir {
            Some(dir) => Some(Arc::new(ResultCache::open(dir)?)),
            None => None,
        };
        let queue = Arc::new(JobQueue::new(config.queue_depth));
        let results = Arc::new(Mutex::new(Vec::new()));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let results = Arc::clone(&results);
                let cache = cache.clone();
                let attach_traces = config.attach_traces;
                std::thread::spawn(move || {
                    while let Some(job) = queue.pop() {
                        let result = run_job(&job, cache.as_deref(), attach_traces);
                        results
                            .lock()
                            .expect("results poisoned")
                            .push((job.index, result));
                    }
                })
            })
            .collect();
        Ok(Server {
            queue,
            results,
            workers,
            submitted: AtomicUsize::new(0),
        })
    }

    /// Submit a spec for verification. Blocks while the queue is full;
    /// returns `false` if the server is already shutting down.
    pub fn submit(&self, name: impl Into<String>, source: impl Into<String>) -> bool {
        let index = self.submitted.fetch_add(1, Ordering::SeqCst);
        self.queue
            .push(Job {
                index,
                name: name.into(),
                source: source.into(),
            })
            .is_ok()
    }

    /// Close the queue, drain every accepted job, join the pool, and
    /// return all results in submission order.
    pub fn shutdown(self) -> Vec<JobResult> {
        self.queue.close();
        for worker in self.workers {
            worker.join().expect("worker panicked");
        }
        let mut results = Arc::try_unwrap(self.results)
            .map(|m| m.into_inner().expect("results poisoned"))
            .unwrap_or_else(|arc| std::mem::take(&mut *arc.lock().expect("results poisoned")));
        results.sort_by_key(|(index, _)| *index);
        results.into_iter().map(|(_, result)| result).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RING: &str =
        "wormspec/1\ntopology { kind = ring nodes = 4 }\nrouting { engine = clockwise_ring }\n";

    #[test]
    fn a_batch_drains_in_submission_order() {
        let server = Server::start(ServerConfig {
            workers: 3,
            queue_depth: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        for i in 0..6 {
            assert!(server.submit(format!("job{i}"), RING));
        }
        let results = server.shutdown();
        assert_eq!(results.len(), 6);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.name, format!("job{i}"));
            assert!(r.verdict.is_ok());
        }
    }

    #[test]
    fn spec_errors_come_back_rendered_not_panicking() {
        let server = Server::start(ServerConfig::default()).unwrap();
        server.submit(
            "bad",
            "wormspec/1\ntopology { kind = mesh }\nrouting { engine = dimension_order }\n",
        );
        let results = server.shutdown();
        let err = results[0].verdict.as_ref().unwrap_err();
        assert!(err.contains("error[E012]"), "{err}");
        assert!(results[0].hash.is_none());
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let server = Server::start(ServerConfig::default()).unwrap();
        server.queue.close();
        assert!(!server.submit("late", RING));
    }

    #[test]
    fn traced_jobs_attach_a_report() {
        let server = Server::start(ServerConfig {
            attach_traces: true,
            ..ServerConfig::default()
        })
        .unwrap();
        server.submit("traced", RING);
        let results = server.shutdown();
        let trace = results[0].trace.as_ref().expect("trace attached");
        assert!(trace.contains("lint.runs"), "{trace}");
    }
}
