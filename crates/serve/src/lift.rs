//! Lift an in-memory `(Network, TableRouting)` pair into an explicit
//! `wormspec/1` document.
//!
//! The inverse of the resolution seams for the explicit subset: node
//! declarations in id order, channel declarations in id order (so
//! `build_topology` reassigns the *same* dense ids), and one `path`
//! declaration per routed pair, sorted by `(src, dst)`. Round-tripping
//! `lift` through `build_topology`/`table_from_spec` therefore rebuilds
//! a network and table that analyze identically — which is how the
//! paper-figure lint-corpus constructions became committed `.wspec`
//! files (see `corpus/`).

use wormnet::Network;
use wormroute::TableRouting;
use wormspec::ast::{
    ChannelDecl, Decl, NodeDecl, PathDecl, Quantity, Routing, Spanned, Spec, Topology,
    TopologyKind, Unit,
};

fn dummy_str(s: &str) -> Spanned<String> {
    Spanned::dummy(s.to_string())
}

/// Express `net` + `table` as an explicit spec (`kind = explicit`,
/// `engine = table`).
pub fn lift(net: &Network, table: &TableRouting) -> Spec {
    let mut decls = Vec::with_capacity(net.node_count() + net.channel_count());
    for node in net.nodes() {
        decls.push(Decl::Node(NodeDecl {
            name: dummy_str(net.node_name(node)),
        }));
    }
    for channel in net.channels() {
        decls.push(Decl::Channel(ChannelDecl {
            src: dummy_str(net.node_name(channel.src())),
            dst: dummy_str(net.node_name(channel.dst())),
            lane: Spanned::dummy(u64::from(channel.vc())),
            cap: Spanned::dummy(Quantity::new(channel.capacity() as u64, Unit::Flits)),
            label: channel.label().map(dummy_str),
        }));
    }
    let mut pairs: Vec<_> = table.iter().collect();
    pairs.sort_by_key(|(&(src, dst), _)| (src.index(), dst.index()));
    let paths = pairs
        .into_iter()
        .map(|(&(src, dst), path)| PathDecl {
            src: dummy_str(net.node_name(src)),
            dst: dummy_str(net.node_name(dst)),
            channels: Spanned::dummy(path.channels().iter().map(|c| c.index() as u64).collect()),
        })
        .collect();
    Spec {
        topology: Topology {
            kind: Spanned::dummy(TopologyKind::Explicit),
            decls,
            ..Topology::default()
        },
        routing: Routing {
            engine: dummy_str("table"),
            paths,
        },
        traffic: None,
        faults: None,
        verify: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormnet::spec::build_topology;
    use wormroute::spec::table_from_spec;

    fn rebuild(spec: &Spec) -> (Network, TableRouting) {
        let topo = build_topology(&spec.topology).expect("lifted topology builds");
        let table = table_from_spec(&spec.routing, &topo).expect("lifted table resolves");
        let net = topo.network().clone();
        (net, table)
    }

    #[test]
    fn lifting_fig1_round_trips_through_the_seams() {
        let c = worm_core::paper::fig1::cyclic_dependency();
        let spec = lift(&c.net, &c.table);
        let printed = wormspec::to_spec(&spec);
        let reparsed = wormspec::parse(&printed).expect("lifted spec parses");
        assert_eq!(reparsed, spec, "parse(print(lift)) must be identity");

        let (net, table) = rebuild(&reparsed);
        assert_eq!(net.node_count(), c.net.node_count());
        assert_eq!(net.channel_count(), c.net.channel_count());
        for (a, b) in net.channels().zip(c.net.channels()) {
            assert_eq!(
                (a.src(), a.dst(), a.vc(), a.capacity()),
                (b.src(), b.dst(), b.vc(), b.capacity())
            );
            assert_eq!(a.label(), b.label());
        }
        assert_eq!(table.len(), c.table.len());
        for (pair, path) in c.table.iter() {
            assert_eq!(
                table.path(pair.0, pair.1).map(|p| p.channels()),
                Some(path.channels())
            );
        }
    }

    #[test]
    fn lifted_specs_analyze_identically() {
        let c = worm_core::paper::fig2::two_message_deadlock();
        let spec = lift(&c.net, &c.table);
        let (net, table) = rebuild(&spec);
        let registry = wormlint::Registry::with_default_lints();
        let config = wormlint::LintConfig::default();
        let direct = registry.run(&c.net, &c.table, &config);
        let lifted = registry.run(&net, &table, &config);
        assert_eq!(direct.verdict, lifted.verdict);
        assert_eq!(direct.diagnostics.len(), lifted.diagnostics.len());
    }
}
