//! A bounded multi-producer multi-consumer job queue.
//!
//! `Mutex` + two `Condvar`s — the textbook bounded buffer, kept
//! dependency-free on purpose. Producers block in [`JobQueue::push`]
//! while the queue is at capacity (backpressure, not unbounded memory);
//! consumers block in [`JobQueue::pop`] while it is empty. Closing the
//! queue wakes everyone: pending pushes fail, pops drain whatever is
//! left and then return `None` — which is exactly the graceful-shutdown
//! contract the server's worker pool needs.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking FIFO shared by reference between producers and
/// consumers (wrap it in an `Arc`).
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue `item`, blocking while the queue is full.
    ///
    /// Returns `Err(item)` if the queue is (or becomes, while waiting)
    /// closed, handing the rejected job back to the caller.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue poisoned");
        }
    }

    /// Dequeue the oldest item, blocking while the queue is empty.
    ///
    /// Returns `None` only when the queue is closed **and** drained, so
    /// a worker loop of `while let Some(job) = queue.pop()` finishes
    /// every accepted job before exiting.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Close the queue: future pushes fail, pops drain then end.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently waiting (racy by nature; for monitoring).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty (racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_within_a_single_producer() {
        let q = JobQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn close_drains_in_flight_items_then_stops() {
        let q = Arc::new(JobQueue::new(4));
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.push(3), Err(3));
    }

    #[test]
    fn bounded_capacity_applies_backpressure() {
        let q = Arc::new(JobQueue::new(1));
        q.push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(1).is_ok())
        };
        // The producer is blocked on the full queue until we pop.
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let q = Arc::new(JobQueue::new(4));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..25 {
                        q.push(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<i32> = (0..4)
            .flat_map(|p| (0..25).map(move |i| p * 100 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }
}
