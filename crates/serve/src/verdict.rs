//! Render a [`CompiledJob`]'s verification results as a `wormserve/1`
//! verdict document.
//!
//! The document is the cache payload, so it is **deterministic by
//! construction**: every object's keys are emitted in sorted order,
//! every engine that runs is seeded by the spec itself, and nothing
//! environment-dependent — wall-clock timings, throughput metrics, the
//! submitting job's name — is allowed in. Re-verifying the same
//! canonical spec must reproduce the same bytes; `tests/serve_cache.rs`
//! holds that contract.
//!
//! Which blocks appear is decided by `verify { engine = ... }`:
//!
//! | engine   | `lint` | `classifier` | `search` | `sim` |
//! |----------|--------|--------------|----------|-------|
//! | `static` | ✓      | ✓            |          |       |
//! | `search` | ✓      | ✓            | ✓        |       |
//! | `sim`    | ✓      | ✓            |          | ✓     |
//! | `full`   | ✓      | ✓            | ✓        | ✓     |
//!
//! plus an `existence` block always (the two-sided routability
//! verdict for the fabric itself) and a `faults` block whenever the
//! spec has a `faults` section. `search` and `sim` need messages to
//! run over; with an empty resolved traffic list they degrade to
//! `{"skipped":"no messages"}`.

use worm_core::classify::{classify_algorithm, AlgorithmVerdict};
use wormexist::ExistenceReport;
use wormfault::{reverify, FaultOutcome, FaultRunner, RetryPolicy};
use wormlint::{LintReport, Registry};
use wormsearch::{explore, Verdict as SearchVerdict};
use wormsim::runner::{ArbitrationPolicy, Outcome, Runner};
use wormsim::Sim;
use wormspec::ast::VerifyEngine;

use crate::compile::CompiledJob;

/// The schema identifier stamped into every verdict document.
pub const SCHEMA: &str = "wormserve/1";

/// Escape a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an object from pre-rendered `(key, value)` fields, checking
/// the sorted-keys invariant the schema promises.
fn obj(fields: &[(&str, String)]) -> String {
    debug_assert!(
        fields.windows(2).all(|w| w[0].0 < w[1].0),
        "wormserve/1 object keys must be sorted: {:?}",
        fields.iter().map(|f| f.0).collect::<Vec<_>>()
    );
    let body: Vec<String> = fields.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
    format!("{{{}}}", body.join(","))
}

fn arr(items: impl IntoIterator<Item = String>) -> String {
    let body: Vec<String> = items.into_iter().collect();
    format!("[{}]", body.join(","))
}

/// Stable name for an algorithm-level classifier verdict.
pub fn classifier_name(v: &AlgorithmVerdict) -> &'static str {
    match v {
        AlgorithmVerdict::DeadlockFreeAcyclic { .. } => "deadlock-free-acyclic",
        AlgorithmVerdict::DeadlockFreeWithCycles { .. } => "deadlock-free-with-cycles",
        AlgorithmVerdict::Deadlockable { .. } => "deadlockable",
        AlgorithmVerdict::Unknown { .. } => "unknown",
    }
}

fn classifier_cycle_count(v: &AlgorithmVerdict) -> usize {
    match v {
        AlgorithmVerdict::DeadlockFreeAcyclic { .. } => 0,
        AlgorithmVerdict::DeadlockFreeWithCycles { cycles }
        | AlgorithmVerdict::Deadlockable { cycles }
        | AlgorithmVerdict::Unknown { cycles } => cycles.len(),
    }
}

fn lint_block(report: &LintReport) -> String {
    let counts: Vec<(&str, String)> = report
        .counts_by_code()
        .into_iter()
        .map(|(code, n)| (code, n.to_string()))
        .collect();
    obj(&[
        ("allow", report.allow_count().to_string()),
        ("counts", obj(&counts)),
        ("deny", report.deny_count().to_string()),
        ("verdict", format!("\"{}\"", report.verdict.name())),
        ("warn", report.warn_count().to_string()),
    ])
}

fn classifier_block(verdict: &AlgorithmVerdict) -> String {
    let free = match verdict.is_deadlock_free() {
        Some(true) => "true",
        Some(false) => "false",
        None => "null",
    };
    obj(&[
        ("cycles", classifier_cycle_count(verdict).to_string()),
        ("is_deadlock_free", free.to_string()),
        ("verdict", format!("\"{}\"", classifier_name(verdict))),
    ])
}

fn skipped(reason: &str) -> String {
    obj(&[("skipped", format!("\"{}\"", esc(reason)))])
}

/// The exhaustive search enumerates subsets of injectable and
/// stallable messages per state, so it is only meaningful (and only
/// tractable) on small scenarios; beyond this many messages the
/// `search` block reports itself skipped instead of blowing up.
pub const MAX_SEARCH_MESSAGES: usize = 10;

fn search_block(job: &CompiledJob) -> String {
    if job.messages.is_empty() {
        return skipped("no messages");
    }
    if job.messages.len() > MAX_SEARCH_MESSAGES {
        return skipped(&format!(
            "{} messages exceed the search bound of {MAX_SEARCH_MESSAGES}",
            job.messages.len()
        ));
    }
    let sim = match Sim::new(
        job.network(),
        &job.table,
        job.messages.clone(),
        job.capacity,
    ) {
        Ok(sim) => sim,
        Err(e) => return obj(&[("error", format!("\"{}\"", esc(&e.to_string())))]),
    };
    let result = explore(&sim, &job.search_config);
    let verdict = match result.verdict {
        SearchVerdict::DeadlockReachable(_) => "deadlock-reachable",
        SearchVerdict::DeadlockFree => "deadlock-free",
        SearchVerdict::Inconclusive { .. } => "inconclusive",
    };
    obj(&[
        ("states", result.states_explored.to_string()),
        ("verdict", format!("\"{verdict}\"")),
    ])
}

fn sim_block(job: &CompiledJob) -> String {
    if job.messages.is_empty() {
        return skipped("no messages");
    }
    let sim = match Sim::new(
        job.network(),
        &job.table,
        job.messages.clone(),
        job.capacity,
    ) {
        Ok(sim) => sim,
        Err(e) => return obj(&[("error", format!("\"{}\"", esc(&e.to_string())))]),
    };
    if job.plan.is_empty() {
        let outcome = Runner::new(&sim, ArbitrationPolicy::LowestId)
            .with_skew(job.skew.clone())
            .run(job.horizon);
        match outcome {
            Outcome::Delivered { cycles } => obj(&[
                ("cycles", cycles.to_string()),
                ("outcome", "\"delivered\"".into()),
            ]),
            Outcome::Deadlock { members, at_cycle } => obj(&[
                ("cycles", at_cycle.to_string()),
                (
                    "members",
                    arr(members.iter().map(|m| m.index().to_string())),
                ),
                ("outcome", "\"deadlock\"".into()),
            ]),
            Outcome::Timeout { cycles } => obj(&[
                ("cycles", cycles.to_string()),
                ("outcome", "\"timeout\"".into()),
            ]),
        }
    } else {
        // A fault plan switches to the fault-aware runner; clock skew
        // and fault injection compose through separate seams, so the
        // faulted path runs without the skew model.
        let mut runner = FaultRunner::new(
            job.network(),
            &sim,
            ArbitrationPolicy::LowestId,
            job.plan.clone(),
            RetryPolicy::Passive,
        );
        match runner.run(job.horizon) {
            FaultOutcome::Delivered { cycles } => obj(&[
                ("cycles", cycles.to_string()),
                ("outcome", "\"delivered\"".into()),
            ]),
            FaultOutcome::DeliveredPartial { cycles, abandoned } => obj(&[
                (
                    "abandoned",
                    arr(abandoned.iter().map(|m| m.index().to_string())),
                ),
                ("cycles", cycles.to_string()),
                ("outcome", "\"delivered-partial\"".into()),
            ]),
            FaultOutcome::Deadlock { members, at_cycle } => obj(&[
                ("cycles", at_cycle.to_string()),
                (
                    "members",
                    arr(members.iter().map(|m| m.index().to_string())),
                ),
                ("outcome", "\"deadlock\"".into()),
            ]),
            FaultOutcome::Timeout { cycles } => obj(&[
                ("cycles", cycles.to_string()),
                ("outcome", "\"timeout\"".into()),
            ]),
        }
    }
}

/// Render an [`ExistenceReport`] with the fixed `wormserve/1` keys.
fn existence_block(report: &ExistenceReport) -> String {
    obj(&[
        ("demands", report.demands.to_string()),
        ("kind", format!("\"{}\"", report.kind_name())),
        (
            "obstruction_channels",
            report.obstruction_channels().to_string(),
        ),
        ("sccs", report.sccs.to_string()),
        ("verdict", format!("\"{}\"", report.verdict.name())),
        ("witness_channels", report.witness_channels().to_string()),
    ])
}

fn faults_block(job: &CompiledJob) -> String {
    let report = reverify(job.network(), &job.table, &job.plan, &job.classify_options);
    obj(&[
        (
            "baseline",
            format!("\"{}\"", classifier_name(&report.baseline)),
        ),
        (
            "degraded",
            format!("\"{}\"", classifier_name(&report.degraded.verdict)),
        ),
        ("existence", existence_block(&report.degraded.existence)),
        ("routability", format!("\"{}\"", report.routability.name())),
        ("survives", report.verdict_survives.to_string()),
        (
            "unroutable_pairs",
            report.degraded.unroutable_pairs.to_string(),
        ),
    ])
}

/// Run the verdict engines selected by the spec and render the
/// `wormserve/1` document.
///
/// The output is a single line of JSON with sorted keys and **no
/// timings and no job name** — it depends only on the canonical spec,
/// which is what makes byte-identical cache replay sound.
pub fn verdict_json(job: &CompiledJob) -> String {
    let registry = Registry::with_default_lints();
    let lint_report = registry.run(job.network(), &job.table, &job.lint_config);
    let classifier = classify_algorithm(job.network(), &job.table, &job.classify_options);

    let existence = wormexist::analyze(job.network(), &job.exist_options);

    let mut fields: Vec<(&str, String)> = vec![
        ("classifier", classifier_block(&classifier)),
        ("engine", format!("\"{}\"", engine_name(job.engine))),
        ("existence", existence_block(&existence)),
    ];
    if job.spec.faults.is_some() {
        fields.push(("faults", faults_block(job)));
    }
    fields.push(("lint", lint_block(&lint_report)));
    fields.push(("schema", format!("\"{SCHEMA}\"")));
    if matches!(job.engine, VerifyEngine::Search | VerifyEngine::Full) {
        fields.push(("search", search_block(job)));
    }
    if matches!(job.engine, VerifyEngine::Sim | VerifyEngine::Full) {
        fields.push(("sim", sim_block(job)));
    }
    fields.push(("spec_hash", format!("\"{}\"", job.hash)));
    obj(&fields)
}

/// Stable name for the verify engine selection.
pub fn engine_name(engine: VerifyEngine) -> &'static str {
    match engine {
        VerifyEngine::Static => "static",
        VerifyEngine::Search => "search",
        VerifyEngine::Sim => "sim",
        VerifyEngine::Full => "full",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;

    #[test]
    fn static_verdicts_carry_lint_and_classifier() {
        let job = compile(
            "wormspec/1\ntopology { kind = ring nodes = 4 }\nrouting { engine = clockwise_ring }\n",
        )
        .unwrap();
        let v = verdict_json(&job);
        assert!(v.contains("\"schema\":\"wormserve/1\""), "{v}");
        assert!(v.contains("\"verdict\":\"deadlockable\""), "{v}");
        assert!(
            v.contains(&format!("\"spec_hash\":\"{}\"", job.hash)),
            "{v}"
        );
        assert!(!v.contains("search"), "{v}");
        assert!(!v.contains("\"sim\""), "{v}");
        // The single-lane ring fabric is unroutable no matter the table.
        assert!(
            v.contains("\"existence\":{\"demands\":12,\"kind\":\"deficiency\""),
            "{v}"
        );
        assert!(v.contains("\"verdict\":\"impossible\""), "{v}");
    }

    #[test]
    fn routable_fabrics_carry_an_existence_witness() {
        let job = compile(
            "wormspec/1\ntopology { kind = mesh dims = [3, 3] }\nrouting { engine = dimension_order }\n",
        )
        .unwrap();
        let v = verdict_json(&job);
        assert!(v.contains("\"existence\":{"), "{v}");
        assert!(v.contains("\"verdict\":\"exists\""), "{v}");
        assert!(v.contains("\"obstruction_channels\":0"), "{v}");
    }

    #[test]
    fn full_engine_adds_search_sim_and_fault_blocks() {
        let job = compile(
            "wormspec/1\n\
             topology { kind = ring nodes = 4 }\n\
             routing { engine = clockwise_ring }\n\
             traffic {\n\
               pattern = explicit\n\
               message \"r0\" -> \"r2\" length 2 flits\n\
               message \"r2\" -> \"r0\" length 2 flits\n\
             }\n\
             faults { down c0 @ 100 cycles }\n\
             verify { engine = full horizon = 200 cycles }\n",
        )
        .unwrap();
        let v = verdict_json(&job);
        assert!(v.contains("\"search\":{"), "{v}");
        assert!(v.contains("\"sim\":{"), "{v}");
        assert!(v.contains("\"faults\":{"), "{v}");
        assert!(v.contains("\"engine\":\"full\""), "{v}");
        // The faults block reads the degraded fabric: c0 down breaks
        // the ring cycle, so the surviving routing is free.
        assert!(v.contains("\"routability\":\"routing-survives\""), "{v}");
    }

    #[test]
    fn verdicts_are_bit_identical_across_runs() {
        let src = "wormspec/1\n\
             topology { kind = mesh dims = [3, 3] }\n\
             routing { engine = dimension_order }\n\
             traffic { pattern = uniform rate = 0.2 horizon = 20 cycles seed = 7 }\n\
             verify { engine = full max_states = 20000 }\n";
        let a = verdict_json(&compile(src).unwrap());
        let b = verdict_json(&compile(src).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn search_without_messages_is_skipped_not_invented() {
        let job = compile(
            "wormspec/1\ntopology { kind = ring nodes = 4 }\nrouting { engine = clockwise_ring }\nverify { engine = search }\n",
        )
        .unwrap();
        let v = verdict_json(&job);
        assert!(
            v.contains("\"search\":{\"skipped\":\"no messages\"}"),
            "{v}"
        );
    }
}
