//! The `wormserve` command-line front end.
//!
//! ```text
//! wormserve [OPTIONS] SPEC.wspec...     verify spec files
//! wormserve --fuzz N [--seed S]         differential fuzz N seeds
//!
//! Options:
//!   --cache DIR     content-addressed result cache directory
//!   --workers N     worker threads (default 2)
//!   --queue N       queue depth before submit blocks (default 64)
//!   --trace         attach a wormtrace report per computed job
//!   --hash-only     print each spec's canonical hash and exit
//! ```
//!
//! Exit status is nonzero when any job fails to compile, or when any
//! fuzz seed produces a lint/classifier/search contradiction.

use std::path::PathBuf;
use std::process::ExitCode;

use wormserve::specgen::differential;
use wormserve::{compile, Server, ServerConfig};

struct Cli {
    cache: Option<PathBuf>,
    workers: usize,
    queue: usize,
    trace: bool,
    hash_only: bool,
    fuzz: Option<u64>,
    seed: u64,
    files: Vec<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: wormserve [--cache DIR] [--workers N] [--queue N] [--trace] [--hash-only] SPEC...\n\
         \u{20}      wormserve --fuzz N [--seed S]"
    );
    std::process::exit(2)
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        cache: None,
        workers: 2,
        queue: 64,
        trace: false,
        hash_only: false,
        fuzz: None,
        seed: 0,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--cache" => cli.cache = Some(PathBuf::from(value("--cache"))),
            "--workers" => cli.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => cli.queue = value("--queue").parse().unwrap_or_else(|_| usage()),
            "--trace" => cli.trace = true,
            "--hash-only" => cli.hash_only = true,
            "--fuzz" => cli.fuzz = Some(value("--fuzz").parse().unwrap_or_else(|_| usage())),
            "--seed" => cli.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => {
                eprintln!("unknown option {arg}");
                usage()
            }
            _ => cli.files.push(PathBuf::from(arg)),
        }
    }
    cli
}

fn run_fuzz(count: u64, base_seed: u64) -> ExitCode {
    let mut bad = 0u64;
    for i in 0..count {
        let seed = base_seed + i;
        let report = differential(seed);
        if report.failures.is_empty() {
            println!(
                "seed {seed}: ok (lint {:?}, classifier {:?}, search {:?})",
                report.lint, report.classifier_free, report.search
            );
        } else {
            bad += 1;
            eprintln!("seed {seed}: DISAGREEMENT");
            for f in &report.failures {
                eprintln!("  {f}");
            }
            eprintln!("--- generated spec ---\n{}", report.source);
        }
    }
    if bad == 0 {
        println!("{count} seeds, all consistent");
        ExitCode::SUCCESS
    } else {
        eprintln!("{bad}/{count} seeds disagreed");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let cli = parse_cli();
    if let Some(count) = cli.fuzz {
        return run_fuzz(count, cli.seed);
    }
    if cli.files.is_empty() {
        usage();
    }

    let mut sources = Vec::new();
    let mut failed = false;
    for path in &cli.files {
        match std::fs::read_to_string(path) {
            Ok(source) => sources.push((path.display().to_string(), source)),
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                failed = true;
            }
        }
    }

    if cli.hash_only {
        for (name, source) in &sources {
            match compile(source) {
                Ok(job) => println!("{}  {name}", job.hash),
                Err(e) => {
                    eprintln!("{}", e.render(source, name));
                    failed = true;
                }
            }
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let server = Server::start(ServerConfig {
        workers: cli.workers,
        queue_depth: cli.queue,
        cache_dir: cli.cache,
        attach_traces: cli.trace,
    })
    .unwrap_or_else(|e| {
        eprintln!("failed to start server: {e}");
        std::process::exit(1)
    });
    for (name, source) in sources {
        server.submit(name, source);
    }
    for result in server.shutdown() {
        match &result.verdict {
            Ok(verdict) => {
                let origin = if result.cached { "cache" } else { "computed" };
                println!("{} [{origin}] {verdict}", result.name);
                if let Some(trace) = &result.trace {
                    println!("{} [trace] {trace}", result.name);
                }
            }
            Err(rendered) => {
                eprintln!("{rendered}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
