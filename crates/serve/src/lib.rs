//! `wormserve` — the batch verification service over `wormspec/1`.
//!
//! The crate closes the loop the spec language opens: a spec file goes
//! in, a deterministic `wormserve/1` verdict document comes out, and
//! identical *canonical* specs never pay for verification twice.
//!
//! The pieces, in data-flow order:
//!
//! - [`compile`] — parse + resolve a source through every per-crate
//!   seam (`wormnet::spec`, `wormroute::spec`, `wormsim::spec`,
//!   `wormfault::spec`, `wormlint::spec`, `worm_core::spec`,
//!   `wormsearch::spec`) into a [`CompiledJob`];
//! - [`verdict_json`] — run the engines the spec selected and render
//!   the sorted-key, timing-free `wormserve/1` document;
//! - [`JobQueue`] — a bounded blocking MPMC queue (backpressure);
//! - [`ResultCache`] — content-addressed verdict storage keyed by the
//!   canonical spec hash, hit = byte-identical replay;
//! - [`Server`] — the worker pool gluing the above together, with
//!   graceful drain on [`Server::shutdown`];
//! - [`lift`] — the inverse seam: express an in-memory network and
//!   routing table as an explicit spec (how the lint corpus became
//!   committed `.wspec` files);
//! - [`specgen`](crate::specgen) — seeded spec generation and the
//!   lint/classifier/search three-way differential fuzzer.
//!
//! `docs/SERVICE.md` is the operator-facing guide to all of this;
//! `docs/SPEC.md` documents the input language.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod compile;
pub mod lift;
pub mod queue;
pub mod server;
pub mod specgen;
pub mod verdict;

pub use cache::ResultCache;
pub use compile::{compile, CompiledJob};
pub use lift::lift;
pub use queue::JobQueue;
pub use server::{JobResult, Server, ServerConfig};
pub use verdict::{verdict_json, SCHEMA};
