//! Property-based tests for the routing substrate: compiled functions
//! reproduce their tables, and the Definition 7–9 predicates relate to
//! each other the way the theory says they must.

use proptest::prelude::*;
use rand::SeedableRng;
use wormnet::topology::{complete, Mesh};
use wormnet::NodeId;
use wormroute::algorithms::{random_table, random_tree_routing, shortest_path_table};
use wormroute::{properties, RoutingStep};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whenever a table compiles to a routing function, walking the
    /// function from every source reproduces the table's path exactly.
    #[test]
    fn compiled_function_walks_reproduce_paths(seed in 0u64..500) {
        let mesh = Mesh::new(&[3, 2]);
        let net = mesh.network();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // In-tree routing always compiles (it is a node function).
        let table = random_tree_routing(net, &mut rng).expect("routes");
        let compiled = table.compile(net).expect("node functions compile");
        for (&(s, d), path) in table.iter() {
            let mut walked = Vec::new();
            let mut cur = compiled.inject(s, d).expect("routed pair");
            walked.push(cur);
            while let RoutingStep::Forward(c) = compiled.next(net, cur, d) {
                walked.push(c);
                cur = c;
                prop_assert!(walked.len() <= net.channel_count(), "walk must terminate");
            }
            prop_assert_eq!(walked.as_slice(), path.channels());
        }
    }

    /// For total tables: node-function implies suffix-closed, and
    /// coherent implies node-simple paths.
    #[test]
    fn predicate_implications(seed in 0u64..500, detour in 0usize..2) {
        let (net, _) = complete(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let table = random_table(&net, &mut rng, detour).expect("routes");
        prop_assert!(table.is_total(&net));
        if properties::is_node_function(&net, &table) {
            prop_assert!(properties::is_suffix_closed(&net, &table));
        }
        if properties::is_coherent(&net, &table) {
            prop_assert!(properties::never_revisits_nodes(&net, &table));
            prop_assert!(properties::is_prefix_closed(&net, &table));
            prop_assert!(properties::is_suffix_closed(&net, &table));
        }
        // Minimality bound: no path shorter than the hop distance.
        for (&(s, d), p) in table.iter() {
            prop_assert!(p.len() >= net.hop_distance(s, d).unwrap());
        }
    }

    /// BFS shortest-path tables are minimal on every mesh and their
    /// compiled form (when it exists) is consistent.
    #[test]
    fn shortest_tables_are_minimal(w in 2usize..5, h in 1usize..4) {
        prop_assume!(w * h >= 2);
        let mesh = Mesh::new(&[w, h]);
        let net = mesh.network();
        let table = shortest_path_table(net).expect("routes");
        prop_assert!(properties::is_minimal(net, &table));
        prop_assert!(table.is_total(net));
        // Deterministic construction.
        prop_assert_eq!(&table, &shortest_path_table(net).expect("routes"));
    }

    /// Paths constructed from node walks round-trip through their
    /// node views.
    #[test]
    fn path_node_roundtrip(seed in 0u64..500) {
        let mesh = Mesh::new(&[3, 3]);
        let net = mesh.network();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let table = random_table(net, &mut rng, 1).expect("routes");
        for (&(s, d), p) in table.iter() {
            let nodes = p.nodes(net);
            prop_assert_eq!(nodes[0], s);
            prop_assert_eq!(*nodes.last().unwrap(), d);
            prop_assert_eq!(nodes.len(), p.len() + 1);
            let rebuilt = wormroute::Path::from_channels(net, p.channels().to_vec())
                .expect("valid channels");
            prop_assert_eq!(&rebuilt, p);
            // prefix/suffix recomposition at every interior node.
            for pos in 1..nodes.len() - 1 {
                let v = nodes[pos];
                if nodes.iter().position(|&x| x == v) != Some(pos) {
                    continue; // only first occurrences have prefixes
                }
                if let (Some(pre), Some(suf)) =
                    (p.prefix_to(net, v), p.suffix_from_pos(pos))
                {
                    let mut glued = pre.channels().to_vec();
                    glued.extend_from_slice(suf.channels());
                    prop_assert_eq!(glued.as_slice(), p.channels());
                }
            }
        }
    }

    /// Random tree routing: every source's path to a fixed destination
    /// merges into a tree (once two paths meet, they coincide).
    #[test]
    fn tree_paths_merge(seed in 0u64..300) {
        let mesh = Mesh::new(&[3, 2]);
        let net = mesh.network();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let table = random_tree_routing(net, &mut rng).expect("routes");
        for d in net.nodes() {
            // next-hop per node must be unique across all paths to d.
            let mut next: std::collections::BTreeMap<NodeId, wormnet::ChannelId> =
                Default::default();
            for s in net.nodes() {
                if s == d {
                    continue;
                }
                let p = table.path(s, d).expect("total");
                let nodes = p.nodes(net);
                for (i, &c) in p.channels().iter().enumerate() {
                    let at = nodes[i];
                    match next.get(&at) {
                        Some(&prev) => prop_assert_eq!(prev, c),
                        None => {
                            next.insert(at, c);
                        }
                    }
                }
            }
        }
    }
}
