//! The routing *function* form `R : C × N → C` (Definition 2),
//! compiled from a [`TableRouting`].

use std::collections::BTreeMap;

use wormnet::{ChannelId, Network, NodeId};

use crate::error::FunctionConflict;
use crate::table::TableRouting;

/// One routing decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingStep {
    /// Forward the header onto this channel.
    Forward(ChannelId),
    /// The message has reached its destination and is consumed.
    Consume,
}

/// An oblivious routing function: output channel as a function of the
/// input channel and the destination only.
///
/// The paper's central results (Theorem 2's corollaries in particular)
/// distinguish `R : C × N → C` from `R : N × N → C`; compiling a path
/// table into this form both provides the simulator's router decision
/// procedure and *verifies* the algorithm really belongs to the
/// `C × N → C` class: compilation fails with [`FunctionConflict`] if
/// any (input channel, destination) pair would need two different
/// outputs.
#[derive(Clone, Debug, Default)]
pub struct CompiledRouting {
    /// Injection decisions: (source node, destination) → first channel.
    inject: BTreeMap<(NodeId, NodeId), ChannelId>,
    /// Forwarding decisions: (input channel, destination) → output.
    forward: BTreeMap<(ChannelId, NodeId), ChannelId>,
}

impl CompiledRouting {
    /// Compile a path table.
    pub fn from_table(net: &Network, table: &TableRouting) -> Result<Self, FunctionConflict> {
        let mut inject: BTreeMap<(NodeId, NodeId), ChannelId> = BTreeMap::new();
        let mut forward: BTreeMap<(ChannelId, NodeId), ChannelId> = BTreeMap::new();

        for (&(src, dst), path) in table.iter() {
            let chans = path.channels();
            // Injection step. A table has one path per pair so a
            // conflict here is impossible, but we keep the check for
            // defence in depth.
            if let Some(&prev) = inject.get(&(src, dst)) {
                if prev != chans[0] {
                    return Err(FunctionConflict {
                        input: None,
                        dst,
                        outputs: (prev, chans[0]),
                    });
                }
            } else {
                inject.insert((src, dst), chans[0]);
            }
            // Forwarding steps.
            for w in chans.windows(2) {
                match forward.get(&(w[0], dst)) {
                    Some(&prev) if prev != w[1] => {
                        return Err(FunctionConflict {
                            input: Some(w[0]),
                            dst,
                            outputs: (prev, w[1]),
                        });
                    }
                    Some(_) => {}
                    None => {
                        forward.insert((w[0], dst), w[1]);
                    }
                }
            }
            let _ = net; // endpoints already validated at insert time
        }
        Ok(CompiledRouting { inject, forward })
    }

    /// Routing decision at injection: the first channel a message from
    /// `src` to `dst` uses, if the pair is routed.
    pub fn inject(&self, src: NodeId, dst: NodeId) -> Option<ChannelId> {
        self.inject.get(&(src, dst)).copied()
    }

    /// Routing decision in flight: where a header that arrived over
    /// `input` heading for `dst` goes next.
    ///
    /// Returns `None` if the function is undefined for the pair — for
    /// a well-formed oblivious algorithm that only happens when the
    /// header has arrived (`input.dst() == dst`), i.e. [`RoutingStep::Consume`].
    pub fn next(&self, net: &Network, input: ChannelId, dst: NodeId) -> RoutingStep {
        if net.channel(input).dst() == dst {
            return RoutingStep::Consume;
        }
        match self.forward.get(&(input, dst)) {
            Some(&c) => RoutingStep::Forward(c),
            None => panic!(
                "routing function undefined for input {input} toward {dst}; \
                 the table did not cover a reachable state"
            ),
        }
    }

    /// Non-panicking variant of [`CompiledRouting::next`].
    pub fn try_next(&self, net: &Network, input: ChannelId, dst: NodeId) -> Option<RoutingStep> {
        if net.channel(input).dst() == dst {
            return Some(RoutingStep::Consume);
        }
        self.forward
            .get(&(input, dst))
            .copied()
            .map(RoutingStep::Forward)
    }

    /// Number of distinct forwarding entries (a size metric used in
    /// benchmarks).
    pub fn forward_entries(&self) -> usize {
        self.forward.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;
    use wormnet::topology::ring_unidirectional;
    use wormnet::Network;

    #[test]
    fn ring_table_compiles_and_routes() {
        let (net, nodes) = ring_unidirectional(4);
        let table = TableRouting::from_node_paths(&net, |s, d| {
            let n = 4;
            let si = s.index();
            let mut walk = vec![s];
            let mut i = si;
            while nodes[i] != d {
                i = (i + 1) % n;
                walk.push(nodes[i]);
            }
            Some(walk)
        })
        .unwrap();
        let compiled = table.compile(&net).unwrap();

        let c01 = net.find_channel(nodes[0], nodes[1]).unwrap();
        let c12 = net.find_channel(nodes[1], nodes[2]).unwrap();
        assert_eq!(compiled.inject(nodes[0], nodes[2]), Some(c01));
        assert_eq!(
            compiled.next(&net, c01, nodes[2]),
            RoutingStep::Forward(c12)
        );
        assert_eq!(compiled.next(&net, c12, nodes[2]), RoutingStep::Consume);
        assert!(compiled.forward_entries() > 0);
    }

    #[test]
    fn conflicting_paths_fail_compilation() {
        // Diamond: 0 -> {1,2} -> 3, and 3 -> 0 to close connectivity.
        // Route (0,3) via 1 and (x,3)... we need a conflict on the SAME
        // input channel: use a path through channel (0,1) that then
        // diverges for the same destination.
        let mut net = Network::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        let c = net.add_node("c");
        let d = net.add_node("d");
        net.add_channel(a, b);
        net.add_channel(b, c);
        net.add_channel(b, d);
        net.add_channel(c, d);
        net.add_channel(d, a);

        let mut table = TableRouting::new();
        // (a,d): a->b->c->d ; (a,... ) hmm need same input channel a->b
        // toward d twice with different continuations, so use a second
        // source routing through a->b: impossible (only a injects on
        // a->b). Instead create the conflict via two *sources* sharing
        // channel b->? : route (a,d) = a->b->d and (b,d)... same dest
        // from b uses b->c->d. Conflict is at injection vs forward —
        // not a conflict. Real conflict: (a,d) = a->b->c->d and (b,d)
        // would have to match suffix. Build conflict with a second
        // path over channel (b,c): (b,d) = b->c->d vs (a,d) continuing
        // c->? identically — conflict requires disagreement, so give
        // (a,d) the path a->b->d and (x= a, d2=c): a->b->c. No conflict
        // either. The genuine conflict needs two pairs with the SAME
        // dst whose paths share an input channel but diverge after it;
        // with unique sources that needs a shared intermediate channel:
        // add e -> b so (e,d) can also traverse b.
        let e = net.add_node("e");
        net.add_channel(e, b);
        net.add_channel(a, c); // unused filler for connectivity realism

        table
            .insert(&net, a, d, Path::from_nodes(&net, &[a, b, c, d]).unwrap())
            .unwrap();
        table
            .insert(&net, e, d, Path::from_nodes(&net, &[e, b, d]).unwrap())
            .unwrap();
        // (a,d) says: after arriving at b over a->b, go b->c.
        // (e,d) says: after arriving at b over e->b, go b->d.
        // Different *input* channels, so still consistent:
        assert!(table.compile(&net).is_ok());

        // Now force a true conflict: two destinations is fine, we need
        // same (input, dst). Add f with f->a, route (f,d) = f->a->b->d:
        // input a->b toward d now maps to both b->c and b->d.
        let f = net.add_node("f");
        net.add_channel(f, a);
        table
            .insert(&net, f, d, Path::from_nodes(&net, &[f, a, b, d]).unwrap())
            .unwrap();
        let err = table.compile(&net).unwrap_err();
        let ab = net.find_channel(a, b).unwrap();
        match err {
            crate::error::RouteError::NotAFunction(c) => {
                assert_eq!(c.input, Some(ab));
                assert_eq!(c.dst, d);
            }
            other => panic!("expected NotAFunction, got {other:?}"),
        }
    }

    #[test]
    fn try_next_returns_none_when_undefined() {
        let (net, nodes) = ring_unidirectional(3);
        let table = TableRouting::new();
        let compiled = table.compile(&net).unwrap();
        let c01 = net.find_channel(nodes[0], nodes[1]).unwrap();
        assert_eq!(compiled.try_next(&net, c01, nodes[2]), None);
        // Arrived: consume regardless of table contents.
        assert_eq!(
            compiled.try_next(&net, c01, nodes[1]),
            Some(RoutingStep::Consume)
        );
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn next_panics_when_undefined() {
        let (net, nodes) = ring_unidirectional(3);
        let compiled = TableRouting::new().compile(&net).unwrap();
        let c01 = net.find_channel(nodes[0], nodes[1]).unwrap();
        compiled.next(&net, c01, nodes[2]);
    }
}
