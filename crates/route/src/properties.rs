//! Structural properties of oblivious routing algorithms
//! (Definitions 7–9 of the paper, plus minimality).
//!
//! These predicates drive the paper's Section 5 corollaries:
//! suffix-closed (and hence coherent) oblivious algorithms cannot have
//! unreachable cyclic configurations, so for them a cyclic channel
//! dependency graph *does* imply deadlock. The experiments validate
//! those corollaries by checking the predicates on a corpus of
//! algorithms and comparing against exhaustive search.

use wormnet::Network;

use crate::table::TableRouting;

/// Whether every routed path is a shortest path in the node graph
/// ("minimal routing", paper Section 1).
///
/// The table iterates in `(src, dst)` order, so one BFS per distinct
/// source serves all its destinations — the difference between
/// quadratic and cubic work on the cluster-scale fabrics.
pub fn is_minimal(net: &Network, table: &TableRouting) -> bool {
    let mut cached: Option<(wormnet::NodeId, Vec<Option<usize>>)> = None;
    table.iter().all(|(&(src, dst), path)| {
        if cached.as_ref().map(|(s, _)| *s) != Some(src) {
            cached = Some((src, net.distances_from(src)));
        }
        let (_, dist) = cached.as_ref().expect("cache was just refreshed");
        dist[dst.index()] == Some(path.len())
    })
}

/// Definition 7: the algorithm is **prefix-closed** if whenever the
/// path from `s` to `d` passes through `v` (first occurrence), the
/// table's path from `s` to `v` is exactly that prefix.
///
/// Pairs that would be required but are unrouted count as violations
/// only if the prefix exists; a completely unrouted pair `(s, v)`
/// makes the algorithm non-prefix-closed because Definition 7 demands
/// the partial path be *specified* by the algorithm.
pub fn is_prefix_closed(net: &Network, table: &TableRouting) -> bool {
    table.iter().all(|(&(src, _dst), path)| {
        let nodes = path.nodes(net);
        // Interior nodes only: skip source (pos 0) and final node.
        nodes[1..nodes.len() - 1].iter().enumerate().all(|(i, &v)| {
            if v == src {
                // Path returned to its own source; the "first
                // occurrence" of src is position 0 and the prefix is
                // empty, which the definition does not constrain.
                return true;
            }
            // Only the first occurrence of v is constrained.
            let first_pos = nodes
                .iter()
                .position(|&n| n == v)
                .expect("v is on the walk");
            if first_pos != i + 1 {
                return true;
            }
            match (path.prefix_to(net, v), table.path(src, v)) {
                (Some(prefix), Some(registered)) => *registered == prefix,
                _ => false,
            }
        })
    })
}

/// Definition 8: the algorithm is **suffix-closed** if whenever the
/// path from `s` to `d` passes through `v`, the table's path from `v`
/// to `d` is the corresponding suffix.
///
/// For paths that visit `v` more than once, every occurrence's suffix
/// is constrained; two distinct suffixes from the same `v` therefore
/// make the algorithm non-suffix-closed (it could not be realized by a
/// routing function of the form `R : N × N → C`, which the paper notes
/// is always suffix-closed).
pub fn is_suffix_closed(net: &Network, table: &TableRouting) -> bool {
    table.iter().all(|(&(_src, dst), path)| {
        let nodes = path.nodes(net);
        (1..nodes.len() - 1).all(|pos| {
            let v = nodes[pos];
            if v == dst {
                return true; // suffix from dst is empty
            }
            let suffix = path.suffix_from_pos(pos).expect("interior position");
            match table.path(v, dst) {
                Some(registered) => *registered == suffix,
                None => false,
            }
        })
    })
}

/// Whether no routed path visits any node more than once.
pub fn never_revisits_nodes(net: &Network, table: &TableRouting) -> bool {
    table.iter().all(|(_, path)| path.is_node_simple(net))
}

/// Whether the algorithm is realizable as a routing function of the
/// form `R : N × N → C` — the output channel depends only on the
/// *current node* and destination, not on the input channel.
///
/// This is the class of Corollary 1: such algorithms can have no
/// unreachable cyclic configurations, so for them a cyclic CDG always
/// means a reachable deadlock. Every node-function algorithm is
/// suffix-closed (when total); the converse need not hold.
pub fn is_node_function(net: &Network, table: &TableRouting) -> bool {
    // Dense (current node, destination) matrix when n^2 cells are
    // affordable (the cluster-scale fabrics), else a map.
    let n = net.node_count();
    const DENSE_CELL_LIMIT: usize = 1 << 24;
    if let Some(cells) = n.checked_mul(n).filter(|&c| c <= DENSE_CELL_LIMIT) {
        const EMPTY: u32 = u32::MAX;
        let mut choice = vec![EMPTY; cells];
        for (&(_, dst), path) in table.iter() {
            let nodes = path.nodes(net);
            for (i, &c) in path.channels().iter().enumerate() {
                let slot = &mut choice[nodes[i].index() * n + dst.index()];
                let cid = c.index() as u32;
                if *slot == EMPTY {
                    *slot = cid;
                } else if *slot != cid {
                    return false;
                }
            }
        }
        return true;
    }
    use std::collections::BTreeMap;
    let mut choice: BTreeMap<(wormnet::NodeId, wormnet::NodeId), wormnet::ChannelId> =
        BTreeMap::new();
    for (&(_, dst), path) in table.iter() {
        let nodes = path.nodes(net);
        for (i, &c) in path.channels().iter().enumerate() {
            let at = nodes[i];
            match choice.get(&(at, dst)) {
                Some(&prev) if prev != c => return false,
                Some(_) => {}
                None => {
                    choice.insert((at, dst), c);
                }
            }
        }
    }
    true
}

/// Definition 9: **coherent** = prefix-closed ∧ suffix-closed ∧ never
/// routes a message through the same node twice.
pub fn is_coherent(net: &Network, table: &TableRouting) -> bool {
    never_revisits_nodes(net, table) && is_prefix_closed(net, table) && is_suffix_closed(net, table)
}

/// A structured property report used by analyses and examples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PropertyReport {
    /// All pairs routed.
    pub total: bool,
    /// Every path shortest.
    pub minimal: bool,
    /// Definition 7.
    pub prefix_closed: bool,
    /// Definition 8.
    pub suffix_closed: bool,
    /// No node revisits on any path.
    pub node_simple: bool,
    /// Definition 9.
    pub coherent: bool,
    /// Realizable as `R : N × N → C` (Corollary 1's class).
    pub node_function: bool,
}

/// Evaluate all properties at once.
pub fn analyze(net: &Network, table: &TableRouting) -> PropertyReport {
    let prefix_closed = is_prefix_closed(net, table);
    let suffix_closed = is_suffix_closed(net, table);
    let node_simple = never_revisits_nodes(net, table);
    PropertyReport {
        total: table.is_total(net),
        minimal: is_minimal(net, table),
        prefix_closed,
        suffix_closed,
        node_simple,
        coherent: prefix_closed && suffix_closed && node_simple,
        node_function: is_node_function(net, table),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;
    use wormnet::topology::{line, ring_unidirectional};
    use wormnet::NodeId;

    /// Clockwise routing on a unidirectional ring: the canonical
    /// coherent (but deadlock-prone) oblivious algorithm.
    fn clockwise4() -> (Network, Vec<NodeId>, TableRouting) {
        let (net, nodes) = ring_unidirectional(4);
        let table = TableRouting::from_node_paths(&net, |s, d| {
            let mut walk = vec![s];
            let mut i = s.index();
            while nodes[i] != d {
                i = (i + 1) % 4;
                walk.push(nodes[i]);
            }
            Some(walk)
        })
        .unwrap();
        (net, nodes, table)
    }

    #[test]
    fn clockwise_ring_is_coherent_but_not_minimal() {
        let (net, _, table) = clockwise4();
        let report = analyze(&net, &table);
        assert!(report.total);
        assert!(report.prefix_closed);
        assert!(report.suffix_closed);
        assert!(report.node_simple);
        assert!(report.coherent);
        // Unidirectional ring: the clockwise path IS the only path, so
        // it is minimal here.
        assert!(report.minimal);
    }

    #[test]
    fn line_shortest_paths_are_coherent_and_minimal() {
        let (net, nodes) = line(5);
        let table = TableRouting::from_node_paths(&net, |s, d| {
            let (si, di) = (s.index(), d.index());
            let walk: Vec<NodeId> = if si < di {
                (si..=di).map(|i| nodes[i]).collect()
            } else {
                (di..=si).rev().map(|i| nodes[i]).collect()
            };
            Some(walk)
        })
        .unwrap();
        let report = analyze(&net, &table);
        assert!(report.minimal && report.coherent && report.total);
    }

    #[test]
    fn nonminimal_detected() {
        let (net, nodes) = line(4);
        let mut table = TableRouting::new();
        // 0 -> 1 -> 2 -> 1 ... cannot reuse channels; instead make a
        // detour 0 -> 1 -> 2 -> 3 for dst 3 (minimal) and 0 -> 1 -> 2
        // for dst 2 (minimal), then an actual detour for (1, 0):
        // 1 -> 2 -> 1 reuses nothing? it reuses node 1 and channel
        // 1->2 only once, 2->1 once: legal path, nonminimal.
        table
            .insert(
                &net,
                nodes[1],
                nodes[0],
                Path::from_nodes(&net, &[nodes[1], nodes[2], nodes[1], nodes[0]]).unwrap(),
            )
            .unwrap();
        assert!(!is_minimal(&net, &table));
        assert!(!never_revisits_nodes(&net, &table));
        assert!(!is_coherent(&net, &table));
    }

    #[test]
    fn prefix_violation_detected() {
        let (net, nodes) = line(4);
        let mut table = TableRouting::new();
        // (0,3) goes 0-1-2-3 but (0,2) goes 0-1-2? give (0,2) nothing:
        // missing partial path => not prefix-closed.
        table
            .insert(
                &net,
                nodes[0],
                nodes[3],
                Path::from_nodes(&net, &[nodes[0], nodes[1], nodes[2], nodes[3]]).unwrap(),
            )
            .unwrap();
        assert!(!is_prefix_closed(&net, &table));
        // Register the consistent prefix and it passes.
        table
            .insert(
                &net,
                nodes[0],
                nodes[1],
                Path::from_nodes(&net, &[nodes[0], nodes[1]]).unwrap(),
            )
            .unwrap();
        table
            .insert(
                &net,
                nodes[0],
                nodes[2],
                Path::from_nodes(&net, &[nodes[0], nodes[1], nodes[2]]).unwrap(),
            )
            .unwrap();
        assert!(is_prefix_closed(&net, &table));
    }

    #[test]
    fn suffix_violation_detected() {
        let (net, nodes) = line(4);
        let mut table = TableRouting::new();
        table
            .insert(
                &net,
                nodes[0],
                nodes[3],
                Path::from_nodes(&net, &[nodes[0], nodes[1], nodes[2], nodes[3]]).unwrap(),
            )
            .unwrap();
        // Missing (1,3) and (2,3) partial paths.
        assert!(!is_suffix_closed(&net, &table));
        table
            .insert(
                &net,
                nodes[1],
                nodes[3],
                Path::from_nodes(&net, &[nodes[1], nodes[2], nodes[3]]).unwrap(),
            )
            .unwrap();
        table
            .insert(
                &net,
                nodes[2],
                nodes[3],
                Path::from_nodes(&net, &[nodes[2], nodes[3]]).unwrap(),
            )
            .unwrap();
        assert!(is_suffix_closed(&net, &table));
    }

    #[test]
    fn suffix_mismatch_detected() {
        // Square with both directions available; (0,2) routed the long
        // way 0-1-2 but (1,2) routed 1-0-3-2: suffix mismatch.
        let (net, nodes) = ring_unidirectional(4);
        // add reverse channels to allow alternate suffix
        let mut net = net;
        for i in 0..4 {
            net.add_channel(nodes[(i + 1) % 4], nodes[i]);
        }
        let mut table = TableRouting::new();
        table
            .insert(
                &net,
                nodes[0],
                nodes[2],
                Path::from_nodes(&net, &[nodes[0], nodes[1], nodes[2]]).unwrap(),
            )
            .unwrap();
        table
            .insert(
                &net,
                nodes[1],
                nodes[2],
                Path::from_nodes(&net, &[nodes[1], nodes[0], nodes[3], nodes[2]]).unwrap(),
            )
            .unwrap();
        assert!(!is_suffix_closed(&net, &table));
    }

    #[test]
    fn node_function_classes() {
        // Clockwise ring: next hop depends only on the current node —
        // a genuine N x N -> C algorithm.
        let (net, _, table) = clockwise4();
        assert!(is_node_function(&net, &table));

        // Dateline ring: the lane depends on the input channel, so it
        // is NOT a node function.
        use crate::algorithms::dateline_ring;
        use wormnet::topology::ring_with_vcs;
        let (net, nodes) = ring_with_vcs(5, 2);
        let table = dateline_ring(&net, &nodes).unwrap();
        assert!(!is_node_function(&net, &table));
        assert!(!analyze(&net, &table).node_function);
    }

    #[test]
    fn node_function_implies_suffix_closed_on_totals() {
        // For total tables: a node-function algorithm's suffixes are
        // forced, hence registered paths agree with them.
        use crate::algorithms::dimension_order;
        use wormnet::topology::Mesh;
        let mesh = Mesh::new(&[3, 2]);
        let table = dimension_order(&mesh).unwrap();
        assert!(is_node_function(mesh.network(), &table));
        assert!(is_suffix_closed(mesh.network(), &table));
    }

    #[test]
    fn empty_table_is_vacuously_closed() {
        let (net, _) = line(3);
        let table = TableRouting::new();
        assert!(is_prefix_closed(&net, &table));
        assert!(is_suffix_closed(&net, &table));
        assert!(is_minimal(&net, &table));
        assert!(!analyze(&net, &table).total);
    }
}
