//! Error types for routing construction.

use core::fmt;

use wormnet::{ChannelId, NodeId};

/// A table of paths could not be compiled into a routing *function*
/// `R : C × N → C`: two paths that arrive at the same point over the
/// same input channel, heading for the same destination, continue on
/// different output channels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionConflict {
    /// The input channel at the conflict point (`None` = conflict at
    /// injection, i.e. two different first channels from one source
    /// for the same destination — impossible for a well-formed table).
    pub input: Option<ChannelId>,
    /// The destination being routed to.
    pub dst: NodeId,
    /// The two incompatible output channels.
    pub outputs: (ChannelId, ChannelId),
}

impl fmt::Display for FunctionConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "routing table is not an oblivious function: input {:?} toward {} maps to both {} and {}",
            self.input, self.dst, self.outputs.0, self.outputs.1
        )
    }
}

impl std::error::Error for FunctionConflict {}

/// Errors reported while constructing paths or routing tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// Empty node/channel sequence where a path was required.
    EmptyPath,
    /// Consecutive path channels do not share an endpoint.
    Disconnected {
        /// Index of the first offending channel within the path.
        at: usize,
    },
    /// No channel exists between two consecutive nodes of a node path.
    MissingChannel {
        /// The `from` node.
        from: NodeId,
        /// The `to` node.
        to: NodeId,
    },
    /// The path does not start at the claimed source.
    WrongSource {
        /// Expected source.
        expected: NodeId,
        /// Actual first node.
        actual: NodeId,
    },
    /// The path does not end at the claimed destination.
    WrongDestination {
        /// Expected destination.
        expected: NodeId,
        /// Actual last node.
        actual: NodeId,
    },
    /// A path was registered for a `src == dst` pair.
    TrivialPair(NodeId),
    /// The same (src, dst) pair was registered twice — oblivious
    /// routing defines a *single* path per pair.
    DuplicatePair(NodeId, NodeId),
    /// A channel repeats within one path; a message cannot hold the
    /// same channel queue twice under atomic buffer allocation.
    RepeatedChannel(ChannelId),
    /// The table could not be realized as a routing function.
    NotAFunction(FunctionConflict),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::EmptyPath => write!(f, "path must contain at least one channel"),
            RouteError::Disconnected { at } => {
                write!(f, "path channels {} and {} are not adjacent", at, at + 1)
            }
            RouteError::MissingChannel { from, to } => {
                write!(f, "no channel from {from} to {to}")
            }
            RouteError::WrongSource { expected, actual } => {
                write!(f, "path starts at {actual}, expected {expected}")
            }
            RouteError::WrongDestination { expected, actual } => {
                write!(f, "path ends at {actual}, expected {expected}")
            }
            RouteError::TrivialPair(n) => write!(f, "path from {n} to itself is not allowed"),
            RouteError::DuplicatePair(s, d) => {
                write!(f, "duplicate path registered for ({s}, {d})")
            }
            RouteError::RepeatedChannel(c) => write!(f, "channel {c} repeats within a path"),
            RouteError::NotAFunction(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for RouteError {}

impl From<FunctionConflict> for RouteError {
    fn from(c: FunctionConflict) -> Self {
        RouteError::NotAFunction(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = RouteError::MissingChannel {
            from: NodeId::from_index(1),
            to: NodeId::from_index(2),
        };
        assert!(e.to_string().contains("n1"));
        assert!(e.to_string().contains("n2"));

        let c = FunctionConflict {
            input: None,
            dst: NodeId::from_index(0),
            outputs: (ChannelId::from_index(1), ChannelId::from_index(2)),
        };
        assert!(c.to_string().contains("c1"));
        let e: RouteError = c.into();
        assert!(matches!(e, RouteError::NotAFunction(_)));
    }
}
