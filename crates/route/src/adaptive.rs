//! Adaptive routing: functions of the form `R : C × N → P(C)`.
//!
//! The paper studies *oblivious* routing, but its Section 2 reviews —
//! and its conclusion points to — the adaptive theory: Duato's result
//! that an acyclic CDG is not necessary for deadlock-free *adaptive*
//! routing, and the open question of characterizing adaptive false
//! resource cycles. This module provides the adaptive substrate used
//! by the extension experiments:
//!
//! * [`AdaptiveRouting`] — the routing relation as explicit option
//!   tables keyed by (injection node, destination) and (input channel,
//!   destination), with a connectivity validator.
//! * [`fully_adaptive_minimal`] — every productive mesh direction, one
//!   lane: the classic deadlock-*prone* adaptive algorithm.
//! * [`duato_mesh`] — fully adaptive lanes plus a dimension-order
//!   *escape* lane (Duato's methodology): deadlock-free although its
//!   extended dependency graph is cyclic.

use std::collections::{BTreeMap, VecDeque};

use wormnet::topology::Mesh;
use wormnet::{ChannelId, Network, NodeId};

use crate::{RouteError, RoutingStep, TableRouting};

/// An adaptive routing relation over a network.
///
/// For every (current position, destination) the relation lists the
/// *permitted* output channels; a router may forward the header on any
/// free one. Option lists are kept in deterministic order.
#[derive(Clone, Debug, Default)]
pub struct AdaptiveRouting {
    inject: BTreeMap<(NodeId, NodeId), Vec<ChannelId>>,
    forward: BTreeMap<(ChannelId, NodeId), Vec<ChannelId>>,
}

/// Validation failures for adaptive routing relations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdaptiveError {
    /// No permitted first channel for a (source, destination) pair.
    NoInjection(NodeId, NodeId),
    /// A reachable (channel, destination) state has no permitted
    /// continuation.
    DeadEnd(ChannelId, NodeId),
    /// A permitted option does not start at the position it is
    /// permitted from.
    Disconnected(ChannelId, ChannelId),
}

impl std::fmt::Display for AdaptiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptiveError::NoInjection(s, d) => {
                write!(f, "no injection option for {s} -> {d}")
            }
            AdaptiveError::DeadEnd(c, d) => {
                write!(f, "dead end at channel {c} toward {d}")
            }
            AdaptiveError::Disconnected(a, b) => {
                write!(f, "option {b} does not continue from {a}")
            }
        }
    }
}

impl std::error::Error for AdaptiveError {}

impl AdaptiveRouting {
    /// Build from a choice function `f(position, dst) → options`,
    /// where `position` is `Err(node)` at injection or `Ok(channel)`
    /// in flight. The function is evaluated for every node/channel ×
    /// destination combination; empty option lists are fine as long as
    /// the state is unreachable (checked by [`AdaptiveRouting::validate`]).
    pub fn build(
        net: &Network,
        mut f: impl FnMut(Result<ChannelId, NodeId>, NodeId) -> Vec<ChannelId>,
    ) -> Self {
        let mut inject = BTreeMap::new();
        let mut forward = BTreeMap::new();
        for dst in net.nodes() {
            for src in net.nodes() {
                if src != dst {
                    let opts = f(Err(src), dst);
                    debug_assert!(opts.iter().all(|&c| net.channel(c).src() == src));
                    inject.insert((src, dst), opts);
                }
            }
            for c in net.channels() {
                if c.dst() != dst {
                    let opts = f(Ok(c.id()), dst);
                    debug_assert!(opts.iter().all(|&o| net.channel(o).src() == c.dst()));
                    forward.insert((c.id(), dst), opts);
                }
            }
        }
        AdaptiveRouting { inject, forward }
    }

    /// Permitted first channels for a message from `src` to `dst`.
    pub fn injection_options(&self, src: NodeId, dst: NodeId) -> &[ChannelId] {
        self.inject
            .get(&(src, dst))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Permitted continuations after arriving over `input` toward
    /// `dst` (empty when `input` already ends at `dst`).
    pub fn options(&self, input: ChannelId, dst: NodeId) -> &[ChannelId] {
        self.forward
            .get(&(input, dst))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Validate connectivity: every (src, dst) pair has at least one
    /// injection option, and from every state reachable by following
    /// options, the destination is reachable.
    pub fn validate(&self, net: &Network) -> Result<(), AdaptiveError> {
        for dst in net.nodes() {
            // BFS over channels reachable toward `dst`.
            let mut queue: VecDeque<ChannelId> = VecDeque::new();
            let mut seen = vec![false; net.channel_count()];
            for src in net.nodes() {
                if src == dst {
                    continue;
                }
                let opts = self.injection_options(src, dst);
                if opts.is_empty() {
                    return Err(AdaptiveError::NoInjection(src, dst));
                }
                for &c in opts {
                    if net.channel(c).src() != src {
                        return Err(AdaptiveError::Disconnected(c, c));
                    }
                    if !seen[c.index()] {
                        seen[c.index()] = true;
                        queue.push_back(c);
                    }
                }
            }
            while let Some(c) = queue.pop_front() {
                if net.channel(c).dst() == dst {
                    continue; // arrived
                }
                let opts = self.options(c, dst);
                if opts.is_empty() {
                    return Err(AdaptiveError::DeadEnd(c, dst));
                }
                for &o in opts {
                    if net.channel(o).src() != net.channel(c).dst() {
                        return Err(AdaptiveError::Disconnected(c, o));
                    }
                    if !seen[o.index()] {
                        seen[o.index()] = true;
                        queue.push_back(o);
                    }
                }
            }
        }
        Ok(())
    }

    /// Degree of adaptivity: the mean number of options over all
    /// forwarding states (1.0 = oblivious).
    pub fn mean_options(&self) -> f64 {
        let lists: Vec<usize> = self
            .forward
            .values()
            .chain(self.inject.values())
            .map(Vec::len)
            .filter(|&l| l > 0)
            .collect();
        if lists.is_empty() {
            return 0.0;
        }
        lists.iter().sum::<usize>() as f64 / lists.len() as f64
    }
}

/// Degenerate adaptivity: wrap an oblivious [`TableRouting`] as an
/// adaptive relation whose every option list is a singleton. Useful
/// for cross-validating the adaptive engine against the oblivious one
/// (they must behave identically on such relations).
pub fn from_table(net: &Network, table: &TableRouting) -> Result<AdaptiveRouting, RouteError> {
    let compiled = table.compile(net)?;
    Ok(AdaptiveRouting::build(net, |pos, dst| match pos {
        Err(node) => compiled.inject(node, dst).into_iter().collect(),
        Ok(chan) => match compiled.try_next(net, chan, dst) {
            Some(RoutingStep::Forward(c)) => vec![c],
            _ => vec![],
        },
    }))
}

/// Productive (distance-reducing) neighbour moves on a mesh, on a
/// given VC lane.
fn productive_channels(mesh: &Mesh, at: NodeId, dst: NodeId, vc: u8) -> Vec<ChannelId> {
    let net = mesh.network();
    let cur = mesh.coords(at);
    let goal = mesh.coords(dst);
    let mut opts = Vec::new();
    for dim in 0..mesh.dims().len() {
        if cur[dim] == goal[dim] {
            continue;
        }
        let mut next = cur.clone();
        if cur[dim] < goal[dim] {
            next[dim] += 1;
        } else {
            next[dim] -= 1;
        }
        if let Some(c) = net.find_channel_vc(at, mesh.node(&next), vc) {
            opts.push(c);
        }
    }
    opts
}

/// The next dimension-order hop on a mesh, on a given VC lane.
fn dor_channel(mesh: &Mesh, at: NodeId, dst: NodeId, vc: u8) -> Option<ChannelId> {
    let net = mesh.network();
    let cur = mesh.coords(at);
    let goal = mesh.coords(dst);
    for dim in 0..mesh.dims().len() {
        if cur[dim] == goal[dim] {
            continue;
        }
        let mut next = cur.clone();
        if cur[dim] < goal[dim] {
            next[dim] += 1;
        } else {
            next[dim] -= 1;
        }
        return net.find_channel_vc(at, mesh.node(&next), vc);
    }
    None
}

/// Fully adaptive minimal routing on a single-lane mesh: at every hop,
/// any productive direction. The canonical deadlock-*prone* adaptive
/// algorithm (its dependency graph has cycles with no escape).
pub fn fully_adaptive_minimal(mesh: &Mesh) -> AdaptiveRouting {
    AdaptiveRouting::build(mesh.network(), |pos, dst| {
        let at = match pos {
            Err(node) => node,
            Ok(chan) => mesh.network().channel(chan).dst(),
        };
        productive_channels(mesh, at, dst, 0)
    })
}

/// Glass & Ni's **west-first** algorithm in its true partially
/// adaptive form, on a single-lane 2-D mesh: all west (−x) hops must
/// be taken first (no adaptivity while heading west); once no west
/// hops remain, the header may take *any* productive direction among
/// {east, north, south}. Prohibiting the two turns into west breaks
/// every abstract turn cycle, so the relation is deadlock-free with an
/// acyclic extended dependency graph — the turn model's claim,
/// machine-checked in the tests.
pub fn west_first_adaptive(mesh: &Mesh) -> AdaptiveRouting {
    assert_eq!(mesh.dims().len(), 2, "west-first requires a 2-D mesh");
    AdaptiveRouting::build(mesh.network(), |pos, dst| {
        let at = match pos {
            Err(node) => node,
            Ok(chan) => mesh.network().channel(chan).dst(),
        };
        let cur = mesh.coords(at);
        let goal = mesh.coords(dst);
        if cur[0] > goal[0] {
            // West hops first, obliviously.
            let mut west = cur.clone();
            west[0] -= 1;
            return mesh
                .network()
                .find_channel_vc(at, mesh.node(&west), 0)
                .into_iter()
                .collect();
        }
        // Fully adaptive among the remaining productive directions
        // (all of which are non-west).
        productive_channels(mesh, at, dst, 0)
    })
}

/// Duato's methodology on a two-lane mesh: lane 1 is fully adaptive
/// minimal, lane 0 is a dimension-order *escape* lane. From any
/// position a header may use any productive adaptive-lane channel or
/// the escape channel; once decisions route through escape channels
/// the escape subnetwork alone (acyclic, dimension-ordered) guarantees
/// progress, so the algorithm is deadlock-free although the full
/// dependency graph is cyclic.
pub fn duato_mesh(mesh: &Mesh) -> AdaptiveRouting {
    assert!(mesh.vcs() >= 2, "Duato's construction needs an escape lane");
    AdaptiveRouting::build(mesh.network(), |pos, dst| {
        let at = match pos {
            Err(node) => node,
            Ok(chan) => mesh.network().channel(chan).dst(),
        };
        let mut opts = productive_channels(mesh, at, dst, 1);
        if let Some(escape) = dor_channel(mesh, at, dst, 0) {
            opts.push(escape);
        }
        opts
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_adaptive_has_all_productive_options() {
        let mesh = Mesh::new(&[3, 3]);
        let r = fully_adaptive_minimal(&mesh);
        r.validate(mesh.network()).unwrap();
        // From a corner toward the opposite corner: two options.
        let a = mesh.node(&[0, 0]);
        let b = mesh.node(&[2, 2]);
        assert_eq!(r.injection_options(a, b).len(), 2);
        // Aligned pair: one option.
        let c = mesh.node(&[0, 2]);
        assert_eq!(r.injection_options(a, c).len(), 1);
        assert!(r.mean_options() > 1.0);
    }

    #[test]
    fn duato_adds_escape_option() {
        let mesh = Mesh::with_vcs(&[3, 3], 2);
        let r = duato_mesh(&mesh);
        r.validate(mesh.network()).unwrap();
        let a = mesh.node(&[0, 0]);
        let b = mesh.node(&[2, 2]);
        // Two adaptive productive + one escape.
        let opts = r.injection_options(a, b);
        assert_eq!(opts.len(), 3);
        let lanes: Vec<u8> = opts
            .iter()
            .map(|&c| mesh.network().channel(c).vc())
            .collect();
        assert_eq!(lanes.iter().filter(|&&v| v == 1).count(), 2);
        assert_eq!(lanes.iter().filter(|&&v| v == 0).count(), 1);
    }

    #[test]
    fn options_are_position_consistent() {
        let mesh = Mesh::new(&[3, 2]);
        let r = fully_adaptive_minimal(&mesh);
        let net = mesh.network();
        for dst in net.nodes() {
            for c in net.channels() {
                if c.dst() == dst {
                    continue;
                }
                for &o in r.options(c.id(), dst) {
                    assert_eq!(net.channel(o).src(), c.dst());
                }
            }
        }
    }

    #[test]
    fn minimality_of_productive_moves() {
        // Each option strictly reduces Manhattan distance.
        let mesh = Mesh::new(&[3, 3]);
        let r = fully_adaptive_minimal(&mesh);
        let net = mesh.network();
        for dst in net.nodes() {
            for src in net.nodes() {
                if src == dst {
                    continue;
                }
                for &o in r.injection_options(src, dst) {
                    let next = net.channel(o).dst();
                    assert_eq!(mesh.manhattan(next, dst) + 1, mesh.manhattan(src, dst));
                }
            }
        }
    }

    #[test]
    fn west_first_adaptive_shape() {
        let mesh = Mesh::new(&[3, 3]);
        let r = west_first_adaptive(&mesh);
        r.validate(mesh.network()).unwrap();
        // Westward destination: exactly one option (west).
        let a = mesh.node(&[2, 0]);
        let b = mesh.node(&[0, 2]);
        let opts = r.injection_options(a, b);
        assert_eq!(opts.len(), 1);
        assert_eq!(
            mesh.coords(mesh.network().channel(opts[0]).dst()),
            vec![1, 0]
        );
        // Eastward-north destination: two adaptive options.
        let c = mesh.node(&[0, 0]);
        let d = mesh.node(&[2, 2]);
        assert_eq!(r.injection_options(c, d).len(), 2);
    }

    #[test]
    fn validate_catches_dead_ends() {
        // A relation that never routes out of node 0 toward node 1.
        let mesh = Mesh::new(&[2, 2]);
        let bad = AdaptiveRouting::build(mesh.network(), |pos, dst| match pos {
            Err(n) if n == mesh.node(&[0, 0]) && dst == mesh.node(&[1, 1]) => vec![],
            Err(n) => productive_channels(&mesh, n, dst, 0),
            Ok(c) => productive_channels(&mesh, mesh.network().channel(c).dst(), dst, 0),
        });
        assert!(matches!(
            bad.validate(mesh.network()),
            Err(AdaptiveError::NoInjection(_, _))
        ));
    }

    #[test]
    fn from_table_is_singleton_relation() {
        use crate::algorithms::dimension_order;
        let mesh = Mesh::new(&[3, 3]);
        let table = dimension_order(&mesh).unwrap();
        let adaptive = from_table(mesh.network(), &table).unwrap();
        adaptive.validate(mesh.network()).unwrap();
        assert!((adaptive.mean_options() - 1.0).abs() < 1e-9);
        // Each option matches the table's path step.
        for (&(s, d), path) in table.iter() {
            assert_eq!(adaptive.injection_options(s, d), &path.channels()[..1]);
        }
    }

    #[test]
    #[should_panic(expected = "escape lane")]
    fn duato_needs_two_lanes() {
        let mesh = Mesh::new(&[3, 3]);
        let _ = duato_mesh(&mesh);
    }
}
