//! Channel paths through a network.

use wormnet::{ChannelId, Network, NodeId};

use crate::error::RouteError;

/// A non-empty sequence of channels forming a connected walk.
///
/// A `Path` stores channels, not nodes, because channels are the
/// resources wormhole routing reasons about: a path may revisit a
/// *node* (the paper discusses non-coherent algorithms that do exactly
/// that) but never a *channel* — a message cannot occupy the same
/// channel queue twice under atomic buffer allocation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Path {
    channels: Vec<ChannelId>,
}

impl Path {
    /// Build a path from channels, validating connectivity against the
    /// network.
    pub fn from_channels(net: &Network, channels: Vec<ChannelId>) -> Result<Self, RouteError> {
        if channels.is_empty() {
            return Err(RouteError::EmptyPath);
        }
        for (i, w) in channels.windows(2).enumerate() {
            if net.channel(w[0]).dst() != net.channel(w[1]).src() {
                return Err(RouteError::Disconnected { at: i });
            }
        }
        let mut seen = channels.clone();
        seen.sort_unstable();
        for w in seen.windows(2) {
            if w[0] == w[1] {
                return Err(RouteError::RepeatedChannel(w[0]));
            }
        }
        Ok(Path { channels })
    }

    /// Build a path from a node walk, picking the VC-0 channel between
    /// consecutive nodes.
    pub fn from_nodes(net: &Network, nodes: &[NodeId]) -> Result<Self, RouteError> {
        Self::from_nodes_with(net, nodes, |net, a, b, _| net.find_channel(a, b))
    }

    /// Build a path from a node walk with a custom channel selector
    /// (used for virtual-channel algorithms such as dateline routing).
    /// The selector receives `(network, from, to, hop_index)`.
    pub fn from_nodes_with(
        net: &Network,
        nodes: &[NodeId],
        mut pick: impl FnMut(&Network, NodeId, NodeId, usize) -> Option<ChannelId>,
    ) -> Result<Self, RouteError> {
        if nodes.len() < 2 {
            return Err(RouteError::EmptyPath);
        }
        let mut channels = Vec::with_capacity(nodes.len() - 1);
        for (i, w) in nodes.windows(2).enumerate() {
            let c = pick(net, w[0], w[1], i).ok_or(RouteError::MissingChannel {
                from: w[0],
                to: w[1],
            })?;
            channels.push(c);
        }
        Self::from_channels(net, channels)
    }

    /// The channels of the path in order.
    #[inline]
    pub fn channels(&self) -> &[ChannelId] {
        &self.channels
    }

    /// Number of channels (hops).
    #[inline]
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Paths are never empty; provided for clippy-idiomatic callers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Source node (origin of the first channel).
    pub fn src(&self, net: &Network) -> NodeId {
        net.channel(self.channels[0]).src()
    }

    /// Destination node (target of the last channel).
    pub fn dst(&self, net: &Network) -> NodeId {
        net.channel(*self.channels.last().expect("paths are non-empty"))
            .dst()
    }

    /// The node walk visited by the path (length `len() + 1`).
    pub fn nodes(&self, net: &Network) -> Vec<NodeId> {
        let mut nodes = Vec::with_capacity(self.channels.len() + 1);
        nodes.push(self.src(net));
        for &c in &self.channels {
            nodes.push(net.channel(c).dst());
        }
        nodes
    }

    /// Whether the path visits every node at most once (no revisits) —
    /// part of Definition 9's coherence requirement.
    pub fn is_node_simple(&self, net: &Network) -> bool {
        let mut nodes = self.nodes(net);
        nodes.sort_unstable();
        nodes.windows(2).all(|w| w[0] != w[1])
    }

    /// Position of the first occurrence of `node` along the node walk,
    /// if the path visits it.
    pub fn find_node(&self, net: &Network, node: NodeId) -> Option<usize> {
        self.nodes(net).iter().position(|&n| n == node)
    }

    /// Whether `channel` appears on the path.
    pub fn contains(&self, channel: ChannelId) -> bool {
        self.channels.contains(&channel)
    }

    /// The prefix of the path whose node walk ends at the first
    /// occurrence of `node`; `None` if the path does not visit `node`
    /// strictly after its source.
    pub fn prefix_to(&self, net: &Network, node: NodeId) -> Option<Path> {
        let pos = self.find_node(net, node)?;
        if pos == 0 {
            return None;
        }
        Some(Path {
            channels: self.channels[..pos].to_vec(),
        })
    }

    /// The suffix of the path starting at the occurrence of `node` at
    /// walk position `pos` (as returned by node-walk indexing).
    pub fn suffix_from_pos(&self, pos: usize) -> Option<Path> {
        if pos >= self.channels.len() {
            return None;
        }
        Some(Path {
            channels: self.channels[pos..].to_vec(),
        })
    }

    /// Render as `n0 -> n1 -> ...` for reports.
    pub fn describe(&self, net: &Network) -> String {
        self.nodes(net)
            .iter()
            .map(|&n| net.node_name(n).to_string())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> (Network, Vec<NodeId>) {
        // 0 -> 1 -> 2 -> 3 -> 0, bidirectional.
        let mut net = Network::new();
        let nodes = net.add_nodes("s", 4);
        for i in 0..4 {
            net.add_bidi(nodes[i], nodes[(i + 1) % 4]);
        }
        (net, nodes)
    }

    #[test]
    fn from_nodes_builds_connected_path() {
        let (net, n) = square();
        let p = Path::from_nodes(&net, &[n[0], n[1], n[2]]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.src(&net), n[0]);
        assert_eq!(p.dst(&net), n[2]);
        assert_eq!(p.nodes(&net), vec![n[0], n[1], n[2]]);
        assert!(p.is_node_simple(&net));
    }

    #[test]
    fn disconnected_channels_rejected() {
        let (net, n) = square();
        let c01 = net.find_channel(n[0], n[1]).unwrap();
        let c23 = net.find_channel(n[2], n[3]).unwrap();
        assert_eq!(
            Path::from_channels(&net, vec![c01, c23]),
            Err(RouteError::Disconnected { at: 0 })
        );
    }

    #[test]
    fn missing_channel_reported() {
        let (net, n) = square();
        let err = Path::from_nodes(&net, &[n[0], n[2]]).unwrap_err();
        assert_eq!(
            err,
            RouteError::MissingChannel {
                from: n[0],
                to: n[2]
            }
        );
    }

    #[test]
    fn empty_path_rejected() {
        let (net, n) = square();
        assert_eq!(
            Path::from_channels(&net, vec![]),
            Err(RouteError::EmptyPath)
        );
        assert_eq!(Path::from_nodes(&net, &[n[0]]), Err(RouteError::EmptyPath));
    }

    #[test]
    fn repeated_channel_rejected() {
        let (net, n) = square();
        // 0 -> 1 -> 0 -> 1 repeats channel 0->1.
        let err = Path::from_nodes(&net, &[n[0], n[1], n[0], n[1]]).unwrap_err();
        assert!(matches!(err, RouteError::RepeatedChannel(_)));
    }

    #[test]
    fn node_revisit_is_allowed_but_not_simple() {
        let (net, n) = square();
        // 0 -> 1 -> 2 -> 1 revisits node 1 over distinct channels.
        let p = Path::from_nodes(&net, &[n[0], n[1], n[2], n[1]]).unwrap();
        assert!(!p.is_node_simple(&net));
    }

    #[test]
    fn prefix_and_suffix() {
        let (net, n) = square();
        let p = Path::from_nodes(&net, &[n[0], n[1], n[2], n[3]]).unwrap();
        let pre = p.prefix_to(&net, n[2]).unwrap();
        assert_eq!(pre.nodes(&net), vec![n[0], n[1], n[2]]);
        assert!(p.prefix_to(&net, n[0]).is_none());

        let pos = p.find_node(&net, n[1]).unwrap();
        let suf = p.suffix_from_pos(pos).unwrap();
        assert_eq!(suf.nodes(&net), vec![n[1], n[2], n[3]]);
        assert!(p.suffix_from_pos(3).is_none());
    }

    #[test]
    fn contains_and_describe() {
        let (net, n) = square();
        let p = Path::from_nodes(&net, &[n[0], n[1]]).unwrap();
        let c01 = net.find_channel(n[0], n[1]).unwrap();
        let c12 = net.find_channel(n[1], n[2]).unwrap();
        assert!(p.contains(c01));
        assert!(!p.contains(c12));
        assert_eq!(p.describe(&net), "s0 -> s1");
    }

    #[test]
    fn vc_selector_used() {
        let mut net = Network::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.add_channel_vc(a, b, 0);
        let c1 = net.add_channel_vc(a, b, 1);
        net.add_bidi(b, a);
        let p = Path::from_nodes_with(&net, &[a, b], |net, u, v, _| net.find_channel_vc(u, v, 1))
            .unwrap();
        assert_eq!(p.channels(), &[c1]);
    }
}
