//! Build a routing table from a parsed `wormspec/1` routing section.
//!
//! The `engine` key either names one of the algorithms in
//! [`crate::algorithms`] — in which case the engine must match the
//! built topology's kind (a `dimension_order` engine on a ring is an
//! `E013` conflict, not a panic) — or is the literal `table`, which
//! replays the explicit `path` declarations.

use wormnet::spec::BuiltTopology;
use wormnet::ChannelId;
use wormspec::ast::Routing;
use wormspec::diag::{codes, Span, SpecError};

use crate::algorithms;
use crate::{Path, RouteError, TableRouting};

fn err(code: &'static str, msg: impl Into<String>, span: Span) -> SpecError {
    SpecError::new(code, msg, span)
}

fn route_err(e: RouteError, span: Span) -> SpecError {
    err(
        codes::RESOLVE,
        format!("routing resolution failed: {e}"),
        span,
    )
}

fn kind_mismatch(engine: &str, needs: &str, topo: &BuiltTopology, span: Span) -> SpecError {
    err(
        codes::CONFLICT,
        format!(
            "engine `{engine}` needs `kind = {needs}`, but the topology is `{}`",
            topo.kind_keyword()
        ),
        span,
    )
}

/// Resolve the routing section against a built topology.
///
/// Engine names are the `wormroute::algorithms` function names; the
/// special name `table` replays explicit `path` declarations.
pub fn table_from_spec(routing: &Routing, topo: &BuiltTopology) -> Result<TableRouting, SpecError> {
    let engine = routing.engine.value.as_str();
    let at = routing.engine.span;
    if engine != "table" {
        if let Some(p) = routing.paths.first() {
            return Err(err(
                codes::CONFLICT,
                format!(
                    "explicit `path` declarations need `engine = table`, not `engine = {engine}`"
                ),
                p.src.span,
            ));
        }
    }
    match engine {
        "table" => explicit_table(routing, topo),
        "dimension_order" | "xy_mesh" | "west_first" | "negative_first" | "valiant_mesh" => {
            let BuiltTopology::Mesh(mesh) = topo else {
                return Err(kind_mismatch(engine, "mesh", topo, at));
            };
            let run = match engine {
                "dimension_order" => algorithms::dimension_order,
                "xy_mesh" => algorithms::xy_mesh,
                "west_first" => algorithms::west_first,
                "negative_first" => algorithms::negative_first,
                _ => algorithms::valiant_mesh,
            };
            if (engine == "xy_mesh" || engine == "west_first")
                && mesh.dims().len() != 2 {
                    return Err(err(
                        codes::CONFLICT,
                        format!("engine `{engine}` needs a 2-D mesh"),
                        at,
                    ));
                }
            if engine == "valiant_mesh" && mesh.vcs() < 2 {
                return Err(err(
                    codes::CONFLICT,
                    "engine `valiant_mesh` needs `vcs = 2 lanes` or more",
                    at,
                ));
            }
            run(mesh).map_err(|e| route_err(e, at))
        }
        "dateline_torus" => {
            let BuiltTopology::Torus(torus) = topo else {
                return Err(kind_mismatch(engine, "torus", topo, at));
            };
            algorithms::dateline_torus(torus).map_err(|e| route_err(e, at))
        }
        "ecube" => {
            let BuiltTopology::Hypercube(cube) = topo else {
                return Err(kind_mismatch(engine, "hypercube", topo, at));
            };
            algorithms::ecube(cube).map_err(|e| route_err(e, at))
        }
        "dragonfly_minimal" | "dragonfly_valiant" => {
            let BuiltTopology::Dragonfly(df) = topo else {
                return Err(kind_mismatch(engine, "dragonfly", topo, at));
            };
            let run = if engine == "dragonfly_minimal" {
                algorithms::dragonfly_minimal
            } else {
                algorithms::dragonfly_valiant
            };
            if engine == "dragonfly_valiant" && df.groups() < 3 {
                return Err(err(
                    codes::CONFLICT,
                    "engine `dragonfly_valiant` needs at least three groups",
                    at,
                ));
            }
            run(df).map_err(|e| route_err(e, at))
        }
        "fattree_updown" => {
            let BuiltTopology::FatTree(ft) = topo else {
                return Err(kind_mismatch(engine, "fattree", topo, at));
            };
            algorithms::fattree_updown(ft).map_err(|e| route_err(e, at))
        }
        "clockwise_ring" | "dateline_ring" => {
            let BuiltTopology::Ring { net, nodes } = topo else {
                return Err(kind_mismatch(engine, "ring", topo, at));
            };
            if engine == "dateline_ring" {
                // Dateline needs a second lane on every link.
                let max_vc = net.channels().map(|c| c.vc()).max().unwrap_or(0);
                if max_vc < 1 {
                    return Err(err(
                        codes::CONFLICT,
                        "engine `dateline_ring` needs `vcs = 2 lanes` or more",
                        at,
                    ));
                }
                algorithms::dateline_ring(net, nodes).map_err(|e| route_err(e, at))
            } else {
                algorithms::clockwise_ring(net, nodes).map_err(|e| route_err(e, at))
            }
        }
        "fullmesh_direct" | "fullmesh_vcfree" | "fullmesh_ring_detour" => {
            let BuiltTopology::Complete { net, nodes } = topo else {
                return Err(kind_mismatch(engine, "complete", topo, at));
            };
            match engine {
                "fullmesh_direct" => algorithms::fullmesh_direct(net),
                "fullmesh_vcfree" => algorithms::fullmesh_vcfree(net, nodes),
                _ => algorithms::fullmesh_ring_detour(net, nodes),
            }
            .map_err(|e| route_err(e, at))
        }
        "shortest_path" => {
            algorithms::shortest_path_table(topo.network()).map_err(|e| route_err(e, at))
        }
        other => Err(err(
            codes::ENUM,
            format!(
                "unknown routing engine `{other}` (see `wormroute::algorithms`; use `table` for explicit paths)"
            ),
            at,
        )),
    }
}

/// Replay explicit `path` declarations into a [`TableRouting`].
fn explicit_table(routing: &Routing, topo: &BuiltTopology) -> Result<TableRouting, SpecError> {
    let net = topo.network();
    let mut table = TableRouting::new();
    for p in &routing.paths {
        let src = net.node_by_name(&p.src.value).ok_or_else(|| {
            err(
                codes::RESOLVE,
                format!("unknown node \"{}\"", p.src.value),
                p.src.span,
            )
        })?;
        let dst = net.node_by_name(&p.dst.value).ok_or_else(|| {
            err(
                codes::RESOLVE,
                format!("unknown node \"{}\"", p.dst.value),
                p.dst.span,
            )
        })?;
        let mut channels = Vec::with_capacity(p.channels.value.len());
        for &c in &p.channels.value {
            let idx = usize::try_from(c)
                .map_err(|_| err(codes::RANGE, "channel index out of range", p.channels.span))?;
            if idx >= net.channel_count() {
                return Err(err(
                    codes::RESOLVE,
                    format!(
                        "channel c{idx} does not exist (the topology has {} channels)",
                        net.channel_count()
                    ),
                    p.channels.span,
                ));
            }
            channels.push(ChannelId::from_index(idx));
        }
        let path = Path::from_channels(net, channels).map_err(|e| route_err(e, p.channels.span))?;
        table
            .insert(net, src, dst, path)
            .map_err(|e| route_err(e, p.src.span.to(p.dst.span)))?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormnet::spec::build_topology;
    use wormspec::parse;

    fn resolve(src: &str) -> Result<TableRouting, SpecError> {
        let spec = parse(src).expect("spec parses");
        let topo = build_topology(&spec.topology)?;
        table_from_spec(&spec.routing, &topo)
    }

    #[test]
    fn named_engines_resolve_against_matching_kinds() {
        let t = resolve(
            "wormspec/1\ntopology { kind = mesh dims = [3, 3] }\nrouting { engine = dimension_order }\n",
        )
        .unwrap();
        assert_eq!(t.len(), 9 * 8);
        let t = resolve(
            "wormspec/1\ntopology { kind = ring nodes = 4 }\nrouting { engine = clockwise_ring }\n",
        )
        .unwrap();
        assert_eq!(t.len(), 4 * 3);
        let t = resolve(
            "wormspec/1\ntopology { kind = ring nodes = 8 vcs = 2 lanes }\nrouting { engine = dateline_ring }\n",
        )
        .unwrap();
        assert_eq!(t.len(), 8 * 7);
    }

    #[test]
    fn engine_kind_mismatch_is_a_conflict() {
        let e = resolve(
            "wormspec/1\ntopology { kind = ring nodes = 4 }\nrouting { engine = dimension_order }\n",
        )
        .unwrap_err();
        assert_eq!(e.code, codes::CONFLICT);
        let e = resolve(
            "wormspec/1\ntopology { kind = ring nodes = 4 }\nrouting { engine = dateline_ring }\n",
        )
        .unwrap_err();
        assert_eq!(e.code, codes::CONFLICT);
    }

    #[test]
    fn unknown_engine_is_an_enum_error() {
        let e = resolve(
            "wormspec/1\ntopology { kind = mesh dims = [2, 2] }\nrouting { engine = wibble }\n",
        )
        .unwrap_err();
        assert_eq!(e.code, codes::ENUM);
    }

    #[test]
    fn explicit_tables_replay_and_validate() {
        let t = resolve(
            "wormspec/1\n\
             topology { kind = explicit node \"A\" node \"B\" channel \"A\" -> \"B\" channel \"B\" -> \"A\" }\n\
             routing { engine = table path \"A\" -> \"B\" = [c0] path \"B\" -> \"A\" = [c1] }\n",
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        let e = resolve(
            "wormspec/1\n\
             topology { kind = explicit node \"A\" node \"B\" channel \"A\" -> \"B\" }\n\
             routing { engine = table path \"A\" -> \"B\" = [c7] }\n",
        )
        .unwrap_err();
        assert_eq!(e.code, codes::RESOLVE);
        let e = resolve(
            "wormspec/1\n\
             topology { kind = explicit node \"A\" node \"B\" channel \"A\" -> \"B\" }\n\
             routing { engine = dimension_order path \"A\" -> \"B\" = [c0] }\n",
        )
        .unwrap_err();
        assert_eq!(e.code, codes::CONFLICT);
    }
}
