//! Table-driven oblivious routing: one path per ordered node pair
//! (Definition 3's routing algorithm `R(src, dst)`).

use std::collections::BTreeMap;

use wormnet::{Network, NodeId};

use crate::compiled::CompiledRouting;
use crate::error::RouteError;
use crate::path::Path;

/// An oblivious routing algorithm represented extensionally: the
/// single path each (source, destination) pair uses.
///
/// The map is ordered so iteration (and everything derived from it —
/// dependency graphs, witness lists, reports) is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TableRouting {
    paths: BTreeMap<(NodeId, NodeId), Path>,
}

impl TableRouting {
    /// An empty table.
    pub fn new() -> Self {
        TableRouting::default()
    }

    /// Register the path for `(src, dst)`.
    ///
    /// Fails if the pair is trivial, already present, or the path's
    /// endpoints do not match.
    pub fn insert(
        &mut self,
        net: &Network,
        src: NodeId,
        dst: NodeId,
        path: Path,
    ) -> Result<(), RouteError> {
        if src == dst {
            return Err(RouteError::TrivialPair(src));
        }
        if path.src(net) != src {
            return Err(RouteError::WrongSource {
                expected: src,
                actual: path.src(net),
            });
        }
        if path.dst(net) != dst {
            return Err(RouteError::WrongDestination {
                expected: dst,
                actual: path.dst(net),
            });
        }
        if self.paths.contains_key(&(src, dst)) {
            return Err(RouteError::DuplicatePair(src, dst));
        }
        self.paths.insert((src, dst), path);
        Ok(())
    }

    /// Build a table by calling `route` for every ordered node pair.
    /// `route` returns the node walk for the pair (or `None` to leave
    /// the pair unrouted — used by partial algorithms in tests).
    pub fn from_node_paths(
        net: &Network,
        mut route: impl FnMut(NodeId, NodeId) -> Option<Vec<NodeId>>,
    ) -> Result<Self, RouteError> {
        Self::from_paths_with(net, |net, s, d| {
            route(s, d).map(|walk| Path::from_nodes(net, &walk))
        })
    }

    /// Build a table from a closure producing `Path` results directly
    /// (used by virtual-channel algorithms that pick lanes per hop).
    pub fn from_paths_with(
        net: &Network,
        mut route: impl FnMut(&Network, NodeId, NodeId) -> Option<Result<Path, RouteError>>,
    ) -> Result<Self, RouteError> {
        let mut table = TableRouting::new();
        for src in net.nodes() {
            for dst in net.nodes() {
                if src == dst {
                    continue;
                }
                if let Some(path) = route(net, src, dst) {
                    table.insert(net, src, dst, path?)?;
                }
            }
        }
        Ok(table)
    }

    /// The path for a pair, if routed.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<&Path> {
        self.paths.get(&(src, dst))
    }

    /// Iterate `((src, dst), path)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&(NodeId, NodeId), &Path)> {
        self.paths.iter()
    }

    /// Number of routed pairs.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether no pairs are routed.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Whether every ordered pair of distinct nodes is routed — the
    /// paper's networks are strongly connected and their algorithms
    /// route all pairs ("a node can generate messages ... destined for
    /// any other node").
    pub fn is_total(&self, net: &Network) -> bool {
        let n = net.node_count();
        self.paths.len() == n * n - n
    }

    /// Compile the table into a routing *function* `R : C × N → C`
    /// (Definition 2). Fails if two paths disagree about the output
    /// channel for the same (input channel, destination) pair.
    pub fn compile(&self, net: &Network) -> Result<CompiledRouting, RouteError> {
        CompiledRouting::from_table(net, self).map_err(RouteError::from)
    }

    /// The degraded table after the `down` channels fail: every pair
    /// whose path traverses a down channel becomes unrouted (oblivious
    /// routing has no alternative path to offer), all other pairs keep
    /// their paths unchanged.
    ///
    /// This is the honest graceful-degradation model used by the fault
    /// layer: re-running the deadlock classifier on the result answers
    /// whether the algorithm's verdict survives the failure. The
    /// degraded table is generally not total — callers can count the
    /// lost pairs by comparing [`TableRouting::len`].
    pub fn without_channels(&self, down: &[wormnet::ChannelId]) -> TableRouting {
        if down.is_empty() {
            return self.clone();
        }
        TableRouting {
            paths: self
                .paths
                .iter()
                .filter(|(_, path)| !path.channels().iter().any(|c| down.contains(c)))
                .map(|(&pair, path)| (pair, path.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormnet::topology::ring_unidirectional;

    fn ring4() -> (Network, Vec<NodeId>) {
        ring_unidirectional(4)
    }

    /// Clockwise walk from src to dst on the ring.
    fn cw_walk(nodes: &[NodeId], src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let n = nodes.len();
        let s = nodes.iter().position(|&x| x == src).unwrap();
        let mut walk = vec![src];
        let mut i = s;
        while nodes[i] != dst {
            i = (i + 1) % n;
            walk.push(nodes[i]);
        }
        walk
    }

    #[test]
    fn builds_total_table() {
        let (net, nodes) = ring4();
        let table =
            TableRouting::from_node_paths(&net, |s, d| Some(cw_walk(&nodes, s, d))).unwrap();
        assert!(table.is_total(&net));
        assert_eq!(table.len(), 12);
        assert_eq!(table.path(nodes[0], nodes[3]).unwrap().len(), 3);
        assert!(!table.is_empty());
    }

    #[test]
    fn partial_table_is_not_total() {
        let (net, nodes) = ring4();
        let table = TableRouting::from_node_paths(&net, |s, d| {
            (s == nodes[0]).then(|| cw_walk(&nodes, s, d))
        })
        .unwrap();
        assert!(!table.is_total(&net));
        assert_eq!(table.len(), 3);
        assert!(table.path(nodes[1], nodes[2]).is_none());
    }

    #[test]
    fn endpoint_mismatches_rejected() {
        let (net, nodes) = ring4();
        let p01 = Path::from_nodes(&net, &[nodes[0], nodes[1]]).unwrap();
        let mut t = TableRouting::new();
        assert!(matches!(
            t.insert(&net, nodes[1], nodes[0], p01.clone()),
            Err(RouteError::WrongSource { .. })
        ));
        assert!(matches!(
            t.insert(&net, nodes[0], nodes[2], p01.clone()),
            Err(RouteError::WrongDestination { .. })
        ));
        assert!(matches!(
            t.insert(&net, nodes[0], nodes[0], p01),
            Err(RouteError::TrivialPair(_))
        ));
    }

    #[test]
    fn duplicates_rejected() {
        let (net, nodes) = ring4();
        let p = Path::from_nodes(&net, &[nodes[0], nodes[1]]).unwrap();
        let mut t = TableRouting::new();
        t.insert(&net, nodes[0], nodes[1], p.clone()).unwrap();
        assert_eq!(
            t.insert(&net, nodes[0], nodes[1], p),
            Err(RouteError::DuplicatePair(nodes[0], nodes[1]))
        );
    }

    #[test]
    fn without_channels_drops_exactly_the_affected_pairs() {
        let (net, nodes) = ring4();
        let table =
            TableRouting::from_node_paths(&net, |s, d| Some(cw_walk(&nodes, s, d))).unwrap();
        let c0 = net.find_channel(nodes[0], nodes[1]).unwrap();
        let degraded = table.without_channels(&[c0]);
        for ((src, dst), path) in table.iter() {
            let uses = path.channels().contains(&c0);
            assert_eq!(degraded.path(*src, *dst).is_none(), uses);
        }
        // On the 4-ring, the 0->1 hop serves pairs 0->1, 0->2, 0->3,
        // 3->1, 3->2, 2->1: six of the twelve pairs.
        assert_eq!(degraded.len(), 6);
        assert!(!degraded.is_total(&net));
        // No-fault degradation is the identity.
        assert_eq!(table.without_channels(&[]), table);
    }

    #[test]
    fn iteration_is_deterministic() {
        let (net, nodes) = ring4();
        let t = TableRouting::from_node_paths(&net, |s, d| Some(cw_walk(&nodes, s, d))).unwrap();
        let keys1: Vec<_> = t.iter().map(|(k, _)| *k).collect();
        let keys2: Vec<_> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys1, keys2);
        assert!(keys1.windows(2).all(|w| w[0] < w[1]));
    }
}
