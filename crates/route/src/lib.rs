//! # wormroute — oblivious routing substrate
//!
//! This crate implements the routing layer of the paper's model:
//!
//! * [`Path`] — a channel path through a [`wormnet::Network`].
//! * [`TableRouting`] — Definition 3's routing *algorithm*
//!   `R(src, dst) = path`: one explicit path per ordered node pair.
//!   This is the natural representation for oblivious routing, where
//!   every message has a single, fully determined path.
//! * [`CompiledRouting`] — Definition 2's routing *function*
//!   `R : C × N → C` (input channel × destination → output channel),
//!   compiled from a table. Compilation fails with a
//!   [`FunctionConflict`] if the table is not realizable as such a
//!   function — an important fidelity check, since the paper's results
//!   are specifically about this class.
//! * [`properties`] — the structural predicates from Definitions 7–9:
//!   minimal, prefix-closed, suffix-closed, coherent.
//! * [`algorithms`] — standard deadlock-free baselines (dimension-order
//!   on meshes, e-cube on hypercubes, dateline rings/tori, turn-model
//!   variants) plus intentionally deadlock-prone algorithms (clockwise
//!   ring) used to validate the analysis pipeline, and random-table
//!   generators for corpus experiments.
//!
//! The paper's own constructions (Figures 1–3, Section 6) live in
//! `worm-core`; they are just [`TableRouting`] values over custom
//! networks.
//!
//! ```
//! use wormnet::topology::Mesh;
//! use wormroute::{algorithms::xy_mesh, properties};
//!
//! let mesh = Mesh::new(&[3, 3]);
//! let table = xy_mesh(&mesh).unwrap();
//! let report = properties::analyze(mesh.network(), &table);
//! assert!(report.minimal && report.coherent);
//! // XY is realizable as a routing function R : C x N -> C.
//! assert!(table.compile(mesh.network()).is_ok());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod compiled;
mod error;
mod path;
mod table;

pub mod adaptive;
pub mod algorithms;
pub mod properties;
pub mod spec;

pub use compiled::{CompiledRouting, RoutingStep};
pub use error::{FunctionConflict, RouteError};
pub use path::Path;
pub use table::TableRouting;
