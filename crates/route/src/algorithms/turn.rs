//! Deterministic variants of turn-model routing (Glass & Ni) on 2-D
//! meshes.
//!
//! The turn model proves deadlock freedom by prohibiting enough turns
//! to break every abstract cycle. The original algorithms are
//! partially adaptive; the paper at hand studies *oblivious* routing,
//! so we fix a deterministic path choice inside the permitted turn
//! sets. Both variants below are minimal and their dependency graphs
//! are acyclic (asserted in `wormcdg` tests).

use wormnet::topology::Mesh;
use wormnet::NodeId;

use crate::error::RouteError;
use crate::table::TableRouting;

/// Deterministic **west-first** routing on a 2-D mesh: all west (−x)
/// hops are taken first; the rest of the route runs Y then east, which
/// only uses turns the west-first model permits (no turn *into* west).
pub fn west_first(mesh: &Mesh) -> Result<TableRouting, RouteError> {
    assert_eq!(mesh.dims().len(), 2, "west-first requires a 2-D mesh");
    TableRouting::from_node_paths(mesh.network(), |s, d| {
        let mut cur = mesh.coords(s);
        let goal = mesh.coords(d);
        let mut walk = vec![s];
        let push = |cur: &[usize]| mesh.node(cur);
        // 1. All west hops first.
        while cur[0] > goal[0] {
            cur[0] -= 1;
            walk.push(push(&cur));
        }
        // 2. Then Y hops (either direction).
        while cur[1] != goal[1] {
            if cur[1] < goal[1] {
                cur[1] += 1;
            } else {
                cur[1] -= 1;
            }
            walk.push(push(&cur));
        }
        // 3. Then east hops.
        while cur[0] < goal[0] {
            cur[0] += 1;
            walk.push(push(&cur));
        }
        Some(walk)
    })
}

/// Deterministic **negative-first** routing on an n-dimensional mesh:
/// all negative-direction hops first (in dimension order), then all
/// positive-direction hops (in dimension order). No turn from a
/// positive direction into a negative one ever occurs, which is the
/// negative-first model's prohibition.
pub fn negative_first(mesh: &Mesh) -> Result<TableRouting, RouteError> {
    let ndim = mesh.dims().len();
    TableRouting::from_node_paths(mesh.network(), |s, d| {
        let mut cur = mesh.coords(s);
        let goal = mesh.coords(d);
        let mut walk: Vec<NodeId> = vec![s];
        for dim in 0..ndim {
            while cur[dim] > goal[dim] {
                cur[dim] -= 1;
                walk.push(mesh.node(&cur));
            }
        }
        for dim in 0..ndim {
            while cur[dim] < goal[dim] {
                cur[dim] += 1;
                walk.push(mesh.node(&cur));
            }
        }
        Some(walk)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn west_first_goes_west_first() {
        let mesh = Mesh::new(&[4, 3]);
        let table = west_first(&mesh).unwrap();
        // (3,0) -> (0,2): three west hops then two north hops.
        let p = table.path(mesh.node(&[3, 0]), mesh.node(&[0, 2])).unwrap();
        let coords: Vec<Vec<usize>> = p
            .nodes(mesh.network())
            .iter()
            .map(|&n| mesh.coords(n))
            .collect();
        assert_eq!(
            coords[0..4],
            [vec![3, 0], vec![2, 0], vec![1, 0], vec![0, 0]]
        );
        assert_eq!(coords[4..], [vec![0, 1], vec![0, 2]]);
    }

    #[test]
    fn west_first_east_goes_last() {
        let mesh = Mesh::new(&[4, 3]);
        let table = west_first(&mesh).unwrap();
        // (0,2) -> (3,0): south first, then east.
        let p = table.path(mesh.node(&[0, 2]), mesh.node(&[3, 0])).unwrap();
        let coords: Vec<Vec<usize>> = p
            .nodes(mesh.network())
            .iter()
            .map(|&n| mesh.coords(n))
            .collect();
        assert_eq!(coords[1], vec![0, 1]);
        assert_eq!(coords[2], vec![0, 0]);
        assert_eq!(coords.last().unwrap(), &vec![3, 0]);
    }

    #[test]
    fn west_first_no_turns_into_west() {
        let mesh = Mesh::new(&[4, 4]);
        let table = west_first(&mesh).unwrap();
        for (_, p) in table.iter() {
            let coords: Vec<Vec<usize>> = p
                .nodes(mesh.network())
                .iter()
                .map(|&n| mesh.coords(n))
                .collect();
            let mut seen_non_west = false;
            for w in coords.windows(2) {
                let west = w[1][0] + 1 == w[0][0];
                if west {
                    assert!(!seen_non_west, "turn into west in {coords:?}");
                } else {
                    seen_non_west = true;
                }
            }
        }
    }

    #[test]
    fn both_variants_minimal_total() {
        let mesh = Mesh::new(&[3, 3]);
        for table in [west_first(&mesh).unwrap(), negative_first(&mesh).unwrap()] {
            let r = properties::analyze(mesh.network(), &table);
            assert!(r.total && r.minimal && r.node_simple);
        }
    }

    #[test]
    fn negative_first_ordering() {
        let mesh = Mesh::new(&[3, 3, 3]);
        let table = negative_first(&mesh).unwrap();
        // (2,0,1) -> (0,2,0): negatives (x: 2->0, z: 1->0) first, then y up.
        let p = table
            .path(mesh.node(&[2, 0, 1]), mesh.node(&[0, 2, 0]))
            .unwrap();
        let coords: Vec<Vec<usize>> = p
            .nodes(mesh.network())
            .iter()
            .map(|&n| mesh.coords(n))
            .collect();
        // First three hops are negative moves.
        assert_eq!(coords[1], vec![1, 0, 1]);
        assert_eq!(coords[2], vec![0, 0, 1]);
        assert_eq!(coords[3], vec![0, 0, 0]);
        // Then positive y moves.
        assert_eq!(coords[4], vec![0, 1, 0]);
        assert_eq!(coords[5], vec![0, 2, 0]);
    }

    #[test]
    fn west_first_compiles_to_function() {
        let mesh = Mesh::new(&[3, 3]);
        assert!(west_first(&mesh).unwrap().compile(mesh.network()).is_ok());
        assert!(negative_first(&mesh)
            .unwrap()
            .compile(mesh.network())
            .is_ok());
    }
}
