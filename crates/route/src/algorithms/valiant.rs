//! Valiant-style two-phase routing on a two-lane mesh.
//!
//! Valiant's scheme routes every message through a random intermediate
//! node to spread load. Our oblivious (derandomized) variant fixes the
//! intermediate per *destination* with a deterministic hash — per-pair
//! intermediates would make the algorithm source-routed rather than a
//! `R : C × N → C` function, the class the paper studies. Phase 1
//! (src → intermediate) runs dimension order on VC lane 1, phase 2
//! (intermediate → dst) on lane 0. The lane switch makes the
//! dependency graph acyclic (each lane's DOR subgraph is acyclic and
//! cross-lane edges only go 1 → 0), so the algorithm is deadlock-free
//! while being deliberately *nonminimal* and *non-coherent* — a useful
//! contrast point for the paper's property taxonomy.

use wormnet::topology::Mesh;
use wormnet::{ChannelId, NodeId};

use crate::error::RouteError;
use crate::path::Path;
use crate::table::TableRouting;

/// Deterministic intermediate node per destination. Depending only on
/// the destination keeps the algorithm in the `R : C × N → C` class
/// (the next hop is a function of position and destination).
fn intermediate(mesh: &Mesh, dst: NodeId) -> NodeId {
    let n = mesh.network().node_count();
    let mut h = (dst.index() as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
    h ^= h >> 31;
    NodeId::from_index((h as usize) % n)
}

/// Dimension-order hops from `from` to `to` on a VC lane, appended as
/// channels.
fn dor_hops(
    mesh: &Mesh,
    from: NodeId,
    to: NodeId,
    lane: u8,
    out: &mut Vec<ChannelId>,
) -> Result<(), RouteError> {
    let net = mesh.network();
    let mut cur = mesh.coords(from);
    let goal = mesh.coords(to);
    for dim in 0..mesh.dims().len() {
        while cur[dim] != goal[dim] {
            let at = mesh.node(&cur);
            if cur[dim] < goal[dim] {
                cur[dim] += 1;
            } else {
                cur[dim] -= 1;
            }
            let next = mesh.node(&cur);
            let c = net
                .find_channel_vc(at, next, lane)
                .ok_or(RouteError::MissingChannel { from: at, to: next })?;
            out.push(c);
        }
    }
    Ok(())
}

/// Build the two-phase Valiant table on a mesh with ≥ 2 VC lanes.
///
/// Degenerate pairs whose intermediate coincides with an endpoint
/// collapse to single-phase dimension-order on the corresponding lane.
pub fn valiant_mesh(mesh: &Mesh) -> Result<TableRouting, RouteError> {
    assert!(mesh.vcs() >= 2, "Valiant routing needs two VC lanes");
    TableRouting::from_paths_with(mesh.network(), |net, src, dst| {
        let mid = intermediate(mesh, dst);
        let mut chans = Vec::new();
        let r = dor_hops(mesh, src, mid, 1, &mut chans)
            .and_then(|()| dor_hops(mesh, mid, dst, 0, &mut chans))
            .and_then(|()| Path::from_channels(net, chans));
        Some(r)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn routes_through_fixed_intermediates() {
        let mesh = Mesh::with_vcs(&[3, 3], 2);
        let table = valiant_mesh(&mesh).unwrap();
        assert!(table.is_total(mesh.network()));
        // Deterministic: rebuilding gives the identical table.
        let again = valiant_mesh(&mesh).unwrap();
        assert_eq!(table, again);
    }

    #[test]
    fn phase_lanes_are_ordered() {
        // Along every path, once lane 0 appears, lane 1 never returns.
        let mesh = Mesh::with_vcs(&[3, 3], 2);
        let table = valiant_mesh(&mesh).unwrap();
        let net = mesh.network();
        for (_, path) in table.iter() {
            let lanes: Vec<u8> = path
                .channels()
                .iter()
                .map(|&c| net.channel(c).vc())
                .collect();
            let mut seen_zero = false;
            for l in lanes {
                if l == 0 {
                    seen_zero = true;
                } else {
                    assert!(!seen_zero, "lane 1 after lane 0");
                }
            }
        }
    }

    #[test]
    fn is_nonminimal_and_not_coherent() {
        let mesh = Mesh::with_vcs(&[4, 4], 2);
        let table = valiant_mesh(&mesh).unwrap();
        let report = properties::analyze(mesh.network(), &table);
        assert!(report.total);
        assert!(!report.minimal, "detours through intermediates");
        assert!(!report.coherent);
    }

    #[test]
    fn compiles_to_function() {
        // Phase is encoded in the lane of the input channel, so the
        // table is a valid R : C x N -> C function.
        let mesh = Mesh::with_vcs(&[3, 3], 2);
        let table = valiant_mesh(&mesh).unwrap();
        assert!(table.compile(mesh.network()).is_ok());
    }

    #[test]
    #[should_panic(expected = "two VC lanes")]
    fn needs_two_lanes() {
        let mesh = Mesh::new(&[3, 3]);
        let _ = valiant_mesh(&mesh);
    }
}
