//! Dimension-order routing on meshes (XY routing and its n-dimensional
//! generalization).
//!
//! Dimension-order routing corrects coordinates one dimension at a
//! time, in increasing dimension index. It is minimal, coherent, and
//! has an acyclic channel dependency graph — the textbook Dally–Seitz
//! deadlock-free oblivious algorithm, used here as the "conventional"
//! end of the spectrum opposite the paper's cyclic construction.

use wormnet::topology::Mesh;

use crate::error::RouteError;
use crate::table::TableRouting;

/// Dimension-order routing for an n-dimensional mesh.
pub fn dimension_order(mesh: &Mesh) -> Result<TableRouting, RouteError> {
    let dims = mesh.dims().to_vec();
    TableRouting::from_node_paths(mesh.network(), |s, d| {
        let mut cur = mesh.coords(s);
        let goal = mesh.coords(d);
        let mut walk = vec![s];
        for dim in 0..dims.len() {
            while cur[dim] != goal[dim] {
                if cur[dim] < goal[dim] {
                    cur[dim] += 1;
                } else {
                    cur[dim] -= 1;
                }
                walk.push(mesh.node(&cur));
            }
        }
        Some(walk)
    })
}

/// XY routing on a 2-dimensional mesh: route along X to the correct
/// column, then along Y. A thin wrapper over [`dimension_order`] that
/// asserts the mesh is 2-D, kept because the literature (and the turn
/// model discussion) refers to it by name.
pub fn xy_mesh(mesh: &Mesh) -> Result<TableRouting, RouteError> {
    assert_eq!(mesh.dims().len(), 2, "XY routing requires a 2-D mesh");
    dimension_order(mesh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn xy_routes_x_then_y() {
        let mesh = Mesh::new(&[3, 3]);
        let table = xy_mesh(&mesh).unwrap();
        let s = mesh.node(&[0, 0]);
        let d = mesh.node(&[2, 2]);
        let walk = table.path(s, d).unwrap().nodes(mesh.network());
        let coords: Vec<Vec<usize>> = walk.iter().map(|&n| mesh.coords(n)).collect();
        assert_eq!(
            coords,
            vec![vec![0, 0], vec![1, 0], vec![2, 0], vec![2, 1], vec![2, 2]]
        );
    }

    #[test]
    fn dor_is_total_minimal_coherent() {
        let mesh = Mesh::new(&[3, 2]);
        let table = dimension_order(&mesh).unwrap();
        let report = properties::analyze(mesh.network(), &table);
        assert!(report.total);
        assert!(report.minimal);
        assert!(report.coherent);
    }

    #[test]
    fn dor_three_dims() {
        let mesh = Mesh::new(&[2, 2, 2]);
        let table = dimension_order(&mesh).unwrap();
        let s = mesh.node(&[0, 0, 0]);
        let d = mesh.node(&[1, 1, 1]);
        assert_eq!(table.path(s, d).unwrap().len(), 3);
        assert!(properties::is_minimal(mesh.network(), &table));
        assert!(properties::is_coherent(mesh.network(), &table));
    }

    #[test]
    fn dor_compiles_to_function() {
        // Dimension-order is realizable as R : C x N -> C.
        let mesh = Mesh::new(&[3, 3]);
        let table = dimension_order(&mesh).unwrap();
        assert!(table.compile(mesh.network()).is_ok());
    }

    #[test]
    fn negative_direction_paths() {
        let mesh = Mesh::new(&[3, 3]);
        let table = dimension_order(&mesh).unwrap();
        let s = mesh.node(&[2, 2]);
        let d = mesh.node(&[0, 1]);
        let p = table.path(s, d).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.nodes(mesh.network())[1], mesh.node(&[1, 2]));
    }

    #[test]
    #[should_panic(expected = "2-D mesh")]
    fn xy_rejects_other_dims() {
        let mesh = Mesh::new(&[2, 2, 2]);
        let _ = xy_mesh(&mesh);
    }
}
