//! Concrete oblivious routing algorithms.
//!
//! * Deadlock-free baselines with acyclic channel dependency graphs:
//!   [`dimension_order`] (XY and its n-dimensional generalization),
//!   [`ecube`], [`dateline_ring`], [`dateline_torus`],
//!   [`west_first`], [`negative_first`], and two-phase
//!   [`valiant_mesh`] (nonminimal, non-coherent, yet Dally-Seitz
//!   safe).
//! * Deliberately deadlock-prone algorithms used to validate the
//!   analysis pipeline: [`clockwise_ring`].
//! * Generators for corpus experiments: [`shortest_path_table`],
//!   [`random_table`].

mod dateline;
mod dor;
mod ecube;
mod generators;
mod ringalg;
mod turn;
mod updown;
mod valiant;

pub use dateline::{dateline_ring, dateline_torus};
pub use dor::{dimension_order, xy_mesh};
pub use ecube::ecube;
pub use generators::{random_table, random_tree_routing, shortest_path_table};
pub use ringalg::clockwise_ring;
pub use turn::{negative_first, west_first};
pub use updown::updown_tree;
pub use valiant::valiant_mesh;
