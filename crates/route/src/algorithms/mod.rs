//! Concrete oblivious routing algorithms.
//!
//! * Deadlock-free baselines with acyclic channel dependency graphs:
//!   [`dimension_order`] (XY and its n-dimensional generalization),
//!   [`ecube`], [`dateline_ring`], [`dateline_torus`],
//!   [`west_first`], [`negative_first`], and two-phase
//!   [`valiant_mesh`] (nonminimal, non-coherent, yet Dally-Seitz
//!   safe).
//! * Cluster-scale engines for the fabrics in
//!   `wormnet::topology`: VC-ordered [`dragonfly_minimal`] and
//!   [`dragonfly_valiant`], up*/down* [`fattree_updown`], and the
//!   VC-free [`fullmesh_direct`] / [`fullmesh_vcfree`] pair.
//! * Deliberately deadlock-prone algorithms used to validate the
//!   analysis pipeline: [`clockwise_ring`] and
//!   [`fullmesh_ring_detour`].
//! * Generators for corpus experiments: [`shortest_path_table`],
//!   [`random_table`].

mod dateline;
mod dor;
mod dragonfly;
mod ecube;
mod fattree;
mod fullmesh;
mod generators;
mod ringalg;
mod turn;
mod updown;
mod valiant;

pub use dateline::{dateline_ring, dateline_torus};
pub use dor::{dimension_order, xy_mesh};
pub use dragonfly::{dragonfly_minimal, dragonfly_valiant};
pub use ecube::ecube;
pub use fattree::fattree_updown;
pub use fullmesh::{fullmesh_direct, fullmesh_ring_detour, fullmesh_vcfree};
pub use generators::{random_table, random_tree_routing, shortest_path_table};
pub use ringalg::clockwise_ring;
pub use turn::{negative_first, west_first};
pub use updown::updown_tree;
pub use valiant::valiant_mesh;
