//! E-cube routing on binary hypercubes.
//!
//! E-cube corrects differing address bits from least significant to
//! most significant. Like dimension-order on meshes it is minimal,
//! coherent, and deadlock-free with an acyclic dependency graph.

use wormnet::topology::Hypercube;

use crate::error::RouteError;
use crate::table::TableRouting;

/// E-cube (bit-fixing) routing for a hypercube.
pub fn ecube(cube: &Hypercube) -> Result<TableRouting, RouteError> {
    TableRouting::from_node_paths(cube.network(), |s, d| {
        let mut cur = cube.address(s);
        let goal = cube.address(d);
        let mut walk = vec![s];
        for bit in 0..cube.dim() {
            let mask = 1usize << bit;
            if (cur ^ goal) & mask != 0 {
                cur ^= mask;
                walk.push(cube.node(cur));
            }
        }
        debug_assert_eq!(cur, goal);
        Some(walk)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn fixes_bits_low_to_high() {
        let cube = Hypercube::new(3);
        let table = ecube(&cube).unwrap();
        let s = cube.node(0b000);
        let d = cube.node(0b101);
        let walk = table.path(s, d).unwrap().nodes(cube.network());
        let addrs: Vec<usize> = walk.iter().map(|&n| cube.address(n)).collect();
        assert_eq!(addrs, vec![0b000, 0b001, 0b101]);
    }

    #[test]
    fn ecube_is_total_minimal_coherent() {
        let cube = Hypercube::new(3);
        let table = ecube(&cube).unwrap();
        let report = properties::analyze(cube.network(), &table);
        assert!(report.total && report.minimal && report.coherent);
    }

    #[test]
    fn path_lengths_equal_hamming() {
        let cube = Hypercube::new(4);
        let table = ecube(&cube).unwrap();
        for (&(s, d), p) in table.iter() {
            assert_eq!(p.len(), cube.hamming(s, d));
        }
    }

    #[test]
    fn compiles_to_function() {
        let cube = Hypercube::new(3);
        assert!(ecube(&cube).unwrap().compile(cube.network()).is_ok());
    }
}
