//! Ring routing without virtual channels — the canonical
//! deadlock-prone oblivious algorithm.

use wormnet::{Network, NodeId};

use crate::error::RouteError;
use crate::table::TableRouting;

/// Clockwise routing on a unidirectional ring (no virtual channels):
/// every message follows the ring to its destination.
///
/// This algorithm is suffix-closed and coherent, and its channel
/// dependency graph is the full ring cycle. By the paper's
/// Corollary 2 the cycle cannot be unreachable, so the algorithm
/// *must* deadlock — the experiments confirm the search engine finds
/// the deadlock, validating the pipeline against a known-bad baseline.
pub fn clockwise_ring(net: &Network, nodes: &[NodeId]) -> Result<TableRouting, RouteError> {
    let n = nodes.len();
    TableRouting::from_node_paths(net, |s, d| {
        let si = nodes.iter().position(|&x| x == s)?;
        let mut walk = vec![s];
        let mut i = si;
        while nodes[i] != d {
            i = (i + 1) % n;
            walk.push(nodes[i]);
        }
        Some(walk)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use wormnet::topology::ring_unidirectional;

    #[test]
    fn routes_clockwise() {
        let (net, nodes) = ring_unidirectional(5);
        let table = clockwise_ring(&net, &nodes).unwrap();
        assert_eq!(table.path(nodes[3], nodes[1]).unwrap().len(), 3);
        assert!(table.is_total(&net));
    }

    #[test]
    fn is_coherent_and_functional() {
        let (net, nodes) = ring_unidirectional(4);
        let table = clockwise_ring(&net, &nodes).unwrap();
        assert!(properties::is_coherent(&net, &table));
        assert!(table.compile(&net).is_ok());
    }
}
