//! Dateline routing on rings and tori with two virtual channels
//! (Dally & Seitz's classic construction).
//!
//! All traffic in a ring travels in one direction; a message starts on
//! the high VC lane (1) and switches to the low lane (0) when it
//! crosses the *dateline* — the wraparound link. The switch breaks the
//! single dependency cycle of the ring, yielding an acyclic channel
//! dependency graph (asserted in `wormcdg`'s tests).

use wormnet::topology::Torus;
use wormnet::{ChannelId, Network, NodeId};

use crate::error::RouteError;
use crate::path::Path;
use crate::table::TableRouting;

/// Dateline routing on a unidirectional ring built by
/// [`wormnet::topology::ring_with_vcs`] with at least two lanes.
/// `nodes` must be the ring-ordered node list that builder returned.
pub fn dateline_ring(net: &Network, nodes: &[NodeId]) -> Result<TableRouting, RouteError> {
    let n = nodes.len();
    TableRouting::from_paths_with(net, |net, s, d| {
        let si = nodes.iter().position(|&x| x == s)?;
        let di = nodes.iter().position(|&x| x == d)?;
        let mut chans: Vec<ChannelId> = Vec::new();
        let mut i = si;
        let mut crossed = false;
        while i != di {
            let j = (i + 1) % n;
            // The wraparound (dateline) hop is n-1 -> 0.
            if i == n - 1 {
                crossed = true;
            }
            let lane = if crossed { 0 } else { 1 };
            let Some(c) = net.find_channel_vc(nodes[i], nodes[j], lane) else {
                return Some(Err(RouteError::MissingChannel {
                    from: nodes[i],
                    to: nodes[j],
                }));
            };
            chans.push(c);
            i = j;
        }
        Some(Path::from_channels(net, chans))
    })
}

/// Dateline + dimension-order routing on a torus with two VC lanes.
///
/// Dimensions are corrected in increasing order; within a dimension
/// the message takes the minimal ring direction (ties toward +). Each
/// dimension/direction has its own dateline at the wrap link.
pub fn dateline_torus(torus: &Torus) -> Result<TableRouting, RouteError> {
    assert!(torus.vcs() >= 2, "dateline routing needs two VC lanes");
    let dims = torus.dims().to_vec();
    let net = torus.network();
    TableRouting::from_paths_with(net, |net, s, d| {
        let mut cur = torus.coords(s);
        let goal = torus.coords(d);
        let mut chans: Vec<ChannelId> = Vec::new();
        for (dim, &k) in dims.iter().enumerate() {
            if cur[dim] == goal[dim] {
                continue;
            }
            let forward = (goal[dim] + k - cur[dim]) % k; // hops in + direction
            let go_positive = forward <= k - forward; // ties toward +
            let mut crossed = false;
            while cur[dim] != goal[dim] {
                let from = torus.node(&cur);
                let next_coord = if go_positive {
                    (cur[dim] + 1) % k
                } else {
                    (cur[dim] + k - 1) % k
                };
                // Dateline: the wrap hop in either direction.
                if (go_positive && cur[dim] == k - 1) || (!go_positive && cur[dim] == 0) {
                    crossed = true;
                }
                cur[dim] = next_coord;
                let to = torus.node(&cur);
                let lane = if crossed { 0 } else { 1 };
                let Some(c) = net.find_channel_vc(from, to, lane) else {
                    return Some(Err(RouteError::MissingChannel { from, to }));
                };
                chans.push(c);
            }
        }
        Some(Path::from_channels(net, chans))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use wormnet::topology::ring_with_vcs;

    #[test]
    fn ring_messages_switch_lane_at_dateline() {
        let (net, nodes) = ring_with_vcs(5, 2);
        let table = dateline_ring(&net, &nodes).unwrap();
        // 3 -> 1 crosses the wrap link 4 -> 0.
        let p = table.path(nodes[3], nodes[1]).unwrap();
        let lanes: Vec<u8> = p.channels().iter().map(|&c| net.channel(c).vc()).collect();
        assert_eq!(lanes, vec![1, 0, 0]);
        // 0 -> 4 never crosses: all lane 1.
        let p = table.path(nodes[0], nodes[4]).unwrap();
        assert!(p.channels().iter().all(|&c| net.channel(c).vc() == 1));
    }

    #[test]
    fn ring_table_is_total_and_functional() {
        let (net, nodes) = ring_with_vcs(6, 2);
        let table = dateline_ring(&net, &nodes).unwrap();
        assert!(table.is_total(&net));
        assert!(table.compile(&net).is_ok());
    }

    #[test]
    fn ring_is_not_suffix_closed() {
        // A message that has crossed the dateline continues on lane 0,
        // but a message *starting* past the dateline uses lane 1 — the
        // lane depends on the input channel, so dateline routing is a
        // genuine R : C x N -> C algorithm that is NOT suffix-closed
        // (and hence not coherent). This is exactly the class the
        // paper's Corollary 2 does not cover.
        let (net, nodes) = ring_with_vcs(5, 2);
        let table = dateline_ring(&net, &nodes).unwrap();
        assert!(!properties::is_suffix_closed(&net, &table));
        assert!(!properties::is_coherent(&net, &table));
        // But every path is node-simple and prefix behaviour is moot;
        // the function form still compiles.
        assert!(properties::never_revisits_nodes(&net, &table));
    }

    #[test]
    fn torus_routes_minimally() {
        let t = Torus::new(&[4, 4], 2);
        let table = dateline_torus(&t).unwrap();
        assert!(table.is_total(t.network()));
        for (&(s, d), p) in table.iter() {
            assert_eq!(p.len(), t.ring_distance(s, d), "{s} -> {d}");
        }
    }

    #[test]
    fn torus_wrap_hop_switches_lane() {
        let t = Torus::new(&[4, 3], 2);
        let table = dateline_torus(&t).unwrap();
        // (3,0) -> (0,0): single + hop across the wrap: lane 0.
        let p = table.path(t.node(&[3, 0]), t.node(&[0, 0])).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(t.network().channel(p.channels()[0]).vc(), 0);
        // (1,0) -> (2,0): interior hop: lane 1.
        let p = table.path(t.node(&[1, 0]), t.node(&[2, 0])).unwrap();
        assert_eq!(t.network().channel(p.channels()[0]).vc(), 1);
    }

    #[test]
    fn torus_is_functional() {
        let t = Torus::new(&[3, 3], 2);
        let table = dateline_torus(&t).unwrap();
        assert!(table.compile(t.network()).is_ok());
    }

    #[test]
    #[should_panic(expected = "two VC lanes")]
    fn torus_needs_two_lanes() {
        let t = Torus::new(&[3, 3], 1);
        let _ = dateline_torus(&t);
    }
}
