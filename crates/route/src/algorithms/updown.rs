//! Up*/down* routing on trees (Autonet-style).
//!
//! Every path climbs from the source to the lowest common ancestor
//! ("up" phase) and then descends to the destination ("down" phase).
//! Since no path ever takes an up-channel after a down-channel, the
//! dependency graph is acyclic (number up-channels by decreasing
//! depth, then down-channels by increasing depth) — the classic
//! deadlock-freedom argument for irregular-network routing, here on
//! complete k-ary trees. The algorithm is minimal on a tree (the
//! tree path is the only simple path) and coherent.

use wormnet::topology::KaryTree;

use crate::error::RouteError;
use crate::table::TableRouting;

/// Build the up*/down* table for a complete k-ary tree.
pub fn updown_tree(tree: &KaryTree) -> Result<TableRouting, RouteError> {
    TableRouting::from_node_paths(tree.network(), |s, d| {
        let lca = tree.lca(s, d);
        // Up phase: s .. lca (exclusive of lca handled below).
        let mut walk = vec![s];
        let mut cur = s;
        while cur != lca {
            cur = tree.parent(cur).expect("lca is an ancestor");
            walk.push(cur);
        }
        // Down phase: lca .. d, via d's ancestor chain reversed.
        let mut down = vec![d];
        let mut cur = d;
        while cur != lca {
            cur = tree.parent(cur).expect("lca is an ancestor");
            down.push(cur);
        }
        down.pop(); // drop the lca duplicate
        walk.extend(down.into_iter().rev());
        Some(walk)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use wormnet::NodeId;

    #[test]
    fn routes_via_lca() {
        let tree = KaryTree::new(2, 2);
        let table = updown_tree(&tree).unwrap();
        // 3 -> 4: siblings under node 1: path 3 -> 1 -> 4.
        let p = table
            .path(NodeId::from_index(3), NodeId::from_index(4))
            .unwrap();
        assert_eq!(
            p.nodes(tree.network()),
            vec![
                NodeId::from_index(3),
                NodeId::from_index(1),
                NodeId::from_index(4)
            ]
        );
        // 3 -> 6: crosses the root.
        let p = table
            .path(NodeId::from_index(3), NodeId::from_index(6))
            .unwrap();
        assert_eq!(p.len(), 4);
        assert!(p.nodes(tree.network()).contains(&NodeId::from_index(0)));
    }

    #[test]
    fn ancestor_descendant_pairs_go_straight() {
        let tree = KaryTree::new(2, 2);
        let table = updown_tree(&tree).unwrap();
        let p = table
            .path(NodeId::from_index(0), NodeId::from_index(5))
            .unwrap();
        assert_eq!(p.len(), 2); // 0 -> 2 -> 5
        let p = table
            .path(NodeId::from_index(6), NodeId::from_index(0))
            .unwrap();
        assert_eq!(p.len(), 2); // 6 -> 2 -> 0
    }

    #[test]
    fn is_total_minimal_coherent_and_functional() {
        let tree = KaryTree::new(3, 2);
        let table = updown_tree(&tree).unwrap();
        let r = properties::analyze(tree.network(), &table);
        assert!(r.total && r.minimal && r.coherent && r.node_function);
        assert!(table.compile(tree.network()).is_ok());
    }
}
