//! Minimal and Valiant routing on dragonfly networks with the
//! VC-ordered lane discipline of InfiniBand-controller engines
//! (Maglione-Mathey et al., see PAPERS.md).
//!
//! Minimal dragonfly routing is local–global–local: at most one hop
//! inside the source group to the gateway router, the global link
//! itself, and at most one hop inside the destination group. Deadlock
//! freedom comes entirely from lane ordering — each successive hop
//! class uses a strictly higher VC lane (local 0, global 1, local 2),
//! so the channel dependency graph is layered by lane and can close no
//! cycle. This is the certificate wormlint's W208 recognises. Valiant
//! routing detours through a deterministic intermediate group with
//! five hop classes on lanes 0..5.
//!
//! Both engines read the lane lists off the [`Dragonfly`] builder, so
//! running them on a single-lane fabric
//! (`Dragonfly::with_lanes(g, a, &[0], &[0])`) yields the classic
//! deadlockable configuration used as a negative control in the lint
//! corpus.

use wormnet::topology::Dragonfly;
use wormnet::{ChannelId, Network, NodeId};

use crate::error::RouteError;
use crate::path::Path;
use crate::table::TableRouting;

/// Append the `from -> to` channel on `lane` to the hop list.
fn hop(
    net: &Network,
    chans: &mut Vec<ChannelId>,
    from: NodeId,
    to: NodeId,
    lane: u8,
) -> Result<(), RouteError> {
    let c = net
        .find_channel_vc(from, to, lane)
        .ok_or(RouteError::MissingChannel { from, to })?;
    chans.push(c);
    Ok(())
}

/// The `i`-th lane of `lanes`, clamped to the last entry — single-lane
/// fabrics reuse lane 0 for every hop class (and lose the deadlock
/// freedom that comes with the ordering).
fn lane(lanes: &[u8], i: usize) -> u8 {
    lanes[i.min(lanes.len() - 1)]
}

/// Minimal (local–global–local) dragonfly routing.
///
/// Intra-group pairs take the direct local channel on the first local
/// lane. Inter-group pairs climb to the source group's gateway for the
/// destination group, cross the global link, and take one local hop to
/// the destination, with hop classes on `local_lanes[0]`,
/// `global_lanes[0]`, `local_lanes[1]`.
///
/// With `routers_per_group >= groups - 1` every gateway inside a group
/// is distinct, the direct group-to-group link is the unique shortest
/// route, and the table is minimal in the hop-distance sense too.
pub fn dragonfly_minimal(df: &Dragonfly) -> Result<TableRouting, RouteError> {
    TableRouting::from_paths_with(df.network(), |net, s, d| {
        let (gs, _) = df.coords(s);
        let (gd, _) = df.coords(d);
        let mut chans = Vec::new();
        let r = (|| {
            if gs == gd {
                hop(net, &mut chans, s, d, lane(df.local_lanes(), 0))?;
            } else {
                let out = df.gateway(gs, gd);
                let inn = df.gateway(gd, gs);
                if s != out {
                    hop(net, &mut chans, s, out, lane(df.local_lanes(), 0))?;
                }
                hop(net, &mut chans, out, inn, lane(df.global_lanes(), 0))?;
                if inn != d {
                    hop(net, &mut chans, inn, d, lane(df.local_lanes(), 1))?;
                }
            }
            Path::from_channels(net, chans)
        })();
        Some(r)
    })
}

/// Valiant (local–global–local–global–local) dragonfly routing.
///
/// Inter-group pairs detour through a deterministic intermediate group
/// `(gs + gd) % groups` (skipping the endpoints), with the five hop
/// classes on lanes `local[0], global[0], local[1], global[1],
/// local[2]`. Intra-group pairs take the direct local channel.
///
/// # Panics
/// Panics when the dragonfly has fewer than three groups — there is no
/// group to detour through.
pub fn dragonfly_valiant(df: &Dragonfly) -> Result<TableRouting, RouteError> {
    assert!(
        df.groups() >= 3,
        "valiant routing needs a third group to detour through"
    );
    TableRouting::from_paths_with(df.network(), |net, s, d| {
        let (gs, _) = df.coords(s);
        let (gd, _) = df.coords(d);
        let mut chans = Vec::new();
        let r = (|| {
            if gs == gd {
                hop(net, &mut chans, s, d, lane(df.local_lanes(), 0))?;
                return Path::from_channels(net, chans);
            }
            let mut gm = (gs + gd) % df.groups();
            while gm == gs || gm == gd {
                gm = (gm + 1) % df.groups();
            }
            let waypoints = [
                df.gateway(gs, gm),
                df.gateway(gm, gs),
                df.gateway(gm, gd),
                df.gateway(gd, gm),
            ];
            let lanes = [
                lane(df.local_lanes(), 0),
                lane(df.global_lanes(), 0),
                lane(df.local_lanes(), 1),
                lane(df.global_lanes(), 1),
                lane(df.local_lanes(), 2),
            ];
            let walk = [s, waypoints[0], waypoints[1], waypoints[2], waypoints[3], d];
            for (i, w) in walk.windows(2).enumerate() {
                if w[0] != w[1] {
                    hop(net, &mut chans, w[0], w[1], lanes[i])?;
                }
            }
            Path::from_channels(net, chans)
        })();
        Some(r)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    /// The VC lanes of a routed path, in hop order.
    fn lanes_of(net: &Network, p: &Path) -> Vec<u8> {
        p.channels().iter().map(|&c| net.channel(c).vc()).collect()
    }

    #[test]
    fn minimal_is_total_functional_and_minimal() {
        let df = Dragonfly::new(5, 4);
        let table = dragonfly_minimal(&df).unwrap();
        assert!(table.is_total(df.network()));
        assert!(table.compile(df.network()).is_ok());
        // routers_per_group (4) >= groups - 1 (4): gateways distinct,
        // the direct route is the unique shortest one.
        assert!(properties::is_minimal(df.network(), &table));
    }

    #[test]
    fn minimal_lanes_strictly_increase() {
        let df = Dragonfly::new(5, 4);
        let net = df.network();
        let table = dragonfly_minimal(&df).unwrap();
        for (_, p) in table.iter() {
            let lanes = lanes_of(net, p);
            assert!(lanes.windows(2).all(|w| w[0] < w[1]), "{lanes:?}");
        }
    }

    #[test]
    fn minimal_path_shapes() {
        let df = Dragonfly::new(4, 3);
        let table = dragonfly_minimal(&df).unwrap();
        // Intra-group: one local hop.
        let p = table.path(df.node(1, 0), df.node(1, 2)).unwrap();
        assert_eq!(lanes_of(df.network(), p), vec![0]);
        // Inter-group from/to non-gateway routers: three hops 0,1,2.
        let (s, d) = (df.node(0, 2), df.node(2, 2));
        assert_ne!(df.gateway(0, 2), s);
        assert_ne!(df.gateway(2, 0), d);
        let p = table.path(s, d).unwrap();
        assert_eq!(lanes_of(df.network(), p), vec![0, 1, 2]);
        // Gateway-to-gateway: the bare global hop.
        let p = table.path(df.gateway(0, 1), df.gateway(1, 0)).unwrap();
        assert_eq!(lanes_of(df.network(), p), vec![1]);
    }

    #[test]
    fn valiant_detours_with_increasing_lanes() {
        let df = Dragonfly::new_valiant(4, 3);
        let net = df.network();
        let table = dragonfly_valiant(&df).unwrap();
        assert!(table.is_total(net));
        assert!(table.compile(net).is_ok());
        let mut saw_five_hops = false;
        for (&(s, d), p) in table.iter() {
            let lanes = lanes_of(net, p);
            assert!(lanes.windows(2).all(|w| w[0] < w[1]), "{s} -> {d}");
            saw_five_hops |= lanes == vec![0, 1, 2, 3, 4];
            // Inter-group paths cross exactly two global links.
            let (gs, _) = df.coords(s);
            let (gd, _) = df.coords(d);
            if gs != gd {
                assert_eq!(lanes.iter().filter(|l| *l % 2 == 1).count(), 2);
            }
        }
        assert!(saw_five_hops, "some pair exercises all five hop classes");
    }

    #[test]
    fn valiant_avoids_endpoint_groups() {
        let df = Dragonfly::new_valiant(5, 4);
        let table = dragonfly_valiant(&df).unwrap();
        let (s, d) = (df.node(1, 0), df.node(3, 1));
        let p = table.path(s, d).unwrap();
        let groups: Vec<usize> = p
            .nodes(df.network())
            .iter()
            .map(|&n| df.coords(n).0)
            .collect();
        let via: Vec<usize> = groups[1..groups.len() - 1]
            .iter()
            .copied()
            .filter(|&g| g != 1 && g != 3)
            .collect();
        assert!(!via.is_empty(), "a detour group appears on the path");
    }

    #[test]
    fn single_lane_fabric_routes_everything_on_lane_zero() {
        let df = Dragonfly::with_lanes(3, 2, &[0], &[0]);
        let net = df.network();
        let table = dragonfly_minimal(&df).unwrap();
        assert!(table.is_total(net));
        for (_, p) in table.iter() {
            assert!(lanes_of(net, p).iter().all(|&l| l == 0));
        }
    }

    #[test]
    #[should_panic(expected = "third group")]
    fn valiant_needs_three_groups() {
        let df = Dragonfly::new_valiant(2, 2);
        let _ = dragonfly_valiant(&df);
    }
}
