//! Routing-table generators for corpus experiments.
//!
//! The Section 5 validation experiments run the paper's theorems over
//! many algorithms; these generators provide the population: BFS
//! shortest-path tables (minimal) and random simple-path tables
//! (usually nonminimal and non-coherent).

use wormnet::graph::{bfs_path, Digraph};
use wormnet::{Network, NodeId};

use crate::error::RouteError;
use crate::table::TableRouting;

/// Adapter exposing a network's node graph to the BFS helpers.
struct NodeGraph<'a>(&'a Network);

impl Digraph for NodeGraph<'_> {
    fn vertex_count(&self) -> usize {
        self.0.node_count()
    }

    fn successors(&self, v: usize) -> Vec<usize> {
        let mut succ: Vec<usize> = self
            .0
            .out_channels(NodeId::from_index(v))
            .iter()
            .map(|&c| self.0.channel(c).dst().index())
            .collect();
        succ.sort_unstable();
        succ.dedup();
        succ
    }
}

/// Deterministic BFS shortest-path routing: minimal by construction.
/// Tie-breaking follows node-index order, which makes the table
/// suffix-closed on most regular topologies but not in general.
pub fn shortest_path_table(net: &Network) -> Result<TableRouting, RouteError> {
    TableRouting::from_node_paths(net, |s, d| {
        bfs_path(&NodeGraph(net), s.index(), d.index())
            .map(|walk| walk.into_iter().map(NodeId::from_index).collect())
    })
}

/// Random simple-path routing: for each pair, a uniformly random
/// node-simple path found by randomized DFS, with an optional detour
/// budget above the shortest distance. Useful for generating
/// non-coherent, nonminimal algorithms in bulk.
///
/// `max_detour` bounds path length to `shortest + max_detour` hops so
/// tables stay small; `rng` drives the choice.
pub fn random_table(
    net: &Network,
    rng: &mut impl rand::Rng,
    max_detour: usize,
) -> Result<TableRouting, RouteError> {
    use rand::seq::SliceRandom;
    let g = NodeGraph(net);
    TableRouting::from_node_paths(net, |s, d| {
        let shortest = bfs_path(&g, s.index(), d.index())?.len() - 1;
        let budget = shortest + max_detour;
        // Randomized DFS for a node-simple walk of length <= budget.
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(s.index(), vec![s.index()])];
        while let Some((v, walk)) = stack.pop() {
            if v == d.index() {
                return Some(walk.into_iter().map(NodeId::from_index).collect());
            }
            if walk.len() > budget {
                continue;
            }
            let mut succ = g.successors(v);
            succ.shuffle(rng);
            for w in succ {
                if !walk.contains(&w) {
                    let mut next = walk.clone();
                    next.push(w);
                    stack.push((w, next));
                }
            }
        }
        None
    })
}

/// Random destination-rooted in-tree routing: for each destination,
/// draw a random spanning in-tree (one next-hop channel per node) and
/// route every source along it.
///
/// Loop-free and total by construction, and a *node function*
/// (`R : N × N → C`, hence suffix-closed) — exactly Corollary 1's
/// class, for which the paper proves no unreachable cyclic
/// configuration can exist. Across destinations the trees disagree, so
/// the CDG is frequently cyclic, making this the natural corpus for
/// validating that corollary: every cyclic instance must be
/// deadlockable.
pub fn random_tree_routing(
    net: &Network,
    rng: &mut impl rand::Rng,
) -> Result<TableRouting, RouteError> {
    use rand::seq::SliceRandom;
    let n = net.node_count();
    // next[dst][node] = channel toward dst.
    let mut next: Vec<Vec<Option<wormnet::ChannelId>>> = vec![vec![None; n]; n];
    for dst in net.nodes() {
        let mut in_tree = vec![false; n];
        in_tree[dst.index()] = true;
        let mut remaining = n - 1;
        while remaining > 0 {
            // Channels from outside the tree into it (randomized Prim).
            let mut candidates: Vec<wormnet::ChannelId> = net
                .channels()
                .filter(|c| !in_tree[c.src().index()] && in_tree[c.dst().index()])
                .map(|c| c.id())
                .collect();
            candidates.shuffle(rng);
            let c = *candidates
                .first()
                .expect("strongly connected networks always extend the tree");
            let u = net.channel(c).src();
            next[dst.index()][u.index()] = Some(c);
            in_tree[u.index()] = true;
            remaining -= 1;
        }
    }
    TableRouting::from_paths_with(net, |net, s, d| {
        let mut chans = Vec::new();
        let mut cur = s;
        while cur != d {
            let c = next[d.index()][cur.index()].expect("spanning in-tree");
            chans.push(c);
            cur = net.channel(c).dst();
        }
        Some(crate::path::Path::from_channels(net, chans))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use rand::SeedableRng;
    use wormnet::topology::{complete, line, Mesh};

    #[test]
    fn shortest_paths_are_minimal() {
        let mesh = Mesh::new(&[3, 3]);
        let table = shortest_path_table(mesh.network()).unwrap();
        assert!(table.is_total(mesh.network()));
        assert!(properties::is_minimal(mesh.network(), &table));
    }

    #[test]
    fn shortest_paths_on_line_are_coherent() {
        let (net, _) = line(5);
        let table = shortest_path_table(&net).unwrap();
        assert!(properties::is_coherent(&net, &table));
    }

    #[test]
    fn random_tables_are_total_and_bounded() {
        let (net, _) = complete(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let table = random_table(&net, &mut rng, 2).unwrap();
        assert!(table.is_total(&net));
        for (&(s, d), p) in table.iter() {
            let shortest = net.hop_distance(s, d).unwrap();
            assert!(p.len() <= shortest + 2, "{s}->{d} too long");
            assert!(p.is_node_simple(&net));
        }
    }

    #[test]
    fn random_tables_vary_with_seed() {
        let mesh = Mesh::new(&[3, 3]);
        let t1 =
            random_table(mesh.network(), &mut rand::rngs::StdRng::seed_from_u64(1), 2).unwrap();
        let t2 =
            random_table(mesh.network(), &mut rand::rngs::StdRng::seed_from_u64(2), 2).unwrap();
        assert_ne!(t1, t2);
    }

    #[test]
    fn tree_routing_is_a_node_function() {
        let mesh = Mesh::new(&[3, 2]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let table = random_tree_routing(mesh.network(), &mut rng).unwrap();
        assert!(table.is_total(mesh.network()));
        assert!(properties::is_node_function(mesh.network(), &table));
        assert!(properties::is_suffix_closed(mesh.network(), &table));
        assert!(table.compile(mesh.network()).is_ok());
    }

    #[test]
    fn tree_routing_varies_with_seed() {
        let mesh = Mesh::new(&[3, 3]);
        let t1 =
            random_tree_routing(mesh.network(), &mut rand::rngs::StdRng::seed_from_u64(1)).unwrap();
        let t2 =
            random_tree_routing(mesh.network(), &mut rand::rngs::StdRng::seed_from_u64(2)).unwrap();
        assert_ne!(t1, t2);
    }

    #[test]
    fn zero_detour_random_tables_are_minimal() {
        let mesh = Mesh::new(&[3, 2]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let table = random_table(mesh.network(), &mut rng, 0).unwrap();
        assert!(properties::is_minimal(mesh.network(), &table));
    }
}
