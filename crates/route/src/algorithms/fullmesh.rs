//! Routing engines for dense full meshes (one channel each way
//! between every node pair, built by [`wormnet::topology::complete`]).
//!
//! * [`fullmesh_direct`] — every pair takes its direct channel; the
//!   channel dependency graph has no edges at all.
//! * [`fullmesh_vcfree`] — a VC-free scheme in the spirit of Cano et
//!   al. (HOTI 2025, see PAPERS.md): most pairs go direct, but a
//!   deterministic subset detours through an intermediate node whose
//!   index is *below both endpoints*. Every two-hop path therefore
//!   descends then ascends in node index, so the dependency graph only
//!   ever points from descending channels to ascending ones and can
//!   close no cycle — deadlock freedom with zero virtual channels,
//!   which is the certificate wormlint's W209 recognises.
//! * [`fullmesh_ring_detour`] — a deliberately deadlockable negative
//!   control: pairs two steps apart (mod n) detour through the node
//!   between them, threading a single n-cycle of dependencies through
//!   the mesh's "+1" channels.

use wormnet::{Network, NodeId};

use crate::error::RouteError;
use crate::table::TableRouting;

/// Direct routing: every ordered pair uses its one-hop channel.
pub fn fullmesh_direct(net: &Network) -> Result<TableRouting, RouteError> {
    TableRouting::from_node_paths(net, |s, d| Some(vec![s, d]))
}

/// VC-free full-mesh routing with index-descending detours.
///
/// A pair `(s, d)` goes direct when `s + d` is even or when either
/// endpoint is node 0; otherwise it detours through
/// `m = (7s + 13d) mod min(s, d)`, which is strictly below both
/// endpoints. The detour set is arbitrary (it stands in for whatever
/// traffic engineering motivates non-direct routes); the deadlock
/// argument only needs `m < min(s, d)`.
pub fn fullmesh_vcfree(net: &Network, nodes: &[NodeId]) -> Result<TableRouting, RouteError> {
    let index_of = position_map(net, nodes);
    TableRouting::from_node_paths(net, |s, d| {
        let (si, di) = (index_of[s.index()]?, index_of[d.index()]?);
        let low = si.min(di);
        if (si + di) % 2 == 0 || low == 0 {
            return Some(vec![s, d]);
        }
        let m = (7 * si + 13 * di) % low;
        Some(vec![s, nodes[m], d])
    })
}

/// Deadlockable full-mesh routing: `(s, d)` with `d = s + 2 (mod n)`
/// detours through `s + 1 (mod n)`; every other pair goes direct.
///
/// The detours chain the mesh's `i -> i+1` channels into one cyclic
/// dependency ring. The engine is a node function
/// (`R : N x N -> C`), so by the paper's Corollary 1 that cycle is a
/// *reachable* deadlock, not a false positive.
pub fn fullmesh_ring_detour(net: &Network, nodes: &[NodeId]) -> Result<TableRouting, RouteError> {
    let n = nodes.len();
    let index_of = position_map(net, nodes);
    TableRouting::from_node_paths(net, |s, d| {
        let (si, di) = (index_of[s.index()]?, index_of[d.index()]?);
        if di == (si + 2) % n {
            Some(vec![s, nodes[(si + 1) % n], d])
        } else {
            Some(vec![s, d])
        }
    })
}

/// Map node ids to their position in `nodes` (None for nodes outside
/// the slice, which the engines leave unrouted).
fn position_map(net: &Network, nodes: &[NodeId]) -> Vec<Option<usize>> {
    let mut map = vec![None; net.node_count()];
    for (i, &n) in nodes.iter().enumerate() {
        map[n.index()] = Some(i);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use wormnet::topology::complete;

    #[test]
    fn direct_routing_is_total_minimal_and_coherent() {
        let (net, _) = complete(6);
        let table = fullmesh_direct(&net).unwrap();
        let r = properties::analyze(&net, &table);
        assert!(r.total && r.minimal && r.coherent && r.node_function);
        assert!(table.compile(&net).is_ok());
    }

    #[test]
    fn vcfree_detours_descend_then_ascend() {
        let (net, nodes) = complete(9);
        let table = fullmesh_vcfree(&net, &nodes).unwrap();
        assert!(table.is_total(&net));
        assert!(table.compile(&net).is_ok());
        let mut detours = 0;
        for (&(s, d), p) in table.iter() {
            let idx: Vec<usize> = p.nodes(&net).iter().map(|n| n.index()).collect();
            match idx.as_slice() {
                [_, _] => {}
                [a, m, b] => {
                    detours += 1;
                    assert!(m < a && m < b, "{s} -> {d}: {idx:?}");
                }
                other => panic!("unexpected path {other:?}"),
            }
        }
        assert!(detours > 0, "the odd-sum pairs really detour");
    }

    #[test]
    fn vcfree_detour_rule_matches_the_spec() {
        let (net, nodes) = complete(8);
        let table = fullmesh_vcfree(&net, &nodes).unwrap();
        // 3 -> 4: odd sum, min 3 => via (21 + 52) % 3 = 1.
        let p = table.path(nodes[3], nodes[4]).unwrap();
        assert_eq!(p.nodes(&net), vec![nodes[3], nodes[1], nodes[4]]);
        // 2 -> 4: even sum => direct.
        assert_eq!(table.path(nodes[2], nodes[4]).unwrap().len(), 1);
        // 0 -> 5: odd sum but endpoint 0 => direct.
        assert_eq!(table.path(nodes[0], nodes[5]).unwrap().len(), 1);
    }

    #[test]
    fn ring_detour_is_a_node_function() {
        let (net, nodes) = complete(7);
        let table = fullmesh_ring_detour(&net, &nodes).unwrap();
        assert!(table.is_total(&net));
        assert!(properties::is_node_function(&net, &table));
        // 2 -> 4 detours through 3; 2 -> 5 goes direct.
        let p = table.path(nodes[2], nodes[4]).unwrap();
        assert_eq!(p.nodes(&net), vec![nodes[2], nodes[3], nodes[4]]);
        assert_eq!(table.path(nodes[2], nodes[5]).unwrap().len(), 1);
    }
}
