//! Up*/down* routing on k-ary fat-trees.
//!
//! Routes exist between *edge switches only* — hosts hang off edge
//! switches and add nothing to the deadlock analysis, and cores and
//! aggregation switches originate no traffic, so the table is
//! deliberately partial (wormlint reports that as its usual W003
//! summary). Every path climbs from the source edge switch toward the
//! cores and then descends to the destination: because the
//! [`FatTree`] builder lays tiers out core-first, node indices
//! strictly *decrease* on the up phase and strictly *increase* on the
//! down phase. No path ever takes an up-channel after a down-channel,
//! so numbering up-channels before down-channels orders the channel
//! dependency graph acyclically — the certificate wormlint's W209
//! recognises, with no virtual channels spent.
//!
//! The engine is deterministic and a node function: the aggregation
//! switch and core are chosen by simple modular formulas over the
//! endpoint coordinates, which also spreads routes across every
//! physical link of the fabric.

use wormnet::topology::{FatTree, FatTreeTier};

use crate::error::RouteError;
use crate::table::TableRouting;

/// Build the up*/down* table between all ordered pairs of distinct
/// edge switches of a k-ary fat-tree.
///
/// A pair of edge switches `(p, e) -> (p', e')` climbs to aggregation
/// switch `a = (e + e') mod k/2`; inter-pod pairs continue to core
/// `a * k/2 + ((p + p') mod k/2)` and descend into pod `p'` through
/// its aggregation switch `a` (the only one that core reaches). The
/// choices stay a node function — on the up hops `e`, `p` and `a` are
/// readable off the switch the message sits on, and the down hops are
/// forced — while spreading routes across *every* physical link.
pub fn fattree_updown(ft: &FatTree) -> Result<TableRouting, RouteError> {
    let half = ft.half();
    TableRouting::from_node_paths(ft.network(), |s, d| {
        if ft.tier(s) != FatTreeTier::Edge || ft.tier(d) != FatTreeTier::Edge {
            return None;
        }
        let (ps, es) = ft.pod_coords(s);
        let (pd, ed) = ft.pod_coords(d);
        let a = (es + ed) % half;
        if ps == pd {
            Some(vec![s, ft.agg(ps, a), d])
        } else {
            let core = ft.core(a * half + (ps + pd) % half);
            Some(vec![s, ft.agg(ps, a), core, ft.agg(pd, a), d])
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use std::collections::BTreeSet;

    #[test]
    fn covers_exactly_the_edge_pairs() {
        let ft = FatTree::new(4);
        let table = fattree_updown(&ft).unwrap();
        let edges = ft.k() * ft.half();
        assert_eq!(table.len(), edges * (edges - 1));
        assert!(!table.is_total(ft.network()));
        assert!(table.compile(ft.network()).is_ok());
    }

    #[test]
    fn paths_descend_then_ascend_in_node_index() {
        let ft = FatTree::new(6);
        let table = fattree_updown(&ft).unwrap();
        for (&(s, d), p) in table.iter() {
            let idx: Vec<usize> = p.nodes(ft.network()).iter().map(|n| n.index()).collect();
            let turn = idx.windows(2).take_while(|w| w[0] > w[1]).count();
            assert!(
                idx[turn..].windows(2).all(|w| w[0] < w[1]),
                "{s} -> {d}: {idx:?}"
            );
        }
    }

    #[test]
    fn path_shapes_and_lca_tier() {
        let ft = FatTree::new(4);
        let table = fattree_updown(&ft).unwrap();
        // Intra-pod: edge -> agg -> edge.
        let p = table.path(ft.edge(1, 0), ft.edge(1, 1)).unwrap();
        assert_eq!(
            p.nodes(ft.network()),
            vec![ft.edge(1, 0), ft.agg(1, 1), ft.edge(1, 1)]
        );
        // Inter-pod: edge -> agg -> core -> agg -> edge, with agg
        // index a = (0+1)%2 = 1 on both sides and the core picked by
        // a=1, p=0, p'=3: 1*2 + (0+3)%2 = 3.
        let p = table.path(ft.edge(0, 0), ft.edge(3, 1)).unwrap();
        assert_eq!(
            p.nodes(ft.network()),
            vec![
                ft.edge(0, 0),
                ft.agg(0, 1),
                ft.core(3),
                ft.agg(3, 1),
                ft.edge(3, 1)
            ]
        );
    }

    #[test]
    fn every_physical_channel_is_used() {
        let ft = FatTree::new(4);
        let table = fattree_updown(&ft).unwrap();
        let used: BTreeSet<_> = table
            .iter()
            .flat_map(|(_, p)| p.channels().iter().copied())
            .collect();
        assert_eq!(used.len(), ft.network().channel_count());
    }

    #[test]
    fn is_a_minimal_node_function() {
        let ft = FatTree::new(4);
        let table = fattree_updown(&ft).unwrap();
        assert!(properties::is_minimal(ft.network(), &table));
        assert!(properties::is_node_function(ft.network(), &table));
        assert!(properties::never_revisits_nodes(ft.network(), &table));
    }
}
