//! Rotation symmetries of the shared-channel cycle family.
//!
//! Every instance of [`SharedCycleSpec`](crate::family::SharedCycleSpec)
//! places its `k` messages around a channel ring in spec order. When
//! the spec list is invariant under rotation by `r` positions (message
//! `i` and message `i + r` have identical `(d, g, reach, shared)`
//! parameters), relabeling message `i` as `i + r` and mapping each
//! routed path onto its image's path hop-by-hop is an automorphism of
//! the simulation: it permutes channels and messages while preserving
//! the routing function, message lengths, and the shared channel.
//!
//! Those automorphisms feed [`SymmetryCanonicalizer`], which quotients
//! the exhaustive search's state space by the symmetry group: two
//! states that differ only by a rotation of the construction are
//! visited once instead of `|G|` times. The figures' instances and the
//! Section 6 family `G(k)` all have the `[A, B, A, B]` spec shape, so
//! they carry an order-2 group and the visited set roughly halves.
//!
//! The derivation is *checked*, not trusted: each candidate
//! permutation is re-verified as a path automorphism against the
//! actual [`Sim`] before use ([`SymmetryCanonicalizer::new`] rejects
//! anything that fails), so a caller can never silently search a
//! quotient that is not verdict-preserving.

use std::sync::Arc;

use crate::family::CycleConstruction;
use wormsearch::{StatePermutation, SymmetryCanonicalizer};
use wormsim::Sim;

/// The rotations `r` in `1..k` under which the instance's message-spec
/// list is invariant: `spec[i] == spec[(i + r) % k]` for every `i`.
///
/// The identity rotation `r = 0` is always a symmetry and is omitted.
///
/// ```
/// use worm_core::paper::generalized;
/// use worm_core::symmetry::invariant_rotations;
///
/// // G(k) alternates two distinct message shapes: only the half-turn
/// // survives.
/// let c = generalized::generalized(2);
/// assert_eq!(invariant_rotations(&c), vec![2]);
/// ```
pub fn invariant_rotations(c: &CycleConstruction) -> Vec<usize> {
    let k = c.built.len();
    (1..k)
        .filter(|&r| (0..k).all(|i| c.built[i].spec == c.built[(i + r) % k].spec))
        .collect()
}

/// Build the channel/message permutation induced by rotating the
/// construction's messages by `r` positions, or `None` if the routed
/// paths do not zip into a consistent channel bijection.
fn rotation_permutation(c: &CycleConstruction, r: usize) -> Option<StatePermutation> {
    let k = c.built.len();
    let messages: Vec<u32> = (0..k).map(|i| ((i + r) % k) as u32).collect();
    let mut channels: Vec<Option<u32>> = vec![None; c.net.channel_count()];
    for i in 0..k {
        let src = c.table.path(c.built[i].pair.0, c.built[i].pair.1)?;
        let j = (i + r) % k;
        let dst = c.table.path(c.built[j].pair.0, c.built[j].pair.1)?;
        if src.len() != dst.len() {
            return None;
        }
        for (a, b) in src.channels().iter().zip(dst.channels()) {
            let slot = &mut channels[a.index()];
            match slot {
                Some(prev) if *prev != b.index() as u32 => return None,
                _ => *slot = Some(b.index() as u32),
            }
        }
    }
    let channels: Vec<u32> = channels
        .into_iter()
        .enumerate()
        .map(|(i, img)| img.unwrap_or(i as u32))
        .collect();
    StatePermutation::new(channels, messages).ok()
}

/// The verified rotation automorphisms of a family instance, one per
/// [`invariant_rotations`] entry whose path zip is consistent.
///
/// `sim` must be built from the same construction with one message per
/// [`BuiltMessage`](crate::family::BuiltMessage), in order (as
/// [`CycleConstruction::message_specs`] produces); permutations that
/// do not verify as automorphisms of `sim` are dropped.
pub fn rotation_permutations(c: &CycleConstruction, sim: &Sim) -> Vec<StatePermutation> {
    if sim.message_count() != c.built.len() || sim.channel_count() != c.net.channel_count() {
        return Vec::new();
    }
    invariant_rotations(c)
        .into_iter()
        .filter_map(|r| rotation_permutation(c, r))
        .filter(|p| p.verify_automorphism(sim).is_ok())
        .collect()
}

/// A canonicalizer quotienting `sim`'s state space by the instance's
/// rotation symmetries, or `None` when the group is trivial.
///
/// Plug the result into
/// [`SearchConfig::canonicalized`](wormsearch::SearchConfig): the
/// verdict is unchanged (the quotient is by verified automorphisms)
/// while the visited set shrinks by up to the group order.
///
/// ```
/// use std::sync::Arc;
/// use worm_core::paper::generalized;
/// use worm_core::symmetry::family_canonicalizer;
/// use wormsearch::{explore, SearchConfig};
/// use wormsim::Sim;
///
/// let c = generalized::generalized(1);
/// let specs = generalized::minimum_length_specs(&c);
/// let sim = Sim::new(&c.net, &c.table, specs, Some(1)).unwrap();
/// let canon = family_canonicalizer(&c, &sim).expect("G(1) has a half-turn");
/// assert_eq!(canon.order(), 1); // one non-identity rotation
///
/// let plain = explore(&sim, &SearchConfig::default());
/// let folded = explore(&sim, &SearchConfig::default().canonicalized(canon));
/// assert_eq!(plain.verdict.is_free(), folded.verdict.is_free());
/// assert!(folded.states_explored < plain.states_explored);
/// ```
pub fn family_canonicalizer(
    c: &CycleConstruction,
    sim: &Sim,
) -> Option<Arc<SymmetryCanonicalizer>> {
    let perms = rotation_permutations(c, sim);
    if perms.is_empty() {
        return None;
    }
    let canon = SymmetryCanonicalizer::new(sim, perms).ok()?;
    if canon.order() == 0 {
        return None;
    }
    Some(Arc::new(canon))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{CycleMessageSpec, SharedCycleSpec};
    use crate::paper::{fig1, generalized};
    use wormsearch::{explore, explore_parallel, SearchConfig};

    fn sim_for(c: &CycleConstruction) -> Sim {
        Sim::new(&c.net, &c.table, c.message_specs(), Some(1)).unwrap()
    }

    #[test]
    fn fig1_has_half_turn_only() {
        let c = fig1::cyclic_dependency();
        assert_eq!(invariant_rotations(&c), vec![2]);
        let sim = sim_for(&c);
        let canon = family_canonicalizer(&c, &sim).expect("half-turn");
        assert_eq!(canon.order(), 1);
    }

    #[test]
    fn uniform_specs_give_full_rotation_group() {
        let spec = SharedCycleSpec {
            messages: vec![CycleMessageSpec::shared(2, 3, 1); 3],
        };
        let c = spec.build();
        assert_eq!(invariant_rotations(&c), vec![1, 2]);
        let sim = sim_for(&c);
        let canon = family_canonicalizer(&c, &sim).expect("full group");
        assert_eq!(canon.order(), 2);
    }

    #[test]
    fn asymmetric_specs_have_no_symmetry() {
        let spec = SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(2, 3, 1),
                CycleMessageSpec::shared(3, 4, 1),
                CycleMessageSpec::shared(2, 4, 1),
            ],
        };
        let c = spec.build();
        assert!(invariant_rotations(&c).is_empty());
        let sim = sim_for(&c);
        assert!(family_canonicalizer(&c, &sim).is_none());
    }

    #[test]
    fn mismatched_sim_is_rejected() {
        let c = fig1::cyclic_dependency();
        let other = generalized::generalized(1);
        let sim = sim_for(&other);
        // Wrong sim for this construction: dimensions differ, so no
        // permutation survives and no canonicalizer is built.
        assert!(family_canonicalizer(&c, &sim).is_none());
    }

    #[test]
    fn g2_verdict_invariant_and_states_halve() {
        let c = generalized::generalized(2);
        let sim = Sim::new(
            &c.net,
            &c.table,
            generalized::minimum_length_specs(&c),
            Some(1),
        )
        .unwrap();
        let canon = family_canonicalizer(&c, &sim).expect("half-turn");
        let plain = explore(&sim, &SearchConfig::default());
        let config = SearchConfig::default().canonicalized(canon);
        let folded = explore(&sim, &config);
        assert!(plain.verdict.is_free());
        assert!(folded.verdict.is_free());
        // The half-turn folds almost every state with its image; only
        // rotation-fixed states are counted once rather than twice.
        let ratio = plain.states_explored as f64 / folded.states_explored as f64;
        assert!(ratio > 1.9, "expected ~2x reduction, got {ratio:.3}");

        // The parallel engine agrees with the sequential oracle on the
        // canonicalized space.
        let par = explore_parallel(&sim, &config, 4);
        assert!(par.verdict.is_free());
        assert_eq!(par.states_explored, folded.states_explored);
    }

    #[test]
    fn g2_deadlock_witness_survives_canonicalization() {
        let c = generalized::generalized(1);
        let sim = Sim::new(
            &c.net,
            &c.table,
            generalized::minimum_length_specs(&c),
            Some(1),
        )
        .unwrap();
        let canon = family_canonicalizer(&c, &sim).expect("half-turn");
        // G(1) deadlocks with a budget of 2; the witness found on the
        // quotient space must still replay.
        let config = SearchConfig {
            stall_budget: 2,
            canon: Some(canon),
            ..SearchConfig::default()
        };
        let result = explore(&sim, &config);
        let wormsearch::Verdict::DeadlockReachable(witness) = result.verdict else {
            panic!("G(1) with budget 2 must deadlock, got {:?}", result.verdict);
        };
        let members = wormsearch::replay(&sim, &witness).expect("witness must replay to deadlock");
        assert_eq!(members, witness.members);
    }
}
