//! Resolve a `wormspec/1` verify section into [`ClassifyOptions`].
//!
//! The `engine` key decides whether the classifier may fall back to
//! exhaustive search (`search`/`full` may, `static`/`sim` may not);
//! `model_exact = true` maps onto
//! [`ClassifyOptions::verify_theorems_with_search`].

use wormnet::graph::SccEngineKind;
use wormspec::ast::{SccName, Verify, VerifyEngine};
use wormspec::diag::{codes, SpecError};

use crate::classify::ClassifyOptions;

/// Resolve classifier options from the verify section (absent = the
/// static-only defaults: no search fallback).
pub fn options_from_spec(verify: Option<&Verify>) -> Result<ClassifyOptions, SpecError> {
    let mut opts = ClassifyOptions::default();
    let engine = verify
        .and_then(|v| v.engine.as_ref().map(|e| e.value))
        .unwrap_or_default();
    opts.use_search = matches!(engine, VerifyEngine::Search | VerifyEngine::Full);
    let Some(v) = verify else {
        return Ok(opts);
    };
    if let Some(m) = &v.max_cycles {
        opts.max_cycles = usize::try_from(m.value)
            .map_err(|_| SpecError::new(codes::RANGE, "`max_cycles` out of range", m.span))?;
    }
    if let Some(m) = &v.max_candidates {
        opts.max_candidates = usize::try_from(m.value)
            .map_err(|_| SpecError::new(codes::RANGE, "`max_candidates` out of range", m.span))?;
    }
    if let Some(m) = &v.max_states {
        opts.search_max_states = usize::try_from(m.value)
            .map_err(|_| SpecError::new(codes::RANGE, "`max_states` out of range", m.span))?;
    }
    if let Some(t) = &v.threads {
        opts.search_threads = usize::try_from(t.value)
            .map_err(|_| SpecError::new(codes::RANGE, "`threads` out of range", t.span))?;
    }
    if let Some(m) = &v.model_exact {
        opts.verify_theorems_with_search = m.value;
    }
    opts.scc_engine = match v.scc.as_ref().map(|s| s.value) {
        Some(SccName::PearceKelly) => SccEngineKind::PearceKelly,
        Some(SccName::Hkmst) | None => SccEngineKind::Hkmst,
    };
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormspec::parse;

    fn resolve(src: &str) -> ClassifyOptions {
        options_from_spec(parse(src).expect("spec parses").verify.as_ref()).unwrap()
    }

    #[test]
    fn engine_decides_the_search_fallback() {
        let base =
            "wormspec/1\ntopology { kind = ring nodes = 4 }\nrouting { engine = clockwise_ring }\n";
        assert!(!options_from_spec(None).unwrap().use_search);
        assert!(!resolve(&format!("{base}verify {{ engine = static }}\n")).use_search);
        assert!(resolve(&format!("{base}verify {{ engine = search }}\n")).use_search);
        assert!(resolve(&format!("{base}verify {{ engine = full }}\n")).use_search);
    }

    #[test]
    fn budgets_threads_and_exactness_resolve() {
        let o = resolve(
            "wormspec/1\n\
             topology { kind = ring nodes = 4 }\n\
             routing { engine = clockwise_ring }\n\
             verify {\n\
               engine = search\n\
               max_cycles = 100\n\
               max_candidates = 200\n\
               max_states = 5000\n\
               threads = 2\n\
               model_exact = true\n\
               scc = pearce_kelly\n\
             }\n",
        );
        assert_eq!(o.max_cycles, 100);
        assert_eq!(o.max_candidates, 200);
        assert_eq!(o.search_max_states, 5000);
        assert_eq!(o.search_threads, 2);
        assert!(o.verify_theorems_with_search);
        assert_eq!(o.scc_engine, SccEngineKind::PearceKelly);
    }
}
