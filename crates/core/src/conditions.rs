//! Theorem 5: the eight conditions under which a cycle whose shared
//! channel is used by exactly three messages is an unreachable
//! configuration.
//!
//! The paper labels the three sharing messages by their distance from
//! the shared channel to the cycle: `M_x` uses the most channels from
//! `c_s` to its entry, `M_z` the fewest, `M_y` the third. The cycle is
//! unreachable **iff** all eight conditions hold.
//!
//! **Reconstruction note.** The available text of the paper is an OCR
//! of the original and several condition statements are partially
//! garbled. Conditions 1–5 follow the paper's wording; condition 6's
//! second disjunct is reconstructed as "`M_z` immediately precedes
//! `M_y` in the cycle and `d_z < d_y`". Conditions 7 and 8 are the two
//! *timing races* of the construction; their printed inequalities are
//! unreadable in the scan, so we re-derived them for our router
//! microarchitecture and calibrated the constants against exhaustive
//! reachability search (see `wormbench`'s probes):
//!
//! * **condition 7** (the `M_z`-blocks-`M_x` race): forming the
//!   deadlock requires `M_z` to reach its entry before `M_x` — having
//!   entered earlier and serialized behind `M_x` and `M_y` on the
//!   shared channel — walks its held span. Unreachability therefore
//!   requires `d_x + between(x→z) < d_z + g_y + 2`, where `g_y` is
//!   `M_y`'s minimum length (it must pass the shared channel between
//!   them) and `between` counts channels held by segments interposed
//!   between `M_x` and `M_z` (their owners relay the deadline).
//! * **condition 8** (the `M_y`-after-`M_z` escape): if segments
//!   interposed between `M_z` and `M_y` are long enough, `M_y` can use
//!   the shared channel *after* `M_z` and still arrive in time, which
//!   always yields a deadlock. Unreachability requires
//!   `d_z + between(z→y) ≤ d_y`.
//!
//! The checker is validated end-to-end: on all six Figure 3 scenarios
//! (and on randomized family instances in the test suite) its verdict
//! matches the exhaustive search, which is ground truth.

use wormcdg::sharing::{self, MessageGeometry, SharedChannel};
use wormcdg::{CdgCycle, DeadlockCandidate, MsgPair};
use wormnet::Network;
use wormroute::TableRouting;

/// Per-condition outcome of the Theorem 5 check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EightConditions {
    /// The three sharing messages labeled x (largest `d`), y, z
    /// (smallest `d`).
    pub x: MsgPair,
    /// Middle-distance message.
    pub y: MsgPair,
    /// Smallest-distance message.
    pub z: MsgPair,
    /// The individual conditions, in the paper's numbering (index 0 =
    /// condition 1).
    pub conditions: [bool; 8],
}

impl EightConditions {
    /// Theorem 5's verdict: unreachable iff all eight hold.
    pub fn unreachable(&self) -> bool {
        self.conditions.iter().all(|&c| c)
    }

    /// Indices (1-based) of the conditions that fail.
    pub fn failing(&self) -> Vec<usize> {
        self.conditions
            .iter()
            .enumerate()
            .filter(|(_, &ok)| !ok)
            .map(|(i, _)| i + 1)
            .collect()
    }
}

/// Errors for inapplicable inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConditionsError {
    /// The shared channel is not used by exactly three configuration
    /// messages.
    NotThreeSharers(usize),
    /// A sharing message does not use the shared channel before
    /// entering the cycle, so its `d` is undefined (condition 2 covers
    /// this as "false", but the caller asked for geometry that does
    /// not exist).
    SharedInsideCycle(MsgPair),
}

impl std::fmt::Display for ConditionsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConditionsError::NotThreeSharers(n) => {
                write!(f, "theorem 5 needs exactly three sharers, got {n}")
            }
            ConditionsError::SharedInsideCycle((s, d)) => {
                write!(
                    f,
                    "message {s}->{d} uses the shared channel inside the cycle"
                )
            }
        }
    }
}

impl std::error::Error for ConditionsError {}

/// Evaluate the eight conditions for `shared` over `candidate`.
///
/// `shared.users` must contain exactly three messages; other
/// configuration messages (non-sharers) contribute only through the
/// "channels used by other messages between" terms of conditions 5, 7
/// and 8.
pub fn eight_conditions(
    net: &Network,
    table: &TableRouting,
    cycle: &CdgCycle,
    candidate: &DeadlockCandidate,
    shared: &SharedChannel,
) -> Result<EightConditions, ConditionsError> {
    let mut sharers: Vec<MsgPair> = shared.users.clone();
    sharers.sort_unstable();
    sharers.dedup();
    if sharers.len() != 3 {
        return Err(ConditionsError::NotThreeSharers(sharers.len()));
    }

    // Geometry of every configuration message.
    let geoms: Vec<(MsgPair, MessageGeometry)> = candidate
        .segments
        .iter()
        .map(|s| {
            (
                s.msg,
                sharing::geometry(net, table, cycle, s.msg, Some(shared.channel)),
            )
        })
        .collect();
    let geom = |m: MsgPair| -> &MessageGeometry {
        &geoms
            .iter()
            .find(|(p, _)| *p == m)
            .expect("config message")
            .1
    };

    // Condition 2: all three sharers use c_s outside the cycle (their
    // d is defined). If not, the remaining conditions still evaluate
    // but d-based comparisons treat the message appropriately; the
    // paper's statement makes the whole theorem inapplicable, so we
    // surface d=None as condition-2 failure with d treated as 0.
    let d_of = |m: MsgPair| geom(m).d;
    let cond2 = sharers.iter().all(|&m| d_of(m).is_some());

    // Label x, y, z by descending d (ties arbitrary; condition 3
    // fails on ties anyway).
    let mut by_d: Vec<(MsgPair, usize)> =
        sharers.iter().map(|&m| (m, d_of(m).unwrap_or(0))).collect();
    by_d.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let (x, d_x) = by_d[0];
    let (y, d_y) = by_d[1];
    let (z, d_z) = by_d[2];
    let a_x = geom(x).a;
    let a_y = geom(y).a;
    let a_z = geom(z).a;

    // Segment order helpers.
    let order: Vec<MsgPair> = candidate.segments.iter().map(|s| s.msg).collect();
    let pos = |m: MsgPair| order.iter().position(|&o| o == m).expect("config message");
    let k = order.len();
    // Channels held by the segments strictly between a and b, walking
    // the cycle in dependency order from a to b.
    let between = |a: MsgPair, b: MsgPair| -> usize {
        let (pa, pb) = (pos(a), pos(b));
        let mut total = 0;
        let mut i = (pa + 1) % k;
        while i != pb {
            total += candidate.segments[i].channels.len();
            i = (i + 1) % k;
        }
        total
    };
    // The next *sharing* message after `a` in cycle order.
    let next_sharer = |a: MsgPair| -> MsgPair {
        let pa = pos(a);
        for step in 1..=k {
            let m = order[(pa + step) % k];
            if sharers.contains(&m) {
                return m;
            }
        }
        unreachable!("three sharers exist");
    };
    let immediately_precedes = |a: MsgPair, b: MsgPair| (pos(a) + 1) % k == pos(b);
    // The message whose segment immediately precedes `m`'s.
    let predecessor = |m: MsgPair| order[(pos(m) + k - 1) % k];

    // Condition 1: in cycle order, x is followed (among sharers) by z.
    let cond1 = next_sharer(x) == z;
    // Condition 3: all three distances distinct.
    let cond3 = d_x != d_y && d_y != d_z && d_x != d_z;
    // Condition 4: x uses more channels within the cycle than from
    // c_s to its entry.
    let cond4 = a_x > d_x;
    // Condition 5: if z's predecessor in the cycle does not use c_s,
    // z must use more channels within the cycle than from c_s to it.
    let pred_z = predecessor(z);
    let cond5 = sharers.contains(&pred_z) || a_z > d_z;
    // Condition 6 (reconstructed): y uses more channels within the
    // cycle than from c_s to it, or z immediately precedes y and
    // d_z < d_y.
    let cond6 = a_y > d_y || (immediately_precedes(z, y) && d_z < d_y);
    // Condition 7 (reconstructed timing race, see module docs):
    // unreachable requires M_z's deadline to be unmeetable:
    // d_x + between(x, z) < d_z + g_y + 2, with g_y = M_y's minimum
    // sustaining length (its ring segment).
    let g_of = |m: MsgPair| -> usize {
        candidate
            .segments
            .iter()
            .find(|s| s.msg == m)
            .expect("config message")
            .channels
            .len()
    };
    let cond7 = d_x + between(x, z) < d_z + g_of(y) + 2;
    // Condition 8 (reconstructed escape): unreachable requires
    // d_z + between(z, y) <= d_y.
    let cond8 = d_z + between(z, y) <= d_y;

    Ok(EightConditions {
        x,
        y,
        z,
        conditions: [cond1, cond2, cond3, cond4, cond5, cond6, cond7, cond8],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{CycleMessageSpec, SharedCycleSpec};

    /// Three sharers, all satisfying the conditions: a_i > d_i, the
    /// order x..z.. adjacency, distinct distances.
    fn all_hold_spec() -> SharedCycleSpec {
        // Cycle order: m0 (d=4), m1 (d=1), m2 (d=2):
        //   x = m0 (d 4), z = m1 (d 1), y = m2 (d 2).
        // cond1: after x the next sharer is m1 = z: ok.
        // g chosen so a_i = g + 1 > d_i; cond7: d_x + 0 < a_z + d_z
        //   -> 4 < (g1+1) + 1 -> g1 >= 4 ... use g1 = 5.
        // cond8: d_z + between(z,y) < d_x -> 1 + 0 < 4 ok.
        SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(4, 5, 1),
                CycleMessageSpec::shared(1, 5, 1),
                CycleMessageSpec::shared(2, 5, 1),
            ],
        }
    }

    fn check(spec: &SharedCycleSpec) -> EightConditions {
        let c = spec.build();
        let cycle = c.cycle();
        let candidate = c.canonical_candidate();
        let analysis = wormcdg::sharing::analyze(&c.net, &c.table, &cycle, &candidate);
        let shared = analysis
            .outside()
            .find(|s| s.channel == c.cs)
            .expect("cs shared outside");
        eight_conditions(&c.net, &c.table, &cycle, &candidate, shared).unwrap()
    }

    #[test]
    fn all_conditions_hold_on_reference_spec() {
        let ec = check(&all_hold_spec());
        assert_eq!(ec.failing(), Vec::<usize>::new());
        assert!(ec.unreachable());
        // Labels by distance.
        assert_eq!(ec.x, ec.x);
        let c = all_hold_spec().build();
        assert_eq!(ec.x, c.built[0].pair);
        assert_eq!(ec.z, c.built[1].pair);
        assert_eq!(ec.y, c.built[2].pair);
    }

    #[test]
    fn condition3_fails_on_equal_distances() {
        let mut spec = all_hold_spec();
        spec.messages[2].d = 4; // same as x
        let ec = check(&spec);
        assert!(ec.failing().contains(&3));
        assert!(!ec.unreachable());
    }

    #[test]
    fn condition4_fails_when_x_access_too_long() {
        let mut spec = all_hold_spec();
        spec.messages[0].d = 7; // a_x = 6 <= 7
        let ec = check(&spec);
        assert!(ec.failing().contains(&4));
    }

    #[test]
    fn condition1_fails_when_y_follows_x() {
        // Reorder so after x comes y, not z.
        let spec = SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(4, 5, 1), // x
                CycleMessageSpec::shared(2, 5, 1), // y
                CycleMessageSpec::shared(1, 5, 1), // z
            ],
        };
        let ec = check(&spec);
        assert!(ec.failing().contains(&1));
    }

    #[test]
    fn condition7_fails_when_x_access_meets_the_race() {
        // d_x + between >= d_z + g_y + 2 makes the M_z race feasible.
        let spec = SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(5, 5, 1), // M_x
                CycleMessageSpec::shared(1, 3, 1), // M_z
                CycleMessageSpec::shared(2, 2, 1), // M_y: 5 >= 1 + 2 + 2
            ],
        };
        let ec = check(&spec);
        assert_eq!(ec.failing(), vec![7]);
    }

    #[test]
    fn condition8_fails_when_x_access_short() {
        // d_z + between(z,y) < d_x: make d_x barely above d_y and put
        // z's segment between... with adjacency z->y, between = 0, so
        // need d_z >= d_x to fail: impossible by labeling. Instead add
        // a non-sharing message between z and y.
        let spec = SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(4, 5, 1),  // x
                CycleMessageSpec::shared(1, 5, 1),  // z
                CycleMessageSpec::private(1, 5, 1), // non-sharer between z and y
                CycleMessageSpec::shared(2, 5, 1),  // y
            ],
        };
        let ec = check(&spec);
        // d_z + between(z,y) = 1 + 5 = 6 > d_y = 2: condition 8 fails.
        assert!(ec.failing().contains(&8));
    }

    #[test]
    fn boundary_instance_is_length_dependent() {
        // The Fleury-Fraigniaud phenomenon (paper Section 1): at the
        // timing-race boundary, freedom depends on a message's length.
        use wormsearch::{explore, SearchConfig};
        use wormsim::{MessageSpec, Sim};
        let c = SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(5, 5, 1),
                CycleMessageSpec::shared(1, 3, 1),
                CycleMessageSpec::shared(2, 2, 1),
            ],
        }
        .build();
        let run = |l_y: usize| {
            let lengths = [5usize, 3, l_y];
            let specs: Vec<MessageSpec> = c
                .built
                .iter()
                .zip(lengths)
                .map(|(b, l)| MessageSpec::new(b.pair.0, b.pair.1, l))
                .collect();
            let sim = Sim::new(&c.net, &c.table, specs, Some(1)).unwrap();
            explore(&sim, &SearchConfig::default()).verdict.is_free()
        };
        assert!(!run(2), "two-flit M_y deadlocks");
        assert!(run(3), "three-flit M_y is free");
    }

    #[test]
    fn non_three_sharers_rejected() {
        let c = SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(2, 3, 1),
                CycleMessageSpec::shared(3, 4, 1),
                CycleMessageSpec::shared(2, 3, 1),
                CycleMessageSpec::shared(3, 4, 1),
            ],
        }
        .build();
        let cycle = c.cycle();
        let candidate = c.canonical_candidate();
        let analysis = wormcdg::sharing::analyze(&c.net, &c.table, &cycle, &candidate);
        let shared = analysis.outside().next().unwrap();
        let err = eight_conditions(&c.net, &c.table, &cycle, &candidate, shared).unwrap_err();
        assert_eq!(err, ConditionsError::NotThreeSharers(4));
        assert!(err.to_string().contains('4'));
    }
}
