//! The overall classification pipeline: from a routing algorithm to a
//! deadlock verdict with provenance.
//!
//! The paper's program is: an acyclic CDG proves deadlock freedom
//! (Dally–Seitz), but a cyclic CDG proves nothing by itself — each
//! cycle must be examined. Theorems 2–5 decide many cycles purely
//! structurally; what they leave open falls back to exhaustive
//! reachability search. A routing algorithm whose every cycle is
//! unreachable is deadlock-free *despite* its cyclic dependencies —
//! the paper's headline phenomenon.

use wormcdg::sharing::{self, SharingAnalysis};
use wormcdg::{enumerate_candidates, Cdg, CdgBuilder, CdgCycle, DeadlockCandidate};
use wormnet::graph::SccEngineKind;
use wormnet::Network;
use wormroute::{properties, TableRouting};
use wormsearch::{explore, explore_parallel, explore_until, SearchConfig, Verdict};
use wormsim::{MessageId, MessageSpec, Sim};

use crate::conditions::{eight_conditions, EightConditions};

/// Why a candidate was classified the way it was.
#[derive(Clone, Debug)]
pub enum CycleClass {
    /// No channel is shared outside the cycle: Theorem 2 (and its
    /// corollaries) make the deadlock reachable.
    NoOutsideSharing,
    /// A channel outside the cycle is shared by exactly two messages:
    /// Theorem 4 makes the deadlock reachable.
    TwoSharers,
    /// Minimal routing with a single shared channel used by every
    /// configuration message: Theorem 3 makes the deadlock reachable.
    MinimalAllShare,
    /// A single outside channel shared by exactly three messages:
    /// Theorem 5's eight conditions decide.
    ThreeSharers(EightConditions),
    /// Outside the theorems' scope (four or more sharers, or several
    /// shared channels): decided by exhaustive search.
    DecidedBySearch {
        /// Whether the search found a reachable deadlock.
        reachable: bool,
        /// States the search visited.
        states: usize,
    },
    /// Search budget exhausted.
    Unknown,
}

/// Verdict for one static deadlock candidate.
#[derive(Clone, Debug)]
pub struct CandidateVerdict {
    /// The candidate configuration.
    pub candidate: DeadlockCandidate,
    /// How it was decided.
    pub class: CycleClass,
    /// `Some(true)` = a deadlock is reachable; `Some(false)` = this
    /// candidate is an unreachable configuration (false resource
    /// cycle); `None` = undecided.
    pub reachable: Option<bool>,
}

/// Verdict for one CDG cycle: reachable iff any candidate is.
#[derive(Clone, Debug)]
pub struct CycleVerdict {
    /// The cycle.
    pub cycle: CdgCycle,
    /// Per-candidate verdicts. Classification short-circuits at the
    /// first reachable candidate, so this may not cover every
    /// enumerated candidate when the answer is "deadlockable".
    pub candidates: Vec<CandidateVerdict>,
    /// Whether candidate enumeration covered every static
    /// configuration (false when the enumeration budget ran out).
    pub enumeration_complete: bool,
}

impl CycleVerdict {
    /// `Some(true)` if some candidate deadlock is reachable;
    /// `Some(false)` if enumeration was complete and every candidate
    /// is unreachable (a false resource cycle); `None` if undecided.
    pub fn reachable(&self) -> Option<bool> {
        if self.candidates.iter().any(|c| c.reachable == Some(true)) {
            return Some(true);
        }
        if self.enumeration_complete && self.candidates.iter().all(|c| c.reachable == Some(false)) {
            // Covers the empty case too: no static configuration
            // exists at all.
            return Some(false);
        }
        None
    }
}

/// Whole-algorithm verdict.
#[derive(Clone, Debug)]
pub enum AlgorithmVerdict {
    /// The CDG is acyclic: deadlock-free by Dally–Seitz, with the
    /// channel numbering as certificate.
    DeadlockFreeAcyclic {
        /// The strictly-increasing channel numbering.
        numbering: Vec<usize>,
    },
    /// The CDG has cycles but every one is unreachable: deadlock-free
    /// with cyclic dependencies — the paper's phenomenon.
    DeadlockFreeWithCycles {
        /// Per-cycle verdicts (all unreachable).
        cycles: Vec<CycleVerdict>,
    },
    /// Some cycle's deadlock is reachable.
    Deadlockable {
        /// Per-cycle verdicts.
        cycles: Vec<CycleVerdict>,
    },
    /// Could not be decided within budgets.
    Unknown {
        /// Per-cycle verdicts (some undecided).
        cycles: Vec<CycleVerdict>,
    },
}

impl AlgorithmVerdict {
    /// Whether the verdict certifies deadlock freedom.
    pub fn is_deadlock_free(&self) -> Option<bool> {
        match self {
            AlgorithmVerdict::DeadlockFreeAcyclic { .. }
            | AlgorithmVerdict::DeadlockFreeWithCycles { .. } => Some(true),
            AlgorithmVerdict::Deadlockable { .. } => Some(false),
            AlgorithmVerdict::Unknown { .. } => None,
        }
    }
}

/// Budgets and switches for classification.
#[derive(Clone, Debug)]
pub struct ClassifyOptions {
    /// Abort if the CDG has more elementary cycles than this.
    pub max_cycles: usize,
    /// Abort candidate enumeration per cycle beyond this.
    pub max_candidates: usize,
    /// Whether to fall back to exhaustive search for cycles the
    /// theorems don't decide.
    pub use_search: bool,
    /// State budget per search.
    pub search_max_states: usize,
    /// Worker threads for each fallback search: `1` (the default) runs
    /// the sequential depth-first engine; any other value runs the
    /// parallel work-stealing engine with that many workers (`0` = all
    /// cores). Verdicts are identical either way.
    pub search_threads: usize,
    /// Re-verify theorem-decided "reachable" candidates by exhaustive
    /// search before reporting them.
    ///
    /// The Theorem 2/3/4 shortcuts follow the *paper's* router model;
    /// under this crate's conservative router a boundary instance can
    /// differ by one cycle (e.g. Theorem 4's `d1 == d2` diagonal needs
    /// one adversarial stall here, see EXPERIMENTS.md). With this flag
    /// the verdict is exact for this model: a theorem-reachable
    /// candidate that the search refutes is downgraded to
    /// [`CycleClass::DecidedBySearch`] with `reachable = false`.
    pub verify_theorems_with_search: bool,
    /// Which incremental-SCC engine streams the CDG and decides the
    /// acyclicity fast path (HKMST by default; Pearce–Kelly is the
    /// second oracle). The verdict — and the certificate numbering —
    /// is engine-independent; only the construction cost differs.
    pub scc_engine: SccEngineKind,
}

impl Default for ClassifyOptions {
    fn default() -> Self {
        ClassifyOptions {
            max_cycles: 10_000,
            max_candidates: 10_000,
            use_search: true,
            search_max_states: 2_000_000,
            search_threads: 1,
            verify_theorems_with_search: false,
            scc_engine: SccEngineKind::default(),
        }
    }
}

impl ClassifyOptions {
    /// Model-exact mode: every theorem-decided reachable verdict is
    /// confirmed by search.
    pub fn model_exact() -> Self {
        ClassifyOptions {
            verify_theorems_with_search: true,
            ..ClassifyOptions::default()
        }
    }
}

/// Publish classification provenance into the global [`wormtrace`]
/// recorder (`classify.*` counters, see `docs/TRACING.md`): which
/// theorem decided the candidate, or whether the search fallback —
/// the theorems' blind spot — had to run.
fn record_provenance(verdict: &CandidateVerdict) {
    if !wormtrace::enabled() {
        return;
    }
    wormtrace::counter("classify.candidates", 1);
    let name = match &verdict.class {
        CycleClass::NoOutsideSharing => "classify.theorem2",
        CycleClass::MinimalAllShare => "classify.theorem3",
        CycleClass::TwoSharers => "classify.theorem4",
        CycleClass::ThreeSharers(_) => "classify.theorem5",
        CycleClass::DecidedBySearch { .. } => "classify.search_decided",
        CycleClass::Unknown => "classify.unknown",
    };
    wormtrace::counter(name, 1);
    if verdict.reachable == Some(true) {
        wormtrace::counter("classify.reachable", 1);
    } else if verdict.reachable == Some(false) {
        wormtrace::counter("classify.unreachable", 1);
    }
}

/// Classify one candidate configuration of one cycle.
pub fn classify_candidate(
    net: &Network,
    table: &TableRouting,
    cycle: &CdgCycle,
    candidate: DeadlockCandidate,
    minimal: bool,
    opts: &ClassifyOptions,
) -> CandidateVerdict {
    let verdict = classify_candidate_inner(net, table, cycle, candidate, minimal, opts);
    record_provenance(&verdict);
    verdict
}

fn classify_candidate_inner(
    net: &Network,
    table: &TableRouting,
    cycle: &CdgCycle,
    candidate: DeadlockCandidate,
    minimal: bool,
    opts: &ClassifyOptions,
) -> CandidateVerdict {
    // Optionally confirm a theorem's "reachable" verdict by search
    // (see ClassifyOptions::verify_theorems_with_search).
    let confirm = |candidate: DeadlockCandidate, class: CycleClass| -> CandidateVerdict {
        if opts.verify_theorems_with_search {
            if let Some(false) = search_candidate(net, table, &candidate, opts) {
                wormtrace::counter("classify.theorem_downgraded", 1);
                return CandidateVerdict {
                    candidate,
                    class: CycleClass::DecidedBySearch {
                        reachable: false,
                        states: 0,
                    },
                    reachable: Some(false),
                };
            }
        }
        CandidateVerdict {
            candidate,
            class,
            reachable: Some(true),
        }
    };

    let analysis: SharingAnalysis = sharing::analyze(net, table, cycle, &candidate);
    let outside: Vec<_> = analysis.outside().cloned().collect();

    // Theorem 2 / Corollaries 1–3: no sharing outside the cycle means
    // every message can reach its blocking position independently —
    // the deadlock is reachable.
    if outside.is_empty() {
        return confirm(candidate, CycleClass::NoOutsideSharing);
    }

    if outside.len() == 1 {
        let shared = &outside[0];
        let mut users = shared.users.clone();
        users.sort_unstable();
        users.dedup();

        // Theorem 4: exactly two sharers → reachable.
        if users.len() == 2 {
            return confirm(candidate, CycleClass::TwoSharers);
        }
        // Theorem 3: minimal routing and every configuration message
        // shares the single channel → reachable.
        if minimal && users.len() == candidate.segments.len() {
            return confirm(candidate, CycleClass::MinimalAllShare);
        }
        // Theorem 5: exactly three sharers → eight conditions.
        if users.len() == 3 {
            if let Ok(ec) = eight_conditions(net, table, cycle, &candidate, shared) {
                let unreachable = ec.unreachable();
                if unreachable {
                    return CandidateVerdict {
                        candidate,
                        class: CycleClass::ThreeSharers(ec),
                        reachable: Some(false),
                    };
                }
                return confirm(candidate, CycleClass::ThreeSharers(ec));
            }
        }
    }

    // Fallback: exhaustive search over the candidate's messages at
    // their adversarial minimum lengths (just long enough to hold
    // their segments — Section 3's worst case).
    if opts.use_search {
        wormtrace::counter("classify.search_fallback", 1);
        let reachable = search_candidate(net, table, &candidate, opts);
        let class = match reachable {
            Some(r) => CycleClass::DecidedBySearch {
                reachable: r,
                states: 0,
            },
            None => CycleClass::Unknown,
        };
        return CandidateVerdict {
            candidate,
            class,
            reachable,
        };
    }

    CandidateVerdict {
        candidate,
        class: CycleClass::Unknown,
        reachable: None,
    }
}

/// Exhaustive search for any deadlock among the candidate's messages
/// at minimum lengths; `None` = budget exhausted or unroutable.
fn search_candidate(
    net: &Network,
    table: &TableRouting,
    candidate: &DeadlockCandidate,
    opts: &ClassifyOptions,
) -> Option<bool> {
    let specs: Vec<MessageSpec> = candidate
        .segments
        .iter()
        .map(|s| MessageSpec::new(s.msg.0, s.msg.1, s.channels.len()))
        .collect();
    let sim = Sim::new(net, table, specs, Some(1)).ok()?;
    let config = SearchConfig {
        stall_budget: 0,
        max_states: opts.search_max_states,
        dead_channels: Vec::new(),
        ..SearchConfig::default()
    };
    let result = if opts.search_threads == 1 {
        explore(&sim, &config)
    } else {
        explore_parallel(&sim, &config, opts.search_threads)
    };
    match result.verdict {
        Verdict::DeadlockReachable(_) => Some(true),
        Verdict::DeadlockFree => Some(false),
        Verdict::Inconclusive { .. } => None,
    }
}

/// The literal Definition 5 question for one static candidate: can
/// routing messages from an empty network produce **exactly this
/// configuration** (every segment's channels owned by its message)?
///
/// This is stricter than [`classify_candidate`]'s search fallback,
/// which asks whether *any* deadlock is reachable with the candidate's
/// message set. A `Some(false)` here certifies the candidate is an
/// unreachable configuration in the paper's exact sense; `None` means
/// the search budget ran out.
pub fn candidate_reachable(
    net: &Network,
    table: &TableRouting,
    candidate: &DeadlockCandidate,
    opts: &ClassifyOptions,
) -> Option<bool> {
    let specs: Vec<MessageSpec> = candidate
        .segments
        .iter()
        .map(|s| MessageSpec::new(s.msg.0, s.msg.1, s.channels.len()))
        .collect();
    let sim = Sim::new(net, table, specs, Some(1)).ok()?;
    let segments: Vec<(MessageId, Vec<wormnet::ChannelId>)> = candidate
        .segments
        .iter()
        .enumerate()
        .map(|(i, s)| (MessageId::from_index(i), s.channels.clone()))
        .collect();
    let result = explore_until(
        &sim,
        &SearchConfig {
            stall_budget: 0,
            max_states: opts.search_max_states,
            dead_channels: Vec::new(),
            ..SearchConfig::default()
        },
        move |_, state| {
            segments.iter().all(|(m, chans)| {
                chans
                    .iter()
                    .all(|c| matches!(state.channels[c.index()], Some(occ) if occ.msg == *m))
            })
        },
    );
    match result.verdict {
        Verdict::DeadlockReachable(_) => Some(true),
        Verdict::DeadlockFree => Some(false),
        Verdict::Inconclusive { .. } => None,
    }
}

/// Classify one CDG cycle by classifying each of its candidates.
pub fn classify_cycle(
    net: &Network,
    table: &TableRouting,
    cdg: &Cdg,
    cycle: CdgCycle,
    opts: &ClassifyOptions,
) -> CycleVerdict {
    let minimal = properties::is_minimal(net, table);
    classify_cycle_with_minimal(net, table, cdg, cycle, minimal, opts)
}

/// [`classify_cycle`] with the (table-wide, hence hoistable) minimality
/// predicate precomputed — classifying many cycles of one algorithm
/// must not redo the all-pairs shortest-path comparison per cycle.
fn classify_cycle_with_minimal(
    net: &Network,
    table: &TableRouting,
    cdg: &Cdg,
    cycle: CdgCycle,
    minimal: bool,
    opts: &ClassifyOptions,
) -> CycleVerdict {
    let (candidates, enumeration_complete) = enumerate_candidates(cdg, &cycle, opts.max_candidates);
    let mut verdicts = Vec::with_capacity(candidates.len());
    for cand in candidates {
        let v = classify_candidate(net, table, &cycle, cand, minimal, opts);
        let reachable = v.reachable == Some(true);
        verdicts.push(v);
        if reachable {
            // One reachable deadlock settles the cycle.
            break;
        }
    }
    CycleVerdict {
        cycle,
        candidates: verdicts,
        enumeration_complete,
    }
}

/// Classify a whole routing algorithm.
pub fn classify_algorithm(
    net: &Network,
    table: &TableRouting,
    opts: &ClassifyOptions,
) -> AlgorithmVerdict {
    let _span = wormtrace::span("classify.algorithm");
    wormtrace::counter("classify.algorithms", 1);
    // Stream the table through the selected incremental-SCC engine:
    // the acyclic fast path is decided online, and the finished CDG is
    // identical to what `Cdg::build` would have produced (so the
    // certificate numbering stays byte-identical across engines).
    let mut builder = CdgBuilder::with_engine(net, opts.scc_engine);
    builder.add_table(table);
    let engine_acyclic = builder.is_acyclic();
    let cdg = builder.finish();
    if engine_acyclic {
        wormtrace::counter("classify.acyclic", 1);
        let numbering = cdg
            .numbering()
            .expect("engine-certified acyclic CDG must have a topological numbering");
        return AlgorithmVerdict::DeadlockFreeAcyclic { numbering };
    }
    // Stream a bounded prefix of the elementary cycles: a reachable
    // deadlock among the prefix already decides "deadlockable", while
    // the free-with-cycles verdict additionally needs the enumeration
    // to have been complete.
    let (cycles, enumeration_complete) = cdg.cycles_streamed(opts.max_cycles);
    let minimal = properties::is_minimal(net, table);
    let verdicts: Vec<CycleVerdict> = cycles
        .into_iter()
        .map(|cycle| classify_cycle_with_minimal(net, table, &cdg, cycle, minimal, opts))
        .collect();

    if verdicts.iter().any(|v| v.reachable() == Some(true)) {
        AlgorithmVerdict::Deadlockable { cycles: verdicts }
    } else if enumeration_complete && verdicts.iter().all(|v| v.reachable() == Some(false)) {
        AlgorithmVerdict::DeadlockFreeWithCycles { cycles: verdicts }
    } else {
        AlgorithmVerdict::Unknown { cycles: verdicts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormcdg::Cdg;
    use wormnet::topology::{ring_unidirectional, Mesh};
    use wormroute::algorithms::{clockwise_ring, xy_mesh};

    #[test]
    fn xy_mesh_is_acyclic_free() {
        let mesh = Mesh::new(&[3, 3]);
        let table = xy_mesh(&mesh).unwrap();
        let verdict = classify_algorithm(mesh.network(), &table, &ClassifyOptions::default());
        assert!(matches!(
            verdict,
            AlgorithmVerdict::DeadlockFreeAcyclic { .. }
        ));
        assert_eq!(verdict.is_deadlock_free(), Some(true));
    }

    #[test]
    fn clockwise_ring_is_deadlockable() {
        let (net, nodes) = ring_unidirectional(4);
        let table = clockwise_ring(&net, &nodes).unwrap();
        let verdict = classify_algorithm(&net, &table, &ClassifyOptions::default());
        let AlgorithmVerdict::Deadlockable { cycles } = &verdict else {
            panic!("expected deadlockable, got {verdict:?}");
        };
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].reachable(), Some(true));
        // Every candidate is decided by Theorem 2 (no outside sharing).
        for cand in &cycles[0].candidates {
            assert!(matches!(cand.class, CycleClass::NoOutsideSharing));
        }
        assert_eq!(verdict.is_deadlock_free(), Some(false));
    }

    #[test]
    fn definition5_certifies_fig1_candidate_unreachable() {
        // The literal paper claim: the Figure 1 configuration itself
        // is unreachable, while the ring's configuration is reachable.
        let c = crate::paper::fig1::cyclic_dependency();
        let candidate = c.canonical_candidate();
        assert_eq!(
            candidate_reachable(&c.net, &c.table, &candidate, &ClassifyOptions::default()),
            Some(false),
            "Figure 1's configuration must be unreachable (Definition 5)"
        );

        let (net, nodes) = ring_unidirectional(4);
        let table = clockwise_ring(&net, &nodes).unwrap();
        let cdg = wormcdg::Cdg::build(&net, &table);
        let cycle = cdg.cycles().remove(0);
        let cands = wormcdg::deadlock_candidates(&cdg, &cycle, 100_000).unwrap();
        let four = cands.iter().find(|c| c.segments.len() == 4).unwrap();
        assert_eq!(
            candidate_reachable(&net, &table, four, &ClassifyOptions::default()),
            Some(true),
            "the ring's configuration is reachable"
        );
    }

    #[test]
    fn figure3_scenarios_classified_with_theorem5_provenance() {
        // Scenario (a): 3 sharers, all conditions hold -> the pipeline
        // certifies freedom *via Theorem 5*, no search needed for the
        // canonical candidate.
        let s = crate::paper::fig3::scenario_a();
        let c = s.spec.build();
        let verdict = classify_algorithm(&c.net, &c.table, &ClassifyOptions::default());
        let AlgorithmVerdict::DeadlockFreeWithCycles { cycles } = &verdict else {
            panic!("scenario (a) must be free-with-cycles: {verdict:?}");
        };
        let theorem5_unreachable = cycles
            .iter()
            .flat_map(|cv| &cv.candidates)
            .any(|cand| matches!(&cand.class, CycleClass::ThreeSharers(ec) if ec.unreachable()));
        assert!(theorem5_unreachable, "Theorem 5 should decide scenario (a)");

        // Scenario (e): condition 7 fails -> Deadlockable via Theorem 5.
        let s = crate::paper::fig3::scenario_e();
        let c = s.spec.build();
        let verdict = classify_algorithm(&c.net, &c.table, &ClassifyOptions::default());
        let AlgorithmVerdict::Deadlockable { cycles } = &verdict else {
            panic!("scenario (e) must be deadlockable: {verdict:?}");
        };
        let theorem5_reachable = cycles.iter().flat_map(|cv| &cv.candidates).any(|cand| {
            matches!(&cand.class, CycleClass::ThreeSharers(ec)
                if !ec.unreachable() && cand.reachable == Some(true))
        });
        assert!(theorem5_reachable, "Theorem 5 should decide scenario (e)");
    }

    #[test]
    fn model_exact_mode_catches_theorem_boundary_cases() {
        // Theorem 4's d1 == d2 diagonal: the paper's model deadlocks
        // (footnote 1 breaks the simultaneous arrival by arbitration);
        // this crate's conservative router needs one extra stall, so
        // the instance is actually free here. Default mode reports the
        // paper verdict; model-exact mode reports this router's truth.
        let c = crate::family::SharedCycleSpec {
            messages: vec![
                crate::family::CycleMessageSpec::shared(2, 3, 1),
                crate::family::CycleMessageSpec::shared(2, 3, 1),
            ],
        }
        .build();

        let paper = classify_algorithm(&c.net, &c.table, &ClassifyOptions::default());
        assert!(
            matches!(paper, AlgorithmVerdict::Deadlockable { .. }),
            "paper-model verdict: {paper:?}"
        );

        let exact = classify_algorithm(&c.net, &c.table, &ClassifyOptions::model_exact());
        assert!(
            matches!(exact, AlgorithmVerdict::DeadlockFreeWithCycles { .. }),
            "model-exact verdict: {exact:?}"
        );

        // Off the diagonal both modes agree (really deadlocks).
        let c2 = crate::paper::fig2::two_message_deadlock();
        for opts in [ClassifyOptions::default(), ClassifyOptions::model_exact()] {
            let v = classify_algorithm(&c2.net, &c2.table, &opts);
            assert!(matches!(v, AlgorithmVerdict::Deadlockable { .. }));
        }
    }

    #[test]
    fn multiple_cycles_classified_independently() {
        // A bidirectional ring routed clockwise for "short" pairs and
        // counter-clockwise for the rest produces two disjoint CDG
        // cycles (one per direction); both must be found deadlockable.
        use wormnet::topology::ring_bidirectional;
        use wormroute::TableRouting;
        // A 5-ring gives counter-clockwise paths of length 2, which is
        // what creates dependencies (and hence a cycle) in that
        // direction too.
        let (net, nodes) = ring_bidirectional(5);
        let n = nodes.len();
        let table = TableRouting::from_node_paths(&net, |s, d| {
            let (si, di) = (s.index(), d.index());
            let cw = (di + n - si) % n;
            let mut walk = vec![s];
            let mut i = si;
            if cw <= 2 {
                while i != di {
                    i = (i + 1) % n;
                    walk.push(nodes[i]);
                }
            } else {
                while i != di {
                    i = (i + n - 1) % n;
                    walk.push(nodes[i]);
                }
            }
            Some(walk)
        })
        .unwrap();
        let cdg = Cdg::build(&net, &table);
        assert!(!cdg.is_acyclic());
        assert_eq!(cdg.cycles().len(), 2, "one cycle per direction");
        let verdict = classify_algorithm(&net, &table, &ClassifyOptions::default());
        let AlgorithmVerdict::Deadlockable { cycles } = &verdict else {
            panic!("expected deadlockable: {verdict:?}");
        };
        assert_eq!(cycles.len(), 2);
        assert!(cycles.iter().all(|cv| cv.reachable() == Some(true)));
    }

    #[test]
    fn parallel_search_threads_give_identical_verdicts() {
        // The fig-1-like 4-sharer construction is decided by the search
        // fallback; the parallel engine must reach the same verdict.
        let c = crate::family::SharedCycleSpec {
            messages: vec![
                crate::family::CycleMessageSpec::shared(2, 3, 1),
                crate::family::CycleMessageSpec::shared(3, 4, 1),
                crate::family::CycleMessageSpec::shared(2, 3, 1),
                crate::family::CycleMessageSpec::shared(3, 4, 1),
            ],
        }
        .build();
        let sequential = classify_algorithm(&c.net, &c.table, &ClassifyOptions::default());
        let parallel = classify_algorithm(
            &c.net,
            &c.table,
            &ClassifyOptions {
                search_threads: 4,
                ..ClassifyOptions::default()
            },
        );
        assert_eq!(
            sequential.is_deadlock_free(),
            parallel.is_deadlock_free(),
            "sequential {sequential:?} vs parallel {parallel:?}"
        );
    }

    #[test]
    fn search_disabled_leaves_unknowns() {
        // The fig-1-like construction has 4 sharers: without search it
        // must stay undecided.
        let c = crate::family::SharedCycleSpec {
            messages: vec![
                crate::family::CycleMessageSpec::shared(2, 3, 1),
                crate::family::CycleMessageSpec::shared(3, 4, 1),
                crate::family::CycleMessageSpec::shared(2, 3, 1),
                crate::family::CycleMessageSpec::shared(3, 4, 1),
            ],
        }
        .build();
        let opts = ClassifyOptions {
            use_search: false,
            ..ClassifyOptions::default()
        };
        let verdict = classify_algorithm(&c.net, &c.table, &opts);
        assert!(matches!(verdict, AlgorithmVerdict::Unknown { .. }));
        assert_eq!(verdict.is_deadlock_free(), None);
    }
}
