//! # worm-core — the paper's contribution
//!
//! This crate implements the constructions and results of Schwiebert,
//! *Deadlock-Free Oblivious Wormhole Routing with Cyclic Dependencies*
//! (SPAA 1997):
//!
//! * [`family`] — the parameterized **shared-channel cycle**
//!   construction that underlies every figure in the paper: `k`
//!   messages entering a channel ring through a common shared channel
//!   `c_s`, with per-message access distance `d_i`, held span `g_i`,
//!   and reach into the next segment. Figure 1, Figure 2, the six
//!   Figure 3 scenarios, and the Section 6 generalization `G(k)` are
//!   all instances.
//! * [`paper`] — the concrete instances:
//!   [`paper::fig1::cyclic_dependency`] (the headline deadlock-free
//!   algorithm with a cyclic CDG), [`paper::fig2`] (Theorem 4's
//!   two-message deadlock), [`paper::fig3`] (the six three-message
//!   scenarios), and [`paper::generalized`] (Section 6's `G(k)`).
//! * [`conditions`] — Theorem 5's eight conditions deciding whether a
//!   cycle whose shared channel is used by exactly three messages is
//!   an unreachable configuration.
//! * [`classify`] — the overall pipeline: CDG → cycles → static
//!   deadlock candidates → shared-channel analysis → Theorems 2–5 →
//!   exhaustive-search fallback; producing a per-cycle and whole-
//!   algorithm deadlock verdict with provenance.
//! * [`degraded`] — the same pipeline re-run on a degraded topology
//!   (failed channels drop the pairs routed through them), reporting
//!   whether the healthy verdict survives the fault.

//! ```
//! use worm_core::classify::{classify_algorithm, AlgorithmVerdict, ClassifyOptions};
//! use worm_core::paper::fig1;
//!
//! // The paper's headline, end to end: cyclic dependencies, yet
//! // certified deadlock-free by the classification pipeline.
//! let c = fig1::cyclic_dependency();
//! assert!(!c.cdg().is_acyclic());
//! let verdict = classify_algorithm(&c.net, &c.table, &ClassifyOptions::default());
//! assert!(matches!(verdict, AlgorithmVerdict::DeadlockFreeWithCycles { .. }));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod classify;
pub mod conditions;
pub mod degraded;
pub mod family;
pub mod paper;
pub mod spec;
pub mod symmetry;
pub mod validate;

pub use classify::{
    candidate_reachable, classify_algorithm, classify_cycle, AlgorithmVerdict, CycleClass,
    CycleVerdict,
};
pub use degraded::{classify_degraded, DegradedClassification};
pub use family::{CycleConstruction, CycleMessageSpec, SharedCycleSpec};
pub use symmetry::{family_canonicalizer, invariant_rotations, rotation_permutations};
