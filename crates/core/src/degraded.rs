//! Classification of a routing algorithm on a *degraded* topology:
//! what survives of the paper's verdict when channels fail.
//!
//! The paper's analysis is static: Theorems 2–5 and the search
//! fallback all reason about the channel dependency graph induced by
//! the routing relation on the *healthy* network. A channel failure
//! changes that object in two ways at once:
//!
//! * **Routing loss** — every source/destination pair whose oblivious
//!   path crosses a down channel becomes unroutable. Oblivious routing
//!   has no recourse: there is exactly one path per pair, so the
//!   honest degraded model simply drops those pairs
//!   ([`wormroute::TableRouting::without_channels`]).
//! * **Dependency loss** — with those pairs gone, every CDG edge
//!   witnessed *only* by their paths disappears, and cycles may break.
//!   A deadlock-free-with-cycles algorithm can degrade into a
//!   trivially acyclic one; conversely a deadlockable ring loses its
//!   cycle the moment any ring channel dies (the deadlock needs the
//!   full ring).
//!
//! [`classify_degraded`] runs the complete pipeline — CDG rebuild,
//! Theorems 2–5, search fallback — on the degraded routing relation
//! and reports the verdict next to enough provenance (unroutable
//! pairs, edge deltas against [`wormcdg::Cdg::masked`]) to see *why*
//! the verdict moved. `wormfault` uses this to answer the
//! re-verification question per fault plan: does the unreachable-cycle
//! argument survive this fault?

use wormcdg::Cdg;
use wormexist::{ExistOptions, ExistenceReport};
use wormnet::{ChannelId, Network};
use wormroute::TableRouting;

use crate::classify::{classify_algorithm, AlgorithmVerdict, ClassifyOptions};

/// The outcome of re-running the classification pipeline on a
/// degraded topology.
#[derive(Clone, Debug)]
pub struct DegradedClassification {
    /// The channels taken down, sorted and deduplicated.
    pub down: Vec<ChannelId>,
    /// The degraded routing relation: the healthy table minus every
    /// pair routed through a down channel.
    pub table: TableRouting,
    /// Source/destination pairs that lost their (only) path.
    pub unroutable_pairs: usize,
    /// Edges of the healthy CDG.
    pub baseline_edges: usize,
    /// Edges of the structural mask ([`Cdg::masked`]): healthy CDG
    /// minus edges incident to a down channel. Always ≥
    /// [`Self::degraded_edges`] — the mask keeps edges whose only
    /// witnesses died with an unroutable pair.
    pub masked_edges: usize,
    /// Edges of the CDG rebuilt from the degraded table.
    pub degraded_edges: usize,
    /// The pipeline's verdict on the degraded relation.
    pub verdict: AlgorithmVerdict,
    /// The existence engine's two-sided verdict for the *degraded
    /// fabric* itself ([`wormexist::analyze_masked`] over the same
    /// down set): even when this table's verdict breaks, does some
    /// deadlock-free routing still exist among the surviving pairs —
    /// or can none? Separates "the routing broke" from "the fabric
    /// became unroutable".
    pub existence: ExistenceReport,
}

impl DegradedClassification {
    /// Whether the degraded verdict certifies deadlock freedom
    /// (`None` = undecided within budgets).
    pub fn is_deadlock_free(&self) -> Option<bool> {
        self.verdict.is_deadlock_free()
    }
}

/// Re-classify `table` on `net` with the channels in `down` failed.
///
/// Pairs routed through a down channel are dropped (oblivious routing
/// offers no alternative path), the CDG is rebuilt from the surviving
/// pairs, and the full Theorems 2–5 + search pipeline re-runs on it.
/// An empty `down` reproduces [`classify_algorithm`] on the healthy
/// table exactly.
pub fn classify_degraded(
    net: &Network,
    table: &TableRouting,
    down: &[ChannelId],
    opts: &ClassifyOptions,
) -> DegradedClassification {
    let _span = wormtrace::span("classify.degraded");
    let mut down: Vec<ChannelId> = down.to_vec();
    down.sort_unstable();
    down.dedup();

    let baseline = Cdg::build(net, table);
    let masked = baseline.masked(&down);
    let degraded_table = table.without_channels(&down);
    let degraded = Cdg::build(net, &degraded_table);
    let unroutable_pairs = table.len() - degraded_table.len();
    wormtrace::counter("classify.degraded.runs", 1);
    wormtrace::counter(
        "classify.degraded.unroutable_pairs",
        unroutable_pairs as u64,
    );

    let verdict = classify_algorithm(net, &degraded_table, opts);
    let existence = wormexist::analyze_masked(net, &down, &ExistOptions::default());
    DegradedClassification {
        down,
        table: degraded_table,
        unroutable_pairs,
        baseline_edges: baseline.edge_count(),
        masked_edges: masked.edge_count(),
        degraded_edges: degraded.edge_count(),
        verdict,
        existence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormnet::topology::ring_unidirectional;
    use wormroute::algorithms::clockwise_ring;

    #[test]
    fn no_downs_reproduces_the_healthy_verdict() {
        let (net, nodes) = ring_unidirectional(4);
        let table = clockwise_ring(&net, &nodes).unwrap();
        let d = classify_degraded(&net, &table, &[], &ClassifyOptions::default());
        assert_eq!(d.unroutable_pairs, 0);
        assert_eq!(d.baseline_edges, d.degraded_edges);
        assert_eq!(d.is_deadlock_free(), Some(false), "healthy ring deadlocks");
    }

    #[test]
    fn killing_a_ring_channel_breaks_the_deadlock() {
        let (net, nodes) = ring_unidirectional(4);
        let table = clockwise_ring(&net, &nodes).unwrap();
        let c01 = net.find_channel(nodes[0], nodes[1]).unwrap();
        let d = classify_degraded(&net, &table, &[c01], &ClassifyOptions::default());
        assert!(d.unroutable_pairs > 0);
        assert!(d.degraded_edges < d.baseline_edges);
        assert!(d.masked_edges >= d.degraded_edges);
        // The ring cycle needed all four channels; the survivor CDG is
        // a path, hence acyclic, hence deadlock-free.
        assert_eq!(d.is_deadlock_free(), Some(true));
        assert!(matches!(
            d.verdict,
            AlgorithmVerdict::DeadlockFreeAcyclic { .. }
        ));
    }

    #[test]
    fn degraded_existence_tracks_the_fabric_not_the_table() {
        let (net, nodes) = ring_unidirectional(4);
        let table = clockwise_ring(&net, &nodes).unwrap();
        // The healthy single-lane ring fabric admits *no* deadlock-free
        // routing at all — the table is not the problem.
        let healthy = classify_degraded(&net, &table, &[], &ClassifyOptions::default());
        assert_eq!(
            healthy.existence.verdict,
            wormexist::ExistenceVerdict::Impossible
        );
        // Amputating a ring channel leaves an acyclic path: everything
        // that still has a path routes deadlock-free.
        let c01 = net.find_channel(nodes[0], nodes[1]).unwrap();
        let d = classify_degraded(&net, &table, &[c01], &ClassifyOptions::default());
        assert_eq!(d.existence.verdict, wormexist::ExistenceVerdict::Exists);
        assert_eq!(d.existence.down, vec![c01]);
    }

    #[test]
    fn down_list_is_sorted_and_deduplicated() {
        let (net, nodes) = ring_unidirectional(4);
        let table = clockwise_ring(&net, &nodes).unwrap();
        let c01 = net.find_channel(nodes[0], nodes[1]).unwrap();
        let c12 = net.find_channel(nodes[1], nodes[2]).unwrap();
        let d = classify_degraded(&net, &table, &[c12, c01, c12], &ClassifyOptions::default());
        assert_eq!(d.down, vec![c01, c12]);
    }
}
