//! The paper as executable claims: every headline result, re-verified
//! programmatically and reported with its measured evidence.
//!
//! `EXPERIMENTS.md` narrates the reproduction; this module *is* the
//! reproduction — downstream users can call [`validate_all`] (or run
//! `cargo run --release -p wormbench --bin validate`) to re-check the
//! paper against the current build in seconds.

use wormsearch::{explore, min_stall_budget, replay, SearchConfig, Verdict};
use wormsim::{MessageSpec, Sim};

use crate::classify::{candidate_reachable, ClassifyOptions};
use crate::conditions::eight_conditions;
use crate::family::CycleConstruction;
use crate::paper::{fig1, fig2, fig3, generalized};

/// Outcome of re-checking one paper claim.
#[derive(Clone, Debug)]
pub struct ClaimResult {
    /// Short identifier (theorem/figure number).
    pub id: &'static str,
    /// The paper's claim, in one sentence.
    pub claim: &'static str,
    /// What this build measured.
    pub measured: String,
    /// Whether measurement matches the claim.
    pub matches: bool,
}

fn min_specs(c: &CycleConstruction) -> Vec<MessageSpec> {
    c.built
        .iter()
        .map(|b| MessageSpec::new(b.pair.0, b.pair.1, b.spec.g))
        .collect()
}

fn search_free(c: &CycleConstruction, specs: Vec<MessageSpec>) -> (bool, usize) {
    let sim = Sim::new(&c.net, &c.table, specs, Some(1)).expect("routed");
    let r = explore(&sim, &SearchConfig::default());
    (r.verdict.is_free(), r.states_explored)
}

/// Re-verify every claim. `thorough` widens the sweeps (duplicate
/// adversaries, larger `k`); the fast mode still covers every claim.
pub fn validate_all(thorough: bool) -> Vec<ClaimResult> {
    let mut out = Vec::new();

    // ---- Theorem 1 / Figure 1 -------------------------------------
    let c = fig1::cyclic_dependency();
    let cyclic = !c.cdg().is_acyclic();
    let (free_paper, states) = search_free(&c, c.message_specs());
    let (free_min, _) = search_free(&c, min_specs(&c));
    out.push(ClaimResult {
        id: "Thm 1",
        claim: "the Cyclic Dependency algorithm is deadlock-free despite a cyclic CDG",
        measured: format!(
            "CDG cyclic: {cyclic}; search free (paper lengths): {free_paper} \
             ({states} states); free (min lengths): {free_min}"
        ),
        matches: cyclic && free_paper && free_min,
    });

    if thorough {
        let mut all_free = true;
        for dup in 0..4 {
            let mut specs = min_specs(&c);
            let b = &c.built[dup];
            specs.push(MessageSpec::new(b.pair.0, b.pair.1, 8));
            let (free, _) = search_free(&c, specs);
            all_free &= free;
        }
        out.push(ClaimResult {
            id: "Thm 1+",
            claim: "extra message instances cannot create the Figure 1 deadlock",
            measured: format!("4 duplicate-instance adversaries: all free: {all_free}"),
            matches: all_free,
        });
    }

    // Definition 5, literally.
    let d5 = candidate_reachable(
        &c.net,
        &c.table,
        &c.canonical_candidate(),
        &ClassifyOptions::default(),
    );
    out.push(ClaimResult {
        id: "Def 5",
        claim: "Figure 1's deadlock configuration itself is unreachable",
        measured: format!("candidate_reachable = {d5:?}"),
        matches: d5 == Some(false),
    });

    // ---- Theorem 4 / Figure 2 -------------------------------------
    let c2 = fig2::two_message_deadlock();
    let sim = Sim::new(&c2.net, &c2.table, c2.message_specs(), Some(1)).expect("routed");
    let verdict = explore(&sim, &SearchConfig::default()).verdict;
    let (found, replays) = match &verdict {
        Verdict::DeadlockReachable(w) => (true, replay(&sim, w).is_some()),
        _ => (false, false),
    };
    out.push(ClaimResult {
        id: "Thm 4",
        claim: "two sharers outside the cycle always produce a reachable deadlock",
        measured: format!("witness found: {found}; replays: {replays}"),
        matches: found && replays,
    });

    // ---- Theorem 5 / Figure 3 -------------------------------------
    let mut all_match = true;
    let mut detail = String::new();
    for s in fig3::all_scenarios() {
        let cc = s.spec.build();
        let cycle = cc.cycle();
        let candidate = cc.canonical_candidate();
        let analysis = wormcdg::sharing::analyze(&cc.net, &cc.table, &cycle, &candidate);
        let shared = analysis
            .outside()
            .find(|sc| sc.channel == cc.cs)
            .expect("cs shared outside");
        let ec = eight_conditions(&cc.net, &cc.table, &cycle, &candidate, shared)
            .expect("three sharers");
        let sim = Sim::new(&cc.net, &cc.table, s.message_specs(&cc), Some(1)).expect("routed");
        let free = explore(&sim, &SearchConfig::default()).verdict.is_free();
        let ok = ec.unreachable() == s.paper_unreachable && free == s.paper_unreachable;
        all_match &= ok;
        detail.push_str(&format!("({}){} ", s.name, if ok { "=" } else { "!" }));
    }
    out.push(ClaimResult {
        id: "Thm 5",
        claim: "the six Figure 3 scenarios resolve as (a)(b) unreachable, (c)-(f) deadlock",
        measured: format!("checker & search vs paper: {}", detail.trim_end()),
        matches: all_match,
    });

    // ---- Section 6 ------------------------------------------------
    let kmax = if thorough { 3 } else { 2 };
    let mut mins = Vec::new();
    let mut linear = true;
    for k in 1..=kmax {
        let g = generalized::generalized(k);
        let sim = Sim::new(
            &g.net,
            &g.table,
            generalized::minimum_length_specs(&g),
            Some(1),
        )
        .expect("routed");
        let (min, _) = min_stall_budget(&sim, (k + 3) as u32, 8_000_000);
        linear &= min == Some((k + 1) as u32);
        mins.push(min);
    }
    out.push(ClaimResult {
        id: "Sec 6",
        claim: "forcing the G(k) deadlock requires delay growing linearly in k",
        measured: format!("min stalls for k=1..{kmax}: {mins:?} (expect k+1)"),
        matches: linear,
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_claim_validates() {
        let results = validate_all(false);
        assert!(results.len() >= 5);
        for r in &results {
            assert!(r.matches, "claim {} failed: {}", r.id, r.measured);
        }
    }

    #[test]
    fn thorough_mode_adds_the_duplicate_sweep() {
        // Only check the shape here; the heavy run happens in the
        // `validate` binary and EXPERIMENTS regeneration.
        let fast = validate_all(false);
        assert!(fast.iter().all(|r| r.id != "Thm 1+"));
    }
}
