//! The parameterized shared-channel cycle construction.
//!
//! Every network in the paper has the same skeleton:
//!
//! ```text
//!            c_s                    access_i (d_i channels)
//!   Src ────────────▶ N* ──▶ B_i1 ──▶ ... ──▶ E_i ∈ ring
//! ```
//!
//! * a directed **ring** of channels partitioned into one segment per
//!   cycle message (message `i`'s segment has `g_i` channels starting
//!   at its entry node `E_i`);
//! * message `i` travels its whole segment and then `reach_i` channels
//!   into the next segment to its destination `D_i` — so in a deadlock
//!   configuration it holds exactly its segment while waiting for the
//!   next segment's first channel, which the next message holds;
//! * messages that `use_shared` start at the common source `Src`,
//!   traverse the shared channel `c_s = Src → N*` and then a private
//!   access path of `d_i` channels to `E_i`; messages that don't have
//!   their own private source and access path;
//! * every node also has bidirectional channels to `N*`, and all
//!   non-special traffic routes `u → N* → v`, making the algorithm
//!   total on a strongly connected network without adding any CDG
//!   cycle beyond the ring.
//!
//! The construction yields exactly one elementary CDG cycle (the
//! ring), whose canonical static deadlock candidate is the segment
//! partition — the object Theorems 1–5 reason about.

use wormcdg::{Cdg, CdgCycle, DeadlockCandidate, Segment};
use wormnet::{ChannelId, Network, NodeId};
use wormroute::{Path, TableRouting};
use wormsim::MessageSpec;

/// Parameters of one cycle message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleMessageSpec {
    /// Whether the message starts at `Src` and uses the shared channel
    /// `c_s` before its access path. Messages with `false` get a
    /// private source instead (Figure 3(f)'s fourth message).
    pub uses_shared: bool,
    /// Which shared channel the message uses when `uses_shared`:
    /// messages in the same group funnel through one `Src_g → N*`
    /// channel. The paper's figures use a single group (0); multiple
    /// groups realize its Section 7 open problem of cycles with
    /// *several* shared channels.
    pub shared_group: usize,
    /// Channels from `c_s` (exclusive) to the ring entry — the paper's
    /// `d_i`. For non-sharing messages: length of the private access
    /// path. Must be ≥ 1.
    pub d: usize,
    /// Channels of the ring segment this message holds in the deadlock
    /// configuration — the paper's "channels held within the cycle".
    /// Must be ≥ 1.
    pub g: usize,
    /// How many channels into the *next* segment the destination lies
    /// (1 ≤ reach ≤ next segment's `g`). The paper's figures use 1
    /// (the destination is the node right after the next entry).
    pub reach: usize,
    /// Message length in flits; `None` = the paper's default
    /// `ℓ_i = a_i = g + reach`.
    pub length: Option<usize>,
}

impl CycleMessageSpec {
    /// A sharing message with the paper's default length (group 0).
    pub fn shared(d: usize, g: usize, reach: usize) -> Self {
        CycleMessageSpec {
            uses_shared: true,
            shared_group: 0,
            d,
            g,
            reach,
            length: None,
        }
    }

    /// A sharing message funneling through shared channel `group`.
    pub fn shared_in_group(group: usize, d: usize, g: usize, reach: usize) -> Self {
        CycleMessageSpec {
            uses_shared: true,
            shared_group: group,
            d,
            g,
            reach,
            length: None,
        }
    }

    /// A non-sharing message (private source) with default length.
    pub fn private(d: usize, g: usize, reach: usize) -> Self {
        CycleMessageSpec {
            uses_shared: false,
            shared_group: 0,
            d,
            g,
            reach,
            length: None,
        }
    }

    /// Override the message length.
    pub fn with_length(mut self, length: usize) -> Self {
        self.length = Some(length);
        self
    }

    /// The paper's `a_i`: channels used within the cycle, entry to
    /// destination.
    pub fn a(&self) -> usize {
        self.g + self.reach
    }
}

/// Parameters of a full construction: the cycle messages in cycle
/// order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedCycleSpec {
    /// Cycle messages in dependency order around the ring.
    pub messages: Vec<CycleMessageSpec>,
}

impl SharedCycleSpec {
    /// Validate and build the network, routing algorithm, and handles.
    ///
    /// # Panics
    /// Panics on invalid parameters (these are experiment definitions,
    /// not runtime inputs).
    pub fn build(&self) -> CycleConstruction {
        let k = self.messages.len();
        assert!(k >= 2, "a cycle needs at least two messages");
        for (i, m) in self.messages.iter().enumerate() {
            assert!(m.d >= 1, "message {i}: d must be >= 1");
            assert!(m.g >= 1, "message {i}: g must be >= 1");
            let next_g = self.messages[(i + 1) % k].g;
            assert!(
                (1..=next_g).contains(&m.reach),
                "message {i}: reach must be in 1..={next_g}"
            );
            if let Some(len) = m.length {
                assert!(len >= 1, "message {i}: zero-length message");
            }
        }

        let mut net = Network::new();
        // One source node and labeled shared channel per group in use.
        let groups: Vec<usize> = {
            let mut gs: Vec<usize> = self
                .messages
                .iter()
                .filter(|m| m.uses_shared)
                .map(|m| m.shared_group)
                .collect();
            gs.sort_unstable();
            gs.dedup();
            gs
        };
        // All-private constructions (the Theorem 2 experiments) still
        // get the default Src/c_s pair; it simply goes unused.
        let mut srcs = std::collections::BTreeMap::new();
        let first_src = net.add_node("Src");
        let nstar = net.add_node("N*");
        let cs = net.add_labeled_channel(first_src, nstar, "cs");
        net.add_channel(nstar, first_src);
        srcs.insert(groups.first().copied().unwrap_or(0), (first_src, cs));
        for &g in groups.iter().skip(1) {
            let s = net.add_node(format!("Src{g}"));
            let c = net.add_labeled_channel(s, nstar, format!("cs{g}"));
            net.add_channel(nstar, s);
            srcs.insert(g, (s, c));
        }

        // Ring nodes and channels.
        let ring_len: usize = self.messages.iter().map(|m| m.g).sum();
        let ring_nodes: Vec<NodeId> = (0..ring_len)
            .map(|i| net.add_node(format!("r{i}")))
            .collect();
        // Star links for ring nodes (totality + strong connectivity).
        for &r in &ring_nodes {
            net.add_channel(r, nstar);
            net.add_channel(nstar, r);
        }
        let ring_channels: Vec<ChannelId> = (0..ring_len)
            .map(|i| net.add_channel(ring_nodes[i], ring_nodes[(i + 1) % ring_len]))
            .collect();

        // Segment start positions.
        let mut starts = Vec::with_capacity(k);
        let mut acc = 0;
        for m in &self.messages {
            starts.push(acc);
            acc += m.g;
        }

        // Access paths and message node-walks.
        let mut built: Vec<BuiltMessage> = Vec::with_capacity(k);
        let mut table = TableRouting::new();
        for (i, m) in self.messages.iter().enumerate() {
            let entry_pos = starts[i];
            let entry = ring_nodes[entry_pos];
            // Intermediate access nodes (d-1 of them).
            let hops: Vec<NodeId> = (1..m.d)
                .map(|j| {
                    let n = net.add_node(format!("acc{i}_{j}"));
                    net.add_channel(n, nstar);
                    net.add_channel(nstar, n);
                    n
                })
                .collect();

            // Walk prefix: the group's source -> N* for sharing
            // messages, or a fresh private source node otherwise.
            let mut full_walk: Vec<NodeId> = if m.uses_shared {
                let (s, _) = srcs[&m.shared_group];
                vec![s, nstar]
            } else {
                let p = net.add_node(format!("priv{i}"));
                net.add_channel(p, nstar);
                net.add_channel(nstar, p);
                vec![p]
            };
            // Access chain: last prefix node -> hops -> entry, adding
            // channels where the star links don't already provide them
            // (N* -> first hop, and N* -> entry when d == 1, already
            // exist as star links and are reused).
            let mut prev = *full_walk.last().expect("walk non-empty");
            for &h in &hops {
                if net.find_channel(prev, h).is_none() {
                    net.add_channel(prev, h);
                }
                prev = h;
            }
            if net.find_channel(prev, entry).is_none() {
                net.add_channel(prev, entry);
            }
            full_walk.extend(&hops);
            full_walk.push(entry);
            let a = m.a();
            for step in 1..=a {
                full_walk.push(ring_nodes[(entry_pos + step) % ring_len]);
            }
            let dst = *full_walk.last().expect("non-empty walk");
            let pair_src = full_walk[0];
            built.push(BuiltMessage {
                pair: (pair_src, dst),
                entry_pos,
                spec: m.clone(),
            });
            let path =
                Path::from_nodes(&net, &full_walk).expect("construction produces connected walks");
            table
                .insert(&net, pair_src, dst, path)
                .expect("distinct special pairs");
        }

        // Default routing u -> N* -> v for every remaining pair.
        let nodes: Vec<NodeId> = net.nodes().collect();
        for &u in &nodes {
            for &v in &nodes {
                if u == v || table.path(u, v).is_some() {
                    continue;
                }
                let walk = if u == nstar {
                    vec![nstar, v]
                } else if v == nstar {
                    vec![u, nstar]
                } else {
                    vec![u, nstar, v]
                };
                let path =
                    Path::from_nodes(&net, &walk).expect("star links make defaults connected");
                table.insert(&net, u, v, path).expect("pair not yet routed");
            }
        }
        debug_assert!(table.is_total(&net));

        CycleConstruction {
            net,
            table,
            cs,
            ring: ring_channels,
            built,
        }
    }
}

/// A cycle message as realized in the built network.
#[derive(Clone, Debug)]
pub struct BuiltMessage {
    /// (source, destination) pair of the message.
    pub pair: (NodeId, NodeId),
    /// Ring position of its entry (index into
    /// [`CycleConstruction::ring`]).
    pub entry_pos: usize,
    /// The spec it was built from.
    pub spec: CycleMessageSpec,
}

impl BuiltMessage {
    /// Message length: explicit override or the paper's `a_i`.
    pub fn length(&self) -> usize {
        self.spec.length.unwrap_or_else(|| self.spec.a())
    }
}

/// A built shared-channel cycle network with all analysis handles.
#[derive(Clone, Debug)]
pub struct CycleConstruction {
    /// The network.
    pub net: Network,
    /// The oblivious routing algorithm.
    pub table: TableRouting,
    /// The primary shared channel `c_s` (the lowest-numbered group in
    /// use; labeled `"cs"`). Additional groups get `"cs1"`, `"cs2"`, …
    /// — see [`CycleConstruction::shared_channels`].
    pub cs: ChannelId,
    /// Ring channels in cycle order (position 0 = first message's
    /// entry channel).
    pub ring: Vec<ChannelId>,
    /// The cycle messages in ring order.
    pub built: Vec<BuiltMessage>,
}

impl CycleConstruction {
    /// Simulation specs for the cycle messages (immediate release; the
    /// search controls actual injection times).
    pub fn message_specs(&self) -> Vec<MessageSpec> {
        self.built
            .iter()
            .map(|b| MessageSpec::new(b.pair.0, b.pair.1, b.length()))
            .collect()
    }

    /// The ring as a [`CdgCycle`] in canonical rotation (matching what
    /// [`Cdg::cycles`] returns).
    pub fn cycle(&self) -> CdgCycle {
        let mut channels = self.ring.clone();
        let min_pos = channels
            .iter()
            .enumerate()
            .min_by_key(|&(_, c)| *c)
            .map(|(i, _)| i)
            .expect("ring non-empty");
        channels.rotate_left(min_pos);
        CdgCycle { channels }
    }

    /// The canonical static deadlock candidate: message `i` holds its
    /// segment.
    pub fn canonical_candidate(&self) -> DeadlockCandidate {
        let segments = self
            .built
            .iter()
            .map(|b| Segment {
                msg: b.pair,
                channels: (0..b.spec.g)
                    .map(|j| self.ring[(b.entry_pos + j) % self.ring.len()])
                    .collect(),
            })
            .collect();
        DeadlockCandidate { segments }
    }

    /// Build the CDG of the construction.
    pub fn cdg(&self) -> Cdg {
        Cdg::build(&self.net, &self.table)
    }

    /// Human-readable geometry summary for reports and the CLI.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "shared-channel cycle: ring of {} channels, {} messages, {} shared channel(s)",
            self.ring.len(),
            self.built.len(),
            self.shared_channels().len()
        );
        for (i, b) in self.built.iter().enumerate() {
            let _ = writeln!(
                out,
                "  M{}: {} -> {}  d={} g={} a={} len={}{}",
                i + 1,
                self.net.node_name(b.pair.0),
                self.net.node_name(b.pair.1),
                b.spec.d,
                b.spec.g,
                b.spec.a(),
                b.length(),
                if b.spec.uses_shared {
                    format!("  via shared group {}", b.spec.shared_group)
                } else {
                    "  private source".to_string()
                }
            );
        }
        out
    }

    /// All shared channels, in group order (group 0 first).
    pub fn shared_channels(&self) -> Vec<ChannelId> {
        let mut out = vec![self.cs];
        let mut g = 0usize;
        loop {
            g += 1;
            match self.net.channel_by_label(&format!("cs{g}")) {
                Some(c) => out.push(c),
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormroute::properties;

    fn fig1_spec() -> SharedCycleSpec {
        SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(2, 3, 1),
                CycleMessageSpec::shared(3, 4, 1),
                CycleMessageSpec::shared(2, 3, 1),
                CycleMessageSpec::shared(3, 4, 1),
            ],
        }
    }

    #[test]
    fn builds_strongly_connected_total_network() {
        let c = fig1_spec().build();
        assert!(c.net.is_strongly_connected());
        assert!(c.table.is_total(&c.net));
        assert_eq!(c.ring.len(), 14);
        assert_eq!(c.built.len(), 4);
    }

    #[test]
    fn is_a_valid_oblivious_function() {
        let c = fig1_spec().build();
        assert!(c.table.compile(&c.net).is_ok());
    }

    #[test]
    fn special_paths_have_expected_shape() {
        let c = fig1_spec().build();
        let m0 = &c.built[0];
        let path = c.table.path(m0.pair.0, m0.pair.1).unwrap();
        // cs + d + a channels.
        assert_eq!(path.len(), 1 + 2 + 4);
        assert_eq!(path.channels()[0], c.cs);
        // Last a channels are ring channels.
        for j in 0..m0.spec.a() {
            assert!(c.ring.contains(&path.channels()[3 + j]));
        }
        // Entry channel is ring position 0.
        assert_eq!(path.channels()[3], c.ring[0]);
    }

    #[test]
    fn nonminimal_and_not_coherent() {
        // The special paths are long detours past N*'s direct links,
        // exactly as the paper requires (Theorem 3 rules out minimal
        // versions of this construction).
        let c = fig1_spec().build();
        let r = properties::analyze(&c.net, &c.table);
        assert!(r.total);
        assert!(!r.minimal);
        assert!(!r.suffix_closed, "Corollary 2 requires non-suffix-closure");
        assert!(!r.coherent);
    }

    #[test]
    fn cdg_has_exactly_the_ring_cycle() {
        let c = fig1_spec().build();
        let cdg = c.cdg();
        assert!(!cdg.is_acyclic());
        let cycles = cdg.cycles();
        assert_eq!(cycles.len(), 1, "only the ring cycle must exist");
        assert_eq!(cycles[0], c.cycle());
    }

    #[test]
    fn canonical_candidate_matches_enumeration() {
        let c = fig1_spec().build();
        let cdg = c.cdg();
        let cycle = c.cycle();
        let cands = wormcdg::deadlock_candidates(&cdg, &cycle, 10_000).unwrap();
        // reach == 1 everywhere: the candidate is unique and equals
        // the canonical segment partition (up to rotation of segment
        // order).
        assert_eq!(cands.len(), 1);
        let canonical = c.canonical_candidate();
        let mut a: Vec<_> = cands[0].segments.clone();
        let mut b: Vec<_> = canonical.segments.clone();
        a.sort_by_key(|s| s.msg);
        b.sort_by_key(|s| s.msg);
        assert_eq!(a, b);
    }

    #[test]
    fn shared_channel_analysis_sees_cs_outside() {
        let c = fig1_spec().build();
        let cycle = c.cycle();
        let candidate = c.canonical_candidate();
        let analysis = wormcdg::sharing::analyze(&c.net, &c.table, &cycle, &candidate);
        let outside: Vec<_> = analysis.outside().collect();
        assert_eq!(outside.len(), 1);
        assert_eq!(outside[0].channel, c.cs);
        assert_eq!(outside[0].users.len(), 4);
    }

    #[test]
    fn geometry_matches_parameters() {
        let c = fig1_spec().build();
        let cycle = c.cycle();
        for b in &c.built {
            let g = wormcdg::sharing::geometry(&c.net, &c.table, &cycle, b.pair, Some(c.cs));
            assert_eq!(g.d, Some(b.spec.d), "{:?}", b.pair);
            assert_eq!(g.a, b.spec.a(), "{:?}", b.pair);
        }
    }

    #[test]
    fn private_sources_supported() {
        let spec = SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(1, 2, 1),
                CycleMessageSpec::private(2, 2, 1),
                CycleMessageSpec::shared(2, 2, 1),
            ],
        };
        let c = spec.build();
        assert!(c.net.is_strongly_connected());
        assert!(c.table.is_total(&c.net));
        let m1 = &c.built[1];
        assert_ne!(
            m1.pair.0, c.built[0].pair.0,
            "private source differs from Src"
        );
        let path = c.table.path(m1.pair.0, m1.pair.1).unwrap();
        assert!(!path.contains(c.cs));
        assert_eq!(path.len(), 2 + 3);
    }

    #[test]
    fn lengths_default_to_a() {
        let c = fig1_spec().build();
        let specs = c.message_specs();
        assert_eq!(specs[0].length, 4);
        assert_eq!(specs[1].length, 5);
        let spec2 = SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(1, 2, 1).with_length(9),
                CycleMessageSpec::shared(1, 2, 1),
            ],
        };
        let c2 = spec2.build();
        assert_eq!(c2.message_specs()[0].length, 9);
    }

    #[test]
    fn reach_two_creates_overlap_candidates() {
        let spec = SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(1, 3, 2),
                CycleMessageSpec::shared(2, 3, 2),
            ],
        };
        let c = spec.build();
        let cdg = c.cdg();
        let cands = wormcdg::deadlock_candidates(&cdg, &c.cycle(), 10_000).unwrap();
        // Overlapping reach means some edges have two witnesses, so
        // multiple owner assignments exist.
        assert!(!cands.is_empty());
    }

    #[test]
    fn describe_summarizes_geometry() {
        let c = fig1_spec().build();
        let d = c.describe();
        assert!(d.contains("ring of 14 channels"));
        assert!(d.contains("M1: Src"));
        assert!(d.contains("d=2 g=3 a=4 len=4"));
        assert!(d.contains("shared group 0"));
    }

    #[test]
    fn two_shared_groups_build_two_channels() {
        let spec = SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared_in_group(0, 2, 3, 1),
                CycleMessageSpec::shared_in_group(1, 3, 4, 1),
                CycleMessageSpec::shared_in_group(0, 2, 3, 1),
                CycleMessageSpec::shared_in_group(1, 3, 4, 1),
            ],
        };
        let c = spec.build();
        assert!(c.net.is_strongly_connected());
        assert!(c.table.is_total(&c.net));
        assert!(c.table.compile(&c.net).is_ok());
        let shared = c.shared_channels();
        assert_eq!(shared.len(), 2);
        assert_ne!(shared[0], shared[1]);
        // Messages 0 and 2 use cs; 1 and 3 use cs1.
        for (i, b) in c.built.iter().enumerate() {
            let path = c.table.path(b.pair.0, b.pair.1).unwrap();
            let expect = shared[i % 2];
            assert_eq!(path.channels()[0], expect, "message {i}");
        }
        // Sharing analysis sees both channels outside the cycle, two
        // users each.
        let cycle = c.cycle();
        let candidate = c.canonical_candidate();
        let analysis = wormcdg::sharing::analyze(&c.net, &c.table, &cycle, &candidate);
        let outside: Vec<_> = analysis.outside().collect();
        assert_eq!(outside.len(), 2);
        assert!(outside.iter().all(|s| s.users.len() == 2));
    }

    #[test]
    #[should_panic(expected = "reach must be in")]
    fn reach_beyond_next_segment_rejected() {
        SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(1, 2, 3),
                CycleMessageSpec::shared(1, 2, 1),
            ],
        }
        .build();
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_message_rejected() {
        SharedCycleSpec {
            messages: vec![CycleMessageSpec::shared(1, 2, 1)],
        }
        .build();
    }
}
