//! Figure 3 / Theorem 5: six three-sharer scenarios.
//!
//! The paper's Figure 3 presents six instantiations of a cycle whose
//! shared channel is used by exactly three messages:
//!
//! * (a), (b) — all eight conditions hold: **false resource cycles**
//!   (unreachable configurations);
//! * (c) — condition 4 violated (`M_x`'s access path at least as long
//!   as its in-cycle path): **deadlock**;
//! * (d) — condition 6 violated (`M_y` too far from the shared channel
//!   and not immediately preceded by `M_z`): **deadlock**;
//! * (e) — condition 7 violated (`M_z` too short to outlast `M_x`'s
//!   approach): **deadlock**;
//! * (f) — a fourth message that does not use the shared channel,
//!   violating conditions 6 and 8: **deadlock**.
//!
//! The figure itself is graphical (and the available scan is too
//! degraded to read off exact channel counts), so the six instances
//! below are *reconstructions*: parameter choices that make exactly
//! the targeted conditions fail. The experiment suite validates each
//! verdict twice — once by the eight-condition checker, once by
//! exhaustive reachability search.

use crate::family::{CycleMessageSpec, SharedCycleSpec};

/// One Figure 3 scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// "a" through "f".
    pub name: &'static str,
    /// The construction parameters.
    pub spec: SharedCycleSpec,
    /// The paper's verdict: `true` = unreachable (false resource
    /// cycle), `false` = reachable deadlock.
    pub paper_unreachable: bool,
    /// Which conditions (1-based) the scenario is designed to violate
    /// (empty for (a)/(b)).
    pub violated_conditions: &'static [usize],
    /// Extra message instances the adversary injects beyond the cycle
    /// messages: `(cycle message index, length)`. The paper's model
    /// lets nodes "generate messages of arbitrary length at any rate";
    /// scenario (c)'s deadlock needs a long duplicate of the
    /// non-sharing predecessor, which parks on `M_x`'s entry channel
    /// while draining ("that message can block M_x indefinitely by
    /// creating a long enough message").
    pub extras: &'static [(usize, usize)],
}

impl Scenario {
    /// Simulation specs for the search: the cycle messages at their
    /// adversarial *minimum* lengths (just long enough to hold their
    /// segments — the paper's model lets the adversary pick lengths,
    /// and shorter messages release the shared channel sooner), plus
    /// any extra instances.
    pub fn message_specs(&self, c: &crate::family::CycleConstruction) -> Vec<wormsim::MessageSpec> {
        let mut specs: Vec<wormsim::MessageSpec> = c
            .built
            .iter()
            .map(|b| wormsim::MessageSpec::new(b.pair.0, b.pair.1, b.spec.g))
            .collect();
        for &(idx, len) in self.extras {
            let b = &c.built[idx];
            specs.push(wormsim::MessageSpec::new(b.pair.0, b.pair.1, len));
        }
        specs
    }
}

/// Scenario (a): all eight conditions hold — a false resource cycle.
pub fn scenario_a() -> Scenario {
    Scenario {
        name: "a",
        spec: SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(4, 5, 1), // M_x
                CycleMessageSpec::shared(1, 5, 1), // M_z
                CycleMessageSpec::shared(2, 5, 1), // M_y
            ],
        },
        paper_unreachable: true,
        violated_conditions: &[],
        extras: &[],
    }
}

/// Scenario (b): all conditions hold, with condition 6 satisfied via
/// its second disjunct (`M_z` immediately precedes `M_y`), mirroring
/// the paper's "(b) false resource cycle ... even though message `M_y`
/// can be blocked between the shared channel and the cycle".
pub fn scenario_b() -> Scenario {
    Scenario {
        name: "b",
        spec: SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(6, 7, 1), // M_x
                CycleMessageSpec::shared(1, 6, 1), // M_z
                CycleMessageSpec::shared(5, 4, 1), // M_y: a_y = 5 <= d_y
            ],
        },
        paper_unreachable: true,
        violated_conditions: &[],
        extras: &[],
    }
}

/// Scenario (c): condition 4 violated — `M_x` uses no more channels
/// within the cycle than from the shared channel to it.
///
/// With `d_x >= a_x`, a message blocked at `M_x`'s cycle entry no
/// longer ties up the shared channel (its worm fits entirely on the
/// access path), so the paper's reduction applies: the non-sharing
/// predecessor parks a *long* instance on `M_x`'s entry channel while
/// draining, the remaining two sharers run Theorem 4's schedule, a
/// fresh predecessor instance takes the vacated segment, and the
/// deadlock closes. The `extras` entry supplies the long parker.
pub fn scenario_c() -> Scenario {
    Scenario {
        name: "c",
        spec: SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(3, 2, 1),  // M_x: a_x = 3 <= 3
                CycleMessageSpec::shared(1, 3, 1),  // M_z
                CycleMessageSpec::shared(2, 2, 1),  // M_y
                CycleMessageSpec::private(1, 2, 1), // predecessor of M_x
            ],
        },
        paper_unreachable: false,
        violated_conditions: &[4],
        extras: &[(3, 15)],
    }
}

/// Scenario (d): condition 6 violated — `M_y`'s access path is at
/// least as long as its in-cycle path (`a_y <= d_y`) and `M_z` does
/// not immediately precede it in the cycle.
///
/// As in (c), the violated condition means `M_y` can be blocked at its
/// cycle entry *without* tying up the shared channel; the non-sharing
/// spacer that precedes it parks a long instance there ("blocking M_y
/// temporarily may lead to a deadlock configuration"), the sharers
/// sequence through `c_s`, and a fresh spacer instance closes the
/// cycle.
pub fn scenario_d() -> Scenario {
    Scenario {
        name: "d",
        spec: SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(4, 5, 1),  // M_x
                CycleMessageSpec::shared(1, 3, 1),  // M_z
                CycleMessageSpec::private(1, 1, 1), // spacer (no c_s)
                CycleMessageSpec::shared(3, 2, 1),  // M_y: a_y = 3 <= 3
            ],
        },
        paper_unreachable: false,
        violated_conditions: &[6],
        extras: &[(2, 15)],
    }
}

/// Scenario (e): condition 7 violated — `M_x`'s access path is long
/// enough that `M_z`, serialized behind `M_x` and `M_y` on the shared
/// channel, still reaches its entry in time to block `M_x`.
pub fn scenario_e() -> Scenario {
    Scenario {
        name: "e",
        spec: SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(5, 5, 1), // M_x: 5 >= d_z + g_y + 2
                CycleMessageSpec::shared(1, 3, 1), // M_z
                CycleMessageSpec::shared(2, 2, 1), // M_y
            ],
        },
        paper_unreachable: false,
        violated_conditions: &[7],
        extras: &[],
    }
}

/// Scenario (f): a fourth, non-sharing message between `M_z` and
/// `M_y`; conditions 6 and 8 violated.
pub fn scenario_f() -> Scenario {
    Scenario {
        name: "f",
        spec: SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(5, 6, 1),  // M_x
                CycleMessageSpec::shared(1, 5, 1),  // M_z
                CycleMessageSpec::private(1, 6, 1), // S4 -> D4, no c_s
                CycleMessageSpec::shared(4, 3, 1),  // M_y
            ],
        },
        paper_unreachable: false,
        violated_conditions: &[6, 8],
        extras: &[],
    }
}

/// All six scenarios in paper order.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![
        scenario_a(),
        scenario_b(),
        scenario_c(),
        scenario_d(),
        scenario_e(),
        scenario_f(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditions::eight_conditions;
    use wormsearch::{explore, SearchConfig};
    use wormsim::Sim;

    fn checker_verdict(s: &Scenario) -> (bool, Vec<usize>) {
        let c = s.spec.build();
        let cycle = c.cycle();
        let candidate = c.canonical_candidate();
        let analysis = wormcdg::sharing::analyze(&c.net, &c.table, &cycle, &candidate);
        let shared = analysis
            .outside()
            .find(|sc| sc.channel == c.cs)
            .expect("cs shared outside");
        let ec = eight_conditions(&c.net, &c.table, &cycle, &candidate, shared).unwrap();
        (ec.unreachable(), ec.failing())
    }

    fn search_verdict(s: &Scenario) -> bool {
        // true = unreachable (deadlock-free)
        let c = s.spec.build();
        let sim = Sim::new(&c.net, &c.table, s.message_specs(&c), Some(1)).unwrap();
        explore(&sim, &SearchConfig::default()).verdict.is_free()
    }

    #[test]
    fn checker_matches_designed_violations() {
        for s in all_scenarios() {
            let (unreachable, failing) = checker_verdict(&s);
            assert_eq!(
                unreachable, s.paper_unreachable,
                "scenario ({}) checker verdict",
                s.name
            );
            for v in s.violated_conditions {
                assert!(
                    failing.contains(v),
                    "scenario ({}) should violate condition {v}, failing = {failing:?}",
                    s.name
                );
            }
        }
    }

    #[test]
    fn search_matches_paper_verdicts() {
        for s in all_scenarios() {
            let free = search_verdict(&s);
            assert_eq!(
                free, s.paper_unreachable,
                "scenario ({}) search verdict",
                s.name
            );
        }
    }
}
