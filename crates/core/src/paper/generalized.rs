//! Section 6: the generalized family `G(k)` — unreachable cycles that
//! survive arbitrary bounded clock skew.
//!
//! Figure 1's unreachability argument hinges on a one-cycle timing
//! margin, which might seem to demand tightly synchronous routers.
//! Section 6 generalizes the construction so the margin is a free
//! parameter: in `G(k)` the even messages' access paths are `k`
//! channels longer than the odd ones', and forming the deadlock
//! requires delaying some message at least `k` cycles *even though its
//! output channel is free*. Since `k` is arbitrary, bounded skew can
//! never create the deadlock.
//!
//! Concretely, `G(k)` keeps the two features the paper's Section 6
//! isolates: (1) every message uses more channels inside the cycle
//! than from the shared channel to the cycle (`g = k + 3 > d`), so
//! blocking a message outside the cycle also blocks the shared
//! channel; and (2) the even messages' access distance exceeds the odd
//! ones' by exactly `k` (`d_even = d_odd + k`), so the even messages
//! cannot win the race to their blocking positions without `k` cycles
//! of outside help.
//!
//! Our reproduction measures exactly that: the exhaustive search is
//! given an adversarial stall budget `b` and reports the minimum `b`
//! at which the deadlock becomes reachable; the paper predicts growth
//! linear in `k`, and the measured minimum is `k + 1` for every `k`
//! probed (the `+1` is our router model's fixed header-acquisition
//! margin).

use crate::family::{CycleConstruction, CycleMessageSpec, SharedCycleSpec};
use wormsim::MessageSpec;

/// Parameters of `G(k)`: Figure 1's shape with the odd/even access gap
/// widened to `k` and all ring segments equal (`g = k + 3`, the
/// minimum keeping `a > d` for the even messages).
pub fn spec(k: usize) -> SharedCycleSpec {
    assert!(k >= 1, "the gap must be at least one channel");
    let g = k + 3;
    SharedCycleSpec {
        messages: vec![
            CycleMessageSpec::shared(2, g, 1),
            CycleMessageSpec::shared(2 + k, g, 1),
            CycleMessageSpec::shared(2, g, 1),
            CycleMessageSpec::shared(2 + k, g, 1),
        ],
    }
}

/// Build `G(k)`.
pub fn generalized(k: usize) -> CycleConstruction {
    spec(k).build()
}

/// The adversarial minimum-length message set for `G(k)`: each message
/// exactly long enough to hold its ring segment (Section 3 argues this
/// is the worst case; longer messages only serialize the shared
/// channel further).
pub fn minimum_length_specs(c: &CycleConstruction) -> Vec<MessageSpec> {
    c.built
        .iter()
        .map(|b| MessageSpec::new(b.pair.0, b.pair.1, b.spec.g))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsearch::{explore, min_stall_budget, SearchConfig};
    use wormsim::Sim;

    #[test]
    fn family_members_are_deadlock_free_without_stalls() {
        for k in 1..=3 {
            let c = generalized(k);
            let sim = Sim::new(&c.net, &c.table, minimum_length_specs(&c), Some(1)).unwrap();
            let result = explore(&sim, &SearchConfig::default());
            assert!(result.verdict.is_free(), "G({k}): {:?}", result.verdict);
        }
    }

    #[test]
    fn required_stall_budget_is_k_plus_one() {
        for k in 1..=2u32 {
            let c = generalized(k as usize);
            let sim = Sim::new(&c.net, &c.table, minimum_length_specs(&c), Some(1)).unwrap();
            let (min, _) = min_stall_budget(&sim, k + 4, 3_000_000);
            assert_eq!(
                min,
                Some(k + 1),
                "G({k}) should need exactly k+1 adversarial stalls"
            );
        }
    }

    #[test]
    fn paper_default_lengths_also_deadlock_free() {
        let c = generalized(2);
        let sim = Sim::new(&c.net, &c.table, c.message_specs(), Some(1)).unwrap();
        assert!(explore(&sim, &SearchConfig::default()).verdict.is_free());
    }
}
