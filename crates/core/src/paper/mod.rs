//! The paper's concrete constructions.

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod generalized;
