//! Figure 1: the **Cyclic Dependency routing algorithm** — oblivious,
//! deadlock-free, with a cyclic channel dependency graph.
//!
//! Reconstruction from the paper's Section 4 and Theorem 1:
//!
//! * four messages `M1..M4` from `Src` to `D1..D4`, all using the
//!   shared channel `c_s = Src → N*`;
//! * `M1`/`M3` use **two** channels from `N*` to the cycle
//!   (`d = 2`) and must hold **three** channels within the cycle
//!   (`g = 3`); `M2`/`M4` use three (`d = 3`) and must hold four
//!   (`g = 4`);
//! * each destination `D_i` lies one channel past the next message's
//!   entry (`reach = 1`), so `M1` routes through `D4`, `M2` through
//!   `D1`, and so on;
//! * all other traffic routes through `N*` directly.
//!
//! Theorem 1 argues the cycle is an unreachable configuration: to
//! block `M1`, `M2` must be injected earlier, and symmetrically for
//! `M3`/`M4` — but the four messages must use `c_s` consecutively and
//! the odd messages' shorter access paths make the required schedule
//! impossible. The test suite verifies this *mechanically*: the
//! exhaustive search proves no injection order, arbitration choice, or
//! buffer-size reduction produces a deadlock, while a static deadlock
//! configuration does exist (the false resource cycle).

use crate::family::{CycleConstruction, CycleMessageSpec, SharedCycleSpec};

/// Parameters of the paper's Figure 1 instance.
pub fn spec() -> SharedCycleSpec {
    SharedCycleSpec {
        messages: vec![
            CycleMessageSpec::shared(2, 3, 1), // M1
            CycleMessageSpec::shared(3, 4, 1), // M2
            CycleMessageSpec::shared(2, 3, 1), // M3
            CycleMessageSpec::shared(3, 4, 1), // M4
        ],
    }
}

/// Build the Cyclic Dependency routing algorithm's network and table.
pub fn cyclic_dependency() -> CycleConstruction {
    spec().build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsearch::{explore, SearchConfig};
    use wormsim::Sim;

    #[test]
    fn cdg_is_cyclic() {
        let c = cyclic_dependency();
        let cdg = c.cdg();
        assert!(!cdg.is_acyclic());
        assert_eq!(cdg.cycles().len(), 1);
    }

    #[test]
    fn static_deadlock_candidate_exists() {
        let c = cyclic_dependency();
        let cands = wormcdg::deadlock_candidates(&c.cdg(), &c.cycle(), 1000).unwrap();
        assert_eq!(cands.len(), 1, "the canonical configuration");
        assert_eq!(cands[0].segments.len(), 4);
        let mut held: Vec<usize> = cands[0].segments.iter().map(|s| s.channels.len()).collect();
        held.sort_unstable();
        assert_eq!(held, vec![3, 3, 4, 4], "paper: M1/M3 hold 3, M2/M4 hold 4");
    }

    /// Theorem 1, machine-checked: with paper lengths (ℓ_i = a_i) and
    /// one-flit buffers, no adversary schedule deadlocks.
    #[test]
    fn theorem1_deadlock_free_paper_lengths() {
        let c = cyclic_dependency();
        let sim = Sim::new(&c.net, &c.table, c.message_specs(), Some(1)).unwrap();
        let result = explore(&sim, &SearchConfig::default());
        assert!(
            result.verdict.is_free(),
            "Figure 1 must be deadlock-free: {:?}",
            result.verdict
        );
    }

    /// Theorem 1's "more than four messages" case: the proof argues
    /// that because every message uses more channels inside the cycle
    /// than from the shared channel to it, parking tricks with extra
    /// message instances cannot help the adversary. Machine-check with
    /// a duplicate of M2 at a length the base messages don't use.
    #[test]
    fn theorem1_robust_to_duplicate_instances() {
        let c = cyclic_dependency();
        let mut specs: Vec<wormsim::MessageSpec> = c
            .built
            .iter()
            .map(|b| wormsim::MessageSpec::new(b.pair.0, b.pair.1, b.spec.g))
            .collect();
        let m2 = &c.built[1];
        specs.push(wormsim::MessageSpec::new(m2.pair.0, m2.pair.1, 8));
        let sim = Sim::new(&c.net, &c.table, specs, Some(1)).unwrap();
        let result = explore(&sim, &SearchConfig::default());
        assert!(result.verdict.is_free(), "{:?}", result.verdict);
    }

    /// The single shared channel is essential: splitting Figure 1's
    /// four sharers across two shared channels (two sharers each, any
    /// arrangement) destroys unreachability — consistent with
    /// Theorem 4 composing across channels. Empirical answer to the
    /// paper's Section 7 open problem for this family.
    #[test]
    fn splitting_the_shared_channel_restores_deadlock() {
        use crate::family::{CycleMessageSpec, SharedCycleSpec};
        for groups in [[0usize, 1, 0, 1], [0, 0, 1, 1]] {
            let ds = [2usize, 3, 2, 3];
            let gs = [3usize, 4, 3, 4];
            let spec = SharedCycleSpec {
                messages: (0..4)
                    .map(|i| CycleMessageSpec::shared_in_group(groups[i], ds[i], gs[i], 1))
                    .collect(),
            };
            let c = spec.build();
            let specs: Vec<wormsim::MessageSpec> = c
                .built
                .iter()
                .map(|b| wormsim::MessageSpec::new(b.pair.0, b.pair.1, b.spec.g))
                .collect();
            let sim = Sim::new(&c.net, &c.table, specs, Some(1)).unwrap();
            let result = explore(&sim, &SearchConfig::default());
            assert!(
                result.verdict.is_deadlock(),
                "groups {groups:?} must deadlock"
            );
        }
    }

    /// Theorem 1 at the adversarial minimum: messages just long enough
    /// to hold their segments.
    #[test]
    fn theorem1_deadlock_free_minimum_lengths() {
        let c = cyclic_dependency();
        let specs: Vec<wormsim::MessageSpec> = c
            .built
            .iter()
            .map(|b| wormsim::MessageSpec::new(b.pair.0, b.pair.1, b.spec.g))
            .collect();
        let sim = Sim::new(&c.net, &c.table, specs, Some(1)).unwrap();
        let result = explore(&sim, &SearchConfig::default());
        assert!(result.verdict.is_free(), "{:?}", result.verdict);
    }
}
