//! Figure 2 / Theorem 4: a channel shared by exactly **two** messages
//! outside the cycle always yields a reachable deadlock.
//!
//! The construction: two messages through `c_s` with different access
//! distances. The paper's schedule — inject the longer-access message
//! first, the other immediately after — lets both reach the cycle in
//! time to block each other.

use crate::family::{CycleConstruction, CycleMessageSpec, SharedCycleSpec};

/// Parameters of the Figure 2 instance: two sharers with access
/// distances 3 and 1.
pub fn spec() -> SharedCycleSpec {
    SharedCycleSpec {
        messages: vec![
            CycleMessageSpec::shared(3, 3, 1), // M1: longer access path
            CycleMessageSpec::shared(1, 3, 1), // M2
        ],
    }
}

/// Build the Figure 2 network and routing algorithm.
pub fn two_message_deadlock() -> CycleConstruction {
    spec().build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsearch::{explore, replay, SearchConfig, Verdict};
    use wormsim::Sim;

    #[test]
    fn cdg_is_cyclic_with_candidates() {
        let c = two_message_deadlock();
        assert!(!c.cdg().is_acyclic());
        let cands = wormcdg::deadlock_candidates(&c.cdg(), &c.cycle(), 1000).unwrap();
        assert!(!cands.is_empty());
    }

    /// Theorem 4, machine-checked: the search finds a deadlock
    /// schedule, and it replays.
    #[test]
    fn theorem4_deadlock_reachable() {
        let c = two_message_deadlock();
        let sim = Sim::new(&c.net, &c.table, c.message_specs(), Some(1)).unwrap();
        let result = explore(&sim, &SearchConfig::default());
        let Verdict::DeadlockReachable(witness) = &result.verdict else {
            panic!("Figure 2 must deadlock: {:?}", result.verdict);
        };
        assert_eq!(witness.members.len(), 2);
        assert_eq!(witness.stalls_used(), 0, "no adversarial stalls needed");
        assert!(replay(&sim, witness).is_some());
    }

    /// The shared-channel analysis sees exactly the Theorem 4 shape.
    #[test]
    fn sharing_shape_is_two_outside() {
        let c = two_message_deadlock();
        let cycle = c.cycle();
        let candidate = c.canonical_candidate();
        let analysis = wormcdg::sharing::analyze(&c.net, &c.table, &cycle, &candidate);
        let outside: Vec<_> = analysis.outside().collect();
        assert_eq!(outside.len(), 1);
        assert_eq!(outside[0].channel, c.cs);
        assert_eq!(outside[0].users.len(), 2);
    }
}
