//! # wormtrace — unified observability for the cyclic-wormhole stack
//!
//! Every layer of the reproduction — the flit-level simulator, the
//! sequential and parallel reachability engines, the classification
//! pipeline — wants to explain *what it did*: how many cycles were
//! simulated, how many arbitration conflicts arose, which theorem
//! decided a verdict, how fast states were visited. Before this crate
//! each subsystem printed its own ad-hoc numbers; `wormtrace` gives
//! them one vocabulary:
//!
//! * **counters** — monotonically accumulated `u64` event counts
//!   ([`counter`]), e.g. `sim.cycles` or `classify.theorem5`;
//! * **gauges** — last-value or high-water-mark `f64` measurements
//!   ([`gauge`], [`gauge_max`]), e.g. `search.frontier_peak`;
//! * **spans** — wall-clock durations of named regions measured by an
//!   RAII guard ([`span`]), e.g. `search.parallel`.
//!
//! All three go through a global [`Recorder`] installed with
//! [`install`]. When no recorder is installed (the default) every
//! entry point is a single relaxed atomic load and an untaken branch —
//! the instrumented hot paths of `wormsim` and `wormsearch` run at
//! full speed. [`MemoryRecorder`] is the standard sink: thread-safe
//! in-memory accumulation, snapshot into a [`TraceReport`], and
//! serialization to the `wormtrace/1` JSON schema documented in
//! `docs/TRACING.md` (no serde — the writer is hand-rolled and
//! dependency-free).
//!
//! The metric-name catalog emitted by the workspace crates is part of
//! the public interface and is documented in `docs/TRACING.md`; the
//! `exp_*` experiment binaries expose it via their `--trace <path>`
//! flag, and `run_all` merges per-experiment reports into one
//! `trace_summary.json` so benchmark trajectories can be diffed
//! across commits.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use wormtrace::{MemoryRecorder, Recorder};
//!
//! let rec = Arc::new(MemoryRecorder::new());
//! // Record directly (unit tests) or via wormtrace::install (binaries).
//! rec.add("sim.cycles", 3);
//! rec.gauge_max("search.frontier_peak", 17.0);
//! let report = rec.snapshot();
//! assert_eq!(report.counters["sim.cycles"], 3);
//! assert!(report.to_json("demo").contains("\"schema\": \"wormtrace/1\""));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod recorder;
mod report;
mod span;

pub use recorder::{MemoryRecorder, NoopRecorder, Recorder};
pub use report::{summarize, SpanStat, TraceReport, SCHEMA, SUMMARY_SCHEMA};
pub use span::Span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// Whether a recorder is currently installed.
///
/// One relaxed atomic load: instrumented hot paths call this (or the
/// free functions below, which call it first) unconditionally, so the
/// disabled cost is a predictable branch — measured well under the
/// 5 % budget on the search-heavy experiment binaries.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install `recorder` as the global sink, replacing any previous one.
///
/// Subsequent [`counter`]/[`gauge`]/[`gauge_max`]/[`span`] calls from
/// any thread flow into it. Binaries install once at startup;
/// replacing mid-run is allowed (tests use it) but events racing the
/// swap may land in either recorder.
pub fn install(recorder: Arc<dyn Recorder>) {
    *RECORDER.write().expect("recorder lock") = Some(recorder);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Remove the global recorder, returning instrumentation to the
/// no-op fast path.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Relaxed);
    *RECORDER.write().expect("recorder lock") = None;
}

/// Run `f` with the installed recorder, if any.
fn with_recorder(f: impl FnOnce(&dyn Recorder)) {
    if let Some(r) = RECORDER.read().expect("recorder lock").as_ref() {
        f(r.as_ref());
    }
}

/// Add `delta` to the counter `name`. No-op unless a recorder is
/// installed.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if enabled() {
        with_recorder(|r| r.add(name, delta));
    }
}

/// Set the gauge `name` to `value` (last write wins). No-op unless a
/// recorder is installed.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if enabled() {
        with_recorder(|r| r.gauge(name, value));
    }
}

/// Raise the gauge `name` to `value` if `value` is larger (high-water
/// mark). No-op unless a recorder is installed.
#[inline]
pub fn gauge_max(name: &'static str, value: f64) {
    if enabled() {
        with_recorder(|r| r.gauge_max(name, value));
    }
}

/// Start timing the named region; the returned guard records the
/// elapsed wall-clock time as a span observation when dropped.
///
/// When no recorder is installed the guard holds no timestamp and
/// drop does nothing.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span::start(name, enabled())
}

/// Record one explicit span observation (for callers that already
/// measured a duration themselves). No-op unless a recorder is
/// installed.
#[inline]
pub fn span_elapsed(name: &'static str, elapsed: std::time::Duration) {
    if enabled() {
        with_recorder(|r| r.span(name, elapsed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes the tests that touch the global recorder.
    static GLOBAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_calls_are_noops() {
        let _g = GLOBAL.lock().unwrap();
        uninstall();
        assert!(!enabled());
        counter("x", 1);
        gauge("y", 2.0);
        gauge_max("z", 3.0);
        drop(span("s"));
        // Nothing to observe: the point is that none of the above
        // panicked or required a recorder.
    }

    #[test]
    fn install_routes_all_instruments() {
        let _g = GLOBAL.lock().unwrap();
        let rec = Arc::new(MemoryRecorder::new());
        install(rec.clone());
        assert!(enabled());
        counter("c", 2);
        counter("c", 3);
        gauge("g", 1.5);
        gauge_max("m", 4.0);
        gauge_max("m", 2.0); // lower: ignored
        {
            let _s = span("region");
        }
        span_elapsed("region", std::time::Duration::from_micros(5));
        uninstall();
        counter("c", 100); // after uninstall: dropped
        let report = rec.snapshot();
        assert_eq!(report.counters["c"], 5);
        assert_eq!(report.gauges["g"], 1.5);
        assert_eq!(report.gauges["m"], 4.0);
        assert_eq!(report.spans["region"].count, 2);
    }

    #[test]
    fn install_replaces_previous_recorder() {
        let _g = GLOBAL.lock().unwrap();
        let first = Arc::new(MemoryRecorder::new());
        let second = Arc::new(MemoryRecorder::new());
        install(first.clone());
        counter("k", 1);
        install(second.clone());
        counter("k", 10);
        uninstall();
        assert_eq!(first.snapshot().counters["k"], 1);
        assert_eq!(second.snapshot().counters["k"], 10);
    }
}
