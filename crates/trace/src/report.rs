//! Owned metric snapshots and the `wormtrace/1` JSON format.
//!
//! The serializer is hand-rolled (the workspace builds offline with no
//! registry access, so serde is not available); the format is the
//! small, stable subset documented in `docs/TRACING.md` and every
//! writer in this module emits strictly valid JSON.

use std::collections::BTreeMap;
use std::time::Duration;

/// Schema identifier stamped into every per-experiment report.
pub const SCHEMA: &str = "wormtrace/1";

/// Schema identifier stamped into the `run_all` aggregate report.
pub const SUMMARY_SCHEMA: &str = "wormtrace-summary/1";

/// Aggregate statistics for one named span.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of observations (guard drops / explicit records).
    pub count: u64,
    /// Total wall-clock time across all observations.
    pub total: Duration,
}

/// An owned snapshot of one recorder's counters, gauges and spans.
///
/// Keys are sorted (`BTreeMap`), so serialization is deterministic —
/// two runs with identical metrics produce byte-identical reports,
/// which is what makes `trace_summary.json` diffable across commits.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceReport {
    /// Counter values by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric name.
    pub gauges: BTreeMap<String, f64>,
    /// Span statistics by span name.
    pub spans: BTreeMap<String, SpanStat>,
}

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON value (`null` for non-finite values,
/// which JSON cannot represent as numbers).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v:?}");
        // `{:?}` prints integral floats as e.g. "4.0" — already valid.
        s
    } else {
        "null".to_string()
    }
}

impl TraceReport {
    /// Serialize to the `wormtrace/1` JSON schema, labelled with the
    /// producing experiment's name (2-space indentation, sorted keys,
    /// trailing newline).
    pub fn to_json(&self, experiment: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", escape(SCHEMA)));
        out.push_str(&format!("  \"experiment\": \"{}\",\n", escape(experiment)));

        out.push_str("  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str(&format!("    \"{}\": {v}", escape(k)));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str(&format!("    \"{}\": {}", escape(k), json_f64(*v)));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"spans\": {");
        first = true;
        for (k, s) in &self.spans {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"total_ns\": {}}}",
                escape(k),
                s.count,
                s.total.as_nanos()
            ));
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });

        out.push_str("}\n");
        out
    }
}

/// Merge per-experiment `wormtrace/1` reports into one
/// `wormtrace-summary/1` document.
///
/// Each entry is `(experiment name, raw report JSON)`; the raw text
/// is embedded verbatim (re-indented), so no JSON parsing is needed —
/// `run_all` reads each child's `--trace` output file and hands the
/// strings straight here. Inputs must already be valid JSON for the
/// output to be.
pub fn summarize<'a>(entries: impl IntoIterator<Item = (&'a str, &'a str)>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{}\",\n", escape(SUMMARY_SCHEMA)));
    out.push_str("  \"experiments\": {");
    let mut first = true;
    for (name, raw) in entries {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str(&format!("    \"{}\": ", escape(name)));
        // Re-indent the embedded document so the summary stays
        // readable; JSON itself is whitespace-insensitive.
        let mut lines = raw.trim_end().lines();
        if let Some(line) = lines.next() {
            out.push_str(line);
        }
        for line in lines {
            out.push('\n');
            out.push_str("    ");
            out.push_str(line);
        }
    }
    out.push_str(if first { "}\n" } else { "\n  }\n" });
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal JSON well-formedness checker (objects, strings,
    /// numbers, null) — enough to validate our own writer without a
    /// parser dependency.
    fn check_json(s: &str) {
        fn value(b: &[u8], mut i: usize) -> usize {
            while b[i].is_ascii_whitespace() {
                i += 1;
            }
            match b[i] {
                b'{' => {
                    i += 1;
                    loop {
                        while b[i].is_ascii_whitespace() {
                            i += 1;
                        }
                        if b[i] == b'}' {
                            return i + 1;
                        }
                        assert_eq!(b[i], b'"', "object key at {i}");
                        i = string(b, i);
                        while b[i].is_ascii_whitespace() {
                            i += 1;
                        }
                        assert_eq!(b[i], b':', "colon at {i}");
                        i = value(b, i + 1);
                        while b[i].is_ascii_whitespace() {
                            i += 1;
                        }
                        match b[i] {
                            b',' => i += 1,
                            b'}' => return i + 1,
                            c => panic!("unexpected {} at {i}", c as char),
                        }
                    }
                }
                b'"' => string(b, i),
                b'n' => {
                    assert_eq!(&b[i..i + 4], b"null");
                    i + 4
                }
                _ => {
                    let start = i;
                    while i < b.len()
                        && (b[i].is_ascii_digit()
                            || matches!(b[i], b'-' | b'+' | b'.' | b'e' | b'E'))
                    {
                        i += 1;
                    }
                    assert!(i > start, "number expected at {start}");
                    i
                }
            }
        }
        fn string(b: &[u8], i: usize) -> usize {
            assert_eq!(b[i], b'"');
            let mut i = i + 1;
            loop {
                match b[i] {
                    b'\\' => i += 2,
                    b'"' => return i + 1,
                    _ => i += 1,
                }
            }
        }
        let b = s.as_bytes();
        let end = value(b, 0);
        assert!(
            s[end..].trim().is_empty(),
            "trailing garbage: {:?}",
            &s[end..]
        );
    }

    fn sample() -> TraceReport {
        TraceReport {
            counters: [("sim.cycles".to_string(), 42u64)].into_iter().collect(),
            gauges: [
                ("search.frontier_peak".to_string(), 17.0),
                ("bad".to_string(), f64::NAN),
            ]
            .into_iter()
            .collect(),
            spans: [(
                "search.parallel".to_string(),
                SpanStat {
                    count: 2,
                    total: Duration::from_micros(1500),
                },
            )]
            .into_iter()
            .collect(),
        }
    }

    #[test]
    fn report_json_is_valid_and_complete() {
        let json = sample().to_json("exp_demo");
        check_json(&json);
        assert!(json.contains("\"schema\": \"wormtrace/1\""));
        assert!(json.contains("\"experiment\": \"exp_demo\""));
        assert!(json.contains("\"sim.cycles\": 42"));
        assert!(json.contains("\"search.frontier_peak\": 17.0"));
        assert!(json.contains("\"bad\": null"));
        assert!(json.contains("\"total_ns\": 1500000"));
    }

    #[test]
    fn empty_report_is_valid() {
        let json = TraceReport::default().to_json("empty");
        check_json(&json);
        assert!(json.contains("\"counters\": {}"));
    }

    #[test]
    fn keys_are_escaped() {
        let mut report = TraceReport::default();
        report.counters.insert("we\"ird\\name".to_string(), 1);
        let json = report.to_json("quote\"test");
        check_json(&json);
        assert!(json.contains("we\\\"ird\\\\name"));
    }

    #[test]
    fn summary_embeds_reports_verbatim() {
        let a = sample().to_json("exp_a");
        let b = TraceReport::default().to_json("exp_b");
        let summary = summarize([("exp_a", a.as_str()), ("exp_b", b.as_str())]);
        check_json(&summary);
        assert!(summary.contains("\"schema\": \"wormtrace-summary/1\""));
        assert!(summary.contains("\"exp_a\": {"));
        assert!(summary.contains("\"sim.cycles\": 42"));
    }

    #[test]
    fn empty_summary_is_valid() {
        check_json(&summarize([]));
    }
}
