//! The [`Recorder`] trait and its two standard implementations.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use crate::report::{SpanStat, TraceReport};

/// A sink for instrumentation events.
///
/// Implementations must be cheap and thread-safe: the simulator and
/// the parallel search workers call these methods concurrently from
/// hot loops whenever tracing is enabled. Metric names are `'static`
/// string literals by design — the workspace's metric catalog is
/// fixed at compile time (see `docs/TRACING.md`), which keeps the
/// recording path free of allocation.
pub trait Recorder: Send + Sync {
    /// Add `delta` to the counter `name` (creating it at zero).
    fn add(&self, name: &'static str, delta: u64);
    /// Set the gauge `name` to `value` (last write wins).
    fn gauge(&self, name: &'static str, value: f64);
    /// Raise the gauge `name` to `value` if larger (high-water mark).
    fn gauge_max(&self, name: &'static str, value: f64);
    /// Record one observation of the span `name` lasting `elapsed`.
    fn span(&self, name: &'static str, elapsed: Duration);
}

/// The do-nothing recorder: every method is an empty body the
/// optimizer removes entirely.
///
/// Installing it is equivalent to (but slightly slower than) calling
/// [`crate::uninstall`], which also clears the enabled fast-path flag;
/// its real use is as a stand-in where a `&dyn Recorder` is required
/// unconditionally.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn add(&self, _name: &'static str, _delta: u64) {}
    fn gauge(&self, _name: &'static str, _value: f64) {}
    fn gauge_max(&self, _name: &'static str, _value: f64) {}
    fn span(&self, _name: &'static str, _elapsed: Duration) {}
}

/// Thread-safe in-memory accumulation, snapshotted into a
/// [`TraceReport`].
///
/// This is the recorder the `exp_*` binaries install when given
/// `--trace <path>`: counters, gauges and span statistics accumulate
/// for the whole process lifetime and are serialized once at exit.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    spans: Mutex<BTreeMap<&'static str, SpanStat>>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        MemoryRecorder::default()
    }

    /// Copy the current values into an owned, lock-free report.
    pub fn snapshot(&self) -> TraceReport {
        TraceReport {
            counters: self
                .counters
                .lock()
                .expect("counter lock")
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("gauge lock")
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            spans: self
                .spans
                .lock()
                .expect("span lock")
                .iter()
                .map(|(&k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }
}

impl Recorder for MemoryRecorder {
    fn add(&self, name: &'static str, delta: u64) {
        *self
            .counters
            .lock()
            .expect("counter lock")
            .entry(name)
            .or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: f64) {
        self.gauges.lock().expect("gauge lock").insert(name, value);
    }

    fn gauge_max(&self, name: &'static str, value: f64) {
        let mut gauges = self.gauges.lock().expect("gauge lock");
        let slot = gauges.entry(name).or_insert(f64::NEG_INFINITY);
        if value > *slot {
            *slot = value;
        }
    }

    fn span(&self, name: &'static str, elapsed: Duration) {
        let mut spans = self.spans.lock().expect("span lock");
        let stat = spans.entry(name).or_default();
        stat.count += 1;
        stat.total += elapsed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_recorder_accumulates() {
        let rec = MemoryRecorder::new();
        rec.add("a", 1);
        rec.add("a", 4);
        rec.add("b", 7);
        rec.gauge("g", 2.0);
        rec.gauge("g", 1.0); // last write wins
        rec.gauge_max("h", 1.0);
        rec.gauge_max("h", 9.0);
        rec.gauge_max("h", 3.0);
        rec.span("s", Duration::from_millis(2));
        rec.span("s", Duration::from_millis(3));
        let r = rec.snapshot();
        assert_eq!(r.counters["a"], 5);
        assert_eq!(r.counters["b"], 7);
        assert_eq!(r.gauges["g"], 1.0);
        assert_eq!(r.gauges["h"], 9.0);
        assert_eq!(r.spans["s"].count, 2);
        assert_eq!(r.spans["s"].total, Duration::from_millis(5));
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let rec = std::sync::Arc::new(MemoryRecorder::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = rec.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        rec.add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().counters["hits"], 4000);
    }

    #[test]
    fn noop_recorder_records_nothing() {
        let rec = NoopRecorder;
        rec.add("a", 1);
        rec.gauge("g", 1.0);
        rec.gauge_max("h", 1.0);
        rec.span("s", Duration::from_millis(1));
        // NoopRecorder has no state; this test documents that the
        // calls are valid and side-effect free.
    }
}
