//! RAII timing guards.

use std::time::Instant;

/// Guard returned by [`crate::span`]: measures the wall-clock time
/// from creation to drop and records it as one observation of the
/// named span in the global recorder.
///
/// If no recorder was installed when the guard was created, it holds
/// no timestamp and drop is free. The guard is deliberately
/// `must_use`: binding it to `_` drops it immediately and times
/// nothing.
#[must_use = "binding to _ drops the guard immediately; name it (e.g. _span) to time the scope"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    pub(crate) fn start(name: &'static str, enabled: bool) -> Span {
        Span {
            name,
            start: enabled.then(Instant::now),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            crate::span_elapsed(self.name, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_holds_no_timestamp() {
        let span = Span::start("s", false);
        assert!(span.start.is_none());
        drop(span);
    }

    #[test]
    fn enabled_span_measures_time() {
        let span = Span::start("s", true);
        assert!(span.start.is_some());
        // Dropping records via the global path; with no recorder
        // installed the observation is discarded harmlessly.
        drop(span);
    }
}
