//! The reach game on bitsets.
//!
//! State is the transposed reach relation: `rt[t]` is the set of
//! sources that can already reach `t` (reflexively including `t`
//! itself). Processing channel `(u, v)` ORs `rt[u]` into `rt[v]` —
//! one row operation per channel, so replaying a full schedule over a
//! cluster-scale fabric is `O(m · n / 64)` word operations and a
//! winning order can be *verified* at lint speed even when finding one
//! was hard.

/// Transposed reach relation over `n` dense node indices.
#[derive(Clone, Debug)]
pub(crate) struct ReachGame {
    n: usize,
    words: usize,
    rt: Vec<u64>,
}

impl ReachGame {
    /// Reflexive initial state: every node reaches itself.
    pub(crate) fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        let mut rt = vec![0u64; n * words];
        for v in 0..n {
            rt[v * words + v / 64] |= 1u64 << (v % 64);
        }
        ReachGame { n, words, rt }
    }

    /// Does `src` already reach `dst`?
    pub(crate) fn covered(&self, src: usize, dst: usize) -> bool {
        self.rt[dst * self.words + src / 64] & (1u64 << (src % 64)) != 0
    }

    /// Sources that would newly reach `dst` if `(src, dst)` were
    /// processed now (the channel's marginal gain).
    pub(crate) fn gain(&self, src: usize, dst: usize) -> usize {
        if src == dst {
            return 0;
        }
        let (s, d) = (src * self.words, dst * self.words);
        (0..self.words)
            .map(|w| (self.rt[s + w] & !self.rt[d + w]).count_ones() as usize)
            .sum()
    }

    /// Process channel `(src, dst)`: everyone who reaches `src` now
    /// reaches `dst`. Returns the marginal gain.
    pub(crate) fn process(&mut self, src: usize, dst: usize) -> usize {
        if src == dst {
            return 0;
        }
        let (s, d) = (src * self.words, dst * self.words);
        let mut gained = 0usize;
        for w in 0..self.words {
            let add = self.rt[s + w] & !self.rt[d + w];
            gained += add.count_ones() as usize;
            self.rt[d + w] |= add;
        }
        gained
    }

    /// [`ReachGame::process`], additionally recording `tag` into
    /// `prov[dst * n + s]` for every newly covered source `s` — the
    /// provenance used to backtrack witness paths.
    pub(crate) fn process_recording(
        &mut self,
        src: usize,
        dst: usize,
        tag: u32,
        prov: &mut [u32],
    ) -> usize {
        if src == dst {
            return 0;
        }
        let (s, d) = (src * self.words, dst * self.words);
        let mut gained = 0usize;
        for w in 0..self.words {
            let mut add = self.rt[s + w] & !self.rt[d + w];
            self.rt[d + w] |= add;
            while add != 0 {
                let bit = add.trailing_zeros() as usize;
                prov[dst * self.n + w * 64 + bit] = tag;
                add &= add - 1;
                gained += 1;
            }
        }
        gained
    }

    /// Does every node in `members` reach every other node in
    /// `members`? (`members` as dense indices; all-pairs coverage for
    /// one component.)
    pub(crate) fn covers_all_pairs(&self, members: &[usize]) -> bool {
        members
            .iter()
            .all(|&t| members.iter().all(|&s| self.covered(s, t)))
    }

    /// The row of sources reaching `dst`, as words.
    pub(crate) fn row(&self, dst: usize) -> &[u64] {
        &self.rt[dst * self.words..(dst + 1) * self.words]
    }
}

/// Replay `order` (as `(src, dst)` dense index pairs) from the
/// reflexive state and return the final game.
pub(crate) fn replay(n: usize, order: impl IntoIterator<Item = (usize, usize)>) -> ReachGame {
    let mut game = ReachGame::new(n);
    for (src, dst) in order {
        game.process(src, dst);
    }
    game
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_triangle_cannot_cover_all_pairs() {
        // c0=(0,1), c1=(1,2), c2=(2,0): the chain covers 5 of the 6
        // demands; (2,1) needs a second pass that a one-pass schedule
        // does not have. No permutation of 3 channels wins.
        let edges = [(0usize, 1usize), (1, 2), (2, 0)];
        let mut perms = vec![
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let members = [0, 1, 2];
        assert!(perms
            .drain(..)
            .all(|p| !replay(3, p.iter().map(|&i| edges[i])).covers_all_pairs(&members)));
    }

    #[test]
    fn bidirectional_line_covers_in_hub_order() {
        // 0 <-> 1 <-> 2 with hub 1: in-branching deepest-first, then
        // out-branching shallowest-first.
        let order = [(0usize, 1usize), (2, 1), (1, 0), (1, 2)];
        let game = replay(3, order);
        assert!(game.covers_all_pairs(&[0, 1, 2]));
    }

    #[test]
    fn gain_matches_process() {
        let mut game = ReachGame::new(70);
        for v in 0..69 {
            assert_eq!(game.gain(v, v + 1), v + 1);
            assert_eq!(game.process(v, v + 1), v + 1);
        }
        assert!(game.covered(0, 69));
        assert!(!game.covered(69, 0));
        assert_eq!(game.row(69).iter().map(|w| w.count_ones()).sum::<u32>(), 70);
    }

    #[test]
    fn provenance_backtracks_to_first_cover() {
        let mut game = ReachGame::new(3);
        let mut prov = vec![u32::MAX; 9];
        game.process_recording(0, 1, 7, &mut prov);
        game.process_recording(1, 2, 9, &mut prov);
        assert_eq!(prov[3], 7); // (s=0, t=1) covered by tag 7
        assert_eq!(prov[6], 9); // (s=0, t=2) covered by tag 9
        assert_eq!(prov[7], 9); // (s=1, t=2) covered by tag 9
        assert_eq!(prov[2], u32::MAX); // (s=2, t=0) never covered
    }
}
