//! Static *existence* engine: does **any** deadlock-free oblivious
//! routing exist for this (possibly degraded) network?
//!
//! The paper's Section 5 pipeline (`worm_core::classify`, `wormlint`)
//! verifies a *given* routing. This crate answers the prior question
//! the control plane faces under churn, in the style of Mendlovic &
//! Matias's necessary-and-sufficient condition for existence of
//! deadlock-free routing on arbitrary networks, and returns a
//! **two-sided certificate** either way:
//!
//! * **Exists** — a constructive witness: a total order on the live
//!   channels (a *one-pass channel schedule*) from which a complete
//!   routing table with an acyclic channel-dependency graph can be
//!   materialised ([`witness_table`]). The existing classifier and
//!   lint pipeline re-certify that table deadlock-free.
//! * **Impossible** — a minimal obstruction witness: a violating
//!   sub-network (strongly connected component with too few channels,
//!   a forced-precedence cycle, or an exhaustively refuted component)
//!   that [`check_obstruction`] re-validates in isolation.
//!
//! # The condition
//!
//! A complete deadlock-free *acyclic-CDG* routing (the class the
//! Dally–Seitz criterion certifies, and the class `wormsearch` can
//! always verify) exists for demand set `D` **iff** there is a total
//! order `c₁ < c₂ < … < cₘ` on the channels such that processing the
//! channels once, in order, wins the *reach game*: maintain a relation
//! `R` (initially `{(v,v)}`); processing `c = (u,v)` adds `(s,v)` for
//! every `(s,u) ∈ R`; the order wins iff finally `R ⊇ D`.
//!
//! *Sufficiency:* walk extraction from the game's provenance yields,
//! for every demand, a path whose consecutive channels strictly ascend
//! in the order, so every CDG edge ascends and the CDG is acyclic.
//! *Necessity:* topologically order an acyclic CDG; every routing path
//! ascends in that order, so replaying the order wins the game.
//!
//! The engine decomposes the live network into strongly connected
//! components: internal demands of an SCC can only be served by
//! internal channels (the condensation is a DAG), and per-SCC winning
//! orders always compose across the condensation in topological order.
//! Per component it closes the gap between cheap certificates from
//! both sides:
//!
//! * **yes** — edge-disjoint in/out spanning branchings at a root
//!   (hub schedule), then a greedy maximum-gain schedule, then an
//!   exhaustive memoised game search on small components; every
//!   winning order is re-verified by replaying the game.
//! * **no** — the one-way gossip lower bound (an SCC with `n ≥ 3`
//!   nodes needs at least `2n − 2` internal channels), forced
//!   precedence cycles between single-in/single-out channels, and
//!   exhaustive refutation on small components.
//!
//! Note the scope: "deadlock-free" here means *certifiably* so via an
//! acyclic dependency graph. The paper's own Figure 1 phenomenon —
//! deadlock freedom *with* cyclic dependencies — is a property of one
//! concrete routing, not of the existence question: every network
//! whose live graph supports an acyclic-CDG routing also supports the
//! cyclic ones, and networks refuted here admit no oblivious routing
//! that the Dally–Seitz/Duato static pipeline can certify.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod branchings;
mod engine;
mod obstruction;
mod reach;
mod report;
mod schedule;
pub mod spec;

pub use engine::{analyze, analyze_masked, ExistOptions};
pub use obstruction::check_obstruction;
pub use report::{
    witness_table, ComponentWitness, ExistenceReport, ExistenceVerdict, Obstruction,
    ObstructionKind, Witness, WitnessKind,
};
