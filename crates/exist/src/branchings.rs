//! Hub certificates: edge-disjoint in/out spanning branchings.
//!
//! If some root `r` carries both an out-branching (a spanning tree of
//! channels directed away from `r`) and an in-branching (directed
//! toward `r`) that share no channel, then the schedule *in-tree
//! channels by decreasing depth, then out-tree channels by increasing
//! depth* wins the reach game for all internal pairs: the in-block
//! establishes `(s, r)` for every `s`, the out-block then fans
//! `(s, ·)` out to every target. This subsumes the symmetric
//! topologies (any bidirectional spanning tree splits into two
//! opposed, disjoint branchings) and multi-lane unidirectional rings
//! (one lane in, one lane out).
//!
//! Finding disjoint branchings is NP-hard in general digraphs, so this
//! is a *certifier*, not the decision procedure: a greedy two-pass BFS
//! per root, each winning order re-verified by the engine's reach-game
//! replay before it is trusted.

use crate::engine::Component;

/// One BFS spanning attempt. `outward` selects direction: `true`
/// grows a tree of channels pointing away from `root` (following
/// `out_adj`), `false` toward it. Tree channels are claimed in
/// `used`; already-claimed channels are skipped, which is what makes
/// the second pass edge-disjoint from the first. Returns the tree
/// channels paired with the depth of their far endpoint, or `None` if
/// the residual channels do not span the component.
fn bfs_tree(
    comp: &Component,
    adj: &[Vec<usize>],
    root: usize,
    outward: bool,
    used: &mut [bool],
) -> Option<Vec<(usize, usize)>> {
    let n = comp.n();
    let mut depth = vec![usize::MAX; n];
    let mut tree = Vec::with_capacity(n - 1);
    let mut queue = std::collections::VecDeque::new();
    depth[root] = 0;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        for &e in &adj[v] {
            if used[e] {
                continue;
            }
            let (src, dst) = comp.ends[e];
            let far = if outward { dst } else { src };
            if depth[far] != usize::MAX {
                continue;
            }
            depth[far] = depth[v] + 1;
            used[e] = true;
            tree.push((e, depth[far]));
            queue.push_back(far);
        }
    }
    if tree.len() == n - 1 {
        Some(tree)
    } else {
        None
    }
}

/// Try to certify the component via disjoint branchings, returning
/// `(local root, channel order)` over the `2(n-1)` tree channels.
///
/// Deterministic: roots are tried in local index order, adjacency is
/// scanned in ascending channel order, and both claim orders
/// (out-tree first, in-tree first) are attempted per root.
pub(crate) fn hub_order(comp: &Component, max_roots: usize) -> Option<(usize, Vec<usize>)> {
    let n = comp.n();
    if n < 2 {
        return None;
    }
    let out_adj = comp.out_adj();
    let in_adj = comp.in_adj();
    for root in 0..n.min(max_roots.max(1)) {
        for out_first in [true, false] {
            let mut used = vec![false; comp.m()];
            let (out_tree, in_tree) = if out_first {
                let o = bfs_tree(comp, &out_adj, root, true, &mut used);
                let i = o
                    .is_some()
                    .then(|| bfs_tree(comp, &in_adj, root, false, &mut used))
                    .flatten();
                (o, i)
            } else {
                let i = bfs_tree(comp, &in_adj, root, false, &mut used);
                let o = i
                    .is_some()
                    .then(|| bfs_tree(comp, &out_adj, root, true, &mut used))
                    .flatten();
                (o, i)
            };
            let (Some(out_tree), Some(mut in_tree)) = (out_tree, in_tree) else {
                continue;
            };
            // In-tree deepest-first: along every leaf-to-root path the
            // channels ascend, so each source's reach climbs to the
            // root. Then out-tree shallowest-first fans every source
            // out from the root. Ties broken by channel index.
            in_tree.sort_by_key(|&(e, d)| (std::cmp::Reverse(d), e));
            let mut out_tree = out_tree;
            out_tree.sort_by_key(|&(e, d)| (d, e));
            let order: Vec<usize> = in_tree
                .into_iter()
                .chain(out_tree)
                .map(|(e, _)| e)
                .collect();
            return Some((root, order));
        }
    }
    None
}
