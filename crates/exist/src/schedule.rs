//! Schedule search: greedy maximum-gain construction for mid-size
//! components and exhaustive memoised game search for small ones.

use std::collections::HashSet;

use crate::engine::Component;
use crate::reach::ReachGame;

/// Greedy winning-order construction: repeatedly process the unused
/// channel with the largest marginal gain (ties to the lowest channel
/// index). Returns the winning prefix, or `None` when the greedy run
/// gets stuck (every remaining channel has zero gain) before covering
/// all internal pairs. Sound but incomplete — the engine falls
/// through to the exact game or reports unknown.
pub(crate) fn greedy_order(comp: &Component) -> Option<Vec<usize>> {
    let n = comp.n();
    let m = comp.m();
    let members: Vec<usize> = (0..n).collect();
    let mut game = ReachGame::new(n);
    let mut unused: Vec<bool> = vec![true; m];
    let mut order = Vec::with_capacity(m);
    loop {
        if game.covers_all_pairs(&members) {
            return Some(order);
        }
        let mut best: Option<(usize, usize)> = None;
        for (e, &(src, dst)) in comp.ends.iter().enumerate().take(m) {
            if !unused[e] {
                continue;
            }
            let gain = game.gain(src, dst);
            if gain > 0 && best.is_none_or(|(g, _)| gain > g) {
                best = Some((gain, e));
            }
        }
        let (_, e) = best?;
        let (src, dst) = comp.ends[e];
        game.process(src, dst);
        unused[e] = false;
        order.push(e);
    }
}

/// Outcome of the exhaustive reach-game search.
pub(crate) enum ExactOutcome {
    /// A winning prefix was found.
    Win(Vec<usize>),
    /// The whole (pruned) game tree was explored: no order wins.
    Refuted {
        /// States explored by the refutation.
        states: u64,
    },
    /// The state budget ran out before the tree was exhausted.
    Budget {
        /// States explored before giving up.
        states: u64,
    },
}

struct Exact<'a> {
    comp: &'a Component,
    full: u16,
    budget: u64,
    states: u64,
    /// Fully-explored losing states: (processed-channel mask, reach).
    memo: HashSet<(u32, Vec<u16>)>,
    path: Vec<usize>,
}

enum Step {
    Win,
    Lose,
    Budget,
}

impl Exact<'_> {
    fn dfs(&mut self, mask: u32, rt: &[u16]) -> Step {
        if rt.iter().all(|&row| row == self.full) {
            return Step::Win;
        }
        self.states += 1;
        if self.states > self.budget {
            return Step::Budget;
        }
        let m = self.comp.m();
        let n = self.comp.n();
        // Admissible bound: each remaining channel covers at most
        // n - 1 new pairs.
        let uncovered: u32 = rt.iter().map(|&row| (self.full & !row).count_ones()).sum();
        let remaining = (m as u32) - mask.count_ones();
        if uncovered > remaining * (n as u32 - 1) {
            return Step::Lose;
        }
        let key = (mask, rt.to_vec());
        if self.memo.contains(&key) {
            return Step::Lose;
        }
        // Branch only on channels with positive gain: a zero-gain
        // channel leaves the reach state unchanged, so any winning
        // order that schedules one next can defer it to the end
        // without hurting later gains.
        for e in 0..m {
            if mask & (1 << e) != 0 {
                continue;
            }
            let (src, dst) = self.comp.ends[e];
            let add = rt[src] & !rt[dst];
            if add == 0 {
                continue;
            }
            let mut next = rt.to_vec();
            next[dst] |= add;
            self.path.push(e);
            match self.dfs(mask | (1 << e), &next) {
                Step::Win => return Step::Win,
                Step::Budget => return Step::Budget,
                Step::Lose => {
                    self.path.pop();
                }
            }
        }
        self.memo.insert(key);
        Step::Lose
    }
}

/// Exhaustively decide the component (small components only: the
/// processed-channel mask must fit 32 bits and reach rows 16 bits).
/// Within budget this is a decision procedure: `Win` and `Refuted`
/// are both certificates.
pub(crate) fn exact_order(comp: &Component, budget: u64) -> ExactOutcome {
    let n = comp.n();
    let m = comp.m();
    debug_assert!(
        n <= 16 && m <= 32,
        "exact game called on oversized component"
    );
    let full = if n == 16 { u16::MAX } else { (1u16 << n) - 1 };
    let rt: Vec<u16> = (0..n).map(|v| 1u16 << v).collect();
    let mut exact = Exact {
        comp,
        full,
        budget,
        states: 0,
        memo: HashSet::new(),
        path: Vec::new(),
    };
    match exact.dfs(0, &rt) {
        Step::Win => ExactOutcome::Win(exact.path),
        Step::Lose => ExactOutcome::Refuted {
            states: exact.states,
        },
        Step::Budget => ExactOutcome::Budget {
            states: exact.states,
        },
    }
}
