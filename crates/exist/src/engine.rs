//! The existence engine: SCC decomposition, per-component
//! certificate search from both sides, composition across the
//! condensation, and self-verification of every winning order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use wormnet::graph::{tarjan_scc, Digraph};
use wormnet::{ChannelId, Network, NodeId};

use crate::reach::replay;
use crate::report::{
    ComponentWitness, ExistenceReport, ExistenceVerdict, Obstruction, ObstructionKind, Witness,
    WitnessKind,
};
use crate::schedule::ExactOutcome;
use crate::{branchings, obstruction, schedule};

/// Certificate-search budgets. The defaults decide every topology in
/// the repository's corpus and bench suite; raising them only widens
/// the band where `Unknown` turns into a certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExistOptions {
    /// Roots tried for the disjoint-branchings certifier per
    /// component.
    pub max_roots: usize,
    /// Largest component (in channels) the greedy scheduler attempts.
    pub greedy_limit: usize,
    /// Largest component (in channels) the exhaustive game decides.
    pub exact_channels: usize,
    /// Game-state budget for one exhaustive decision.
    pub exact_states: u64,
}

impl Default for ExistOptions {
    fn default() -> Self {
        ExistOptions {
            max_roots: 8,
            greedy_limit: 1500,
            exact_channels: 14,
            exact_states: 2_000_000,
        }
    }
}

/// One strongly connected component of the live node graph, with its
/// internal live channels re-indexed to dense local ids.
pub(crate) struct Component {
    /// Global node indices, ascending.
    pub nodes: Vec<usize>,
    /// Internal live channels, ascending by id.
    pub channels: Vec<ChannelId>,
    /// Local `(src, dst)` endpoints, parallel to `channels`.
    pub ends: Vec<(usize, usize)>,
}

impl Component {
    pub(crate) fn n(&self) -> usize {
        self.nodes.len()
    }

    pub(crate) fn m(&self) -> usize {
        self.channels.len()
    }

    /// Local out-adjacency: channel indices by local source node, in
    /// ascending channel order.
    pub(crate) fn out_adj(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n()];
        for (e, &(src, _)) in self.ends.iter().enumerate() {
            adj[src].push(e);
        }
        adj
    }

    /// Local in-adjacency: channel indices by local destination node.
    pub(crate) fn in_adj(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n()];
        for (e, &(_, dst)) in self.ends.iter().enumerate() {
            adj[dst].push(e);
        }
        adj
    }
}

/// The live node graph (down channels masked out) as a [`Digraph`].
struct LiveGraph<'a> {
    net: &'a Network,
    alive: &'a [bool],
}

impl Digraph for LiveGraph<'_> {
    fn vertex_count(&self) -> usize {
        self.net.node_count()
    }

    fn successors(&self, v: usize) -> Vec<usize> {
        self.net
            .out_channels(NodeId::from_index(v))
            .iter()
            .filter(|c| self.alive[c.index()])
            .map(|&c| self.net.channel(c).dst().index())
            .collect()
    }
}

/// SCCs of the live node graph, each sorted ascending, the list
/// sorted by smallest member — a deterministic component numbering
/// independent of the SCC algorithm's emission order.
pub(crate) fn live_sccs(net: &Network, alive: &[bool]) -> Vec<Vec<usize>> {
    let mut sccs = tarjan_scc(&LiveGraph { net, alive });
    for scc in &mut sccs {
        scc.sort_unstable();
    }
    sccs.sort_unstable_by_key(|scc| scc[0]);
    sccs
}

/// Extract the component for one SCC (sorted global node indices).
pub(crate) fn build_component(net: &Network, alive: &[bool], nodes: &[usize]) -> Component {
    let mut local = vec![usize::MAX; net.node_count()];
    for (i, &v) in nodes.iter().enumerate() {
        local[v] = i;
    }
    let mut channels = Vec::new();
    let mut ends = Vec::new();
    for c in net.channels() {
        if !alive[c.id().index()] {
            continue;
        }
        let (s, d) = (local[c.src().index()], local[c.dst().index()]);
        if s != usize::MAX && d != usize::MAX {
            channels.push(c.id());
            ends.push((s, d));
        }
    }
    Component {
        nodes: nodes.to_vec(),
        channels,
        ends,
    }
}

enum Outcome {
    Win {
        kind: WitnessKind,
        order: Vec<ChannelId>,
    },
    No(Obstruction),
    Undecided,
}

/// Extend a winning prefix (local channel indices) with every unused
/// channel, ascending — extra processing is monotone, so a winning
/// prefix stays winning and the final order covers every internal
/// channel exactly once.
fn extend(prefix: Vec<usize>, m: usize) -> Vec<usize> {
    let mut seen = vec![false; m];
    let mut order = prefix;
    for &e in &order {
        seen[e] = true;
    }
    order.extend((0..m).filter(|&e| !seen[e]));
    order
}

/// Replay a full local order and check all-pairs coverage — the
/// authority every heuristic answers to.
fn verify_local(comp: &Component, order: &[usize]) -> bool {
    let members: Vec<usize> = (0..comp.n()).collect();
    replay(comp.n(), order.iter().map(|&e| comp.ends[e])).covers_all_pairs(&members)
}

fn obstruct(comp: &Component, kind: ObstructionKind) -> Obstruction {
    Obstruction {
        kind,
        nodes: comp.nodes.iter().map(|&v| NodeId::from_index(v)).collect(),
        channels: comp.channels.clone(),
    }
}

fn decide(comp: &Component, opts: &ExistOptions) -> Outcome {
    let n = comp.n();
    let m = comp.m();
    let win = |kind: WitnessKind, prefix: Vec<usize>| -> Outcome {
        let order = extend(prefix, m);
        if verify_local(comp, &order) {
            Outcome::Win {
                kind,
                order: order.iter().map(|&e| comp.channels[e]).collect(),
            }
        } else {
            // A certifier produced a bogus order — an engine bug, but
            // soundness is preserved by refusing the certificate.
            debug_assert!(false, "unverified winning order");
            wormtrace::counter("exist.verify_failed", 1);
            Outcome::Undecided
        }
    };
    if n <= 2 {
        wormtrace::counter("exist.trivial", 1);
        return win(WitnessKind::Trivial, Vec::new());
    }
    if let Some(kind) = obstruction::deficiency(comp) {
        wormtrace::counter("exist.deficiency", 1);
        return Outcome::No(obstruct(comp, kind));
    }
    if let Some(cycle) = obstruction::precedence_cycle(comp) {
        wormtrace::counter("exist.precedence", 1);
        let cycle = cycle.iter().map(|&e| comp.channels[e]).collect();
        return Outcome::No(obstruct(comp, ObstructionKind::PrecedenceCycle { cycle }));
    }
    if let Some((root, prefix)) = branchings::hub_order(comp, opts.max_roots) {
        if let Outcome::Win { kind, order } = win(
            WitnessKind::Branchings {
                root: NodeId::from_index(comp.nodes[root]),
            },
            prefix,
        ) {
            wormtrace::counter("exist.branchings", 1);
            return Outcome::Win { kind, order };
        }
    }
    if m <= opts.greedy_limit {
        if let Some(prefix) = schedule::greedy_order(comp) {
            if let Outcome::Win { kind, order } = win(WitnessKind::Schedule, prefix) {
                wormtrace::counter("exist.greedy", 1);
                return Outcome::Win { kind, order };
            }
        }
    }
    if m <= opts.exact_channels.min(32) && n <= 16 {
        match schedule::exact_order(comp, opts.exact_states) {
            ExactOutcome::Win(prefix) => {
                if let Outcome::Win { kind, order } = win(WitnessKind::Exact, prefix) {
                    wormtrace::counter("exist.exact_wins", 1);
                    return Outcome::Win { kind, order };
                }
            }
            ExactOutcome::Refuted { states } => {
                wormtrace::counter("exist.exact_refutes", 1);
                wormtrace::counter("exist.exact_states", states);
                return Outcome::No(obstruct(comp, ObstructionKind::Exhausted { states }));
            }
            ExactOutcome::Budget { states } => {
                wormtrace::counter("exist.exact_states", states);
            }
        }
    }
    wormtrace::counter("exist.undecided_components", 1);
    Outcome::Undecided
}

/// Decide existence for the intact network. See [`analyze_masked`].
pub fn analyze(net: &Network, opts: &ExistOptions) -> ExistenceReport {
    analyze_masked(net, &[], opts)
}

/// Decide whether any complete deadlock-free (acyclic-CDG) routing
/// exists over the live part of `net` — the channels not listed in
/// `down` — for every ordered pair the live graph still connects.
///
/// The answer is two-sided (see the crate docs): `Exists` ships a
/// replay-verified channel schedule, `Impossible` ships an
/// obstruction that [`crate::check_obstruction`] re-validates in
/// isolation, and `Unknown` means the budgets in `opts` ran out with
/// no certificate from either side.
pub fn analyze_masked(net: &Network, down: &[ChannelId], opts: &ExistOptions) -> ExistenceReport {
    let _span = wormtrace::span("exist.analyze");
    wormtrace::counter("exist.runs", 1);
    let n = net.node_count();
    let mut alive = vec![true; net.channel_count()];
    for c in down {
        alive[c.index()] = false;
    }
    let mut down: Vec<ChannelId> = down.to_vec();
    down.sort_unstable();
    down.dedup();
    let live_channels = alive.iter().filter(|&&a| a).count();
    wormtrace::counter("exist.channels", live_channels as u64);

    // Deterministic SCC numbering and condensation topological order.
    let sccs = live_sccs(net, &alive);
    let k = sccs.len();
    let mut scc_of = vec![0usize; n];
    for (i, scc) in sccs.iter().enumerate() {
        for &v in scc {
            scc_of[v] = i;
        }
    }
    let mut cond: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut cross_in: Vec<Vec<ChannelId>> = vec![Vec::new(); k];
    for c in net.channels() {
        if !alive[c.id().index()] {
            continue;
        }
        let (a, b) = (scc_of[c.src().index()], scc_of[c.dst().index()]);
        if a != b {
            cond[a].push(b);
            cross_in[b].push(c.id());
        }
    }
    for succs in &mut cond {
        succs.sort_unstable();
        succs.dedup();
    }
    let mut indeg = vec![0usize; k];
    for succs in &cond {
        for &b in succs {
            indeg[b] += 1;
        }
    }
    let mut heap: BinaryHeap<Reverse<usize>> =
        (0..k).filter(|&b| indeg[b] == 0).map(Reverse).collect();
    let mut topo = Vec::with_capacity(k);
    while let Some(Reverse(a)) = heap.pop() {
        topo.push(a);
        for &b in &cond[a] {
            indeg[b] -= 1;
            if indeg[b] == 0 {
                heap.push(Reverse(b));
            }
        }
    }
    debug_assert_eq!(topo.len(), k, "condensation must be acyclic");

    // Reachable-demand count from the condensation closure: for every
    // component, which components reach it, hence which sources reach
    // each of its nodes.
    let words_n = n.div_ceil(64).max(1);
    let words_k = k.div_ceil(64).max(1);
    let mut closure = vec![0u64; k * words_k];
    for &b in &topo {
        closure[b * words_k + b / 64] |= 1u64 << (b % 64);
    }
    for &a in &topo {
        for &b in &cond[a] {
            for w in 0..words_k {
                let bits = closure[a * words_k + w];
                closure[b * words_k + w] |= bits;
            }
        }
    }
    let mut scc_mask = vec![0u64; k * words_n];
    for (i, scc) in sccs.iter().enumerate() {
        for &v in scc {
            scc_mask[i * words_n + v / 64] |= 1u64 << (v % 64);
        }
    }
    let mut expected = vec![0u64; k * words_n];
    for b in 0..k {
        for w in 0..words_k {
            let mut bits = closure[b * words_k + w];
            while bits != 0 {
                let a = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                for wn in 0..words_n {
                    let m = scc_mask[a * words_n + wn];
                    expected[b * words_n + wn] |= m;
                }
            }
        }
    }
    let demands: usize = (0..k)
        .map(|b| {
            let sources: usize = (0..words_n)
                .map(|w| expected[b * words_n + w].count_ones() as usize)
                .sum();
            sources.saturating_sub(1) * sccs[b].len()
        })
        .sum();

    // Decide every nontrivial component.
    let mut outcomes: Vec<Option<Outcome>> = Vec::with_capacity(k);
    let mut nontrivial = 0usize;
    for scc in &sccs {
        if scc.len() < 2 {
            outcomes.push(None);
            continue;
        }
        nontrivial += 1;
        let comp = build_component(net, &alive, scc);
        outcomes.push(Some(decide(&comp, opts)));
    }
    wormtrace::counter("exist.components", nontrivial as u64);

    let base = |verdict: ExistenceVerdict| ExistenceReport {
        verdict,
        demands,
        sccs: k,
        components: nontrivial,
        down: down.clone(),
        witness: None,
        obstruction: None,
    };

    // First obstruction (by component numbering) wins; otherwise any
    // undecided component degrades the verdict to unknown.
    if let Some(obs) = outcomes.iter().flatten().find_map(|o| match o {
        Outcome::No(obs) => Some(obs.clone()),
        _ => None,
    }) {
        wormtrace::counter("exist.impossible", 1);
        let mut report = base(ExistenceVerdict::Impossible);
        report.obstruction = Some(obs);
        return report;
    }
    if outcomes
        .iter()
        .flatten()
        .any(|o| matches!(o, Outcome::Undecided))
    {
        wormtrace::counter("exist.unknown", 1);
        return base(ExistenceVerdict::Unknown);
    }

    // Compose: per component in condensation topological order, the
    // crossing channels into it (their sources finished earlier),
    // then its internal winning order.
    let mut order: Vec<ChannelId> = Vec::with_capacity(live_channels);
    let mut components = Vec::with_capacity(nontrivial);
    for &b in &topo {
        order.extend(cross_in[b].iter().copied());
        if let Some(Outcome::Win {
            kind,
            order: comp_order,
        }) = &outcomes[b]
        {
            components.push(ComponentWitness {
                kind: *kind,
                nodes: sccs[b].len(),
                channels: comp_order.len(),
            });
            order.extend(comp_order.iter().copied());
        }
    }
    debug_assert_eq!(order.len(), live_channels);

    // Self-verify the composed schedule: replay must cover exactly
    // the reachable pairs. Soundness does not rest on the composition
    // argument being right — a failed replay refuses the certificate.
    let game = replay(
        n,
        order.iter().map(|&c| {
            let ch = net.channel(c);
            (ch.src().index(), ch.dst().index())
        }),
    );
    for (t, &b) in scc_of.iter().enumerate().take(n) {
        let row = game.row(t);
        for w in 0..words_n {
            if expected[b * words_n + w] & !row[w] != 0 {
                debug_assert!(false, "composed schedule missed a reachable pair");
                wormtrace::counter("exist.verify_failed", 1);
                return base(ExistenceVerdict::Unknown);
            }
        }
    }

    wormtrace::counter("exist.exists", 1);
    let mut report = base(ExistenceVerdict::Exists);
    report.witness = Some(Witness { order, components });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_obstruction, witness_table, ObstructionKind, WitnessKind};

    fn ring(n: usize, lanes: &[u8], bidi: bool) -> Network {
        let mut net = Network::new();
        let nodes = net.add_nodes("r", n);
        for i in 0..n {
            let j = (i + 1) % n;
            for &vc in lanes {
                net.add_channel_vc(nodes[i], nodes[j], vc);
                if bidi {
                    net.add_channel_vc(nodes[j], nodes[i], vc);
                }
            }
        }
        net
    }

    /// Every path in the materialised table must strictly ascend in
    /// the witness order — the CDG-acyclicity argument, checked raw.
    fn assert_witness_certifies(net: &Network, report: &ExistenceReport) {
        let witness = report.witness.as_ref().expect("exists must ship a witness");
        assert_eq!(witness.order.len(), net.channel_count() - report.down.len());
        let mut pos = vec![usize::MAX; net.channel_count()];
        for (i, &c) in witness.order.iter().enumerate() {
            assert_eq!(pos[c.index()], usize::MAX, "channel repeated in order");
            pos[c.index()] = i;
        }
        let table = witness_table(net, witness).expect("witness materialises");
        assert_eq!(table.len(), report.demands, "one path per reachable pair");
        for (&(src, _), path) in table.iter() {
            assert!(path.is_node_simple(net), "witness paths are node-simple");
            assert_eq!(path.src(net), src);
            for w in path.channels().windows(2) {
                assert!(
                    pos[w[0].index()] < pos[w[1].index()],
                    "path channels must ascend in the schedule"
                );
            }
        }
    }

    #[test]
    fn single_lane_directed_ring_is_impossible_by_deficiency() {
        for n in [3usize, 4, 7] {
            let net = ring(n, &[0], false);
            let report = analyze(&net, &ExistOptions::default());
            assert_eq!(report.verdict, ExistenceVerdict::Impossible, "ring {n}");
            assert_eq!(report.demands, n * (n - 1));
            let obs = report.obstruction.expect("impossible ships an obstruction");
            assert_eq!(
                obs.kind,
                ObstructionKind::Deficiency {
                    required: 2 * n - 2
                }
            );
            assert_eq!(obs.channels.len(), n);
            assert!(check_obstruction(&net, &[], &obs));
        }
    }

    #[test]
    fn bidirectional_ring_exists_via_branchings() {
        let net = ring(5, &[0], true);
        let report = analyze(&net, &ExistOptions::default());
        assert_eq!(report.verdict, ExistenceVerdict::Exists);
        assert_eq!(report.demands, 20);
        assert_eq!(report.sccs, 1);
        let w = report.witness.as_ref().unwrap();
        assert_eq!(w.components.len(), 1);
        assert!(matches!(
            w.components[0].kind,
            WitnessKind::Branchings { .. }
        ));
        assert_witness_certifies(&net, &report);
    }

    #[test]
    fn two_lane_unidirectional_ring_exists() {
        // The dateline construction's skeleton: one lane in-bound to
        // the hub, the other out-bound.
        let net = ring(6, &[0, 1], false);
        let report = analyze(&net, &ExistOptions::default());
        assert_eq!(report.verdict, ExistenceVerdict::Exists);
        assert_witness_certifies(&net, &report);
    }

    #[test]
    fn chorded_directed_triangle_exists() {
        // C3 plus the chord (0 -> 2): exactly 2n - 2 channels, and a
        // winning schedule exists — the counting bound is tight.
        let mut net = Network::new();
        let v = net.add_nodes("r", 3);
        net.add_channel(v[0], v[1]);
        net.add_channel(v[1], v[2]);
        net.add_channel(v[2], v[0]);
        net.add_channel(v[0], v[2]);
        let report = analyze(&net, &ExistOptions::default());
        assert_eq!(report.verdict, ExistenceVerdict::Exists);
        assert_witness_certifies(&net, &report);
    }

    #[test]
    fn forced_precedence_cycle_is_impossible_despite_enough_channels() {
        // Directed 4-cycle plus back-channels (1 -> 0) and (3 -> 2):
        // m = 2n - 2 = 6 passes the counting bound, but node 2's only
        // exit must fire before node 1's only entrance and vice
        // versa.
        let mut net = Network::new();
        let v = net.add_nodes("r", 4);
        let c0 = net.add_channel(v[0], v[1]);
        net.add_channel(v[1], v[2]);
        let c2 = net.add_channel(v[2], v[3]);
        net.add_channel(v[3], v[0]);
        net.add_channel(v[1], v[0]);
        net.add_channel(v[3], v[2]);
        let report = analyze(&net, &ExistOptions::default());
        assert_eq!(report.verdict, ExistenceVerdict::Impossible);
        let obs = report.obstruction.expect("obstruction");
        match &obs.kind {
            ObstructionKind::PrecedenceCycle { cycle } => {
                assert!(cycle.contains(&c0) && cycle.contains(&c2), "{cycle:?}");
            }
            other => panic!("expected a precedence cycle, got {other:?}"),
        }
        assert!(check_obstruction(&net, &[], &obs));
        assert!(
            !check_obstruction(&net, &[c0], &obs),
            "obstruction must not validate against a different mask"
        );
    }

    #[test]
    fn masked_ring_with_one_direction_down_still_exists() {
        let net = ring(4, &[0], true);
        let down = [net
            .find_channel(NodeId::from_index(0), NodeId::from_index(1))
            .unwrap()];
        let report = analyze_masked(&net, &down, &ExistOptions::default());
        assert_eq!(report.verdict, ExistenceVerdict::Exists);
        assert_eq!(report.down, down.to_vec());
        assert_eq!(report.demands, 12, "still strongly connected");
        assert_witness_certifies(&net, &report);
    }

    #[test]
    fn masked_split_covers_only_reachable_pairs() {
        // Cutting both directions of two opposite ring links leaves
        // two 2-node components with no cross traffic possible.
        let net = ring(4, &[0], true);
        let pair = |a: usize, b: usize| {
            net.find_channel(NodeId::from_index(a), NodeId::from_index(b))
                .unwrap()
        };
        let down = [pair(0, 1), pair(1, 0), pair(2, 3), pair(3, 2)];
        let report = analyze_masked(&net, &down, &ExistOptions::default());
        assert_eq!(report.verdict, ExistenceVerdict::Exists);
        assert_eq!(report.sccs, 2);
        assert_eq!(report.components, 2);
        assert_eq!(report.demands, 4);
        assert_witness_certifies(&net, &report);
    }

    #[test]
    fn exact_game_decides_the_triangle_both_ways() {
        let mut net = Network::new();
        let v = net.add_nodes("r", 3);
        net.add_channel(v[0], v[1]);
        net.add_channel(v[1], v[2]);
        net.add_channel(v[2], v[0]);
        let alive = vec![true; net.channel_count()];
        let comp = build_component(&net, &alive, &[0, 1, 2]);
        assert!(matches!(
            schedule::exact_order(&comp, 1 << 20),
            ExactOutcome::Refuted { .. }
        ));
        let mut chorded = net;
        let v2 = NodeId::from_index(2);
        chorded.add_channel(NodeId::from_index(0), v2);
        let alive = vec![true; chorded.channel_count()];
        let comp = build_component(&chorded, &alive, &[0, 1, 2]);
        match schedule::exact_order(&comp, 1 << 20) {
            ExactOutcome::Win(prefix) => {
                let order = extend(prefix, comp.m());
                assert!(verify_local(&comp, &order));
            }
            _ => panic!("chorded triangle must be exactly routable"),
        }
    }
}
