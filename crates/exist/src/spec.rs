//! Resolve a `wormspec/1` verify section into [`ExistOptions`].
//!
//! The existence engine rides the existing verify vocabulary instead
//! of growing new syntax: `max_states` (the search-state budget)
//! bounds the exhaustive reach-game search the same way it bounds
//! `wormsearch`. Everything else keeps engine defaults.

use wormspec::ast::Verify;
use wormspec::diag::SpecError;

use crate::ExistOptions;

/// Resolve the verify section (absent = all defaults) into existence
/// options.
pub fn options_from_spec(verify: Option<&Verify>) -> Result<ExistOptions, SpecError> {
    let mut opts = ExistOptions::default();
    if let Some(v) = verify {
        if let Some(m) = &v.max_states {
            opts.exact_states = m.value;
        }
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormspec::parse;

    #[test]
    fn defaults_match_the_rust_defaults() {
        assert_eq!(options_from_spec(None).unwrap(), ExistOptions::default());
    }

    #[test]
    fn max_states_bounds_the_exact_game() {
        let src = "wormspec/1\n\
                   topology { kind = ring nodes = 4 }\n\
                   routing { engine = clockwise_ring }\n\
                   verify { max_states = 12345 }\n";
        let ast = parse(src).expect("spec parses");
        let opts = options_from_spec(ast.verify.as_ref()).unwrap();
        assert_eq!(opts.exact_states, 12345);
        assert_eq!(opts.max_roots, ExistOptions::default().max_roots);
    }
}
