//! Two-sided certificates: the report type, constructive witnesses,
//! obstruction witnesses, and witness materialisation into a routing
//! table the existing pipeline can re-certify.

use wormnet::{ChannelId, Network, NodeId};
use wormroute::{Path, RouteError, TableRouting};

use crate::reach::ReachGame;

/// The engine's answer to "does any deadlock-free routing exist?".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExistenceVerdict {
    /// A complete acyclic-CDG routing exists; [`ExistenceReport::witness`]
    /// carries the channel schedule it is extracted from.
    Exists,
    /// No acyclic-CDG routing can exist;
    /// [`ExistenceReport::obstruction`] carries the violating
    /// sub-network.
    Impossible,
    /// The engine's certificate budgets were exhausted without a
    /// certificate from either side.
    Unknown,
}

impl ExistenceVerdict {
    /// Stable lowercase name used in JSON documents and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ExistenceVerdict::Exists => "exists",
            ExistenceVerdict::Impossible => "impossible",
            ExistenceVerdict::Unknown => "unknown",
        }
    }
}

/// How a strongly connected component's winning order was found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WitnessKind {
    /// One or two nodes: every channel order wins.
    Trivial,
    /// Edge-disjoint in/out spanning branchings rooted at a hub node.
    Branchings {
        /// The hub both branchings are rooted at.
        root: NodeId,
    },
    /// Greedy maximum-marginal-gain schedule.
    Schedule,
    /// Exhaustive memoised reach-game search.
    Exact,
}

impl WitnessKind {
    /// Stable lowercase name used in JSON documents and reports.
    pub fn name(&self) -> &'static str {
        match self {
            WitnessKind::Trivial => "trivial",
            WitnessKind::Branchings { .. } => "branchings",
            WitnessKind::Schedule => "schedule",
            WitnessKind::Exact => "exact",
        }
    }
}

/// Per-component provenance of the constructive witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentWitness {
    /// How the component's winning order was found.
    pub kind: WitnessKind,
    /// Nodes in the component.
    pub nodes: usize,
    /// Live channels internal to the component.
    pub channels: usize,
}

/// Constructive existence witness: a total order on the live channels
/// that wins the reach game (see the crate docs for the condition).
///
/// The order is the certificate. Any consecutive pair of channels on a
/// path extracted from it ascends in the order, so the materialised
/// routing's channel-dependency graph is acyclic by construction;
/// [`witness_table`] performs the extraction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// Every live channel exactly once, in schedule order.
    pub order: Vec<ChannelId>,
    /// Per-component provenance, in condensation topological order.
    pub components: Vec<ComponentWitness>,
}

/// Why no deadlock-free routing can exist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObstructionKind {
    /// A strongly connected component with `n ≥ 3` nodes has fewer
    /// than `2n − 2` internal channels — below the one-way gossip
    /// lower bound, so no one-pass schedule can cover its internal
    /// demands.
    Deficiency {
        /// The minimum internal channel count, `2n − 2`.
        required: usize,
    },
    /// Forced precedence constraints between single-in/single-out
    /// channels form a cycle: the listed channels each must be
    /// scheduled strictly before the next (cyclically), so no total
    /// order satisfies them.
    PrecedenceCycle {
        /// The constraint cycle, `cycle[i]` forced before
        /// `cycle[(i + 1) % len]`.
        cycle: Vec<ChannelId>,
    },
    /// Exhaustive reach-game search over the component found no
    /// winning schedule.
    Exhausted {
        /// Game states explored by the refutation.
        states: u64,
    },
}

impl ObstructionKind {
    /// Stable lowercase name used in JSON documents and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ObstructionKind::Deficiency { .. } => "deficiency",
            ObstructionKind::PrecedenceCycle { .. } => "precedence-cycle",
            ObstructionKind::Exhausted { .. } => "exhausted",
        }
    }
}

/// Obstruction witness: a violating sub-network, checkable in
/// isolation by [`crate::check_obstruction`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Obstruction {
    /// The specific violation.
    pub kind: ObstructionKind,
    /// The strongly connected component the violation lives in.
    pub nodes: Vec<NodeId>,
    /// The live channels internal to that component.
    pub channels: Vec<ChannelId>,
}

/// The engine's two-sided answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExistenceReport {
    /// The verdict.
    pub verdict: ExistenceVerdict,
    /// Ordered reachable demand pairs `(s, t)`, `s ≠ t`, over the live
    /// graph — the demand set the verdict speaks about.
    pub demands: usize,
    /// Strongly connected components of the live node graph.
    pub sccs: usize,
    /// Components with at least two nodes (the ones that need a
    /// certificate; singletons are vacuous).
    pub components: usize,
    /// Channels masked out of the analysis (empty for the intact
    /// network).
    pub down: Vec<ChannelId>,
    /// Constructive witness when [`ExistenceVerdict::Exists`].
    pub witness: Option<Witness>,
    /// Obstruction witness when [`ExistenceVerdict::Impossible`].
    pub obstruction: Option<Obstruction>,
}

impl ExistenceReport {
    /// Channels in the constructive witness order (0 when absent).
    pub fn witness_channels(&self) -> usize {
        self.witness.as_ref().map_or(0, |w| w.order.len())
    }

    /// Channels in the obstruction witness (0 when absent).
    pub fn obstruction_channels(&self) -> usize {
        self.obstruction.as_ref().map_or(0, |o| o.channels.len())
    }

    /// Stable lowercase name of the certificate kind: the witness
    /// kind of the hardest component, the obstruction kind, or
    /// `"none"`.
    pub fn kind_name(&self) -> &'static str {
        if let Some(o) = &self.obstruction {
            return o.kind.name();
        }
        if let Some(w) = &self.witness {
            // Report the most expensive certifier that was needed:
            // exact > schedule > branchings > trivial.
            let mut best = "trivial";
            for c in &w.components {
                let rank = |k: &str| match k {
                    "exact" => 3,
                    "schedule" => 2,
                    "branchings" => 1,
                    _ => 0,
                };
                if rank(c.kind.name()) > rank(best) {
                    best = c.kind.name();
                }
            }
            return best;
        }
        "none"
    }
}

/// Remove node-level loops from a channel walk, keeping a subsequence.
///
/// The walk visits `s, dst(c₀), dst(c₁), …`; whenever a node repeats,
/// the channels between the two visits are spliced out. The surviving
/// channels are a subsequence of the input, so a walk whose channels
/// strictly ascend in a schedule stays ascending.
fn splice_loops(net: &Network, src: NodeId, walk: Vec<ChannelId>) -> Vec<ChannelId> {
    let mut nodes: Vec<NodeId> = vec![src];
    let mut path: Vec<ChannelId> = Vec::with_capacity(walk.len());
    for c in walk {
        let next = net.channel(c).dst();
        if let Some(pos) = nodes.iter().position(|&v| v == next) {
            nodes.truncate(pos + 1);
            path.truncate(pos);
        } else {
            nodes.push(next);
            path.push(c);
        }
    }
    path
}

/// Materialise a witness into a complete routing table over every
/// reachable ordered pair.
///
/// Replays the reach game over the witness order recording, for every
/// newly covered pair, the channel that covered it; backtracking that
/// provenance yields, per pair, a walk whose channels strictly ascend
/// in the order. Node loops are spliced out (preserving ascent), so
/// the resulting paths are node-simple and the table's CDG is acyclic
/// by construction — which is exactly what the classifier and
/// `wormlint` re-certify.
pub fn witness_table(net: &Network, witness: &Witness) -> Result<TableRouting, RouteError> {
    let n = net.node_count();
    let mut game = ReachGame::new(n);
    let mut prov = vec![u32::MAX; n * n];
    for (pos, &c) in witness.order.iter().enumerate() {
        let ch = net.channel(c);
        game.process_recording(
            ch.src().index(),
            ch.dst().index(),
            u32::try_from(pos).expect("schedule position fits u32"),
            &mut prov,
        );
    }
    let mut table = TableRouting::new();
    for s in 0..n {
        for t in 0..n {
            if s == t || !game.covered(s, t) {
                continue;
            }
            let mut rev = Vec::new();
            let mut cur = t;
            while cur != s {
                let pos = prov[cur * n + s];
                debug_assert_ne!(pos, u32::MAX, "covered pair must have provenance");
                let c = witness.order[pos as usize];
                rev.push(c);
                cur = net.channel(c).src().index();
            }
            rev.reverse();
            let src = NodeId::from_index(s);
            let channels = splice_loops(net, src, rev);
            let path = Path::from_channels(net, channels)?;
            table.insert(net, src, NodeId::from_index(t), path)?;
        }
    }
    Ok(table)
}
