//! Impossibility certificates and their isolated re-validation.
//!
//! Two structural certificates refute a component without any search:
//!
//! * **Deficiency.** All-pairs coverage inside an SCC is one-way
//!   gossip; in the one-way (telegraph) model it needs at least
//!   `2n − 2` calls, and a one-pass schedule uses each channel at
//!   most once — so an SCC with `n ≥ 3` nodes and fewer than `2n − 2`
//!   internal channels is unroutable. (This kills every single-lane
//!   unidirectional ring: `n` channels < `2n − 2` for `n ≥ 3`.)
//! * **Forced precedence.** Where a node has a *single* in- or
//!   out-channel, every winning schedule is forced to order certain
//!   channel pairs; if the forced pairs close a cycle no total order
//!   exists. (This kills components that pass the counting bound,
//!   e.g. two mutually-exclusive bottleneck chains.)

use wormnet::{ChannelId, Network};

use crate::engine::{build_component, live_sccs, Component};
use crate::report::{Obstruction, ObstructionKind};
use crate::schedule::{exact_order, ExactOutcome};

/// The one-way gossip counting bound.
pub(crate) fn deficiency(comp: &Component) -> Option<ObstructionKind> {
    let n = comp.n();
    if n >= 3 && comp.m() < 2 * n - 2 {
        Some(ObstructionKind::Deficiency {
            required: 2 * n - 2,
        })
    } else {
        None
    }
}

/// Forced precedence constraints `(a, b)` — channel `a` must be
/// scheduled strictly before channel `b` in *every* winning order —
/// for a component with `n ≥ 3` nodes.
///
/// Derivations (all demands are internal to the SCC, and internal
/// demands can only use internal channels):
///
/// * `v` has a single in-channel `e = (u, v)`: every source must
///   already reach `u` when `e` fires. So if `u` itself has a single
///   in-channel `e′`, then `e′ < e`; and for every third node `w`
///   with a single out-channel `f`, the demand `(w, v)` forces
///   `f < e` (all of `w`'s reach starts with `f`).
/// * `w` has a single out-channel `f = (w, x)`: all of `w`'s reach
///   beyond `x` flows through `x`'s out-channels after `f`. So if
///   `x` has a single out-channel `f′`, then `f < f′`; and for every
///   third node `t` with a single in-channel `e`, the demand
///   `(w, t)` forces `f < e`.
fn constraints(comp: &Component) -> Vec<(usize, usize)> {
    let n = comp.n();
    debug_assert!(n >= 3);
    let in_adj = comp.in_adj();
    let out_adj = comp.out_adj();
    let single = |adj: &[Vec<usize>], v: usize| (adj[v].len() == 1).then(|| adj[v][0]);
    let mut edges = Vec::new();
    for v in 0..n {
        if let Some(e) = single(&in_adj, v) {
            let u = comp.ends[e].0;
            if let Some(e2) = single(&in_adj, u) {
                edges.push((e2, e));
            }
            for w in 0..n {
                if w == u || w == v {
                    continue;
                }
                if let Some(f) = single(&out_adj, w) {
                    edges.push((f, e));
                }
            }
        }
        if let Some(f) = single(&out_adj, v) {
            let x = comp.ends[f].1;
            if let Some(f2) = single(&out_adj, x) {
                edges.push((f, f2));
            }
            for t in 0..n {
                if t == v || t == x {
                    continue;
                }
                if let Some(e) = single(&in_adj, t) {
                    edges.push((f, e));
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges.retain(|&(a, b)| a != b);
    edges
}

/// Find a cycle of forced precedences, as local channel indices in
/// constraint order (`cycle[i]` forced before `cycle[i+1]`,
/// cyclically). `None` when the constraint digraph is acyclic.
pub(crate) fn precedence_cycle(comp: &Component) -> Option<Vec<usize>> {
    if comp.n() < 3 {
        return None;
    }
    let m = comp.m();
    let edges = constraints(comp);
    let mut adj = vec![Vec::new(); m];
    for &(a, b) in &edges {
        adj[a].push(b);
    }
    // Iterative 3-colour DFS; the stack of grey vertices yields the
    // cycle when a back edge appears.
    let mut colour = vec![0u8; m];
    for start in 0..m {
        if colour[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        colour[start] = 1;
        while let Some(&(v, next)) = stack.last() {
            if next < adj[v].len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let w = adj[v][next];
                match colour[w] {
                    0 => {
                        colour[w] = 1;
                        stack.push((w, 0));
                    }
                    1 => {
                        let from = stack
                            .iter()
                            .position(|&(u, _)| u == w)
                            .expect("grey on stack");
                        return Some(stack[from..].iter().map(|&(u, _)| u).collect());
                    }
                    _ => {}
                }
            } else {
                colour[v] = 2;
                stack.pop();
            }
        }
    }
    None
}

/// Re-validate an obstruction in isolation: rebuild the live SCCs of
/// `net` minus `down`, confirm the claimed node set is exactly one of
/// them with exactly the claimed internal channels, and re-derive the
/// specific violation from scratch.
///
/// This is the "checkable without trusting the engine" half of the
/// impossible-side certificate; tests and the differential fuzzer
/// call it on every `Impossible` verdict.
pub fn check_obstruction(net: &Network, down: &[ChannelId], obstruction: &Obstruction) -> bool {
    let mut alive = vec![true; net.channel_count()];
    for c in down {
        alive[c.index()] = false;
    }
    let mut nodes: Vec<usize> = obstruction.nodes.iter().map(|v| v.index()).collect();
    nodes.sort_unstable();
    nodes.dedup();
    if nodes.len() != obstruction.nodes.len() {
        return false;
    }
    if !live_sccs(net, &alive).contains(&nodes) {
        return false;
    }
    let comp = build_component(net, &alive, &nodes);
    if comp.channels != obstruction.channels {
        return false;
    }
    match &obstruction.kind {
        ObstructionKind::Deficiency { required } => {
            deficiency(&comp)
                == Some(ObstructionKind::Deficiency {
                    required: *required,
                })
        }
        ObstructionKind::PrecedenceCycle { cycle } => {
            if comp.n() < 3 || cycle.len() < 2 {
                return false;
            }
            let local = |c: ChannelId| comp.channels.binary_search(&c).ok();
            let Some(locals) = cycle.iter().map(|&c| local(c)).collect::<Option<Vec<_>>>() else {
                return false;
            };
            let edges = constraints(&comp);
            locals
                .iter()
                .zip(locals.iter().cycle().skip(1))
                .all(|(&a, &b)| edges.binary_search(&(a, b)).is_ok())
        }
        ObstructionKind::Exhausted { states } => {
            if comp.n() > 16 || comp.m() > 32 {
                return false;
            }
            // Deterministic re-refutation, with headroom over the
            // budget the original run reported.
            let budget = states.saturating_mul(4).max(10_000_000);
            matches!(exact_order(&comp, budget), ExactOutcome::Refuted { .. })
        }
    }
}
