//! Benchmarks and experiment binaries for the reproduction. The
//! library itself only hosts shared experiment helpers; see
//! `src/bin/` for the per-figure experiment programs and `benches/`
//! for the Criterion suites.
//!
//! Shared helpers:
//!
//! * [`report`] — fixed-width table formatting for experiment output;
//! * [`args`] — the `--threads` / flag-value scanners every binary
//!   uses;
//! * [`trace`] — the `--trace <path>` machine-readable trace dump
//!   (see `docs/TRACING.md` for the JSON schema).

#![deny(missing_docs)]

pub mod args;
pub mod report;
pub mod trace;
