//! Benchmarks and experiment binaries for the reproduction. The
//! library itself only hosts shared experiment helpers; see
//! `src/bin/` for the per-figure experiment programs and `benches/`
//! for the Criterion suites.
//!
//! Shared helpers:
//!
//! * [`report`] — fixed-width table formatting for experiment output;
//! * [`args`] — the `--threads` / flag-value scanners every binary
//!   uses;
//! * [`trace`] — the `--trace <path>` machine-readable trace dump
//!   (see `docs/TRACING.md` for the JSON schema);
//! * [`scenarios`] — the named search/simulator workloads shared by
//!   the Criterion suites and the `bench_report` harness;
//! * [`bench_report`] — the headless runner behind the committed
//!   `wormbench/1` baselines (see `docs/PERFORMANCE.md`).

#![deny(missing_docs)]

pub mod args;
pub mod bench_report;
pub mod report;
pub mod scenarios;
pub mod trace;
