//! Benchmarks and experiment binaries for the reproduction. The
//! library itself only hosts shared experiment helpers; see
//! `src/bin/` for the per-figure experiment programs and `benches/`
//! for the Criterion suites.

pub mod report;
