//! Benchmarks and experiment binaries for the reproduction. The
//! library itself only hosts shared experiment helpers; see
//! `src/bin/` for the per-figure experiment programs and `benches/`
//! for the Criterion suites.
//!
//! Shared helpers:
//!
//! * [`report`] — fixed-width table formatting for experiment output;
//! * [`args`] — the `--threads` / flag-value scanners every binary
//!   uses;
//! * [`trace`] — the `--trace <path>` machine-readable trace dump
//!   (see `docs/TRACING.md` for the JSON schema);
//! * [`scenarios`] — the named search/simulator workloads shared by
//!   the Criterion suites and the `bench_report` harness;
//! * [`bench_report`] — the headless runner behind the committed
//!   `wormbench/1` baselines (see `docs/PERFORMANCE.md`);
//! * [`lintcorpus`] — the named lint targets with expected verdicts
//!   behind the `wormlint` binary and the committed `LINT_corpus.json`
//!   snapshot (see `docs/LINTS.md`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod args;
pub mod bench_report;
pub mod lintcorpus;
pub mod report;
pub mod scenarios;
pub mod trace;
