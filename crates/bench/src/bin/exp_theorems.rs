//! EXP-T25 — Section 5's structural results validated on an algorithm
//! corpus:
//!
//! * **Corollaries 1–3** (suffix-closed / coherent oblivious routing
//!   has no unreachable configurations): clockwise ring routing is
//!   coherent and cyclic — every one of its cycles must be a reachable
//!   deadlock, and the search confirms it for each ring size.
//! * **Theorem 2** (shared channels inside the cycle don't help):
//!   overlapping-reach constructions whose candidates share only
//!   inside the cycle all deadlock.
//! * **Theorem 3** (minimal routing): random *minimal* oblivious
//!   algorithms never produce a false resource cycle — every cyclic
//!   one is deadlockable.
//! * **Baselines**: the classic deadlock-free algorithms all have
//!   acyclic CDGs (Dally–Seitz), while the paper's construction is the
//!   only deadlock-free *cyclic* one.
//!
//! Run with: `cargo run --release -p wormbench --bin exp_theorems`
//! (add `--threads N` to run the classifier's search fallback on the
//! parallel engine — default 1, sequential; 0 = all cores — and
//! `--trace <path>` to dump a wormtrace JSON report)

use rand::SeedableRng;
use worm_core::classify::{classify_algorithm, AlgorithmVerdict, ClassifyOptions};
use worm_core::family::{CycleMessageSpec, SharedCycleSpec};
use wormbench::report::{cell, header, row};
use wormbench::{args, trace};
use wormcdg::Cdg;
use wormnet::topology::{ring_unidirectional, ring_with_vcs, Hypercube, Mesh, Torus};
use wormroute::algorithms::{
    clockwise_ring, dateline_ring, dateline_torus, dimension_order, ecube, negative_first,
    random_table, random_tree_routing, valiant_mesh, west_first,
};
use wormroute::properties;

fn verdict_name(v: &AlgorithmVerdict) -> &'static str {
    match v {
        AlgorithmVerdict::DeadlockFreeAcyclic { .. } => "free (acyclic CDG)",
        AlgorithmVerdict::DeadlockFreeWithCycles { .. } => "FREE WITH CYCLES",
        AlgorithmVerdict::Deadlockable { .. } => "deadlockable",
        AlgorithmVerdict::Unknown { .. } => "unknown",
    }
}

fn main() {
    let _trace = trace::init("exp_theorems");
    let opts = ClassifyOptions {
        search_threads: args::threads(1),
        ..ClassifyOptions::default()
    };

    println!("EXP-T25 (1/4): baseline deadlock-free algorithms (Dally-Seitz)\n");
    header(&[
        ("algorithm", 26),
        ("coherent", 9),
        ("cdg", 8),
        ("verdict", 20),
    ]);
    {
        let mesh = Mesh::new(&[4, 4]);
        baseline_row(
            "XY on 4x4 mesh",
            mesh.network(),
            &dimension_order(&mesh).unwrap(),
            &opts,
        );
        let mesh3 = Mesh::new(&[3, 3, 2]);
        baseline_row(
            "DOR on 3x3x2 mesh",
            mesh3.network(),
            &dimension_order(&mesh3).unwrap(),
            &opts,
        );
        let cube = Hypercube::new(3);
        baseline_row(
            "e-cube on H3",
            cube.network(),
            &ecube(&cube).unwrap(),
            &opts,
        );
        let (net, nodes) = ring_with_vcs(6, 2);
        baseline_row(
            "dateline ring 6",
            &net,
            &dateline_ring(&net, &nodes).unwrap(),
            &opts,
        );
        let torus = Torus::new(&[3, 3], 2);
        baseline_row(
            "dateline torus 3x3",
            torus.network(),
            &dateline_torus(&torus).unwrap(),
            &opts,
        );
        let mesh = Mesh::new(&[4, 3]);
        baseline_row(
            "west-first 4x3",
            mesh.network(),
            &west_first(&mesh).unwrap(),
            &opts,
        );
        baseline_row(
            "negative-first 4x3",
            mesh.network(),
            &negative_first(&mesh).unwrap(),
            &opts,
        );
        let vmesh = Mesh::with_vcs(&[3, 3], 2);
        baseline_row(
            "Valiant 3x3 (2 lanes)",
            vmesh.network(),
            &valiant_mesh(&vmesh).unwrap(),
            &opts,
        );
    }

    println!("\nEXP-T25 (2/4): Corollaries 1-3 — coherent + cyclic => deadlockable\n");
    header(&[
        ("ring size", 10),
        ("coherent", 9),
        ("cycles", 7),
        ("verdict", 20),
    ]);
    for n in 3..=6 {
        let (net, nodes) = ring_unidirectional(n);
        let table = clockwise_ring(&net, &nodes).unwrap();
        assert!(properties::is_coherent(&net, &table));
        let cdg = Cdg::build(&net, &table);
        let verdict = classify_algorithm(&net, &table, &opts);
        row(&[
            cell(n, 10),
            cell("yes", 9),
            cell(cdg.cycles().len(), 7),
            cell(verdict_name(&verdict), 20),
        ]);
        assert!(
            matches!(verdict, AlgorithmVerdict::Deadlockable { .. }),
            "a coherent cyclic algorithm must deadlock (Corollary 3)"
        );
    }

    println!("\nEXP-T25 (2b/4): Corollary 1 — random N x N -> C corpus\n");
    {
        // Destination-rooted random in-trees are node functions
        // (R : N x N -> C). Corollary 1: none of their cycles can be
        // unreachable, so a cyclic instance is always deadlockable.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE);
        let mut acyclic = 0usize;
        let mut deadlockable = 0usize;
        let mut violations = 0usize;
        let trials = 25;
        for _ in 0..trials {
            let mesh = Mesh::new(&[3, 2]);
            let table = random_tree_routing(mesh.network(), &mut rng).unwrap();
            assert!(properties::is_node_function(mesh.network(), &table));
            match classify_algorithm(mesh.network(), &table, &opts) {
                AlgorithmVerdict::DeadlockFreeAcyclic { .. } => acyclic += 1,
                AlgorithmVerdict::Deadlockable { .. } => deadlockable += 1,
                AlgorithmVerdict::DeadlockFreeWithCycles { .. } => violations += 1,
                AlgorithmVerdict::Unknown { .. } => {}
            }
        }
        println!(
            "{trials} random in-tree algorithms on a 3x2 mesh: \
             {acyclic} acyclic, {deadlockable} deadlockable, {violations} free-with-cycles"
        );
        assert_eq!(
            violations, 0,
            "Corollary 1: no false resource cycles in N x N -> C"
        );
    }

    println!("\nEXP-T25 (3/4): Theorem 2 — inside-only sharing => deadlockable\n");
    header(&[("construction", 24), ("verdict", 20)]);
    for (name, spec) in [
        (
            "2 msgs, reach 2 overlap",
            SharedCycleSpec {
                messages: vec![
                    CycleMessageSpec::private(1, 3, 2),
                    CycleMessageSpec::private(1, 3, 2),
                ],
            },
        ),
        (
            "3 msgs, reach 2 overlap",
            SharedCycleSpec {
                messages: vec![
                    CycleMessageSpec::private(1, 2, 2),
                    CycleMessageSpec::private(1, 2, 2),
                    CycleMessageSpec::private(1, 2, 2),
                ],
            },
        ),
    ] {
        let c = spec.build();
        let verdict = classify_algorithm(&c.net, &c.table, &opts);
        row(&[cell(name, 24), cell(verdict_name(&verdict), 20)]);
        assert!(
            matches!(verdict, AlgorithmVerdict::Deadlockable { .. }),
            "inside-only sharing must be reachable (Theorem 2)"
        );
    }

    println!("\nEXP-T25 (4/4): Theorem 3 — random minimal oblivious corpus\n");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED);
    let mut acyclic = 0usize;
    let mut deadlockable = 0usize;
    let mut free_with_cycles = 0usize;
    let mut unknown = 0usize;
    let trials = 40;
    for _ in 0..trials {
        let mesh = Mesh::new(&[3, 2]);
        let table = random_table(mesh.network(), &mut rng, 0).unwrap();
        assert!(properties::is_minimal(mesh.network(), &table));
        match classify_algorithm(mesh.network(), &table, &opts) {
            AlgorithmVerdict::DeadlockFreeAcyclic { .. } => acyclic += 1,
            AlgorithmVerdict::Deadlockable { .. } => deadlockable += 1,
            AlgorithmVerdict::DeadlockFreeWithCycles { .. } => free_with_cycles += 1,
            AlgorithmVerdict::Unknown { .. } => unknown += 1,
        }
    }
    println!(
        "{trials} random minimal algorithms on a 3x2 mesh: \
         {acyclic} acyclic, {deadlockable} deadlockable, \
         {free_with_cycles} free-with-cycles, {unknown} unknown"
    );
    assert_eq!(
        free_with_cycles, 0,
        "Theorem 3: minimal oblivious routing should not exhibit the paper's phenomenon here"
    );
    println!("\npaper: false resource cycles need non-minimal, non-coherent routing;");
    println!("the Cyclic Dependency algorithm is the only deadlock-free cyclic one.");
}

fn baseline_row(
    name: &str,
    net: &wormnet::Network,
    table: &wormroute::TableRouting,
    opts: &ClassifyOptions,
) {
    let coherent = properties::is_coherent(net, table);
    let cdg = Cdg::build(net, table);
    let verdict = classify_algorithm(net, table, opts);
    row(&[
        cell(name, 26),
        cell(if coherent { "yes" } else { "no" }, 9),
        cell(
            if cdg.is_acyclic() {
                "acyclic"
            } else {
                "cyclic"
            },
            8,
        ),
        cell(verdict_name(&verdict), 20),
    ]);
    assert!(
        matches!(verdict, AlgorithmVerdict::DeadlockFreeAcyclic { .. }),
        "{name} must be Dally-Seitz deadlock-free"
    );
}
