//! Headless benchmark harness: runs the named scenario suites and
//! writes the committed `wormbench/1` baselines.
//!
//! ```text
//! bench_report [--suite search|sim|all] [--engine stepping|event|both]
//!              [--smoke] [--out-dir DIR]
//! ```
//!
//! * `--suite` — which suite(s) to run (default `all`).
//! * `--engine` — which simulator engine(s) the sim suite measures
//!   (default `both`: stepping keys unprefixed, event keys
//!   `event_`-prefixed, plus `event_speedup`). The committed
//!   `BENCH_sim.json` is always regenerated with `both`.
//! * `--smoke` — cap every workload to a tiny budget so the whole run
//!   finishes in seconds; used by CI to validate the harness. Smoke
//!   results are printed but **not** written unless `--out-dir` is
//!   given explicitly (smoke numbers must never overwrite baselines).
//! * `--out-dir` — where to write `BENCH_search.json` /
//!   `BENCH_sim.json` (default: the current directory; full runs
//!   regenerate the repo-root baselines when run from the repo root).
//!
//! See `docs/PERFORMANCE.md` for the schema and the regeneration
//! workflow.

use wormbench::args;
use wormbench::bench_report::{run_search_suite, run_sim_suite_engines, BenchReport};
use wormsim::runner::EngineKind;

fn write_or_print(report: &BenchReport, out_dir: Option<&str>, smoke: bool) {
    let json = report.to_json();
    match out_dir {
        None if smoke => {
            println!("--- BENCH_{}.json (smoke, not written) ---", report.suite);
            print!("{json}");
        }
        dir => {
            let dir = dir.unwrap_or(".");
            let path = format!("{dir}/BENCH_{}.json", report.suite);
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                eprintln!("bench_report: cannot create {dir}: {e}");
                std::process::exit(1);
            });
            std::fs::write(&path, json).unwrap_or_else(|e| {
                eprintln!("bench_report: cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("wrote {path} ({} entries)", report.entries.len());
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let suite = args::value_of("--suite").unwrap_or_else(|| "all".into());
    let out_dir = args::value_of("--out-dir");
    let out_dir = out_dir.as_deref();
    if !matches!(suite.as_str(), "search" | "sim" | "all") {
        eprintln!("bench_report: unknown suite {suite:?} (expected search, sim, or all)");
        std::process::exit(2);
    }
    let engines: &[EngineKind] = match args::value_of("--engine").as_deref() {
        None | Some("both") => &[EngineKind::Stepping, EngineKind::Event],
        Some("stepping") => &[EngineKind::Stepping],
        Some("event") => &[EngineKind::Event],
        Some(other) => {
            eprintln!("bench_report: unknown engine {other:?} (expected stepping, event, or both)");
            std::process::exit(2);
        }
    };
    if suite == "search" || suite == "all" {
        write_or_print(&run_search_suite(smoke), out_dir, smoke);
    }
    if suite == "sim" || suite == "all" {
        write_or_print(&run_sim_suite_engines(smoke, engines), out_dir, smoke);
    }
}
