//! EXP-G1 — Section 6: the generalized family `G(k)` and skew
//! tolerance.
//!
//! Regenerates: the series `k → minimum adversarial stall budget`
//! that quantifies the paper's claim "a network configuration can be
//! constructed requiring any amount of extra delay before deadlock can
//! occur".
//!
//! Run with: `cargo run --release -p wormbench --bin exp_generalized`
//! (add `--threads N` to pin the search worker count; default: all
//! cores, and `--trace <path>` to dump a wormtrace JSON report)

use worm_core::paper::generalized;
use wormbench::report::{cell, header, row};
use wormbench::{args, trace};
use wormsearch::{explore, min_stall_budget_parallel, SearchConfig};
use wormsim::Sim;

fn main() {
    let _trace = trace::init("exp_generalized");
    let threads = args::threads(0);
    println!("EXP-G1: Section 6 — G(k) requires >= k extra delay for deadlock\n");
    header(&[
        ("k", 4),
        ("ring", 6),
        ("no-stall verdict", 17),
        ("min stalls", 11),
        ("paper bound", 12),
        ("states", 10),
    ]);
    for k in 1..=5usize {
        let c = generalized::generalized(k);
        let sim = Sim::new(
            &c.net,
            &c.table,
            generalized::minimum_length_specs(&c),
            Some(1),
        )
        .expect("routed");
        let base = explore(&sim, &SearchConfig::default());
        let (min, trail) = min_stall_budget_parallel(&sim, (k + 4) as u32, 8_000_000, threads);
        let last = trail.last().expect("at least one budget scanned");
        println!("  k={k} search: {}", last.metrics.summary());
        row(&[
            cell(k, 4),
            cell(c.ring.len(), 6),
            cell(
                if base.verdict.is_free() {
                    "free"
                } else {
                    "DEADLOCK"
                },
                17,
            ),
            cell(
                min.map(|b| b.to_string())
                    .unwrap_or_else(|| "> budget".into()),
                11,
            ),
            cell(format!(">= {k}"), 12),
            cell(trail.iter().map(|r| r.states_explored).sum::<usize>(), 10),
        ]);
    }
    println!();
    println!("paper: the required delay grows without bound in k, so bounded");
    println!("clock skew cannot create the deadlock. measured: min stalls = k+1");
    println!("(the +1 is this router model's header-acquisition margin).");
}
