//! EXP-X1 — extension: cycles with **multiple shared channels**.
//!
//! The paper's conclusion poses this as an open problem: "Conditions
//! could also be derived when there are multiple shared channels for
//! the same cycle." Theorem 4 settles the single-channel two-sharer
//! case (always a reachable deadlock); this experiment asks what
//! happens when a four-message cycle funnels through **two** shared
//! channels, two sharers each — a shape none of the paper's theorems
//! covers (the classifier falls back to exhaustive search).
//!
//! Sweep: alternating groups `{0,1,0,1}`, odd/even access distances
//! `(d_A, d_B)`, equal ring segments, minimum lengths.
//!
//! Run with: `cargo run --release -p wormbench --bin exp_multishare`
//! (add `--threads N` to search with the parallel engine — default 1,
//! the sequential oracle; 0 = all cores — and `--trace <path>` to
//! dump a wormtrace JSON report)

use worm_core::family::{CycleMessageSpec, SharedCycleSpec};
use wormbench::report::{cell, header, row};
use wormbench::{args, trace};
use wormsearch::{
    explore, explore_parallel, min_stall_budget, min_stall_budget_parallel, SearchConfig,
    SearchResult,
};
use wormsim::{MessageSpec, Sim};

/// Searches with the engine selected by `--threads` (1 = sequential).
fn search(sim: &Sim, threads: usize) -> SearchResult {
    if threads == 1 {
        explore(sim, &SearchConfig::default())
    } else {
        explore_parallel(sim, &SearchConfig::default(), threads)
    }
}

/// Minimum stall budget with the engine selected by `--threads`.
fn budget(sim: &Sim, threads: usize) -> Option<u32> {
    if threads == 1 {
        min_stall_budget(sim, 6, 5_000_000).0
    } else {
        min_stall_budget_parallel(sim, 6, 5_000_000, threads).0
    }
}

fn main() {
    let _trace = trace::init("exp_multishare");
    let threads = args::threads(1);
    println!("EXP-X1: two shared channels, two sharers each (paper: open problem)\n");
    println!("messages alternate between the channels: groups {{0,1,0,1}}, g = 4\n");
    header(&[
        ("d_A", 5),
        ("d_B", 5),
        ("verdict", 12),
        ("min stalls", 11),
        ("states", 9),
    ]);

    let g = 4usize;
    let mut unreachable_cases = 0usize;
    for d_a in 1..=3usize {
        for d_b in 1..=3usize {
            let spec = SharedCycleSpec {
                messages: vec![
                    CycleMessageSpec::shared_in_group(0, d_a, g, 1),
                    CycleMessageSpec::shared_in_group(1, d_b, g, 1),
                    CycleMessageSpec::shared_in_group(0, d_a, g, 1),
                    CycleMessageSpec::shared_in_group(1, d_b, g, 1),
                ],
            };
            let c = spec.build();
            let specs: Vec<MessageSpec> = c
                .built
                .iter()
                .map(|b| MessageSpec::new(b.pair.0, b.pair.1, b.spec.g))
                .collect();
            let sim = Sim::new(&c.net, &c.table, specs, Some(1)).expect("routed");
            let r = search(&sim, threads);
            let free = r.verdict.is_free();
            if free {
                unreachable_cases += 1;
            }
            let stalls = if free {
                budget(&sim, threads)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| ">6".into())
            } else {
                "0".into()
            };
            row(&[
                cell(d_a, 5),
                cell(d_b, 5),
                cell(if free { "UNREACHABLE" } else { "deadlock" }, 12),
                cell(stalls, 11),
                cell(r.states_explored, 9),
            ]);
        }
    }

    // Second sweep: the two sharers of each channel ADJACENT in the
    // cycle, with Figure 1's asymmetric access distances split across
    // the two channels: does splitting the four-sharer channel into
    // two two-sharer channels preserve Figure 1's unreachability?
    println!();
    println!("Figure 1's shape split across two channels (groups {{0,1,0,1}} vs {{0,0,1,1}}):\n");
    header(&[
        ("groups", 12),
        ("(d per msg)", 14),
        ("verdict", 12),
        ("min stalls", 11),
        ("states", 9),
    ]);
    for (label, groups) in [
        ("alternating", [0usize, 1, 0, 1]),
        ("adjacent", [0, 0, 1, 1]),
    ] {
        // Figure 1 distances: odd messages d=2, even d=3; rings 3/4.
        let ds = [2usize, 3, 2, 3];
        let gs = [3usize, 4, 3, 4];
        let spec = SharedCycleSpec {
            messages: (0..4)
                .map(|i| CycleMessageSpec::shared_in_group(groups[i], ds[i], gs[i], 1))
                .collect(),
        };
        let c = spec.build();
        let specs: Vec<MessageSpec> = c
            .built
            .iter()
            .map(|b| MessageSpec::new(b.pair.0, b.pair.1, b.spec.g))
            .collect();
        let sim = Sim::new(&c.net, &c.table, specs, Some(1)).expect("routed");
        let r = search(&sim, threads);
        let free = r.verdict.is_free();
        if free {
            unreachable_cases += 1;
        }
        let stalls = if free {
            budget(&sim, threads)
                .map(|b| b.to_string())
                .unwrap_or_else(|| ">6".into())
        } else {
            "0".into()
        };
        row(&[
            cell(label, 12),
            cell("(2,3,2,3)", 14),
            cell(if free { "UNREACHABLE" } else { "deadlock" }, 12),
            cell(stalls, 11),
            cell(r.states_explored, 9),
        ]);
    }

    println!();
    if unreachable_cases > 0 {
        println!(
            "finding: {unreachable_cases} parameter combinations are false resource \
             cycles even though\nEACH shared channel has only two users — Theorem 4's \
             guarantee does not\ncompose across multiple shared channels. The paper's \
             open problem is real:\nmulti-channel sharing creates unreachability the \
             single-channel theory misses."
        );
    } else {
        println!(
            "finding: every combination deadlocks — in this family, two-sharer \
             channels\ncompose reachably, suggesting Theorem 4 extends to multiple \
             shared channels\nof this shape."
        );
    }
}
