//! EXP-A1 — the adaptive-routing extension (paper Sections 2 and 7):
//! Duato's fact that an acyclic CDG is not necessary for deadlock-free
//! **adaptive** routing, machine-checked with the adaptive engine.
//!
//! * fully adaptive minimal routing on a single-lane mesh: cyclic
//!   extended CDG and a **reachable** deadlock (knot witness found);
//! * Duato's escape-channel construction on a two-lane mesh: the full
//!   extended CDG is still cyclic, the escape subnetwork is acyclic,
//!   and **no schedule deadlocks** (exhaustive).
//!
//! This is the adaptive analogue of the paper's oblivious result, and
//! the direction its conclusion marks as future work.
//!
//! Run with: `cargo run --release -p wormbench --bin exp_adaptive`
//! (add `--trace <path>` to dump a wormtrace JSON report)

use wormbench::report::{cell, header, row};
use wormbench::trace;
use wormcdg::adaptive::AdaptiveCdg;
use wormnet::topology::Mesh;
use wormroute::adaptive::{
    duato_mesh, fully_adaptive_minimal, west_first_adaptive, AdaptiveRouting,
};
use wormsearch::adaptive::{explore_adaptive, AdaptiveVerdict};
use wormsim::adaptive::AdaptiveSim;
use wormsim::MessageSpec;

fn corner_rotation(mesh: &Mesh, length: usize) -> Vec<MessageSpec> {
    vec![
        MessageSpec::new(mesh.node(&[0, 0]), mesh.node(&[1, 1]), length),
        MessageSpec::new(mesh.node(&[1, 0]), mesh.node(&[0, 1]), length),
        MessageSpec::new(mesh.node(&[1, 1]), mesh.node(&[0, 0]), length),
        MessageSpec::new(mesh.node(&[0, 1]), mesh.node(&[1, 0]), length),
    ]
}

fn analyze(name: &str, mesh: &Mesh, routing: AdaptiveRouting) {
    routing
        .validate(mesh.network())
        .expect("connected relation");
    let cdg = AdaptiveCdg::build(mesh.network(), &routing);
    let net = mesh.network();
    let escape_acyclic = if mesh.vcs() >= 2 {
        cdg.restricted_to(|c| net.channel(c).vc() == 0)
            .is_acyclic()
            .to_string()
    } else {
        "n/a".to_string()
    };

    // Exhaustive verdict on the 2x2 corner-rotation workload, using
    // the same flavour of relation on the smaller mesh.
    let small = if mesh.vcs() >= 2 {
        Mesh::with_vcs(&[2, 2], mesh.vcs())
    } else {
        Mesh::new(&[2, 2])
    };
    let small_routing = if mesh.vcs() >= 2 {
        duato_mesh(&small)
    } else if name.contains("west") {
        west_first_adaptive(&small)
    } else {
        fully_adaptive_minimal(&small)
    };
    let sim = AdaptiveSim::new(
        small.network(),
        small_routing,
        corner_rotation(&small, 3),
        Some(1),
    )
    .expect("routed");
    let result = explore_adaptive(&sim, 30_000_000);
    let verdict = match &result.verdict {
        AdaptiveVerdict::DeadlockReachable { members, .. } => {
            format!("DEADLOCK (knot of {})", members.len())
        }
        AdaptiveVerdict::DeadlockFree => "free".to_string(),
        AdaptiveVerdict::Inconclusive { .. } => "inconclusive".to_string(),
    };

    row(&[
        cell(name, 24),
        cell(format!("{:.2}", routing.mean_options()), 12),
        cell(
            if cdg.is_acyclic() {
                "acyclic"
            } else {
                "cyclic"
            },
            9,
        ),
        cell(escape_acyclic, 15),
        cell(verdict, 22),
        cell(result.states_explored, 10),
    ]);
}

fn main() {
    let _trace = trace::init("exp_adaptive");
    println!("EXP-A1: adaptive routing — acyclic CDG not necessary (Duato)\n");
    header(&[
        ("algorithm (3x3 mesh)", 24),
        ("adaptivity", 12),
        ("full CDG", 9),
        ("escape acyclic", 15),
        ("search on 2x2 rotation", 22),
        ("states", 10),
    ]);
    analyze(
        "fully adaptive, 1 lane",
        &Mesh::new(&[3, 3]),
        fully_adaptive_minimal(&Mesh::new(&[3, 3])),
    );
    analyze(
        "west-first adaptive",
        &Mesh::new(&[3, 3]),
        west_first_adaptive(&Mesh::new(&[3, 3])),
    );
    analyze(
        "Duato: adaptive + escape",
        &Mesh::with_vcs(&[3, 3], 2),
        duato_mesh(&Mesh::with_vcs(&[3, 3], 2)),
    );
    println!();
    println!("paper (Section 2): Duato proved an acyclic CDG unnecessary for");
    println!("adaptive routing; the paper then established the same for oblivious");
    println!("routing. measured: the adaptive engine reproduces Duato's side —");
    println!("cyclic full CDG, acyclic escape subnetwork, zero reachable deadlocks;");
    println!("and without the escape lane the same workload deadlocks.");
}
