//! EXP-EXIST — two-sided existence verdicts at fabric scale: decide
//! whether *any* deadlock-free (acyclic-CDG) routing exists, with a
//! certificate either way, and no routing table in sight.
//!
//! Three workloads, the `exist_*` scenarios of the search suite:
//!
//! * the Figure 1 fabric — the paper's headline network, whose
//!   published routing has a cyclic CDG; the engine certifies that an
//!   acyclic-CDG routing also exists;
//! * `G(5)` — the largest Section 6 generalized-family instance;
//! * the no-VC dragonfly fabric (41 groups × 40 routers full scale) —
//!   its production minimal routing deadlocks (see EXP-TOPO), but the
//!   existence engine certifies the *fabric* routable: the table is at
//!   fault, not the hardware.
//!
//! Each row reports the fabric size, the reachable demand count, the
//! winning certificate kind, and the end-to-end analysis time. Every
//! `exists` verdict is self-verified inside the engine by replaying
//! the witness schedule over the reach game; `wormlint` surfaces the
//! same verdicts as the `W3xx` lint family.
//!
//! Run with: `cargo run --release -p wormbench --bin exp_exist`
//! (`--smoke` downscales the dragonfly; `--trace <path>` dumps
//! wormtrace JSON with the `exist.*` counters)

use wormbench::bench_report::{run_exist_suite, BenchValue};
use wormbench::report::{cell, header, row};
use wormbench::trace;

fn get(values: &std::collections::BTreeMap<String, BenchValue>, key: &str) -> String {
    match values
        .get(key)
        .expect("exist entries carry a fixed key set")
    {
        BenchValue::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

fn main() {
    let _trace = trace::init("exp_exist");
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!(
        "EXP-EXIST: two-sided existence certificates ({} instances)",
        if smoke { "smoke" } else { "full" },
    );
    println!();
    let report = run_exist_suite(smoke);
    let widths = [26, 10, 10, 6, 12, 12, 16, 9];
    header(&[
        ("scenario", widths[0]),
        ("channels", widths[1]),
        ("demands", widths[2]),
        ("sccs", widths[3]),
        ("verdict", widths[4]),
        ("certificate", widths[5]),
        ("witness_chans", widths[6]),
        ("exist_ms", widths[7]),
    ]);
    for (name, values) in &report.entries {
        row(&[
            cell(name, widths[0]),
            cell(get(values, "channels"), widths[1]),
            cell(get(values, "demands"), widths[2]),
            cell(get(values, "sccs"), widths[3]),
            cell(get(values, "verdict"), widths[4]),
            cell(get(values, "kind"), widths[5]),
            cell(get(values, "witness_channels"), widths[6]),
            cell(get(values, "exist_ms"), widths[7]),
        ]);
    }
    println!();
    println!("every `exists` above ships a one-pass channel schedule that the");
    println!("engine replays to completion before answering; an `impossible`");
    println!("would ship an isolated obstruction instead (none occur here —");
    println!("these fabrics are routable, even the one whose table deadlocks).");
}
