//! EXP-FLT — fault sweeps over Figures 1–3: which paper verdicts
//! survive hardware misbehaviour?
//!
//! Two questions per construction:
//!
//! * **Dynamic** — under a seeded random schedule of transient
//!   channel outages and router stalls, do the cycle messages still
//!   arrive (and does the deadlock detector stay quiet)?
//! * **Static** — if a channel dies *permanently*, does the
//!   classification pipeline still certify the same deadlock-freedom
//!   answer on the degraded topology? Killing the shared channel of
//!   Figure 1 demotes the headline cyclic-but-free verdict to the
//!   trivially acyclic one; killing a ring channel of Figure 3(e)
//!   breaks the reachable deadlock outright.
//!
//! Everything is deterministic from `--seed` (default `0xC0FFEE`,
//! hex accepted): the same seed reproduces the same plans, outcomes,
//! and verdicts bit-for-bit.
//!
//! Run with: `cargo run --release -p wormbench --bin exp_faults`
//! (add `--seed 0xC0FFEE` to pin the plan seed, `--trace <path>` to
//! dump a wormtrace JSON report with the `fault.*` counters,
//! `--engine stepping|event` to pick the simulator engine backing the
//! dynamic sweep — outcomes are identical either way)

use worm_core::classify::{classify_algorithm, AlgorithmVerdict, ClassifyOptions};
use worm_core::family::CycleConstruction;
use worm_core::paper::{fig1, fig2, fig3};
use wormbench::report::{cell, header, row};
use wormbench::{args, trace};
use wormfault::{reverify, FaultOutcome, FaultPlan, FaultRunner, RetryPolicy};
use wormsim::runner::{ArbitrationPolicy, EngineKind};
use wormsim::Sim;

fn verdict_str(v: &AlgorithmVerdict) -> &'static str {
    match v {
        AlgorithmVerdict::DeadlockFreeAcyclic { .. } => "free-acyclic",
        AlgorithmVerdict::DeadlockFreeWithCycles { .. } => "free-cyclic",
        AlgorithmVerdict::Deadlockable { .. } => "deadlockable",
        AlgorithmVerdict::Unknown { .. } => "unknown",
    }
}

fn outcome_str(o: &FaultOutcome) -> String {
    match o {
        FaultOutcome::Delivered { cycles } => format!("delivered @{cycles}"),
        FaultOutcome::DeliveredPartial { cycles, abandoned } => {
            format!("partial @{cycles} (-{})", abandoned.len())
        }
        FaultOutcome::Deadlock { at_cycle, .. } => format!("DEADLOCK @{at_cycle}"),
        FaultOutcome::Timeout { cycles } => format!("timeout @{cycles}"),
    }
}

/// One named construction to sweep.
struct Case {
    name: &'static str,
    c: CycleConstruction,
}

fn cases() -> Vec<Case> {
    let mut v = vec![
        Case {
            name: "fig1",
            c: fig1::cyclic_dependency(),
        },
        Case {
            name: "fig2",
            c: fig2::two_message_deadlock(),
        },
    ];
    for s in fig3::all_scenarios() {
        if s.name == "a" || s.name == "e" {
            v.push(Case {
                name: if s.name == "a" { "fig3a" } else { "fig3e" },
                c: s.spec.build(),
            });
        }
    }
    v
}

fn main() {
    let _trace = trace::init("exp_faults");
    let seed = args::seed(0xC0FFEE);
    let engine = args::engine(EngineKind::Stepping);
    let opts = ClassifyOptions::default();
    println!("EXP-FLT: fault sweeps over the paper's constructions (seed {seed:#x})");

    // ---- dynamic sweep: transient faults against the live runs ----
    println!();
    println!("transient faults (seeded random outages + router stalls), live runs:");
    header(&[
        ("figure", 8),
        ("plan", 40),
        ("outcome", 18),
        ("downs", 7),
        ("stallc", 7),
    ]);
    for case in cases() {
        let sim =
            Sim::new(&case.c.net, &case.c.table, case.c.message_specs(), Some(1)).expect("routed");
        for round in 0..3u64 {
            let plan = FaultPlan::random(&case.c.net, seed ^ round, 2, 1, 30);
            let mut fr = FaultRunner::new(
                &case.c.net,
                &sim,
                ArbitrationPolicy::OldestFirst,
                plan.clone(),
                RetryPolicy::Passive,
            )
            .with_engine(engine);
            let outcome = fr.run(20_000);
            let report = fr.report();
            row(&[
                cell(case.name, 8),
                cell(plan.describe(), 40),
                cell(outcome_str(&outcome), 18),
                cell(report.channel_downs, 7),
                cell(report.router_stall_cycles, 7),
            ]);
        }
    }

    // ---- static sweep: does the verdict survive permanent damage? ----
    println!();
    println!("degraded-topology re-verification (permanent channel loss):");
    header(&[
        ("figure", 8),
        ("down", 12),
        ("baseline", 14),
        ("degraded", 14),
        ("pairs lost", 11),
        ("edges", 12),
        ("survives", 9),
    ]);
    for case in cases() {
        let baseline = classify_algorithm(&case.c.net, &case.c.table, &opts);
        // A purely transient plan: permanent damage is empty, so the
        // static verdict must survive verbatim.
        let transient = FaultPlan::random(&case.c.net, seed, 2, 1, 30);
        // Permanent loss of the construction's shared channel — the
        // pivot of every cycle in the family.
        let permanent = FaultPlan::new().channel_down(case.c.cs, 10);
        for (label, plan) in [("transient", &transient), ("cs down", &permanent)] {
            let r = reverify(&case.c.net, &case.c.table, plan, &opts);
            row(&[
                cell(case.name, 8),
                cell(label, 12),
                cell(verdict_str(&r.baseline), 14),
                cell(verdict_str(&r.degraded.verdict), 14),
                cell(r.degraded.unroutable_pairs, 11),
                cell(
                    format!(
                        "{}->{}",
                        r.degraded.baseline_edges, r.degraded.degraded_edges
                    ),
                    12,
                ),
                cell(r.verdict_survives, 9),
            ]);
        }
        drop(baseline);
    }

    println!();
    println!("reading: transient plans never touch the static verdict (no permanent damage);");
    println!("killing fig1's shared channel demotes free-cyclic to free-acyclic (the cycle");
    println!("needs c_s), and killing fig3e's shared channel erases its reachable deadlock —");
    println!("graceful degradation in both directions, deterministic under --seed.");
}
