//! EXP-G2 — Section 6, physical-skew variant: the Figure 1 network and
//! the `G(k)` family under randomized per-router clock skew.
//!
//! `exp_generalized` measures the *adversarial stall* threshold via
//! exhaustive search; this experiment drives the simulator with actual
//! periodic router pauses (every router misses one cycle per period at
//! a random phase) and confirms the constructions tolerate skew: all
//! messages always deliver, across periods and seeds, under the
//! adversarial arbitration policy.
//!
//! Run with: `cargo run --release -p wormbench --bin exp_skew`
//! (add `--trace <path>` to dump a wormtrace JSON report, `--engine
//! stepping|event` to pick the simulator engine)

use rand::SeedableRng;
use worm_core::paper::{fig1, generalized};
use wormbench::report::{cell, header, row};
use wormbench::{args, trace};
use wormsim::runner::{ArbitrationPolicy, EngineKind, Outcome, Runner};
use wormsim::skew::SkewModel;
use wormsim::Sim;

fn main() {
    let _trace = trace::init("exp_skew");
    let engine = args::engine(EngineKind::Stepping);
    println!("EXP-G2: Figure 1 / G(k) under randomized per-router clock skew\n");
    header(&[
        ("network", 9),
        ("skew period", 12),
        ("seeds", 6),
        ("deadlocks", 10),
        ("max latency", 12),
    ]);

    let cases: Vec<(String, worm_core::family::CycleConstruction)> =
        std::iter::once(("fig1".to_string(), fig1::cyclic_dependency()))
            .chain((1..=3).map(|k| (format!("G({k})"), generalized::generalized(k))))
            .collect();

    for (name, c) in &cases {
        for period in [3u64, 5, 10] {
            let mut deadlocks = 0usize;
            let mut max_latency = 0u64;
            let seeds = 25;
            for seed in 0..seeds {
                let sim = Sim::new(&c.net, &c.table, c.message_specs(), Some(1)).expect("routed");
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let skew = SkewModel::uniform_random(&c.net, &mut rng, period);
                let mut runner =
                    Runner::new(&sim, ArbitrationPolicy::Adversarial { favored: vec![] })
                        .with_engine(engine)
                        .with_skew(skew);
                match runner.run(100_000) {
                    Outcome::Delivered { .. } => {
                        max_latency = max_latency.max(runner.stats().max_latency().unwrap_or(0));
                    }
                    Outcome::Deadlock { .. } => deadlocks += 1,
                    Outcome::Timeout { .. } => deadlocks += 1, // count as failure
                }
            }
            row(&[
                cell(name.clone(), 9),
                cell(period, 12),
                cell(seeds, 6),
                cell(deadlocks, 10),
                cell(max_latency, 12),
            ]);
            assert_eq!(deadlocks, 0, "{name} must tolerate bounded skew");
        }
    }
    println!();
    println!("paper (Section 6): 'substantial clock skew among the routers does");
    println!("not prevent the creation of unreachable cycles' — i.e. the cycles");
    println!("stay deadlock-free under bounded skew. measured: zero deadlocks.");
}
