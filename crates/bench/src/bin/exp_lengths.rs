//! EXP-FF — message-length-dependent "deadlock freedom" (the paper's
//! Section 1 critique of Fleury & Fraigniaud's example).
//!
//! The paper notes that F&F's independent unreachable-cycle example
//! "requires message lengths of three flits ... if shorter messages
//! are used, a deadlock can be formed", violating the standard
//! assumption that messages can be of arbitrary length — whereas the
//! paper's Figure 1 is deadlock-free at *every* length.
//!
//! We reproduce the phenomenon inside our construction family: a
//! three-sharer instance sitting exactly on the timing-race boundary
//! is deadlock-free when `M_y` is long (its serialization through the
//! shared channel delays `M_z` too much) but deadlocks when `M_y` is
//! short. Figure 1, swept over the same lengths, never deadlocks.
//!
//! Run with: `cargo run --release -p wormbench --bin exp_lengths`
//! (add `--trace <path>` to dump a wormtrace JSON report)

use worm_core::family::{CycleMessageSpec, SharedCycleSpec};
use worm_core::paper::fig1;
use wormbench::report::{cell, header, row};
use wormbench::trace;
use wormsearch::{explore, SearchConfig};
use wormsim::{MessageSpec, Sim};

/// The boundary instance: x = (5, 5), z = (1, 3), y = (2, 2).
/// The z-blocks-x race needs `d_x >= d_z + l_y + 2`, i.e. l_y <= 2.
fn boundary_spec() -> SharedCycleSpec {
    SharedCycleSpec {
        messages: vec![
            CycleMessageSpec::shared(5, 5, 1), // M_x
            CycleMessageSpec::shared(1, 3, 1), // M_z
            CycleMessageSpec::shared(2, 2, 1), // M_y
        ],
    }
}

fn verdict(c: &worm_core::family::CycleConstruction, lengths: &[usize]) -> (&'static str, usize) {
    let specs: Vec<MessageSpec> = c
        .built
        .iter()
        .zip(lengths)
        .map(|(b, &l)| MessageSpec::new(b.pair.0, b.pair.1, l))
        .collect();
    let sim = Sim::new(&c.net, &c.table, specs, Some(1)).expect("routed");
    let r = explore(&sim, &SearchConfig::default());
    (
        if r.verdict.is_free() {
            "free"
        } else {
            "DEADLOCK"
        },
        r.states_explored,
    )
}

fn main() {
    let _trace = trace::init("exp_lengths");
    println!("EXP-FF: length-dependent deadlock freedom (Section 1's F&F critique)\n");

    println!("boundary three-sharer instance, sweeping M_y's length:");
    header(&[("l_y (flits)", 12), ("verdict", 10), ("states", 9)]);
    let c = boundary_spec().build();
    let mut flipped = false;
    let mut prev = "";
    for l_y in 2..=6usize {
        // x and z at their minimum sustaining lengths.
        let (v, states) = verdict(&c, &[5, 3, l_y]);
        if !prev.is_empty() && prev != v {
            flipped = true;
        }
        prev = v;
        row(&[cell(l_y, 12), cell(v, 10), cell(states, 9)]);
    }
    assert!(flipped, "the verdict must depend on M_y's length");

    println!();
    println!("Figure 1, sweeping every message's length together:");
    header(&[("l (flits)", 12), ("verdict", 10), ("states", 9)]);
    let f = fig1::cyclic_dependency();
    for extra in 0..=4usize {
        let lengths: Vec<usize> = f.built.iter().map(|b| b.spec.g + extra).collect();
        let (v, states) = verdict(&f, &lengths);
        row(&[
            cell(format!("g_i + {extra}"), 12),
            cell(v, 10),
            cell(states, 9),
        ]);
        assert_eq!(v, "free", "Figure 1 must be length-robust");
    }

    println!();
    println!("the boundary instance is 'deadlock-free' only for long-enough M_y —");
    println!("exactly the flaw the paper identifies in Fleury & Fraigniaud's example");
    println!("(\"if shorter messages are used, a deadlock can be formed\"); Figure 1");
    println!("satisfies the arbitrary-length assumption and stays free at every length.");
}
