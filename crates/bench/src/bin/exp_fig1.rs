//! EXP-F1 — Figure 1 / Theorem 1: the Cyclic Dependency routing
//! algorithm is deadlock-free despite a cyclic channel dependency
//! graph.
//!
//! Regenerates: the CDG cyclicity evidence, the static deadlock
//! configuration, the exhaustive-search verdict, and robustness sweeps
//! over buffer depth, message length, and duplicate message instances.
//!
//! Run with: `cargo run --release -p wormbench --bin exp_fig1`
//! (add `--trace <path>` to dump a wormtrace JSON report)

use worm_core::paper::fig1;
use wormbench::report::{cell, header, row};
use wormbench::trace;
use wormcdg::deadlock_candidates;
use wormsearch::{explore, min_stall_budget, render_witness, SearchConfig, Verdict};
use wormsim::{MessageSpec, Sim};

fn main() {
    let _trace = trace::init("exp_fig1");
    let c = fig1::cyclic_dependency();
    let cdg = c.cdg();
    println!("EXP-F1: Figure 1 / Theorem 1 — Cyclic Dependency routing algorithm");
    println!(
        "CDG: {} channels, {} dependencies, cycles: {}",
        cdg.channel_count(),
        cdg.edge_count(),
        cdg.cycles().len()
    );
    let cands = deadlock_candidates(&cdg, &c.cycle(), 1000).expect("bounded");
    println!(
        "static deadlock candidates on the cycle: {} (segments hold {:?} channels)",
        cands.len(),
        cands[0]
            .segments
            .iter()
            .map(|s| s.channels.len())
            .collect::<Vec<_>>()
    );
    println!();

    // Sweep: buffer depth x message-length policy.
    println!("reachability search over all schedules:");
    header(&[
        ("buffers", 8),
        ("lengths", 22),
        ("verdict", 14),
        ("states", 10),
    ]);
    for buffers in [1usize, 2, 4] {
        for (label, specs) in [
            ("minimum (l = g_i)", min_specs(&c)),
            ("paper (l = a_i)", c.message_specs()),
            ("double (l = 2 a_i)", double_specs(&c)),
        ] {
            let sim = Sim::new(&c.net, &c.table, specs, Some(buffers)).expect("routed");
            let r = explore(&sim, &SearchConfig::default());
            row(&[
                cell(buffers, 8),
                cell(label, 22),
                cell(verdict_str(&r.verdict), 14),
                cell(r.states_explored, 10),
            ]);
        }
    }

    // Duplicate-instance adversary (Theorem 1's "more than four
    // messages" case).
    println!();
    println!("duplicate-instance adversary (extra copy of one message):");
    header(&[
        ("dup of", 8),
        ("extra len", 10),
        ("verdict", 14),
        ("states", 10),
    ]);
    for dup in 0..4 {
        for extra_len in [3usize, 8, 15] {
            let mut specs = min_specs(&c);
            let b = &c.built[dup];
            specs.push(MessageSpec::new(b.pair.0, b.pair.1, extra_len));
            let sim = Sim::new(&c.net, &c.table, specs, Some(1)).expect("routed");
            let r = explore(
                &sim,
                &SearchConfig {
                    stall_budget: 0,
                    max_states: 20_000_000,
                    dead_channels: Vec::new(),
                    ..SearchConfig::default()
                },
            );
            row(&[
                cell(format!("M{}", dup + 1), 8),
                cell(extra_len, 10),
                cell(verdict_str(&r.verdict), 14),
                cell(r.states_explored, 10),
            ]);
        }
    }

    // How far from deadlock? (ties into Section 6)
    let sim = Sim::new(&c.net, &c.table, c.message_specs(), Some(1)).expect("routed");
    let (min, trail) = min_stall_budget(&sim, 8, 5_000_000);
    println!();
    println!(
        "adversarial stall-cycles needed to force the deadlock: {}",
        min.map(|b| b.to_string()).unwrap_or_else(|| ">8".into())
    );
    if let Some(Verdict::DeadlockReachable(w)) = trail.last().map(|r| &r.verdict) {
        println!(
            "\nthe stall-forced deadlock, as an occupancy trace ({} stalls used):",
            w.stalls_used()
        );
        print!("{}", render_witness(&sim, &c.net, w));
    }
    println!("\npaper: deadlock-free (Theorem 1) — the cycle is a false resource cycle.");
}

fn min_specs(c: &worm_core::family::CycleConstruction) -> Vec<MessageSpec> {
    c.built
        .iter()
        .map(|b| MessageSpec::new(b.pair.0, b.pair.1, b.spec.g))
        .collect()
}

fn double_specs(c: &worm_core::family::CycleConstruction) -> Vec<MessageSpec> {
    c.built
        .iter()
        .map(|b| MessageSpec::new(b.pair.0, b.pair.1, 2 * b.spec.a()))
        .collect()
}

fn verdict_str(v: &wormsearch::Verdict) -> &'static str {
    match v {
        wormsearch::Verdict::DeadlockReachable(_) => "DEADLOCK",
        wormsearch::Verdict::DeadlockFree => "free",
        wormsearch::Verdict::Inconclusive { .. } => "inconclusive",
    }
}
