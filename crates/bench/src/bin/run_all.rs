//! Run every experiment in sequence. Equivalent to invoking each
//! `exp_*` binary; used to regenerate EXPERIMENTS.md's raw output.
//!
//! Run with: `cargo run --release -p wormbench --bin run_all`

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for name in [
        "exp_fig1",
        "exp_adaptive",
        "exp_fig2",
        "exp_fig3",
        "exp_lengths",
        "exp_generalized",
        "exp_montecarlo",
        "exp_multishare",
        "exp_skew",
        "exp_theorems",
    ] {
        println!("\n######## {name} ########\n");
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to run {name}: {e}"));
        assert!(status.success(), "{name} failed");
    }
    println!("\nall experiments completed.");
}
