//! Run every experiment in sequence. Equivalent to invoking each
//! `exp_*` binary; used to regenerate EXPERIMENTS.md's raw output.
//!
//! Run with: `cargo run --release -p wormbench --bin run_all`
//!
//! With `--trace <path>` each child is run with its own `--trace`
//! pointing at a temporary file next to `<path>`, and the per-child
//! reports are aggregated into one `wormtrace-summary/1` document at
//! `<path>` (conventionally `trace_summary.json`; schema in
//! `docs/TRACING.md`).

use std::process::Command;

use wormbench::args;

const EXPERIMENTS: [&str; 11] = [
    "exp_fig1",
    "exp_adaptive",
    "exp_fig2",
    "exp_fig3",
    "exp_faults",
    "exp_lengths",
    "exp_generalized",
    "exp_montecarlo",
    "exp_multishare",
    "exp_skew",
    "exp_theorems",
];

fn main() {
    let summary_path = args::value_of("--trace");
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut reports: Vec<(String, String)> = Vec::new();
    for name in EXPERIMENTS {
        println!("\n######## {name} ########\n");
        let mut cmd = Command::new(dir.join(name));
        let child_trace = summary_path
            .as_ref()
            .map(|p| format!("{p}.{name}.part.json"));
        if let Some(child) = &child_trace {
            cmd.args(["--trace", child]);
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to run {name}: {e}"));
        assert!(status.success(), "{name} failed");
        if let Some(child) = child_trace {
            let json = std::fs::read_to_string(&child)
                .unwrap_or_else(|e| panic!("{name} left no trace at {child}: {e}"));
            let _ = std::fs::remove_file(&child);
            reports.push((name.to_string(), json));
        }
    }
    if let Some(path) = summary_path {
        let summary = wormtrace::summarize(reports.iter().map(|(n, j)| (n.as_str(), j.as_str())));
        std::fs::write(&path, summary).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("\ntrace summary written to {path}");
    }
    println!("\nall experiments completed.");
}
