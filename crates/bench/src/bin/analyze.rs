//! `analyze` — command-line deadlock analysis for built-in networks
//! and routing algorithms: properties, channel dependency graph,
//! classification verdict with provenance.
//!
//! ```text
//! USAGE:
//!   analyze mesh <W> <H> <xy|west-first|negative-first>
//!   analyze ring <N> <clockwise|dateline>
//!   analyze torus <K> <K> dateline
//!   analyze hypercube <D> ecube
//!   analyze fig1 | fig2 | fig3a..fig3f | g <K>
//! ```
//!
//! Examples:
//!   `cargo run --release -p wormbench --bin analyze -- mesh 4 4 xy`
//!   `cargo run --release -p wormbench --bin analyze -- fig1`

use worm_core::classify::{classify_algorithm, AlgorithmVerdict, ClassifyOptions, CycleClass};
use worm_core::paper::{fig1, fig2, fig3, generalized};
use wormcdg::Cdg;
use wormnet::topology::{ring_unidirectional, ring_with_vcs, Hypercube, Mesh, Torus};
use wormnet::Network;
use wormroute::algorithms::{
    clockwise_ring, dateline_ring, dateline_torus, ecube, negative_first, west_first, xy_mesh,
};
use wormroute::{properties, TableRouting};

fn usage() -> ! {
    eprintln!(
        "usage:\n  analyze mesh <W> <H> <xy|west-first|negative-first>\n  \
         analyze ring <N> <clockwise|dateline>\n  \
         analyze torus <K> <K> dateline\n  \
         analyze hypercube <D> ecube\n  \
         analyze fig1 | fig2 | fig3a..fig3f | g <K>"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(s: Option<&String>) -> T {
    s.and_then(|x| x.parse().ok()).unwrap_or_else(|| usage())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (net, table): (Network, TableRouting) = match args.first().map(String::as_str) {
        Some("mesh") => {
            let w: usize = parse(args.get(1));
            let h: usize = parse(args.get(2));
            let mesh = Mesh::new(&[w, h]);
            let table = match args.get(3).map(String::as_str) {
                Some("xy") => xy_mesh(&mesh),
                Some("west-first") => west_first(&mesh),
                Some("negative-first") => negative_first(&mesh),
                _ => usage(),
            }
            .expect("mesh routes");
            (mesh.into_network(), table)
        }
        Some("ring") => {
            let n: usize = parse(args.get(1));
            match args.get(2).map(String::as_str) {
                Some("clockwise") => {
                    let (net, nodes) = ring_unidirectional(n);
                    let table = clockwise_ring(&net, &nodes).expect("ring routes");
                    (net, table)
                }
                Some("dateline") => {
                    let (net, nodes) = ring_with_vcs(n, 2);
                    let table = dateline_ring(&net, &nodes).expect("ring routes");
                    (net, table)
                }
                _ => usage(),
            }
        }
        Some("torus") => {
            let a: usize = parse(args.get(1));
            let b: usize = parse(args.get(2));
            if args.get(3).map(String::as_str) != Some("dateline") {
                usage();
            }
            let torus = Torus::new(&[a, b], 2);
            let table = dateline_torus(&torus).expect("torus routes");
            (torus.into_network(), table)
        }
        Some("hypercube") => {
            let d: u32 = parse(args.get(1));
            if args.get(2).map(String::as_str) != Some("ecube") {
                usage();
            }
            let cube = Hypercube::new(d);
            let table = ecube(&cube).expect("cube routes");
            (cube.into_network(), table)
        }
        Some("fig1") => {
            let c = fig1::cyclic_dependency();
            print!("{}", c.describe());
            (c.net, c.table)
        }
        Some("fig2") => {
            let c = fig2::two_message_deadlock();
            print!("{}", c.describe());
            (c.net, c.table)
        }
        Some(name) if name.starts_with("fig3") => {
            let scenario = fig3::all_scenarios()
                .into_iter()
                .find(|s| name == format!("fig3{}", s.name))
                .unwrap_or_else(|| usage());
            let c = scenario.spec.build();
            print!("{}", c.describe());
            (c.net, c.table)
        }
        Some("g") => {
            let k: usize = parse(args.get(1));
            let c = generalized::generalized(k);
            print!("{}", c.describe());
            (c.net, c.table)
        }
        _ => usage(),
    };

    println!(
        "network: {} nodes, {} channels, strongly connected: {}",
        net.node_count(),
        net.channel_count(),
        net.is_strongly_connected()
    );
    let report = properties::analyze(&net, &table);
    println!(
        "routing: total={} minimal={} prefix-closed={} suffix-closed={} coherent={} N x N -> C form={}",
        report.total,
        report.minimal,
        report.prefix_closed,
        report.suffix_closed,
        report.coherent,
        report.node_function
    );
    let cdg = Cdg::build(&net, &table);
    println!(
        "CDG: {} dependencies, {}",
        cdg.edge_count(),
        if cdg.is_acyclic() {
            "acyclic".to_string()
        } else {
            format!("{} elementary cycle(s)", cdg.cycles().len())
        }
    );

    let verdict = classify_algorithm(&net, &table, &ClassifyOptions::default());
    match &verdict {
        AlgorithmVerdict::DeadlockFreeAcyclic { .. } => {
            println!("verdict: DEADLOCK-FREE (Dally-Seitz: acyclic CDG with numbering)");
        }
        AlgorithmVerdict::DeadlockFreeWithCycles { cycles } => {
            println!(
                "verdict: DEADLOCK-FREE WITH CYCLIC DEPENDENCIES — {} false resource cycle(s)",
                cycles.len()
            );
            for cv in cycles {
                println!("  cycle: {}", cv.cycle.describe(&net));
                for cand in &cv.candidates {
                    println!(
                        "    candidate [{}] unreachable ({})",
                        cand.candidate.describe(&net),
                        class_name(&cand.class)
                    );
                }
            }
        }
        AlgorithmVerdict::Deadlockable { cycles } => {
            println!("verdict: DEADLOCKABLE");
            for cv in cycles.iter().filter(|cv| cv.reachable() == Some(true)) {
                println!("  cycle: {}", cv.cycle.describe(&net));
                for cand in cv.candidates.iter().filter(|c| c.reachable == Some(true)) {
                    println!("    reachable via {}", class_name(&cand.class));
                }
            }
        }
        AlgorithmVerdict::Unknown { .. } => {
            println!("verdict: UNDECIDED within budgets");
        }
    }
}

fn class_name(class: &CycleClass) -> String {
    match class {
        CycleClass::NoOutsideSharing => "Theorem 2: no outside sharing".into(),
        CycleClass::TwoSharers => "Theorem 4: two sharers".into(),
        CycleClass::MinimalAllShare => "Theorem 3: minimal, all share".into(),
        CycleClass::ThreeSharers(ec) => {
            if ec.unreachable() {
                "Theorem 5: all eight conditions hold".into()
            } else {
                format!("Theorem 5: conditions {:?} fail", ec.failing())
            }
        }
        CycleClass::DecidedBySearch { states, .. } => {
            format!("exhaustive search ({states} states)")
        }
        CycleClass::Unknown => "undecided".into(),
    }
}
