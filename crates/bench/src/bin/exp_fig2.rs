//! EXP-F2 — Figure 2 / Theorem 4: a channel outside the cycle shared
//! by exactly two messages always yields a reachable deadlock.
//!
//! Regenerates: the deadlock witness schedule and a sweep over access
//! distances showing the deadlock survives every (d1, d2) combination
//! — the content of Theorem 4.
//!
//! Run with: `cargo run --release -p wormbench --bin exp_fig2`
//! (add `--trace <path>` to dump a wormtrace JSON report)

use worm_core::family::{CycleMessageSpec, SharedCycleSpec};
use worm_core::paper::fig2;
use wormbench::report::{cell, header, row};
use wormbench::trace;
use wormsearch::{explore, render_witness, replay, SearchConfig, Verdict};
use wormsim::Sim;

fn main() {
    let _trace = trace::init("exp_fig2");
    println!("EXP-F2: Figure 2 / Theorem 4 — two sharers outside the cycle");
    let c = fig2::two_message_deadlock();
    let sim = Sim::new(&c.net, &c.table, c.message_specs(), Some(1)).expect("routed");
    match explore(&sim, &SearchConfig::default()).verdict {
        Verdict::DeadlockReachable(w) => {
            println!(
                "deadlock witness: {} cycles, {} stalls, members {:?}",
                w.cycles(),
                w.stalls_used(),
                w.members
            );
            let replayed = replay(&sim, &w).expect("witness replays");
            println!("replay confirms wait-for cycle among {replayed:?}");
            println!("\nschedule (injections per cycle):");
            for (t, d) in w.decisions.iter().enumerate() {
                if !d.inject.is_empty() {
                    println!("  cycle {t}: inject {:?}", d.inject);
                }
            }
            println!("\noccupancy trace (rows: channels, columns: cycles):");
            print!("{}", render_witness(&sim, &c.net, &w));
        }
        v => println!("UNEXPECTED verdict {v:?}"),
    }

    // Theorem 4 is universal over the two access distances: sweep.
    println!("\nsweep over access distances (g = 3, reach = 1, min lengths):");
    header(&[("d1", 4), ("d2", 4), ("verdict", 12), ("states", 9)]);
    for d1 in 1..=4usize {
        for d2 in 1..=4usize {
            let spec = SharedCycleSpec {
                messages: vec![
                    CycleMessageSpec::shared(d1, 3, 1),
                    CycleMessageSpec::shared(d2, 3, 1),
                ],
            };
            let cc = spec.build();
            let specs: Vec<wormsim::MessageSpec> = cc
                .built
                .iter()
                .map(|b| wormsim::MessageSpec::new(b.pair.0, b.pair.1, b.spec.g))
                .collect();
            let sim = Sim::new(&cc.net, &cc.table, specs, Some(1)).expect("routed");
            let r = explore(&sim, &SearchConfig::default());
            row(&[
                cell(d1, 4),
                cell(d2, 4),
                cell(
                    match r.verdict {
                        Verdict::DeadlockReachable(_) => "DEADLOCK",
                        Verdict::DeadlockFree => "free(!)",
                        Verdict::Inconclusive { .. } => "???",
                    },
                    12,
                ),
                cell(r.states_explored, 9),
            ]);
        }
    }
    println!("\npaper: every combination deadlocks (Theorem 4). measured: every");
    println!("d1 != d2 deadlocks; the d1 == d2 diagonal stays free because this");
    println!("router model inserts one full cycle between a tail leaving a queue");
    println!("and the next header acquiring it, while the paper's footnote 1");
    println!("resolves the simultaneous arrival by arbitration. one adversarial");
    println!("stall cycle restores the paper's verdict on the diagonal:");
    for d in 1..=3usize {
        let spec = SharedCycleSpec {
            messages: vec![
                CycleMessageSpec::shared(d, 3, 1),
                CycleMessageSpec::shared(d, 3, 1),
            ],
        };
        let cc = spec.build();
        let specs: Vec<wormsim::MessageSpec> = cc
            .built
            .iter()
            .map(|b| wormsim::MessageSpec::new(b.pair.0, b.pair.1, b.spec.g))
            .collect();
        let sim = Sim::new(&cc.net, &cc.table, specs, Some(1)).expect("routed");
        let (min, _) = wormsearch::min_stall_budget(&sim, 2, 1_000_000);
        println!(
            "  d1 = d2 = {d}: min stalls for deadlock = {}",
            min.map(|b| b.to_string()).unwrap_or_else(|| ">2".into())
        );
    }
}
