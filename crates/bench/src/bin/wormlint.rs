//! `wormlint` — run the static lint suite over the built-in corpus.
//!
//! ```text
//! wormlint [--json] [--deny-warnings] [--scenario NAME] [--list] [--trace PATH]
//! ```
//!
//! * `--json` — emit the `wormlint/1` machine-readable report on
//!   stdout instead of the human rendering. The committed
//!   `LINT_corpus.json` snapshot is exactly `wormlint --json`.
//! * `--deny-warnings` — promote every `Warn` to `Deny` in the
//!   reports (the CI gate posture).
//! * `--scenario NAME` — restrict the run to one corpus target
//!   (e.g. `fig3_c`, `ring8_dateline`).
//! * `--list` — print the corpus target names and lint catalog.
//! * `--trace PATH` — dump `lint.*` wormtrace instrumentation as JSON.
//!
//! The exit status is the lint gate: `0` when every target matches
//! its expected verdict and exact expected code set (and shows no
//! unexpected `Deny`), `1` on drift, `2` on usage errors.

use std::process::ExitCode;

use wormbench::lintcorpus::{corpus, LintTarget};
use wormbench::{args, trace};
use wormlint::{reports_to_json, LintConfig, LintReport, Registry};

fn main() -> ExitCode {
    let _trace = trace::init("wormlint");
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let json = argv.iter().any(|a| a == "--json");
    let list = argv.iter().any(|a| a == "--list");
    let config = LintConfig {
        deny_warnings: argv.iter().any(|a| a == "--deny-warnings"),
        ..LintConfig::default()
    };

    let registry = Registry::with_default_lints();
    if list {
        println!("lints:");
        for lint in registry.lints() {
            println!(
                "  {} {} [{}] — {}",
                lint.code(),
                lint.name(),
                lint.default_severity(),
                lint.paper_anchor(),
            );
        }
        println!("targets:");
        for t in corpus() {
            println!("  {} (expect {})", t.name, t.expected_verdict);
        }
        return ExitCode::SUCCESS;
    }

    let mut targets = corpus();
    if let Some(name) = args::value_of("--scenario") {
        targets.retain(|t| t.name == name);
        if targets.is_empty() {
            eprintln!("wormlint: unknown scenario {name:?} (try --list)");
            return ExitCode::from(2);
        }
    }

    let runs: Vec<(&LintTarget, LintReport)> = targets
        .iter()
        .map(|t| (t, t.run(&registry, &config)))
        .collect();

    if json {
        let named: Vec<(&str, &LintReport)> =
            runs.iter().map(|(t, r)| (t.name.as_str(), r)).collect();
        print!("{}", reports_to_json(&named));
    } else {
        for (t, report) in &runs {
            println!("== {} ==", t.name);
            println!("{}", report.render());
            println!();
        }
    }

    let mut failures = Vec::new();
    for (t, report) in &runs {
        failures.extend(t.check(report));
    }
    if failures.is_empty() {
        if !json {
            println!("lint gate: {} target(s) clean", runs.len());
        }
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("wormlint: {f}");
        }
        ExitCode::FAILURE
    }
}
