//! EXP-TOPO — cluster-scale static verification: certify (or refute)
//! deadlock freedom on fabrics of ~10^5 channels in seconds, with no
//! reachability search.
//!
//! Four workloads, the `topo_*` scenarios of the search suite:
//!
//! * dragonfly (41 groups × 40 routers) under minimal VC-ordered
//!   routing — certified `free-acyclic` (W208 lane-monotone numbering);
//! * 48-ary fat-tree under up*/down* — certified `free-acyclic`
//!   (W209 down/up numbering), zero virtual channels;
//! * 330-node full mesh under the VC-free even/odd detour scheme —
//!   certified `free-acyclic` (W209), also without virtual channels;
//! * a 41×40 dragonfly with every lane collapsed to 0 — **refuted**:
//!   the engine is a node function, so by Corollary 1 its cyclic CDG
//!   is a real deadlock, caught online by the incremental SCC pass.
//!
//! Each row reports the batch CDG build, the streaming incremental
//! construction under *both* SCC engines (`pk` = Pearce–Kelly oracle,
//! `hkmst` = balanced two-way default — the engine that makes the
//! full-scale no-VC refutation feasible online), a bounded
//! cycle-streaming probe, `worm_core::classify`, and the `wormlint`
//! verdict.
//!
//! Run with: `cargo run --release -p wormbench --bin exp_topo`
//! (`--smoke` swaps in the downscaled instances CI exercises;
//! `--trace <path>` dumps wormtrace JSON)

use wormbench::bench_report::{run_topo_suite, BenchValue};
use wormbench::report::{cell, header, row};
use wormbench::trace;

fn get(values: &std::collections::BTreeMap<String, BenchValue>, key: &str) -> String {
    match values.get(key).expect("topo entries carry a fixed key set") {
        BenchValue::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

fn main() {
    let _trace = trace::init("exp_topo");
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!(
        "EXP-TOPO: cluster-scale static verification ({} instances)",
        if smoke { "smoke" } else { "full" },
    );
    println!();
    let report = run_topo_suite(smoke);
    let widths = [22, 10, 10, 9, 9, 9, 12, 9, 14, 14];
    header(&[
        ("scenario", widths[0]),
        ("channels", widths[1]),
        ("cdg_edges", widths[2]),
        ("build_ms", widths[3]),
        ("pk_ms", widths[4]),
        ("hkmst_ms", widths[5]),
        ("cycles<=8", widths[6]),
        ("cls_ms", widths[7]),
        ("classify", widths[8]),
        ("wormlint", widths[9]),
    ]);
    for (name, values) in &report.entries {
        row(&[
            cell(name, widths[0]),
            cell(get(values, "channels"), widths[1]),
            cell(get(values, "cdg_edges"), widths[2]),
            cell(get(values, "cdg_build_ms"), widths[3]),
            cell(get(values, "incscc_pk_ms"), widths[4]),
            cell(get(values, "incscc_hkmst_ms"), widths[5]),
            cell(get(values, "cycles_found"), widths[6]),
            cell(get(values, "classify_ms"), widths[7]),
            cell(get(values, "verdict"), widths[8]),
            cell(get(values, "lint_verdict"), widths[9]),
        ]);
    }
    println!();
    println!("every verdict above is certified: the free fabrics carry a");
    println!("Dally-Seitz numbering (W208/W209), the no-VC dragonfly a");
    println!("Corollary 1 refutation (node function + cyclic CDG).");
}
