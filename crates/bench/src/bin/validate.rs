//! `validate` — re-verify every paper claim against the current build
//! and print a pass/fail table. The programmatic form of
//! EXPERIMENTS.md; see `worm_core::validate`.
//!
//! Run with: `cargo run --release -p wormbench --bin validate`
//! (pass `--thorough` for the wider sweeps)

use worm_core::validate::validate_all;

fn main() {
    let thorough = std::env::args().any(|a| a == "--thorough");
    println!(
        "re-verifying the paper's claims ({} mode)...\n",
        if thorough { "thorough" } else { "fast" }
    );
    let results = validate_all(thorough);
    let mut all = true;
    for r in &results {
        println!(
            "[{}] {:7} {}",
            if r.matches { "PASS" } else { "FAIL" },
            r.id,
            r.claim
        );
        println!("              measured: {}", r.measured);
        all &= r.matches;
    }
    println!();
    if all {
        println!("all {} claims reproduce on this build.", results.len());
    } else {
        println!("SOME CLAIMS FAILED — see above.");
        std::process::exit(1);
    }
}
