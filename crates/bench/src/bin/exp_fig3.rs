//! EXP-F3 — Figure 3 / Theorem 5: the six three-sharer scenarios.
//!
//! Regenerates: per scenario, the message geometry (`d_i`, `a_i`,
//! segment sizes), the per-condition outcomes of Theorem 5's
//! eight-condition checker, the checker verdict, the exhaustive-search
//! verdict, and the paper's verdict.
//!
//! Run with: `cargo run --release -p wormbench --bin exp_fig3`
//! (add `--threads N` to pin the search worker count; default: all
//! cores, and `--trace <path>` to dump a wormtrace JSON report)

use worm_core::conditions::eight_conditions;
use worm_core::paper::fig3;
use wormbench::report::{cell, header, row};
use wormbench::{args, trace};
use wormcdg::sharing;
use wormsearch::{explore_parallel, SearchConfig};
use wormsim::Sim;

fn main() {
    let _trace = trace::init("exp_fig3");
    let threads = args::threads(0);
    println!("EXP-F3: Figure 3 / Theorem 5 — three messages sharing a channel\n");
    header(&[
        ("scenario", 8),
        ("msgs", 5),
        ("conditions 1-8", 26),
        ("checker", 12),
        ("search", 12),
        ("paper", 12),
        ("match", 6),
    ]);
    let mut all_match = true;
    let mut search_lines: Vec<String> = Vec::new();
    for s in fig3::all_scenarios() {
        let c = s.spec.build();
        let cycle = c.cycle();
        let candidate = c.canonical_candidate();
        let analysis = sharing::analyze(&c.net, &c.table, &cycle, &candidate);
        let shared = analysis
            .outside()
            .find(|sc| sc.channel == c.cs)
            .expect("cs shared outside");
        let ec =
            eight_conditions(&c.net, &c.table, &cycle, &candidate, shared).expect("three sharers");

        let sim = Sim::new(&c.net, &c.table, s.message_specs(&c), Some(1)).expect("routed");
        let search = explore_parallel(&sim, &SearchConfig::default(), threads);
        search_lines.push(format!("({}) {}", s.name, search.metrics.summary()));
        let free = search.verdict.is_free();

        let conds: String = ec
            .conditions
            .iter()
            .enumerate()
            .map(|(i, &ok)| if ok { ' ' } else { char::from(b'1' + i as u8) })
            .filter(|&ch| ch != ' ')
            .flat_map(|ch| [ch, ' '])
            .collect();
        let conds = if conds.is_empty() {
            "all hold".to_string()
        } else {
            format!("fail: {}", conds.trim_end())
        };
        let verdict = |unreachable: bool| {
            if unreachable {
                "unreachable"
            } else {
                "deadlock"
            }
        };
        let matches = ec.unreachable() == s.paper_unreachable && free == s.paper_unreachable;
        all_match &= matches;
        row(&[
            cell(format!("({})", s.name), 8),
            cell(c.built.len(), 5),
            cell(conds, 26),
            cell(verdict(ec.unreachable()), 12),
            cell(verdict(free), 12),
            cell(verdict(s.paper_unreachable), 12),
            cell(if matches { "yes" } else { "NO" }, 6),
        ]);
    }
    println!();
    println!("search metrics (parallel engine):");
    for line in &search_lines {
        println!("  {line}");
    }
    println!();
    // Per-message geometry detail.
    for s in fig3::all_scenarios() {
        let c = s.spec.build();
        let cycle = c.cycle();
        print!("({}): ", s.name);
        let parts: Vec<String> = c
            .built
            .iter()
            .map(|b| {
                let g = sharing::geometry(&c.net, &c.table, &cycle, b.pair, Some(c.cs));
                format!(
                    "{}(d={}, a={}, g={})",
                    if b.spec.uses_shared { "S" } else { "P" },
                    g.d.map(|d| d.to_string()).unwrap_or_else(|| "-".into()),
                    g.a,
                    b.spec.g
                )
            })
            .collect();
        println!("{}", parts.join("  "));
        if !s.extras.is_empty() {
            println!("     adversary extras: {:?} (index, length)", s.extras);
        }
    }
    println!(
        "\nall verdicts match the paper: {}",
        if all_match { "YES" } else { "NO" }
    );
}
