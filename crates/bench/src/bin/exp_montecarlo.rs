//! EXP-MC — Monte Carlo deadlock probability.
//!
//! The paper motivates the whole line of work by noting that deadlock
//! hinges on "unlikely situations" a proof technique must still
//! recognize. This experiment quantifies *how* unlikely: for each
//! construction, draw random injection times and run each arbitration
//! policy, counting how often the network actually deadlocks.
//!
//! Expected shape: Figure 1 and G(k) deadlock in **zero** runs (they
//! cannot); Figure 2 and the deadlockable Figure 3 scenarios deadlock
//! in a small but nonzero fraction — the deadlock needs the right
//! relative timing through the shared channel, which random traffic
//! only occasionally produces (adversarial arbitration raises the
//! rate).
//!
//! Run with: `cargo run --release -p wormbench --bin exp_montecarlo`
//! (add `--trace <path>` to dump a wormtrace JSON report, `--engine
//! stepping|event` to pick the simulator engine — rates are identical
//! either way, the event core just gets there faster)

use rand::{RngExt, SeedableRng};
use worm_core::paper::{fig1, fig2, fig3, generalized};
use wormbench::report::{cell, header, row};
use wormbench::{args, trace};
use wormsim::runner::{ArbitrationPolicy, EngineKind, Outcome, Runner};
use wormsim::{MessageSpec, Sim};

const RUNS: u64 = 400;
const HORIZON: u64 = 12;

/// (label, construction, paper-unreachable?, adversary extras).
type Case = (
    String,
    worm_core::family::CycleConstruction,
    bool,
    &'static [(usize, usize)],
);

fn deadlock_rate(
    net: &wormnet::Network,
    table: &wormroute::TableRouting,
    base: &[MessageSpec],
    policy: ArbitrationPolicy,
    engine: EngineKind,
    seed0: u64,
) -> (f64, u64) {
    let mut deadlocks = 0u64;
    for seed in 0..RUNS {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed0 ^ seed);
        let specs: Vec<MessageSpec> = base
            .iter()
            .map(|s| MessageSpec::new(s.src, s.dst, s.length).at(rng.random_range(0..HORIZON)))
            .collect();
        let sim = Sim::new(net, table, specs, Some(1)).expect("routed");
        let mut runner = Runner::new(&sim, policy.clone()).with_engine(engine);
        if matches!(runner.run(100_000), Outcome::Deadlock { .. }) {
            deadlocks += 1;
        }
    }
    (deadlocks as f64 / RUNS as f64, deadlocks)
}

fn main() {
    let _trace = trace::init("exp_montecarlo");
    let engine = args::engine(EngineKind::Stepping);
    println!(
        "EXP-MC: Monte Carlo deadlock probability ({RUNS} runs, random inject times in 0..{HORIZON})\n"
    );
    header(&[
        ("network", 10),
        ("policy", 12),
        ("deadlocks", 10),
        ("rate", 8),
        ("search verdict", 15),
    ]);

    let mut cases: Vec<Case> = vec![
        ("fig1".into(), fig1::cyclic_dependency(), true, &[]),
        ("G(2)".into(), generalized::generalized(2), true, &[]),
        ("fig2".into(), fig2::two_message_deadlock(), false, &[]),
    ];
    for s in fig3::all_scenarios() {
        cases.push((
            format!("fig3({})", s.name),
            s.spec.build(),
            s.paper_unreachable,
            s.extras,
        ));
    }

    for (name, c, unreachable, extras) in &cases {
        // Minimum lengths plus any scenario extras (the adversary's
        // helpers participate in random traffic too).
        let mut base: Vec<MessageSpec> = c
            .built
            .iter()
            .map(|b| MessageSpec::new(b.pair.0, b.pair.1, b.spec.g))
            .collect();
        for &(idx, len) in *extras {
            let b = &c.built[idx];
            base.push(MessageSpec::new(b.pair.0, b.pair.1, len));
        }
        for (pname, policy) in [
            ("oldest", ArbitrationPolicy::OldestFirst),
            (
                "adversarial",
                ArbitrationPolicy::Adversarial { favored: vec![] },
            ),
        ] {
            let (rate, count) = deadlock_rate(&c.net, &c.table, &base, policy, engine, 0xAB5E_u64);
            row(&[
                cell(name.clone(), 10),
                cell(pname, 12),
                cell(count, 10),
                cell(format!("{:.1}%", rate * 100.0), 8),
                cell(
                    if *unreachable {
                        "unreachable"
                    } else {
                        "deadlock"
                    },
                    15,
                ),
            ]);
            if *unreachable {
                assert_eq!(count, 0, "{name} must never deadlock");
            }
        }
    }
    println!();
    println!("unreachable constructions: zero deadlocks in every run (as proven);");
    println!("deadlockable ones deadlock only when random timing recreates the");
    println!("schedule — the 'unlikely situations' the paper's proofs must cover.");
}
