//! Named benchmark scenarios shared by the Criterion suites and the
//! `bench_report` harness.
//!
//! Both consumers must measure *the same* workloads or the committed
//! baselines (`BENCH_search.json`, `BENCH_sim.json`) drift away from
//! what `cargo bench` exercises. This module is the single source of
//! truth: a [`SearchScenario`] bundles a simulation with its search
//! parameters and (when the instance has one) the rotation-symmetry
//! canonicalizer derived by
//! [`worm_core::symmetry::family_canonicalizer`]; a [`SimScenario`]
//! bundles a simulation with the runner policy and cycle budget to
//! drive it with.

use std::sync::Arc;

use rand::SeedableRng;
use worm_core::paper::{fig1, fig2, fig3, generalized};
use worm_core::symmetry::family_canonicalizer;
use worm_core::CycleConstruction;
use wormnet::topology::{complete, Dragonfly, FatTree, Mesh};
use wormnet::Network;
use wormroute::algorithms::{dimension_order, dragonfly_minimal, fattree_updown, fullmesh_vcfree};
use wormroute::TableRouting;
use wormsearch::{SearchConfig, SymmetryCanonicalizer};
use wormsim::runner::ArbitrationPolicy;
use wormsim::{traffic, MessageSpec, Sim};

/// One named exhaustive-search workload.
#[derive(Clone, Debug)]
pub struct SearchScenario {
    /// Stable scenario name (used as the JSON baseline key and the
    /// Criterion benchmark id).
    pub name: String,
    /// The simulation to search.
    pub sim: Sim,
    /// Adversarial stall budget for the search.
    pub stall_budget: u32,
    /// State cap for the search.
    pub max_states: usize,
    /// The instance's rotation-symmetry canonicalizer, when the
    /// derived group is non-trivial.
    pub canon: Option<Arc<SymmetryCanonicalizer>>,
}

impl SearchScenario {
    fn from_construction(
        name: impl Into<String>,
        c: &CycleConstruction,
        specs: Vec<MessageSpec>,
        stall_budget: u32,
    ) -> Self {
        let sim = Sim::new(&c.net, &c.table, specs, Some(1)).expect("family instances route");
        let canon = family_canonicalizer(c, &sim);
        SearchScenario {
            name: name.into(),
            sim,
            stall_budget,
            max_states: 20_000_000,
            canon,
        }
    }

    /// The plain (uncanonicalized) search configuration.
    pub fn plain_config(&self) -> SearchConfig {
        SearchConfig {
            stall_budget: self.stall_budget,
            max_states: self.max_states,
            ..SearchConfig::default()
        }
    }

    /// The canonicalized configuration, when the instance has a
    /// non-trivial symmetry group.
    pub fn canon_config(&self) -> Option<SearchConfig> {
        let canon = self.canon.clone()?;
        Some(self.plain_config().canonicalized(canon))
    }
}

/// The standard search workloads: Figure 1, Figure 2, the six
/// Figure 3 scenarios, and `G(1..=5)` — every instance the paper's
/// reachability arguments cover, each searched at stall budget 0 (the
/// base router model).
pub fn search_scenarios() -> Vec<SearchScenario> {
    let mut out = Vec::new();
    let c = fig1::cyclic_dependency();
    out.push(SearchScenario::from_construction(
        "fig1",
        &c,
        c.message_specs(),
        0,
    ));
    let c = fig2::two_message_deadlock();
    out.push(SearchScenario::from_construction(
        "fig2",
        &c,
        c.message_specs(),
        0,
    ));
    for s in fig3::all_scenarios() {
        let c = s.spec.build();
        out.push(SearchScenario::from_construction(
            format!("fig3_{}", s.name),
            &c,
            s.message_specs(&c),
            0,
        ));
    }
    for k in 1..=5 {
        let c = generalized::generalized(k);
        out.push(SearchScenario::from_construction(
            format!("g{k}"),
            &c,
            generalized::minimum_length_specs(&c),
            0,
        ));
    }
    out
}

/// One named cluster-scale static-verification workload: a topology
/// with its production routing engine, measured end to end (CDG
/// build, incremental SCC, bounded cycle streaming, classification,
/// and the wormlint verdict).
#[derive(Clone, Debug)]
pub struct TopologyScenario {
    /// Stable scenario name (used as the JSON baseline key).
    pub name: String,
    /// The fabric.
    pub net: Network,
    /// Its routing table.
    pub table: TableRouting,
    /// The verdict the static pipeline must reach on this instance
    /// (`"free-acyclic"` for the production engines, `"deadlockable"`
    /// for the no-VC misconfiguration).
    pub expected_verdict: &'static str,
}

/// The cluster-scale workloads: dragonfly minimal routing, k-ary
/// fat-tree up*/down*, the VC-free full mesh — each certified
/// deadlock-free — plus a single-lane dragonfly misconfiguration that
/// must be *refuted*. `smoke` swaps in downscaled instances so debug
/// builds and CI validate the same pipeline in milliseconds; the full
/// instances put each free family above 10^5 channels.
pub fn large_topology_scenarios(smoke: bool) -> Vec<TopologyScenario> {
    let (groups, routers, k, n) = if smoke {
        (5, 4, 4, 12)
    } else {
        (41, 40, 48, 330)
    };
    let mut out = Vec::new();

    let df = Dragonfly::new(groups, routers);
    let table = dragonfly_minimal(&df).expect("dragonfly routes");
    out.push(TopologyScenario {
        name: "topo_dragonfly_min".into(),
        net: df.into_network(),
        table,
        expected_verdict: "free-acyclic",
    });

    let ft = FatTree::new(k);
    let table = fattree_updown(&ft).expect("fat-tree routes");
    out.push(TopologyScenario {
        name: "topo_fattree_updown".into(),
        net: ft.into_network(),
        table,
        expected_verdict: "free-acyclic",
    });

    let (net, nodes) = complete(n);
    let table = fullmesh_vcfree(&net, &nodes).expect("full mesh routes");
    out.push(TopologyScenario {
        name: "topo_fullmesh_vcfree".into(),
        net,
        table,
        expected_verdict: "free-acyclic",
    });

    // The cautionary tale: a dragonfly with every lane collapsed to 0.
    // The engine is still a node function, so by Corollary 1 its cyclic
    // CDG is a *real* deadlock, and the pipeline must say so. This now
    // runs at the same (41, 40) scale as the minimal-routing instance:
    // the HKMST balanced two-way SCC engine absorbs the deeply cyclic
    // CDG online (Pearce–Kelly's complete double searches degrade
    // toward quadratic here and forced a (25, 24) downscale until
    // ROADMAP item 1 landed — see docs/PERFORMANCE.md for the measured
    // counter gap between the two engines on this workload).
    let df = Dragonfly::with_lanes(groups, routers, &[0], &[0]);
    let table = dragonfly_minimal(&df).expect("dragonfly routes");
    out.push(TopologyScenario {
        name: "topo_dragonfly_novc".into(),
        net: df.into_network(),
        table,
        expected_verdict: "deadlockable",
    });

    out
}

/// One named existence workload: a fabric whose two-sided
/// routability verdict `wormexist` must reach (and certify).
#[derive(Clone, Debug)]
pub struct ExistScenario {
    /// Stable scenario name (used as the JSON baseline key).
    pub name: String,
    /// The fabric under the existence question.
    pub net: Network,
    /// The verdict the engine must reach (`"exists"` on every fabric
    /// here — the interesting measurement is which certificate wins
    /// and how fast, not the answer).
    pub expected_verdict: &'static str,
}

/// The existence workloads of the search suite: the Figure 1 fabric,
/// the largest generalized-family instance `G(5)`, and the no-VC
/// dragonfly *fabric* (whose production minimal routing deadlocks —
/// the engine must still certify that a deadlock-free routing exists,
/// pinning the blame on the table). `smoke` downscales the dragonfly
/// alongside [`large_topology_scenarios`].
pub fn exist_scenarios(smoke: bool) -> Vec<ExistScenario> {
    let (groups, routers) = if smoke { (5, 4) } else { (41, 40) };
    vec![
        ExistScenario {
            name: "exist_fig1".into(),
            net: fig1::cyclic_dependency().net,
            expected_verdict: "exists",
        },
        ExistScenario {
            name: "exist_g5".into(),
            net: generalized::generalized(5).net,
            expected_verdict: "exists",
        },
        ExistScenario {
            name: "exist_topo_dragonfly_novc".into(),
            net: Dragonfly::with_lanes(groups, routers, &[0], &[0]).into_network(),
            expected_verdict: "exists",
        },
    ]
}

/// One named flit-level simulator workload.
#[derive(Clone, Debug)]
pub struct SimScenario {
    /// Stable scenario name (used as the JSON baseline key and the
    /// Criterion benchmark id).
    pub name: String,
    /// The simulation to run.
    pub sim: Sim,
    /// Arbitration policy for the runner.
    pub policy: ArbitrationPolicy,
    /// Cycle budget for one run.
    pub max_cycles: u64,
}

/// The standard simulator workloads: uniform random traffic on meshes
/// (the throughput case) and the Figure 1 construction under the
/// adversarial arbiter (the contention case). Mirrors
/// `benches/sim_bench.rs`.
pub fn sim_scenarios() -> Vec<SimScenario> {
    let mut out = Vec::new();
    // Injection rates taper with mesh size so each workload delivers
    // in a few hundred cycles: at 0.05 a 32x32 mesh would saturate
    // (thousands of in-flight worms on one-flit queues).
    for (side, rate) in [(4usize, 0.05), (6, 0.05), (8, 0.05), (16, 0.02), (32, 0.01)] {
        let mesh = Mesh::new(&[side, side]);
        let table = dimension_order(&mesh).expect("routes");
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let specs = traffic::uniform_random(mesh.network(), &table, &mut rng, rate, 100, (4, 8));
        let sim = Sim::new(mesh.network(), &table, specs, None).expect("routed");
        out.push(SimScenario {
            name: format!("mesh_uniform_{side}x{side}"),
            sim,
            policy: ArbitrationPolicy::OldestFirst,
            max_cycles: 1_000_000,
        });
    }
    let con = fig1::cyclic_dependency();
    let sim = Sim::new(&con.net, &con.table, con.message_specs(), Some(1)).expect("routed");
    out.push(SimScenario {
        name: "fig1_adversarial".into(),
        sim,
        policy: ArbitrationPolicy::Adversarial { favored: vec![] },
        max_cycles: 10_000,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_scenarios_are_named_and_unique() {
        let scenarios = search_scenarios();
        assert_eq!(scenarios.len(), 2 + 6 + 5);
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len(), "duplicate scenario name");
    }

    #[test]
    fn family_instances_carry_half_turn_canonicalizers() {
        // Figure 1 and every G(k) have the [A, B, A, B] spec shape, so
        // each must carry an order-1 (half-turn) canonicalizer.
        for s in search_scenarios() {
            if s.name == "fig1" || s.name.starts_with('g') {
                let canon = s
                    .canon
                    .as_ref()
                    .unwrap_or_else(|| panic!("{} should have a rotation symmetry", s.name));
                assert_eq!(canon.order(), 1, "{}", s.name);
                assert!(s.canon_config().is_some());
            }
        }
    }

    #[test]
    fn topology_scenarios_are_named_and_routed() {
        let scenarios = large_topology_scenarios(true);
        assert_eq!(scenarios.len(), 4);
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        assert!(names.iter().all(|n| n.starts_with("topo_")));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len(), "duplicate scenario name");
        for s in &scenarios {
            assert!(!s.table.is_empty(), "{}", s.name);
        }
    }

    #[test]
    fn sim_scenarios_run() {
        let scenarios = sim_scenarios();
        for s in &scenarios {
            assert!(!s.name.is_empty());
            assert!(s.max_cycles > 0);
        }
        for name in ["mesh_uniform_16x16", "mesh_uniform_32x32"] {
            assert!(
                scenarios.iter().any(|s| s.name == name),
                "{name} missing from the sim suite"
            );
        }
    }
}
