//! The built-in `wormlint` corpus: every paper construction plus
//! reference topologies, each with its *expected* static verdict and
//! exact expected lint-code set.
//!
//! The `wormlint` binary (`src/bin/wormlint.rs`) runs the registry
//! over this corpus and exits nonzero when reality drifts from the
//! expectations — that is the CI lint gate. The committed
//! `LINT_corpus.json` golden snapshot (byte-compared by
//! `tests/lint_snapshots.rs` and CI) pins the full diagnostic output;
//! the expectations here pin the *meaning* so a drift shows up as a
//! readable "fig3_c: verdict free-cyclic != expected deadlockable"
//! instead of a JSON diff.

use wormlint::{LintConfig, LintReport, Registry, StaticVerdict};
use wormnet::topology::{complete, ring_unidirectional, ring_with_vcs, Dragonfly, FatTree, Mesh};
use wormnet::Network;
use wormroute::algorithms::{
    clockwise_ring, dateline_ring, dimension_order, dragonfly_minimal, fattree_updown,
    fullmesh_vcfree,
};
use wormroute::TableRouting;

use worm_core::paper::{fig1, fig2, fig3, generalized};

/// One named corpus target with its expectations.
pub struct LintTarget {
    /// Stable target name (the JSON key; sorted unique across the
    /// corpus).
    pub name: String,
    /// The network under analysis.
    pub net: Network,
    /// The routing table under analysis.
    pub table: TableRouting,
    /// The static verdict the analysis must reach.
    pub expected_verdict: StaticVerdict,
    /// The exact set of lint codes expected to fire (sorted, unique).
    pub expected_codes: Vec<&'static str>,
}

impl LintTarget {
    fn new(
        name: impl Into<String>,
        net: Network,
        table: TableRouting,
        expected_verdict: StaticVerdict,
        expected_codes: &[&'static str],
    ) -> Self {
        LintTarget {
            name: name.into(),
            net,
            table,
            expected_verdict,
            expected_codes: expected_codes.to_vec(),
        }
    }

    /// Run the registry over this target.
    pub fn run(&self, registry: &Registry, config: &LintConfig) -> LintReport {
        registry.run(&self.net, &self.table, config)
    }

    /// Expectation failures for a report over this target (empty =
    /// pass). Checks the verdict, the exact fired-code set, and that
    /// no `Deny`-severity diagnostic carries an unexpected code.
    pub fn check(&self, report: &LintReport) -> Vec<String> {
        let mut failures = Vec::new();
        if report.verdict != self.expected_verdict {
            failures.push(format!(
                "{}: verdict {} != expected {}",
                self.name, report.verdict, self.expected_verdict
            ));
        }
        let actual: Vec<&'static str> = report.counts_by_code().into_keys().collect();
        if actual != self.expected_codes {
            failures.push(format!(
                "{}: fired codes {actual:?} != expected {:?}",
                self.name, self.expected_codes
            ));
        }
        for d in &report.diagnostics {
            if d.severity == wormlint::Severity::Deny && !self.expected_codes.contains(&d.code) {
                failures.push(format!("{}: unexpected deny {}", self.name, d.code));
            }
        }
        failures
    }
}

/// The full corpus, sorted by name: the cluster-scale topology engines
/// (downscaled dragonfly minimal, its no-VC misconfiguration, a k=4
/// fat-tree under up*/down*, the VC-free full mesh), Figure 1,
/// Figure 2, the six Figure 3 scenarios, `G(1..=5)`, and three
/// reference specs (DOR on a 3×3 mesh, the clockwise unidirectional
/// 4-ring, and an 8-ring under two-lane dateline routing).
pub fn corpus() -> Vec<LintTarget> {
    let mut out = Vec::new();

    let df = Dragonfly::new(5, 4);
    let table = dragonfly_minimal(&df).expect("dragonfly routes");
    out.push(LintTarget::new(
        "dragonfly_minimal",
        df.into_network(),
        table,
        StaticVerdict::FreeAcyclic,
        &["W102", "W208", "W301"],
    ));

    let df = Dragonfly::with_lanes(3, 2, &[0], &[0]);
    let table = dragonfly_minimal(&df).expect("dragonfly routes");
    out.push(LintTarget::new(
        "dragonfly_novc",
        df.into_network(),
        table,
        StaticVerdict::Deadlockable,
        &["W105", "W201", "W202", "W301", "W303"],
    ));

    let ft = FatTree::new(4);
    let table = fattree_updown(&ft).expect("fat-tree routes");
    out.push(LintTarget::new(
        "fattree_updown",
        ft.into_network(),
        table,
        StaticVerdict::FreeAcyclic,
        &["W003", "W102", "W103", "W105", "W209", "W301"],
    ));

    let c = fig1::cyclic_dependency();
    out.push(LintTarget::new(
        "fig1",
        c.net,
        c.table,
        StaticVerdict::Undecided,
        &["W101", "W102", "W103", "W201", "W207", "W301"],
    ));

    let c = fig2::two_message_deadlock();
    out.push(LintTarget::new(
        "fig2",
        c.net,
        c.table,
        StaticVerdict::Deadlockable,
        &["W101", "W102", "W103", "W201", "W203", "W301", "W303"],
    ));

    for s in fig3::all_scenarios() {
        let c = s.spec.build();
        let (verdict, codes): (_, &[&'static str]) = if s.paper_unreachable {
            (
                StaticVerdict::FreeCyclic,
                &["W101", "W102", "W103", "W201", "W204", "W301"],
            )
        } else {
            (
                StaticVerdict::Deadlockable,
                &["W101", "W102", "W103", "W201", "W205", "W301", "W303"],
            )
        };
        out.push(LintTarget::new(
            format!("fig3_{}", s.name),
            c.net,
            c.table,
            verdict,
            codes,
        ));
    }

    let (net, nodes) = complete(9);
    let table = fullmesh_vcfree(&net, &nodes).expect("full mesh routes");
    out.push(LintTarget::new(
        "fullmesh_vcfree",
        net,
        table,
        StaticVerdict::FreeAcyclic,
        &["W004", "W101", "W102", "W103", "W209", "W301"],
    ));

    for k in 1..=5 {
        let c = generalized::generalized(k);
        out.push(LintTarget::new(
            format!("g{k}"),
            c.net,
            c.table,
            StaticVerdict::Undecided,
            &["W101", "W102", "W103", "W201", "W207", "W301"],
        ));
    }

    let mesh = Mesh::new(&[3, 3]);
    let table = dimension_order(&mesh).expect("DOR routes the mesh");
    out.push(LintTarget::new(
        "mesh_3x3_dor",
        mesh.into_network(),
        table,
        StaticVerdict::FreeAcyclic,
        &["W105", "W301"],
    ));

    let (net, nodes) = ring_unidirectional(4);
    let table = clockwise_ring(&net, &nodes).expect("clockwise routes the ring");
    out.push(LintTarget::new(
        "ring4_clockwise",
        net,
        table,
        StaticVerdict::Deadlockable,
        &["W105", "W201", "W202", "W302"],
    ));

    let (net, nodes) = ring_with_vcs(8, 2);
    let table = dateline_ring(&net, &nodes).expect("dateline routes the ring");
    out.push(LintTarget::new(
        "ring8_dateline",
        net,
        table,
        StaticVerdict::FreeAcyclic,
        &["W004", "W102", "W301"],
    ));

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_sorted_unique_and_expectations_hold() {
        let targets = corpus();
        let names: Vec<&str> = targets.iter().map(|t| t.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, names, "corpus must be sorted by unique name");

        let registry = Registry::with_default_lints();
        let config = LintConfig::default();
        let mut failures = Vec::new();
        for t in &targets {
            let report = t.run(&registry, &config);
            failures.extend(t.check(&report));
        }
        assert!(failures.is_empty(), "{failures:#?}");
    }

    #[test]
    fn expected_code_lists_are_sorted() {
        for t in corpus() {
            let mut sorted = t.expected_codes.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted, t.expected_codes, "{}", t.name);
        }
    }
}
