//! Headless benchmark runner and the `wormbench/1` JSON baselines.
//!
//! Criterion output is for humans watching a terminal; the committed
//! baselines `BENCH_search.json` and `BENCH_sim.json` are for diffs:
//! regenerate them with the `bench_report` binary after a performance
//! change and the review shows exactly which scenario's state count,
//! throughput, or symmetry reduction moved.
//!
//! Like `wormtrace/1` (the trace report schema), the serializer is
//! hand-rolled — the workspace builds offline, so no serde — and all
//! maps are [`BTreeMap`]s: keys serialize sorted, so two runs with
//! identical measurements produce byte-identical files.
//!
//! Determinism caveat: per-entry *structural* values (`states`,
//! `verdict`, `canon_states`, `reduction`, `delivered`) are exactly
//! reproducible; timing values (`states_per_sec`, `cycles_per_sec`,
//! `elapsed_ms`) are machine-dependent and only meaningful relative
//! to other entries from the same run.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

use crate::scenarios::{
    exist_scenarios, large_topology_scenarios, search_scenarios, sim_scenarios, ExistScenario,
    SearchScenario, SimScenario, TopologyScenario,
};
use worm_core::classify::{classify_algorithm, AlgorithmVerdict, ClassifyOptions};
use wormcdg::{Cdg, CdgBuilder};
use wormnet::graph::SccEngineKind;
use wormsearch::{explore, SearchResult, Verdict};
use wormsim::runner::{EngineKind, Runner};

/// Schema identifier stamped into every baseline file.
pub const SCHEMA: &str = "wormbench/1";

/// A single measured value in a baseline entry.
#[derive(Clone, Debug, PartialEq)]
pub enum BenchValue {
    /// An exact count (states, lookups, cycles).
    Int(u64),
    /// A rate or ratio (machine-dependent unless noted).
    Float(f64),
    /// A label (e.g. the search verdict).
    Str(String),
}

impl fmt::Display for BenchValue {
    /// Renders as a JSON value.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchValue::Int(v) => write!(f, "{v}"),
            BenchValue::Float(v) if v.is_finite() => write!(f, "{v:?}"),
            BenchValue::Float(_) => write!(f, "null"),
            BenchValue::Str(s) => write!(f, "\"{}\"", escape(s)),
        }
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One suite's measurements: scenario name → sorted key/value map.
///
/// ```
/// use wormbench::bench_report::{BenchReport, BenchValue};
///
/// let mut report = BenchReport::new("search");
/// report.insert("fig1", "states", BenchValue::Int(7));
/// report.insert("fig1", "verdict", BenchValue::Str("free".into()));
/// let json = report.to_json();
/// assert!(json.starts_with("{\n  \"schema\": \"wormbench/1\""));
/// assert!(json.contains("\"states\": 7"));
/// assert!(json.ends_with("}\n"));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchReport {
    /// Which suite produced this report (`"search"` or `"sim"`).
    pub suite: String,
    /// Scenario name → measurement key → value, both levels sorted.
    pub entries: BTreeMap<String, BTreeMap<String, BenchValue>>,
}

impl BenchReport {
    /// An empty report for `suite`.
    pub fn new(suite: impl Into<String>) -> Self {
        BenchReport {
            suite: suite.into(),
            entries: BTreeMap::new(),
        }
    }

    /// Record `key = value` under scenario `entry`.
    pub fn insert(&mut self, entry: &str, key: &str, value: BenchValue) {
        self.entries
            .entry(entry.to_string())
            .or_default()
            .insert(key.to_string(), value);
    }

    /// Serialize to the `wormbench/1` schema: 2-space indentation,
    /// sorted keys at every level, trailing newline.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", escape(SCHEMA)));
        out.push_str(&format!("  \"suite\": \"{}\",\n", escape(&self.suite)));
        out.push_str("  \"entries\": {");
        let mut first_entry = true;
        for (name, values) in &self.entries {
            out.push_str(if first_entry { "\n" } else { ",\n" });
            first_entry = false;
            out.push_str(&format!("    \"{}\": {{", escape(name)));
            let mut first_value = true;
            for (key, value) in values {
                out.push_str(if first_value { "\n" } else { ",\n" });
                first_value = false;
                out.push_str(&format!("      \"{}\": {value}", escape(key)));
            }
            out.push_str(if first_value { "}" } else { "\n    }" });
        }
        out.push_str(if first_entry { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }
}

/// Short label for a search verdict.
fn verdict_label(v: &Verdict) -> &'static str {
    match v {
        Verdict::DeadlockReachable(_) => "deadlock",
        Verdict::DeadlockFree => "free",
        Verdict::Inconclusive { .. } => "inconclusive",
    }
}

/// Record one engine run's measurements under `prefix`-ed keys.
fn record_search(report: &mut BenchReport, entry: &str, prefix: &str, result: &SearchResult) {
    let key = |k: &str| format!("{prefix}{k}");
    report.insert(
        entry,
        &key("states"),
        BenchValue::Int(result.states_explored as u64),
    );
    report.insert(
        entry,
        &key("states_per_sec"),
        BenchValue::Float(result.metrics.states_per_sec.round()),
    );
    report.insert(
        entry,
        &key("frontier_peak"),
        BenchValue::Int(result.metrics.frontier_peak as u64),
    );
    report.insert(
        entry,
        &key("dedup_hits"),
        BenchValue::Int(result.metrics.dedup_hits),
    );
    report.insert(
        entry,
        &key("dedup_lookups"),
        BenchValue::Int(result.metrics.dedup_lookups),
    );
    report.insert(
        entry,
        &key("verdict"),
        BenchValue::Str(verdict_label(&result.verdict).into()),
    );
}

/// Run one search scenario (plain, then canonicalized when the
/// instance has a symmetry group) into `report`.
fn run_search_scenario(report: &mut BenchReport, s: &SearchScenario, smoke: bool) {
    let mut config = s.plain_config();
    if smoke {
        config.max_states = config.max_states.min(20_000);
    }
    let plain = explore(&s.sim, &config);
    record_search(report, &s.name, "", &plain);
    if let Some(mut canon_config) = s.canon_config() {
        if smoke {
            canon_config.max_states = canon_config.max_states.min(20_000);
        }
        let folded = explore(&s.sim, &canon_config);
        record_search(report, &s.name, "canon_", &folded);
        report.insert(
            &s.name,
            "canon_order",
            BenchValue::Int(s.canon.as_ref().map_or(0, |c| c.order()) as u64),
        );
        if folded.states_explored > 0 {
            report.insert(
                &s.name,
                "reduction",
                BenchValue::Float(
                    (plain.states_explored as f64 / folded.states_explored as f64 * 100.0).round()
                        / 100.0,
                ),
            );
        }
    }
}

/// Run the search suite headlessly. `smoke` caps every search at a
/// small state budget so CI can validate the harness in seconds; full
/// runs explore each scenario to completion. The cluster-scale
/// topology workloads (`topo_*` entries) ride along: smoke runs
/// measure the downscaled instances, full runs the 10^5-channel ones.
pub fn run_search_suite(smoke: bool) -> BenchReport {
    let mut report = BenchReport::new("search");
    for s in search_scenarios() {
        run_search_scenario(&mut report, &s, smoke);
    }
    for s in exist_scenarios(smoke) {
        run_exist_scenario(&mut report, &s);
    }
    for s in large_topology_scenarios(smoke) {
        run_topo_scenario(&mut report, &s);
    }
    report
}

/// Run only the existence workloads (the `exist_*` entries of the
/// search suite) into a fresh report — the `exp_exist` binary's
/// engine.
pub fn run_exist_suite(smoke: bool) -> BenchReport {
    let mut report = BenchReport::new("search");
    for s in exist_scenarios(smoke) {
        run_exist_scenario(&mut report, &s);
    }
    report
}

/// Measure one existence workload: the full two-sided analysis
/// (`wormexist::analyze`) on the fabric. Structural keys (`channels`,
/// `demands`, `kind`, `sccs`, `verdict`, `witness_channels`) are
/// exactly reproducible; `exist_ms` is a timing. The expected verdict
/// is asserted — a baseline entry with the wrong answer must never be
/// committed.
fn run_exist_scenario(report: &mut BenchReport, s: &ExistScenario) {
    let name = s.name.as_str();
    report.insert(
        name,
        "channels",
        BenchValue::Int(s.net.channel_count() as u64),
    );
    let start = Instant::now();
    let exist = wormexist::analyze(&s.net, &wormexist::ExistOptions::default());
    let exist_ms = start.elapsed().as_secs_f64() * 1e3;
    report.insert(name, "exist_ms", BenchValue::Float(exist_ms.round()));
    report.insert(name, "demands", BenchValue::Int(exist.demands as u64));
    report.insert(name, "kind", BenchValue::Str(exist.kind_name().into()));
    report.insert(name, "sccs", BenchValue::Int(exist.sccs as u64));
    report.insert(
        name,
        "verdict",
        BenchValue::Str(exist.verdict.name().into()),
    );
    report.insert(
        name,
        "witness_channels",
        BenchValue::Int(exist.witness_channels() as u64),
    );
    assert_eq!(
        exist.verdict.name(),
        s.expected_verdict,
        "{name}: the existence engine must certify the expected verdict"
    );
}

/// Run only the cluster-scale topology workloads (the `topo_*`
/// entries of the search suite) into a fresh report — the `exp_topo`
/// binary's engine.
pub fn run_topo_suite(smoke: bool) -> BenchReport {
    let mut report = BenchReport::new("search");
    for s in large_topology_scenarios(smoke) {
        run_topo_scenario(&mut report, &s);
    }
    report
}

/// Cycle budget for the `topo_*` entries: on the deliberately
/// deadlock-prone instance the full cycle count is astronomical, and a
/// handful suffices to exhibit (not exhaust) the refutation.
const TOPO_MAX_CYCLES: usize = 8;

/// Candidate budget per cycle for the `topo_*` entries. At cluster
/// scale a single cycle's edges carry thousands of witness messages;
/// the verdicts don't depend on exhausting them (Corollary 1 and the
/// theorem certificates land within the first few).
const TOPO_MAX_CANDIDATES: usize = 256;

/// Label for an [`AlgorithmVerdict`], mirroring
/// `wormlint::StaticVerdict::name` spelling.
fn algorithm_verdict_label(v: &AlgorithmVerdict) -> &'static str {
    match v {
        AlgorithmVerdict::DeadlockFreeAcyclic { .. } => "free-acyclic",
        AlgorithmVerdict::DeadlockFreeWithCycles { .. } => "free-cyclic",
        AlgorithmVerdict::Deadlockable { .. } => "deadlockable",
        AlgorithmVerdict::Unknown { .. } => "unknown",
    }
}

/// Measure one cluster-scale topology scenario: batch CDG build,
/// incremental construction under *both* SCC engines, bounded cycle
/// streaming, whole-algorithm classification, and the wormlint static
/// verdict. Structural keys (`channels`, `cdg_edges`, `cycles_found`,
/// the per-engine `scc_*` work counters, both verdicts) are exactly
/// reproducible; `*_ms` keys are timings.
///
/// Per-engine keys use the engine's stable short name (`pk`,
/// `hkmst`): `incscc_<engine>_ms` is the streaming-construction time,
/// and `scc_<engine>_{violations,edge_visits,merges,compactions}`
/// re-export the engine's `graph.scc.*` wormtrace counters, captured
/// by installing a scoped [`wormtrace::MemoryRecorder`] around the
/// run. The legacy `incscc_ms` key stays as the default engine's
/// (HKMST) timing so older tooling keeps working.
fn run_topo_scenario(report: &mut BenchReport, s: &TopologyScenario) {
    let name = s.name.as_str();
    report.insert(
        name,
        "channels",
        BenchValue::Int(s.net.channel_count() as u64),
    );

    let start = Instant::now();
    let cdg = Cdg::build(&s.net, &s.table);
    let cdg_build_ms = start.elapsed().as_secs_f64() * 1e3;
    report.insert(
        name,
        "cdg_build_ms",
        BenchValue::Float(cdg_build_ms.round()),
    );
    report.insert(name, "cdg_edges", BenchValue::Int(cdg.edge_count() as u64));

    for kind in SccEngineKind::ALL {
        let rec = std::sync::Arc::new(wormtrace::MemoryRecorder::new());
        wormtrace::install(rec.clone());
        let start = Instant::now();
        let mut builder = CdgBuilder::with_engine(&s.net, kind);
        builder.add_table(&s.table);
        let incscc_ms = start.elapsed().as_secs_f64() * 1e3;
        wormtrace::uninstall();
        let counters = rec.snapshot().counters;
        let scc_counter = |key: &str| BenchValue::Int(counters.get(key).copied().unwrap_or(0));
        let engine = kind.name();
        report.insert(
            name,
            &format!("incscc_{engine}_ms"),
            BenchValue::Float(incscc_ms.round()),
        );
        if kind == SccEngineKind::default() {
            report.insert(name, "incscc_ms", BenchValue::Float(incscc_ms.round()));
        }
        report.insert(
            name,
            &format!("scc_{engine}_violations"),
            scc_counter("graph.scc.order_violations"),
        );
        report.insert(
            name,
            &format!("scc_{engine}_edge_visits"),
            scc_counter("graph.scc.edge_visits"),
        );
        report.insert(
            name,
            &format!("scc_{engine}_merges"),
            scc_counter("graph.scc.merges"),
        );
        report.insert(
            name,
            &format!("scc_{engine}_compactions"),
            scc_counter("graph.scc.compactions"),
        );
        assert_eq!(
            builder.is_acyclic(),
            cdg.is_acyclic(),
            "{name}: incremental ({engine}) and batch acyclicity disagree"
        );
    }

    let (cycles, _complete) = cdg.cycles_streamed(TOPO_MAX_CYCLES);
    report.insert(name, "cycles_found", BenchValue::Int(cycles.len() as u64));

    let opts = ClassifyOptions {
        max_cycles: TOPO_MAX_CYCLES,
        max_candidates: TOPO_MAX_CANDIDATES,
        use_search: false,
        ..ClassifyOptions::default()
    };
    let start = Instant::now();
    let verdict = classify_algorithm(&s.net, &s.table, &opts);
    let classify_ms = start.elapsed().as_secs_f64() * 1e3;
    report.insert(name, "classify_ms", BenchValue::Float(classify_ms.round()));
    report.insert(
        name,
        "verdict",
        BenchValue::Str(algorithm_verdict_label(&verdict).into()),
    );

    let config = wormlint::LintConfig {
        max_cycles: TOPO_MAX_CYCLES,
        max_candidates: TOPO_MAX_CANDIDATES,
        ..wormlint::LintConfig::default()
    };
    let start = Instant::now();
    let lint = wormlint::Registry::with_default_lints().run(&s.net, &s.table, &config);
    let lint_ms = start.elapsed().as_secs_f64() * 1e3;
    report.insert(name, "lint_ms", BenchValue::Float(lint_ms.round()));
    report.insert(
        name,
        "lint_verdict",
        BenchValue::Str(lint.verdict.name().into()),
    );
    assert_eq!(
        lint.verdict.name(),
        s.expected_verdict,
        "{name}: wormlint must certify the expected verdict"
    );
}

/// One engine's measurement of a sim scenario: the structural values
/// (which must match across engines) plus the timing.
struct SimMeasure {
    cycles: u64,
    flit_moves: u64,
    delivered: u64,
    outcome: &'static str,
    cycles_per_sec: f64,
}

/// Repeat policy for timing runs. Both engines get the identical
/// policy, so the recorded speedup compares like with like: rerun the
/// scenario until it has consumed [`MIN_TIMING_SECS`] of wall clock or
/// hit [`MAX_TIMING_REPS`] repetitions, and keep the *best* per-cycle
/// rate seen. Best-of-N filters out scheduler preemption and other
/// one-off noise that a single run is exposed to; the structural
/// values (cycles, flit moves, outcome) come from the first run and
/// are deterministic anyway.
const MIN_TIMING_SECS: f64 = 0.25;
/// Upper bound on timing repetitions per scenario per engine.
const MAX_TIMING_REPS: u32 = 5;

fn measure_sim(s: &SimScenario, engine: EngineKind, max_cycles: u64, smoke: bool) -> SimMeasure {
    let mut best_rate = 0.0f64;
    let mut first: Option<SimMeasure> = None;
    let mut spent = 0.0f64;
    for rep in 0..if smoke { 1 } else { MAX_TIMING_REPS } {
        if rep > 0 && spent >= MIN_TIMING_SECS {
            break;
        }
        let start = Instant::now();
        let mut runner = Runner::new(&s.sim, s.policy.clone()).with_engine(engine);
        let outcome = runner.run(max_cycles);
        let secs = start.elapsed().as_secs_f64();
        spent += secs;
        let stats = runner.stats();
        let rate = if secs > 0.0 {
            stats.cycles as f64 / secs
        } else {
            0.0
        };
        best_rate = best_rate.max(rate);
        if first.is_none() {
            first = Some(SimMeasure {
                cycles: stats.cycles,
                flit_moves: stats.flit_moves,
                delivered: stats.delivered_at.iter().filter(|d| d.is_some()).count() as u64,
                outcome: match outcome {
                    wormsim::runner::Outcome::Delivered { .. } => "delivered",
                    wormsim::runner::Outcome::Deadlock { .. } => "deadlock",
                    wormsim::runner::Outcome::Timeout { .. } => "timeout",
                },
                cycles_per_sec: 0.0,
            });
        }
    }
    let mut m = first.expect("at least one timing rep runs");
    m.cycles_per_sec = best_rate.round();
    m
}

/// Run one simulator scenario into `report` under each engine in
/// `engines`.
///
/// The stepping engine's measurements use the historical unprefixed
/// keys; the event engine's timing lands under `event_cycles_per_sec`
/// (plus `event_speedup` when both ran). Structural values are engine
/// independent — `tests/diff_sim.rs` holds the two engines to
/// bit-identical outcomes — so a disagreement here is a correctness
/// bug and panics rather than silently writing mismatched baselines.
fn run_sim_scenario(
    report: &mut BenchReport,
    s: &SimScenario,
    smoke: bool,
    engines: &[EngineKind],
) {
    let max_cycles = if smoke {
        s.max_cycles.min(200)
    } else {
        s.max_cycles
    };
    let mut stepping: Option<SimMeasure> = None;
    for &engine in engines {
        let m = measure_sim(s, engine, max_cycles, smoke);
        match engine {
            EngineKind::Stepping => {
                report.insert(&s.name, "cycles", BenchValue::Int(m.cycles));
                report.insert(&s.name, "flit_moves", BenchValue::Int(m.flit_moves));
                report.insert(&s.name, "delivered", BenchValue::Int(m.delivered));
                report.insert(&s.name, "outcome", BenchValue::Str(m.outcome.into()));
                report.insert(
                    &s.name,
                    "cycles_per_sec",
                    BenchValue::Float(m.cycles_per_sec),
                );
                stepping = Some(m);
            }
            EngineKind::Event => {
                if let Some(oracle) = &stepping {
                    assert_eq!(oracle.cycles, m.cycles, "{}: engine cycle mismatch", s.name);
                    assert_eq!(
                        oracle.flit_moves, m.flit_moves,
                        "{}: engine flit-move mismatch",
                        s.name
                    );
                    assert_eq!(
                        oracle.delivered, m.delivered,
                        "{}: engine delivery mismatch",
                        s.name
                    );
                    assert_eq!(
                        oracle.outcome, m.outcome,
                        "{}: engine outcome mismatch",
                        s.name
                    );
                    if m.cycles_per_sec > 0.0 {
                        report.insert(
                            &s.name,
                            "event_speedup",
                            BenchValue::Float(
                                (m.cycles_per_sec / oracle.cycles_per_sec.max(1.0) * 100.0).round()
                                    / 100.0,
                            ),
                        );
                    }
                } else {
                    // Event-only run: record the structural values too.
                    report.insert(&s.name, "cycles", BenchValue::Int(m.cycles));
                    report.insert(&s.name, "flit_moves", BenchValue::Int(m.flit_moves));
                    report.insert(&s.name, "delivered", BenchValue::Int(m.delivered));
                    report.insert(&s.name, "outcome", BenchValue::Str(m.outcome.into()));
                }
                report.insert(
                    &s.name,
                    "event_cycles_per_sec",
                    BenchValue::Float(m.cycles_per_sec),
                );
            }
        }
    }
}

/// Run the simulator suite headlessly under both engines (stepping
/// keys unprefixed, event keys `event_`-prefixed). `smoke` caps every
/// run at a few hundred cycles.
pub fn run_sim_suite(smoke: bool) -> BenchReport {
    run_sim_suite_engines(smoke, &[EngineKind::Stepping, EngineKind::Event])
}

/// Like [`run_sim_suite`], restricted to the given engines (the
/// `bench_report --engine` flag). Listing both measures stepping
/// first so the event entry also records `event_speedup`.
pub fn run_sim_suite_engines(smoke: bool, engines: &[EngineKind]) -> BenchReport {
    let mut report = BenchReport::new("sim");
    for s in sim_scenarios() {
        run_sim_scenario(&mut report, &s, smoke, engines);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_valid_json() {
        let report = BenchReport::new("search");
        assert_eq!(
            report.to_json(),
            "{\n  \"schema\": \"wormbench/1\",\n  \"suite\": \"search\",\n  \"entries\": {}\n}\n"
        );
    }

    #[test]
    fn keys_serialize_sorted() {
        let mut report = BenchReport::new("sim");
        report.insert("zeta", "b", BenchValue::Int(2));
        report.insert("alpha", "z", BenchValue::Int(1));
        report.insert("alpha", "a", BenchValue::Float(0.5));
        let json = report.to_json();
        let alpha = json.find("\"alpha\"").unwrap();
        let zeta = json.find("\"zeta\"").unwrap();
        assert!(alpha < zeta);
        let a = json.find("\"a\": 0.5").unwrap();
        let z = json.find("\"z\": 1").unwrap();
        assert!(a < z);
    }

    #[test]
    fn strings_escape() {
        let mut report = BenchReport::new("sim");
        report.insert("e", "note", BenchValue::Str("a\"b\\c\nd".into()));
        assert!(report.to_json().contains("\"note\": \"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn smoke_suites_produce_entries() {
        let search = run_search_suite(true);
        assert_eq!(search.suite, "search");
        assert!(search.entries.contains_key("fig1"));
        assert!(search.entries.contains_key("g5"));
        let fig1 = &search.entries["fig1"];
        assert!(fig1.contains_key("states"));
        assert!(fig1.contains_key("canon_states"));
        assert!(fig1.contains_key("reduction"));
        for name in [
            "topo_dragonfly_min",
            "topo_fattree_updown",
            "topo_fullmesh_vcfree",
            "topo_dragonfly_novc",
        ] {
            let entry = &search.entries[name];
            for key in [
                "channels",
                "cdg_edges",
                "cycles_found",
                "verdict",
                "lint_verdict",
            ] {
                assert!(entry.contains_key(key), "{name} missing {key}");
            }
        }
        for name in ["exist_fig1", "exist_g5", "exist_topo_dragonfly_novc"] {
            let entry = &search.entries[name];
            for key in [
                "channels",
                "demands",
                "exist_ms",
                "kind",
                "sccs",
                "verdict",
                "witness_channels",
            ] {
                assert!(entry.contains_key(key), "{name} missing {key}");
            }
            assert_eq!(entry["verdict"], BenchValue::Str("exists".into()));
        }
        assert_eq!(
            search.entries["topo_dragonfly_min"]["lint_verdict"],
            BenchValue::Str("free-acyclic".into())
        );
        assert_eq!(
            search.entries["topo_dragonfly_novc"]["lint_verdict"],
            BenchValue::Str("deadlockable".into())
        );

        let sim = run_sim_suite(true);
        assert!(sim.entries.contains_key("fig1_adversarial"));
        assert!(sim.entries["fig1_adversarial"].contains_key("cycles_per_sec"));
        assert!(sim.entries["fig1_adversarial"].contains_key("event_cycles_per_sec"));
        assert!(sim.entries.contains_key("mesh_uniform_16x16"));
        assert!(sim.entries.contains_key("mesh_uniform_32x32"));
    }

    #[test]
    fn event_only_suite_records_structural_keys() {
        let sim = run_sim_suite_engines(true, &[EngineKind::Event]);
        let fig1 = &sim.entries["fig1_adversarial"];
        assert!(fig1.contains_key("cycles"));
        assert!(fig1.contains_key("outcome"));
        assert!(fig1.contains_key("event_cycles_per_sec"));
        assert!(!fig1.contains_key("cycles_per_sec"));
    }
}
