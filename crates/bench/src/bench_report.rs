//! Headless benchmark runner and the `wormbench/1` JSON baselines.
//!
//! Criterion output is for humans watching a terminal; the committed
//! baselines `BENCH_search.json` and `BENCH_sim.json` are for diffs:
//! regenerate them with the `bench_report` binary after a performance
//! change and the review shows exactly which scenario's state count,
//! throughput, or symmetry reduction moved.
//!
//! Like `wormtrace/1` (the trace report schema), the serializer is
//! hand-rolled — the workspace builds offline, so no serde — and all
//! maps are [`BTreeMap`]s: keys serialize sorted, so two runs with
//! identical measurements produce byte-identical files.
//!
//! Determinism caveat: per-entry *structural* values (`states`,
//! `verdict`, `canon_states`, `reduction`, `delivered`) are exactly
//! reproducible; timing values (`states_per_sec`, `cycles_per_sec`,
//! `elapsed_ms`) are machine-dependent and only meaningful relative
//! to other entries from the same run.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

use crate::scenarios::{search_scenarios, sim_scenarios, SearchScenario, SimScenario};
use wormsearch::{explore, SearchResult, Verdict};
use wormsim::runner::Runner;

/// Schema identifier stamped into every baseline file.
pub const SCHEMA: &str = "wormbench/1";

/// A single measured value in a baseline entry.
#[derive(Clone, Debug, PartialEq)]
pub enum BenchValue {
    /// An exact count (states, lookups, cycles).
    Int(u64),
    /// A rate or ratio (machine-dependent unless noted).
    Float(f64),
    /// A label (e.g. the search verdict).
    Str(String),
}

impl fmt::Display for BenchValue {
    /// Renders as a JSON value.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchValue::Int(v) => write!(f, "{v}"),
            BenchValue::Float(v) if v.is_finite() => write!(f, "{v:?}"),
            BenchValue::Float(_) => write!(f, "null"),
            BenchValue::Str(s) => write!(f, "\"{}\"", escape(s)),
        }
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One suite's measurements: scenario name → sorted key/value map.
///
/// ```
/// use wormbench::bench_report::{BenchReport, BenchValue};
///
/// let mut report = BenchReport::new("search");
/// report.insert("fig1", "states", BenchValue::Int(7));
/// report.insert("fig1", "verdict", BenchValue::Str("free".into()));
/// let json = report.to_json();
/// assert!(json.starts_with("{\n  \"schema\": \"wormbench/1\""));
/// assert!(json.contains("\"states\": 7"));
/// assert!(json.ends_with("}\n"));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchReport {
    /// Which suite produced this report (`"search"` or `"sim"`).
    pub suite: String,
    /// Scenario name → measurement key → value, both levels sorted.
    pub entries: BTreeMap<String, BTreeMap<String, BenchValue>>,
}

impl BenchReport {
    /// An empty report for `suite`.
    pub fn new(suite: impl Into<String>) -> Self {
        BenchReport {
            suite: suite.into(),
            entries: BTreeMap::new(),
        }
    }

    /// Record `key = value` under scenario `entry`.
    pub fn insert(&mut self, entry: &str, key: &str, value: BenchValue) {
        self.entries
            .entry(entry.to_string())
            .or_default()
            .insert(key.to_string(), value);
    }

    /// Serialize to the `wormbench/1` schema: 2-space indentation,
    /// sorted keys at every level, trailing newline.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", escape(SCHEMA)));
        out.push_str(&format!("  \"suite\": \"{}\",\n", escape(&self.suite)));
        out.push_str("  \"entries\": {");
        let mut first_entry = true;
        for (name, values) in &self.entries {
            out.push_str(if first_entry { "\n" } else { ",\n" });
            first_entry = false;
            out.push_str(&format!("    \"{}\": {{", escape(name)));
            let mut first_value = true;
            for (key, value) in values {
                out.push_str(if first_value { "\n" } else { ",\n" });
                first_value = false;
                out.push_str(&format!("      \"{}\": {value}", escape(key)));
            }
            out.push_str(if first_value { "}" } else { "\n    }" });
        }
        out.push_str(if first_entry { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }
}

/// Short label for a search verdict.
fn verdict_label(v: &Verdict) -> &'static str {
    match v {
        Verdict::DeadlockReachable(_) => "deadlock",
        Verdict::DeadlockFree => "free",
        Verdict::Inconclusive { .. } => "inconclusive",
    }
}

/// Record one engine run's measurements under `prefix`-ed keys.
fn record_search(report: &mut BenchReport, entry: &str, prefix: &str, result: &SearchResult) {
    let key = |k: &str| format!("{prefix}{k}");
    report.insert(
        entry,
        &key("states"),
        BenchValue::Int(result.states_explored as u64),
    );
    report.insert(
        entry,
        &key("states_per_sec"),
        BenchValue::Float(result.metrics.states_per_sec.round()),
    );
    report.insert(
        entry,
        &key("frontier_peak"),
        BenchValue::Int(result.metrics.frontier_peak as u64),
    );
    report.insert(
        entry,
        &key("dedup_hits"),
        BenchValue::Int(result.metrics.dedup_hits),
    );
    report.insert(
        entry,
        &key("dedup_lookups"),
        BenchValue::Int(result.metrics.dedup_lookups),
    );
    report.insert(
        entry,
        &key("verdict"),
        BenchValue::Str(verdict_label(&result.verdict).into()),
    );
}

/// Run one search scenario (plain, then canonicalized when the
/// instance has a symmetry group) into `report`.
fn run_search_scenario(report: &mut BenchReport, s: &SearchScenario, smoke: bool) {
    let mut config = s.plain_config();
    if smoke {
        config.max_states = config.max_states.min(20_000);
    }
    let plain = explore(&s.sim, &config);
    record_search(report, &s.name, "", &plain);
    if let Some(mut canon_config) = s.canon_config() {
        if smoke {
            canon_config.max_states = canon_config.max_states.min(20_000);
        }
        let folded = explore(&s.sim, &canon_config);
        record_search(report, &s.name, "canon_", &folded);
        report.insert(
            &s.name,
            "canon_order",
            BenchValue::Int(s.canon.as_ref().map_or(0, |c| c.order()) as u64),
        );
        if folded.states_explored > 0 {
            report.insert(
                &s.name,
                "reduction",
                BenchValue::Float(
                    (plain.states_explored as f64 / folded.states_explored as f64 * 100.0).round()
                        / 100.0,
                ),
            );
        }
    }
}

/// Run the search suite headlessly. `smoke` caps every search at a
/// small state budget so CI can validate the harness in seconds; full
/// runs explore each scenario to completion.
pub fn run_search_suite(smoke: bool) -> BenchReport {
    let mut report = BenchReport::new("search");
    for s in search_scenarios() {
        run_search_scenario(&mut report, &s, smoke);
    }
    report
}

/// Run one simulator scenario into `report`.
fn run_sim_scenario(report: &mut BenchReport, s: &SimScenario, smoke: bool) {
    let max_cycles = if smoke {
        s.max_cycles.min(200)
    } else {
        s.max_cycles
    };
    let start = Instant::now();
    let mut runner = Runner::new(&s.sim, s.policy.clone());
    let outcome = runner.run(max_cycles);
    let elapsed = start.elapsed();
    let stats = runner.stats();
    let delivered = stats.delivered_at.iter().filter(|d| d.is_some()).count();
    report.insert(&s.name, "cycles", BenchValue::Int(stats.cycles));
    report.insert(&s.name, "flit_moves", BenchValue::Int(stats.flit_moves));
    report.insert(&s.name, "delivered", BenchValue::Int(delivered as u64));
    report.insert(
        &s.name,
        "outcome",
        BenchValue::Str(
            match outcome {
                wormsim::runner::Outcome::Delivered { .. } => "delivered",
                wormsim::runner::Outcome::Deadlock { .. } => "deadlock",
                wormsim::runner::Outcome::Timeout { .. } => "timeout",
            }
            .into(),
        ),
    );
    let secs = elapsed.as_secs_f64();
    report.insert(
        &s.name,
        "cycles_per_sec",
        BenchValue::Float(if secs > 0.0 {
            (stats.cycles as f64 / secs).round()
        } else {
            0.0
        }),
    );
}

/// Run the simulator suite headlessly. `smoke` caps every run at a
/// few hundred cycles.
pub fn run_sim_suite(smoke: bool) -> BenchReport {
    let mut report = BenchReport::new("sim");
    for s in sim_scenarios() {
        run_sim_scenario(&mut report, &s, smoke);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_valid_json() {
        let report = BenchReport::new("search");
        assert_eq!(
            report.to_json(),
            "{\n  \"schema\": \"wormbench/1\",\n  \"suite\": \"search\",\n  \"entries\": {}\n}\n"
        );
    }

    #[test]
    fn keys_serialize_sorted() {
        let mut report = BenchReport::new("sim");
        report.insert("zeta", "b", BenchValue::Int(2));
        report.insert("alpha", "z", BenchValue::Int(1));
        report.insert("alpha", "a", BenchValue::Float(0.5));
        let json = report.to_json();
        let alpha = json.find("\"alpha\"").unwrap();
        let zeta = json.find("\"zeta\"").unwrap();
        assert!(alpha < zeta);
        let a = json.find("\"a\": 0.5").unwrap();
        let z = json.find("\"z\": 1").unwrap();
        assert!(a < z);
    }

    #[test]
    fn strings_escape() {
        let mut report = BenchReport::new("sim");
        report.insert("e", "note", BenchValue::Str("a\"b\\c\nd".into()));
        assert!(report.to_json().contains("\"note\": \"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn smoke_suites_produce_entries() {
        let search = run_search_suite(true);
        assert_eq!(search.suite, "search");
        assert!(search.entries.contains_key("fig1"));
        assert!(search.entries.contains_key("g5"));
        let fig1 = &search.entries["fig1"];
        assert!(fig1.contains_key("states"));
        assert!(fig1.contains_key("canon_states"));
        assert!(fig1.contains_key("reduction"));

        let sim = run_sim_suite(true);
        assert!(sim.entries.contains_key("fig1_adversarial"));
        assert!(sim.entries["fig1_adversarial"].contains_key("cycles_per_sec"));
    }
}
