//! Tiny command-line helpers shared by every `exp_*` binary.
//!
//! The experiment programs deliberately avoid an argument-parsing
//! dependency: each flag is a plain `--name value` pair scanned from
//! [`std::env::args`]. This module hosts the two scanners so the
//! binaries stay consistent (same flag spelling, same fallback
//! behaviour) without copy-pasted parsing loops.

/// Returns the value following `flag` on the command line, if any.
///
/// `flag` must include the leading dashes (e.g. `"--trace"`). A flag
/// given without a following value is treated as absent.
pub fn value_of(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses `--threads N`, falling back to `default` when the flag is
/// absent or unparsable.
///
/// By convention `0` means "one worker per core". Binaries whose
/// historical behaviour is sequential (e.g. `exp_theorems`,
/// `exp_multishare`) pass `default = 1` so their output is unchanged
/// unless the flag is given explicitly.
pub fn threads(default: usize) -> usize {
    value_of("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--engine stepping|event`, falling back to `default` when
/// the flag is absent.
///
/// Unlike [`threads`]/[`seed`], an *unrecognized* value is a hard
/// error (exit 2): silently falling back would make an engine
/// comparison measure the wrong engine, which is worse than an
/// unparsable thread count.
pub fn engine(default: wormsim::runner::EngineKind) -> wormsim::runner::EngineKind {
    use wormsim::runner::EngineKind;
    match value_of("--engine").as_deref() {
        None => default,
        Some("stepping") => EngineKind::Stepping,
        Some("event") => EngineKind::Event,
        Some(other) => {
            eprintln!("unknown engine {other:?} (expected stepping or event)");
            std::process::exit(2);
        }
    }
}

/// Parses `--seed N`, falling back to `default` when the flag is
/// absent or unparsable. Accepts decimal (`49374`) and `0x`-prefixed
/// hexadecimal (`0xC0FFEE`) spellings, so seeds can be quoted exactly
/// as EXPERIMENTS.md prints them.
pub fn seed(default: u64) -> u64 {
    value_of("--seed")
        .and_then(|v| {
            let v = v.trim();
            match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => v.parse().ok(),
            }
        })
        .unwrap_or(default)
}
