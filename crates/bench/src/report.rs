//! Tiny fixed-width table printer shared by the experiment binaries,
//! so every experiment prints results in the same aligned format that
//! EXPERIMENTS.md quotes.

/// Print a header row followed by a separator.
pub fn header(cols: &[(&str, usize)]) {
    let mut line = String::new();
    let mut rule = String::new();
    for (name, width) in cols {
        line.push_str(&format!("{name:>width$}  "));
        rule.push_str(&format!("{:->width$}  ", ""));
    }
    println!("{}", line.trim_end());
    println!("{}", rule.trim_end());
}

/// Print one data row with the same widths.
pub fn row(cells: &[(String, usize)]) {
    let mut line = String::new();
    for (cell, width) in cells {
        line.push_str(&format!("{cell:>width$}  "));
    }
    println!("{}", line.trim_end());
}

/// Shorthand for building a row cell.
pub fn cell(v: impl ToString, w: usize) -> (String, usize) {
    (v.to_string(), w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke() {
        header(&[("k", 4), ("min", 6)]);
        row(&[cell(1, 4), cell("5", 6)]);
    }
}
