//! `--trace <path>` support for the experiment binaries.
//!
//! Every `exp_*` program calls [`init`] first thing in `main`. When
//! the user passed `--trace <path>`, this installs a
//! [`wormtrace::MemoryRecorder`] as the global recorder so all
//! `sim.*` / `search.*` / `classify.*` instrumentation points start
//! accumulating, and returns a guard that serializes the collected
//! [`wormtrace::TraceReport`] to `<path>` as JSON (schema
//! [`wormtrace::SCHEMA`], documented in `docs/TRACING.md`) when it is
//! dropped at the end of `main`. Without the flag nothing is
//! installed and the instrumentation stays on its one-atomic-load
//! disabled path.

use std::sync::Arc;

use wormtrace::MemoryRecorder;

/// Guard returned by [`init`]; writes the trace file on drop.
///
/// Hold it for the whole experiment (`let _trace = trace::init(..)`).
/// Dropping it early truncates the recording to that point.
#[must_use]
pub struct TraceGuard {
    experiment: &'static str,
    path: String,
    recorder: Arc<MemoryRecorder>,
}

impl TraceGuard {
    /// The destination path, as given on the command line.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let json = self.recorder.snapshot().to_json(self.experiment);
        if let Err(err) = std::fs::write(&self.path, json) {
            eprintln!("warning: could not write trace to {}: {err}", self.path);
        } else {
            eprintln!("trace written to {}", self.path);
        }
    }
}

/// Installs a recorder if `--trace <path>` was passed.
///
/// `experiment` names the report (conventionally the binary name,
/// e.g. `"exp_fig3"`). Returns `None` — and records nothing — when
/// the flag is absent.
pub fn init(experiment: &'static str) -> Option<TraceGuard> {
    let path = crate::args::value_of("--trace")?;
    let recorder = Arc::new(MemoryRecorder::new());
    wormtrace::install(recorder.clone());
    Some(TraceGuard {
        experiment,
        path,
        recorder,
    })
}
