//! BENCH-2: flit-level simulator throughput.
//!
//! Run with: `cargo bench -p wormbench --bench sim_bench`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use wormbench::scenarios::sim_scenarios;
use wormnet::topology::Mesh;
use wormroute::algorithms::dimension_order;
use wormsim::runner::{ArbitrationPolicy, EngineKind, Runner};
use wormsim::{traffic, Sim};

/// Every named sim scenario (the `BENCH_sim.json` workloads: uniform
/// meshes 4x4..32x32 and fig1 under the adversary) under both
/// engines, so Criterion and the committed baselines measure the same
/// workloads.
fn bench_sim_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scenarios");
    group.sample_size(10);
    for s in sim_scenarios() {
        for (label, engine) in [
            ("stepping", EngineKind::Stepping),
            ("event", EngineKind::Event),
        ] {
            group.bench_with_input(BenchmarkId::new(&s.name, label), &engine, |b, &engine| {
                b.iter(|| {
                    let mut runner =
                        Runner::new(black_box(&s.sim), s.policy.clone()).with_engine(engine);
                    runner.run(s.max_cycles)
                });
            });
        }
    }
    group.finish();
}

fn bench_single_step(c: &mut Criterion) {
    let mesh = Mesh::new(&[8, 8]);
    let table = dimension_order(&mesh).expect("routes");
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let specs = traffic::uniform_random(mesh.network(), &table, &mut rng, 0.2, 50, (6, 6));
    let sim = Sim::new(mesh.network(), &table, specs, None).expect("routed");
    c.bench_function("runner_step_8x8_loaded", |b| {
        let mut runner = Runner::new(&sim, ArbitrationPolicy::OldestFirst);
        // Warm the network up so steps are representative.
        for _ in 0..20 {
            runner.step();
        }
        b.iter(|| runner.step());
    });
}

/// Adaptive vs oblivious engines on the same transpose workload.
fn bench_adaptive_vs_oblivious(c: &mut Criterion) {
    use wormroute::adaptive::fully_adaptive_minimal;
    use wormsim::adaptive::{AdaptivePolicy, AdaptiveRunner, AdaptiveSim};
    let mesh = Mesh::new(&[5, 5]);
    let specs = traffic::transpose(&mesh, 6);

    let mut group = c.benchmark_group("adaptive_vs_oblivious_transpose");
    group.sample_size(20);
    let table = dimension_order(&mesh).expect("routes");
    let sim = Sim::new(mesh.network(), &table, specs.clone(), None).expect("routed");
    group.bench_function("oblivious_dor", |b| {
        b.iter(|| {
            let mut runner = Runner::new(black_box(&sim), ArbitrationPolicy::OldestFirst);
            runner.run(1_000_000)
        });
    });
    let routing = fully_adaptive_minimal(&mesh);
    let asim = AdaptiveSim::new(mesh.network(), routing, specs, None).expect("routed");
    group.bench_function("fully_adaptive", |b| {
        b.iter(|| {
            let mut runner = AdaptiveRunner::new(black_box(&asim), AdaptivePolicy::FirstFree);
            runner.run(1_000_000)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sim_scenarios,
    bench_single_step,
    bench_adaptive_vs_oblivious
);
criterion_main!(benches);
