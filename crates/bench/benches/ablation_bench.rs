//! BENCH-4: ablations over the design choices DESIGN.md calls out —
//! arbitration policy, buffer depth, and message length.
//!
//! Run with: `cargo bench -p wormbench --bench ablation_bench`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use worm_core::paper::fig1;
use wormnet::topology::Mesh;
use wormroute::algorithms::dimension_order;
use wormsim::runner::{ArbitrationPolicy, Runner};
use wormsim::{traffic, MessageSpec, Sim};

/// Arbitration-policy ablation: wall-clock cost of delivering the same
/// contended workload under each policy.
fn bench_arbitration_policies(c: &mut Criterion) {
    let mesh = Mesh::new(&[5, 5]);
    let table = dimension_order(&mesh).expect("routes");
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let specs = traffic::uniform_random(mesh.network(), &table, &mut rng, 0.15, 60, (4, 8));
    let sim = Sim::new(mesh.network(), &table, specs, None).expect("routed");
    let mut group = c.benchmark_group("arbitration_policy");
    group.sample_size(20);
    for (name, policy) in [
        ("lowest_id", ArbitrationPolicy::LowestId),
        ("round_robin", ArbitrationPolicy::RoundRobin),
        ("oldest_first", ArbitrationPolicy::OldestFirst),
        (
            "adversarial",
            ArbitrationPolicy::Adversarial { favored: vec![] },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut runner = Runner::new(black_box(&sim), policy.clone());
                runner.run(1_000_000)
            });
        });
    }
    group.finish();
}

/// Buffer-depth ablation on the Figure 1 network: deeper queues change
/// cost but never the verdict (asserted in tests; measured here).
fn bench_buffer_depth(c: &mut Criterion) {
    let con = fig1::cyclic_dependency();
    let mut group = c.benchmark_group("fig1_buffer_depth");
    for depth in [1usize, 2, 4, 8] {
        let sim = Sim::new(&con.net, &con.table, con.message_specs(), Some(depth)).expect("routed");
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                let mut runner = Runner::new(
                    black_box(&sim),
                    ArbitrationPolicy::Adversarial { favored: vec![] },
                );
                runner.run(10_000)
            });
        });
    }
    group.finish();
}

/// Message-length ablation: longer worms on a fixed line pipeline.
fn bench_message_length(c: &mut Criterion) {
    let mesh = Mesh::new(&[8, 1]);
    let table = dimension_order(&mesh).expect("routes");
    let mut group = c.benchmark_group("message_length_pipeline");
    for len in [2usize, 8, 32, 128] {
        let specs = vec![MessageSpec::new(
            mesh.node(&[0, 0]),
            mesh.node(&[7, 0]),
            len,
        )];
        let sim = Sim::new(mesh.network(), &table, specs, None).expect("routed");
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| {
                let mut runner = Runner::new(black_box(&sim), ArbitrationPolicy::LowestId);
                runner.run(100_000)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_arbitration_policies,
    bench_buffer_depth,
    bench_message_length
);
criterion_main!(benches);
