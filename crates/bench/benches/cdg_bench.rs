//! BENCH-1: channel-dependency-graph construction and cycle
//! enumeration scaling.
//!
//! Run with: `cargo bench -p wormbench --bench cdg_bench`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wormcdg::{enumerate_candidates, Cdg};
use wormnet::topology::{ring_unidirectional, Mesh};
use wormroute::algorithms::{clockwise_ring, dimension_order};

fn bench_cdg_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdg_build_mesh");
    for side in [4usize, 6, 8] {
        let mesh = Mesh::new(&[side, side]);
        let table = dimension_order(&mesh).expect("routes");
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, _| {
            b.iter(|| Cdg::build(black_box(mesh.network()), black_box(&table)));
        });
    }
    group.finish();
}

fn bench_numbering(c: &mut Criterion) {
    let mesh = Mesh::new(&[8, 8]);
    let table = dimension_order(&mesh).expect("routes");
    let cdg = Cdg::build(mesh.network(), &table);
    c.bench_function("dally_seitz_numbering_8x8", |b| {
        b.iter(|| black_box(&cdg).numbering());
    });
}

fn bench_cycle_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_enumeration_ring");
    for n in [4usize, 6, 8] {
        let (net, nodes) = ring_unidirectional(n);
        let table = clockwise_ring(&net, &nodes).expect("routes");
        let cdg = Cdg::build(&net, &table);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(&cdg).cycles());
        });
    }
    group.finish();
}

fn bench_candidates(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_enumeration_ring");
    for n in [4usize, 5, 6] {
        let (net, nodes) = ring_unidirectional(n);
        let table = clockwise_ring(&net, &nodes).expect("routes");
        let cdg = Cdg::build(&net, &table);
        let cycle = cdg.cycles().remove(0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| enumerate_candidates(black_box(&cdg), black_box(&cycle), 1_000_000));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cdg_build,
    bench_numbering,
    bench_cycle_enumeration,
    bench_candidates
);
criterion_main!(benches);
