//! BENCH-5: parallel work-stealing search vs the sequential oracle.
//!
//! Measures [`wormsearch::explore_parallel`] against the sequential
//! depth-first [`wormsearch::explore`] on state spaces big enough to
//! feed several workers:
//!
//! * a Theorem 5 instance — Figure 3 scenario (a) with an adversarial
//!   stall budget, whose reachable space grows into the hundreds of
//!   thousands of states;
//! * the Section 6 generalized construction `G(3)` swept at its
//!   deadlock-free stall budget.
//!
//! One [`wormsearch::SearchMetrics`] summary per instance is printed
//! before measuring (states/s, layers, frontier peak, dedup hit-rate,
//! steal counts), so the run doubles as the speedup report:
//! at 4 threads the parallel engine is expected to be >= 2x faster
//! than the sequential baseline on these instances.
//!
//! Run with: `cargo bench -p wormbench --bench search_parallel`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use worm_core::paper::{fig3, generalized};
use wormsearch::{explore, explore_parallel, SearchConfig};
use wormsim::Sim;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn bench_instance(c: &mut Criterion, group_name: &str, sim: &Sim, config: &SearchConfig) {
    // One metrics line per engine before measurement starts.
    let seq = explore(sim, config);
    let label = if seq.verdict.is_free() {
        "free"
    } else if seq.verdict.is_deadlock() {
        "deadlock"
    } else {
        "inconclusive"
    };
    println!(
        "{group_name}: sequential ({label}, {} states) — {}",
        seq.states_explored,
        seq.metrics.summary()
    );
    for threads in THREAD_COUNTS {
        let par = explore_parallel(sim, config, threads);
        assert_eq!(
            seq.verdict.is_free(),
            par.verdict.is_free(),
            "engines disagree on {group_name}"
        );
        println!(
            "{group_name}: {threads} threads — {}",
            par.metrics.summary()
        );
    }

    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| explore(black_box(sim), config));
    });
    for threads in THREAD_COUNTS {
        group.bench_function(BenchmarkId::from_parameter(format!("par{threads}")), |b| {
            b.iter(|| explore_parallel(black_box(sim), config, threads));
        });
    }
    group.finish();
}

/// Theorem 5 instance: Figure 3 scenario (c) — condition 2 fails, so
/// the deadlock is reachable — with a stall budget that inflates the
/// reachable space to the largest of the six scenarios.
fn bench_theorem5_instance(c: &mut Criterion) {
    let s = fig3::scenario_c();
    let con = s.spec.build();
    let sim = Sim::new(&con.net, &con.table, s.message_specs(&con), Some(1)).expect("routed");
    let config = SearchConfig {
        stall_budget: 3,
        max_states: 8_000_000,
        dead_channels: Vec::new(),
        ..SearchConfig::default()
    };
    bench_instance(c, "search_parallel_theorem5", &sim, &config);
}

/// Section 6 instance: `G(3)` at stall budget 3 (one below its
/// deadlock threshold): an exhaustive deadlock-freedom sweep.
fn bench_generalized_instance(c: &mut Criterion) {
    let con = generalized::generalized(3);
    let sim = Sim::new(
        &con.net,
        &con.table,
        generalized::minimum_length_specs(&con),
        Some(1),
    )
    .expect("routed");
    let config = SearchConfig {
        stall_budget: 3,
        max_states: 8_000_000,
        dead_channels: Vec::new(),
        ..SearchConfig::default()
    };
    bench_instance(c, "search_parallel_g3", &sim, &config);
}

criterion_group!(benches, bench_theorem5_instance, bench_generalized_instance);
criterion_main!(benches);
