//! BENCH-3: exhaustive reachability-search cost on the paper's
//! networks.
//!
//! Run with: `cargo bench -p wormbench --bench search_bench`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use worm_core::paper::generalized;
use wormbench::scenarios::search_scenarios;
use wormsearch::{explore, SearchConfig};
use wormsim::Sim;

/// Every named scenario from `wormbench::scenarios` — the same
/// workloads `bench_report` measures into `BENCH_search.json` — plain
/// and, where the instance has a symmetry group, canonicalized.
fn bench_named_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("search");
    group.sample_size(10);
    for s in search_scenarios() {
        let config = s.plain_config();
        group.bench_function(s.name.clone(), |b| {
            b.iter(|| explore(black_box(&s.sim), &config));
        });
        if let Some(canon_config) = s.canon_config() {
            group.bench_function(format!("{}_canon", s.name), |b| {
                b.iter(|| explore(black_box(&s.sim), &canon_config));
            });
        }
    }
    group.finish();
}

fn bench_stall_budget(c: &mut Criterion) {
    let con = generalized::generalized(1);
    let sim = Sim::new(
        &con.net,
        &con.table,
        generalized::minimum_length_specs(&con),
        Some(1),
    )
    .expect("routed");
    let mut group = c.benchmark_group("search_with_stall_budget");
    group.sample_size(10);
    for budget in [0u32, 1, 2] {
        group.bench_function(format!("g1_budget_{budget}"), |b| {
            b.iter(|| {
                explore(
                    black_box(&sim),
                    &SearchConfig {
                        stall_budget: budget,
                        max_states: 5_000_000,
                        dead_channels: Vec::new(),
                        ..SearchConfig::default()
                    },
                )
            });
        });
    }
    group.finish();
}

fn bench_adaptive_search(c: &mut Criterion) {
    use wormnet::topology::Mesh;
    use wormroute::adaptive::{duato_mesh, fully_adaptive_minimal};
    use wormsearch::adaptive::explore_adaptive;
    use wormsim::adaptive::AdaptiveSim;
    use wormsim::MessageSpec;

    let rotation = |mesh: &Mesh, len| {
        vec![
            MessageSpec::new(mesh.node(&[0, 0]), mesh.node(&[1, 1]), len),
            MessageSpec::new(mesh.node(&[1, 0]), mesh.node(&[0, 1]), len),
            MessageSpec::new(mesh.node(&[1, 1]), mesh.node(&[0, 0]), len),
            MessageSpec::new(mesh.node(&[0, 1]), mesh.node(&[1, 0]), len),
        ]
    };
    let mut group = c.benchmark_group("adaptive_search");
    group.sample_size(10);
    let mesh = Mesh::new(&[2, 2]);
    let sim = AdaptiveSim::new(
        mesh.network(),
        fully_adaptive_minimal(&mesh),
        rotation(&mesh, 3),
        Some(1),
    )
    .expect("routed");
    group.bench_function("fully_adaptive_deadlock", |b| {
        b.iter(|| explore_adaptive(black_box(&sim), 10_000_000));
    });
    let mesh2 = Mesh::with_vcs(&[2, 2], 2);
    let sim2 = AdaptiveSim::new(
        mesh2.network(),
        duato_mesh(&mesh2),
        rotation(&mesh2, 3),
        Some(1),
    )
    .expect("routed");
    group.bench_function("duato_freedom_proof", |b| {
        b.iter(|| explore_adaptive(black_box(&sim2), 30_000_000));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_named_scenarios,
    bench_stall_budget,
    bench_adaptive_search
);
criterion_main!(benches);
