//! End-to-end tests of the `analyze` CLI binary.

use std::process::Command;

fn analyze(args: &[&str]) -> (String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_analyze"))
        .args(args)
        .output()
        .expect("spawn analyze");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

#[test]
fn mesh_xy_is_dally_seitz_free() {
    let (out, ok) = analyze(&["mesh", "3", "3", "xy"]);
    assert!(ok);
    assert!(out.contains("acyclic"));
    assert!(out.contains("DEADLOCK-FREE (Dally-Seitz"));
}

#[test]
fn clockwise_ring_is_deadlockable() {
    let (out, ok) = analyze(&["ring", "4", "clockwise"]);
    assert!(ok);
    assert!(out.contains("DEADLOCKABLE"));
    assert!(out.contains("Theorem 2"));
}

#[test]
fn fig1_reports_false_resource_cycle() {
    let (out, ok) = analyze(&["fig1"]);
    assert!(ok);
    assert!(out.contains("shared-channel cycle: ring of 14 channels"));
    assert!(out.contains("DEADLOCK-FREE WITH CYCLIC DEPENDENCIES"));
    assert!(out.contains("exhaustive search"));
}

#[test]
fn fig3_scenarios_resolve_by_name() {
    let (out, ok) = analyze(&["fig3a"]);
    assert!(ok);
    assert!(out.contains("DEADLOCK-FREE WITH CYCLIC DEPENDENCIES"));
    assert!(out.contains("Theorem 5: all eight conditions hold"));

    let (out, ok) = analyze(&["fig3e"]);
    assert!(ok);
    assert!(out.contains("DEADLOCKABLE"));
    assert!(out.contains("conditions [7] fail"));
}

#[test]
fn bad_usage_exits_nonzero() {
    let (_, ok) = analyze(&["nonsense"]);
    assert!(!ok);
    let (_, ok) = analyze(&[]);
    assert!(!ok);
    let (_, ok) = analyze(&["mesh", "3"]);
    assert!(!ok);
}
