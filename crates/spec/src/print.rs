//! The `to_spec` pretty-printer.
//!
//! The printer's output **is** the canonical form of a spec: one fixed
//! section order, one fixed key order inside each section, two-space
//! indentation, defaults elided. Because the parser discards comments,
//! whitespace, and key order, `print(parse(text))` maps every
//! formatting of a spec to the same bytes — and the content hash
//! ([`crate::canon`]) is defined over exactly those bytes.
//!
//! The inverse guarantee, `parse(print(ast)) == ast`, holds for every
//! AST the parser can produce (spans are ignored by AST equality) and
//! is enforced by proptests in the workspace test suite.

use crate::ast::*;

/// Render a spec in canonical `wormspec/1` form.
pub fn to_spec(spec: &Spec) -> String {
    let mut out = String::from("wormspec/1\n");
    print_topology(&mut out, &spec.topology);
    print_routing(&mut out, &spec.routing);
    if let Some(t) = &spec.traffic {
        print_traffic(&mut out, t);
    }
    if let Some(f) = &spec.faults {
        print_faults(&mut out, f);
    }
    if let Some(v) = &spec.verify {
        print_verify(&mut out, v);
    }
    out
}

/// Quote a string with the lexer's escape set.
fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

fn quantity(q: &Quantity) -> String {
    format!("{} {}", q.value, q.unit.keyword())
}

fn int_list(items: &[u64]) -> String {
    let body: Vec<String> = items.iter().map(|n| n.to_string()).collect();
    format!("[{}]", body.join(", "))
}

fn channel_list(items: &[u64]) -> String {
    let body: Vec<String> = items.iter().map(|n| format!("c{n}")).collect();
    format!("[{}]", body.join(", "))
}

fn print_topology(out: &mut String, t: &Topology) {
    out.push_str("topology {\n");
    out.push_str(&format!("  kind = {}\n", t.kind.value.keyword()));
    if let Some(d) = &t.dims {
        out.push_str(&format!("  dims = {}\n", int_list(&d.value)));
    }
    if let Some(v) = &t.vcs {
        out.push_str(&format!("  vcs = {}\n", quantity(&v.value)));
    }
    if let Some(n) = &t.nodes {
        out.push_str(&format!("  nodes = {}\n", n.value));
    }
    if let Some(d) = &t.direction {
        out.push_str(&format!("  direction = {}\n", d.value.keyword()));
    }
    if let Some(g) = &t.groups {
        out.push_str(&format!("  groups = {}\n", g.value));
    }
    if let Some(r) = &t.routers {
        out.push_str(&format!("  routers = {}\n", r.value));
    }
    if let Some(l) = &t.local_lanes {
        out.push_str(&format!("  local_lanes = {}\n", int_list(&l.value)));
    }
    if let Some(g) = &t.global_lanes {
        out.push_str(&format!("  global_lanes = {}\n", int_list(&g.value)));
    }
    if let Some(v) = &t.valiant {
        out.push_str(&format!("  valiant = {}\n", v.value));
    }
    if let Some(k) = &t.k {
        out.push_str(&format!("  k = {}\n", k.value));
    }
    if let Some(d) = &t.dim {
        out.push_str(&format!("  dim = {}\n", d.value));
    }
    for decl in &t.decls {
        match decl {
            Decl::Node(n) => {
                out.push_str(&format!("  node {}\n", quoted(&n.name.value)));
            }
            Decl::Channel(c) => {
                out.push_str(&format!(
                    "  channel {} -> {}",
                    quoted(&c.src.value),
                    quoted(&c.dst.value)
                ));
                // Defaults (lane 0, cap 1 flits) are elided: written and
                // omitted defaults already parse to the same AST, so the
                // canonical form is the short one.
                if c.lane.value != 0 {
                    out.push_str(&format!(" lane {}", c.lane.value));
                }
                if c.cap.value != Quantity::new(1, Unit::Flits) {
                    out.push_str(&format!(" cap {}", quantity(&c.cap.value)));
                }
                if let Some(l) = &c.label {
                    out.push_str(&format!(" label {}", quoted(&l.value)));
                }
                out.push('\n');
            }
        }
    }
    out.push_str("}\n");
}

fn print_routing(out: &mut String, r: &Routing) {
    out.push_str("routing {\n");
    out.push_str(&format!("  engine = {}\n", r.engine.value));
    for p in &r.paths {
        out.push_str(&format!(
            "  path {} -> {} = {}\n",
            quoted(&p.src.value),
            quoted(&p.dst.value),
            channel_list(&p.channels.value)
        ));
    }
    out.push_str("}\n");
}

fn print_traffic(out: &mut String, t: &Traffic) {
    out.push_str("traffic {\n");
    out.push_str(&format!("  pattern = {}\n", t.pattern.value.keyword()));
    if let Some(r) = &t.rate {
        out.push_str(&format!("  rate = {}\n", r.value.0));
    }
    if let Some(h) = &t.horizon {
        out.push_str(&format!("  horizon = {}\n", quantity(&h.value)));
    }
    if let Some(l) = &t.length {
        out.push_str(&format!("  length = {}\n", quantity(&l.value)));
    }
    if let Some(m) = &t.max_length {
        out.push_str(&format!("  max_length = {}\n", quantity(&m.value)));
    }
    if let Some(s) = &t.seed {
        out.push_str(&format!("  seed = {}\n", s.value));
    }
    if let Some(h) = &t.hotspot {
        out.push_str(&format!("  hotspot = {}\n", quoted(&h.value)));
    }
    for m in &t.messages {
        out.push_str(&format!(
            "  message {} -> {} length {}",
            quoted(&m.src.value),
            quoted(&m.dst.value),
            quantity(&m.length.value)
        ));
        if let Some(at) = &m.at {
            out.push_str(&format!(" at {}", quantity(&at.value)));
        }
        out.push('\n');
    }
    for p in &t.pauses {
        out.push_str(&format!(
            "  pause {} period {} offset {}\n",
            quoted(&p.node.value),
            quantity(&p.period.value),
            quantity(&p.offset.value)
        ));
    }
    out.push_str("}\n");
}

fn print_faults(out: &mut String, f: &Faults) {
    out.push_str("faults {\n");
    for e in &f.events {
        match e {
            FaultDecl::Down { channel, at } => {
                out.push_str(&format!(
                    "  down c{} @ {}\n",
                    channel.value,
                    quantity(&at.value)
                ));
            }
            FaultDecl::Up { channel, at } => {
                out.push_str(&format!(
                    "  up c{} @ {}\n",
                    channel.value,
                    quantity(&at.value)
                ));
            }
            FaultDecl::Outage {
                channel,
                from,
                until,
            } => {
                out.push_str(&format!(
                    "  outage c{} @ {}..{} cycles\n",
                    channel.value, from.value, until.value
                ));
            }
            FaultDecl::Stall { node, at, dur } => {
                out.push_str(&format!(
                    "  stall {} @ {} for {}\n",
                    quoted(&node.value),
                    quantity(&at.value),
                    quantity(&dur.value)
                ));
            }
            FaultDecl::Drop { msg, at } => {
                out.push_str(&format!(
                    "  drop m{} @ {}\n",
                    msg.value,
                    quantity(&at.value)
                ));
            }
            FaultDecl::Corrupt { msg, at } => {
                out.push_str(&format!(
                    "  corrupt m{} @ {}\n",
                    msg.value,
                    quantity(&at.value)
                ));
            }
            FaultDecl::Delay { msg, by } => {
                out.push_str(&format!(
                    "  delay m{} by {}\n",
                    msg.value,
                    quantity(&by.value)
                ));
            }
        }
    }
    if let Some(r) = &f.random {
        out.push_str(&format!(
            "  random(seed = {}, outages = {}, stalls = {}, horizon = {})\n",
            r.seed.value,
            r.outages.value,
            r.stalls.value,
            quantity(&r.horizon.value)
        ));
    }
    out.push_str("}\n");
}

fn print_verify(out: &mut String, v: &Verify) {
    out.push_str("verify {\n");
    if let Some(e) = &v.engine {
        out.push_str(&format!("  engine = {}\n", e.value.keyword()));
    }
    if let Some(s) = &v.scc {
        out.push_str(&format!("  scc = {}\n", s.value.keyword()));
    }
    if let Some(n) = &v.max_cycles {
        out.push_str(&format!("  max_cycles = {}\n", n.value));
    }
    if let Some(n) = &v.max_candidates {
        out.push_str(&format!("  max_candidates = {}\n", n.value));
    }
    if let Some(n) = &v.max_states {
        out.push_str(&format!("  max_states = {}\n", n.value));
    }
    if let Some(n) = &v.threads {
        out.push_str(&format!("  threads = {}\n", n.value));
    }
    if let Some(q) = &v.stall_budget {
        out.push_str(&format!("  stall_budget = {}\n", quantity(&q.value)));
    }
    if let Some(b) = &v.model_exact {
        out.push_str(&format!("  model_exact = {}\n", b.value));
    }
    if let Some(b) = &v.deny_warnings {
        out.push_str(&format!("  deny_warnings = {}\n", b.value));
    }
    if let Some(q) = &v.capacity {
        out.push_str(&format!("  capacity = {}\n", quantity(&q.value)));
    }
    if let Some(q) = &v.horizon {
        out.push_str(&format!("  horizon = {}\n", quantity(&q.value)));
    }
    if !v.lint.is_empty() {
        out.push_str("  lint {\n");
        for o in &v.lint {
            out.push_str(&format!(
                "    {} = {}\n",
                o.code.value,
                o.severity.value.keyword()
            ));
        }
        out.push_str("  }\n");
    }
    out.push_str("}\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn print_parse_is_identity_on_a_kitchen_sink_spec() {
        let src = "wormspec/1\n\
             # comment noise\n\
             topology {\n\
               kind = explicit\n\
               node \"A\"   node \"B\"\n\
               channel \"A\" -> \"B\" lane 1 cap 2 flits label \"cs\"\n\
               channel \"B\" -> \"A\" lane 0 cap 1 flits\n\
             }\n\
             routing { engine = table path \"A\" -> \"B\" = [c0] }\n\
             traffic {\n\
               pattern = uniform rate = 0.500 horizon = 100 cycles\n\
               length = 2 flits max_length = 8 flits seed = 7\n\
               message \"A\" -> \"B\" length 3 flits at 1 cycles\n\
               pause \"B\" period 4 cycles offset 1 cycles\n\
             }\n\
             faults {\n\
               down c0 @ 10 cycles\n\
               outage c1 @ 5..9 cycles\n\
               stall \"A\" @ 3 cycles for 2 cycles\n\
               delay m0 by 4 cycles\n\
               random(seed = 9, outages = 1, stalls = 1, horizon = 50 cycles)\n\
             }\n\
             verify {\n\
               engine = full scc = hkmst max_states = 1000\n\
               model_exact = true lint { W101 = allow W004 = deny }\n\
             }\n";
        let ast = parse(src).unwrap();
        let printed = to_spec(&ast);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(reparsed, ast);
        // Printing is idempotent: canonical text reprints byte-identically.
        assert_eq!(to_spec(&reparsed), printed);
    }

    #[test]
    fn defaults_are_elided() {
        let ast = parse(
            "wormspec/1\n\
             topology { kind = explicit node \"A\" node \"B\" channel \"A\" -> \"B\" lane 0 cap 1 flits }\n\
             routing { engine = table }\n",
        )
        .unwrap();
        let printed = to_spec(&ast);
        assert!(printed.contains("  channel \"A\" -> \"B\"\n"), "{printed}");
    }

    #[test]
    fn strings_round_trip_through_escapes() {
        let ast = parse(
            "wormspec/1\n\
             topology { kind = explicit node \"a\\\"b\\\\c\" }\n\
             routing { engine = table }\n",
        )
        .unwrap();
        let printed = to_spec(&ast);
        assert_eq!(parse(&printed).unwrap(), ast);
    }

    #[test]
    fn lint_overrides_print_sorted() {
        let ast = parse(
            "wormspec/1\n\
             topology { kind = mesh dims = [2, 2] }\n\
             routing { engine = dimension_order }\n\
             verify { lint { W207 = deny W003 = allow W101 = warn } }\n",
        )
        .unwrap();
        let printed = to_spec(&ast);
        let w003 = printed.find("W003").unwrap();
        let w101 = printed.find("W101").unwrap();
        let w207 = printed.find("W207").unwrap();
        assert!(w003 < w101 && w101 < w207, "{printed}");
    }
}
