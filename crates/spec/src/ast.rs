//! The typed `wormspec/1` abstract syntax tree.
//!
//! Every leaf is a [`Spanned`] value: the parser records where each
//! value came from so resolution errors in downstream crates can point
//! back into the user's source. Spans are *metadata*: two ASTs that
//! differ only in spans compare equal, which is what the
//! `parse(print(ast)) == ast` round-trip guarantee is stated over.
//!
//! Quantities carry **typed units** ([`Unit`]): durations are
//! `cycles`, message/buffer sizes are `flits`, and virtual-channel
//! counts are `lanes`. The parser rejects a wrong or missing unit at
//! the syntax level, so resolution code never sees a bare number where
//! a duration belongs.

use crate::diag::Span;

/// A value plus the source span it was parsed from.
///
/// Equality and hashing ignore the span: a machine-built AST (all
/// [`Span::dummy`]) compares equal to its parsed pretty-printing.
#[derive(Clone, Copy, Debug, Default)]
pub struct Spanned<T> {
    /// The value.
    pub value: T,
    /// Where it came from (zero for synthesized ASTs).
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Wrap `value` with a span.
    pub fn new(value: T, span: Span) -> Self {
        Spanned { value, span }
    }

    /// Wrap a synthesized value (dummy span).
    pub fn dummy(value: T) -> Self {
        Spanned {
            value,
            span: Span::dummy(),
        }
    }
}

impl<T: PartialEq> PartialEq for Spanned<T> {
    fn eq(&self, other: &Self) -> bool {
        self.value == other.value
    }
}

impl<T: Eq> Eq for Spanned<T> {}

impl<T: std::hash::Hash> std::hash::Hash for Spanned<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.value.hash(state);
    }
}

/// Typed units for quantities.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum Unit {
    /// Simulated router cycles (durations, horizons, timestamps).
    Cycles,
    /// Flits (message lengths, buffer capacities).
    Flits,
    /// Virtual-channel lanes (lane counts).
    Lanes,
}

impl Unit {
    /// The keyword spelled in specs (`cycles`, `flits`, `lanes`).
    pub fn keyword(self) -> &'static str {
        match self {
            Unit::Cycles => "cycles",
            Unit::Flits => "flits",
            Unit::Lanes => "lanes",
        }
    }

    /// Parse a unit keyword.
    pub fn from_keyword(s: &str) -> Option<Unit> {
        match s {
            "cycles" => Some(Unit::Cycles),
            "flits" => Some(Unit::Flits),
            "lanes" => Some(Unit::Lanes),
            _ => None,
        }
    }
}

/// An integer with a typed unit, e.g. `64 flits` or `10 cycles`.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub struct Quantity {
    /// The magnitude.
    pub value: u64,
    /// The unit it was written in.
    pub unit: Unit,
}

impl Quantity {
    /// A quantity.
    pub fn new(value: u64, unit: Unit) -> Self {
        Quantity { value, unit }
    }
}

/// An exact decimal literal (e.g. an injection rate `0.05`).
///
/// Stored as its normalized text — no leading `+`, no trailing
/// fractional zeros — so canonicalization and hashing never go through
/// floating point.
#[derive(Clone, Debug, Eq, PartialEq, Hash)]
pub struct Decimal(pub String);

impl Decimal {
    /// The value as `f64` (resolution-time only; the AST keeps text).
    pub fn to_f64(&self) -> f64 {
        self.0.parse().expect("Decimal holds a valid numeral")
    }
}

/// A parsed `wormspec/1` document.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Spec {
    /// The `topology { ... }` section (required).
    pub topology: Topology,
    /// The `routing { ... }` section (required).
    pub routing: Routing,
    /// The `traffic { ... }` section.
    pub traffic: Option<Traffic>,
    /// The `faults { ... }` section.
    pub faults: Option<Faults>,
    /// The `verify { ... }` section.
    pub verify: Option<Verify>,
}

/// Which family of topology builder the spec names.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash, Default)]
pub enum TopologyKind {
    /// k-ary n-dimensional mesh (`dims`, optional `vcs`).
    #[default]
    Mesh,
    /// Torus with virtual channels (`dims`, `vcs`).
    Torus,
    /// Ring (`nodes`, optional `vcs`, optional `direction`).
    Ring,
    /// Hypercube (`dim`).
    Hypercube,
    /// Dragonfly (`groups`, `routers`, optional lane sets, `valiant`).
    Dragonfly,
    /// k-ary fat-tree (`k`).
    Fattree,
    /// Fully connected graph (`nodes`).
    Complete,
    /// Explicit node/channel declarations.
    Explicit,
}

impl TopologyKind {
    /// The keyword spelled in specs.
    pub fn keyword(self) -> &'static str {
        match self {
            TopologyKind::Mesh => "mesh",
            TopologyKind::Torus => "torus",
            TopologyKind::Ring => "ring",
            TopologyKind::Hypercube => "hypercube",
            TopologyKind::Dragonfly => "dragonfly",
            TopologyKind::Fattree => "fattree",
            TopologyKind::Complete => "complete",
            TopologyKind::Explicit => "explicit",
        }
    }

    /// Parse a kind keyword.
    pub fn from_keyword(s: &str) -> Option<Self> {
        Some(match s {
            "mesh" => TopologyKind::Mesh,
            "torus" => TopologyKind::Torus,
            "ring" => TopologyKind::Ring,
            "hypercube" => TopologyKind::Hypercube,
            "dragonfly" => TopologyKind::Dragonfly,
            "fattree" => TopologyKind::Fattree,
            "complete" => TopologyKind::Complete,
            "explicit" => TopologyKind::Explicit,
            _ => return None,
        })
    }
}

/// Ring link direction.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum RingDirection {
    /// Clockwise-only channels.
    Unidirectional,
    /// A channel pair per physical link.
    Bidirectional,
}

impl RingDirection {
    /// The keyword spelled in specs.
    pub fn keyword(self) -> &'static str {
        match self {
            RingDirection::Unidirectional => "unidirectional",
            RingDirection::Bidirectional => "bidirectional",
        }
    }
}

/// The `topology` section.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Topology {
    /// `kind = ...` (required).
    pub kind: Spanned<TopologyKind>,
    /// `dims = [..]` — mesh/torus extents.
    pub dims: Option<Spanned<Vec<u64>>>,
    /// `vcs = N lanes` — virtual channels per link.
    pub vcs: Option<Spanned<Quantity>>,
    /// `nodes = N` — ring/complete size.
    pub nodes: Option<Spanned<u64>>,
    /// `direction = ...` — ring orientation.
    pub direction: Option<Spanned<RingDirection>>,
    /// `groups = N` — dragonfly group count.
    pub groups: Option<Spanned<u64>>,
    /// `routers = N` — dragonfly routers per group.
    pub routers: Option<Spanned<u64>>,
    /// `local_lanes = [..]` — dragonfly local lane set.
    pub local_lanes: Option<Spanned<Vec<u64>>>,
    /// `global_lanes = [..]` — dragonfly global lane set.
    pub global_lanes: Option<Spanned<Vec<u64>>>,
    /// `valiant = true` — dragonfly Valiant lane sets.
    pub valiant: Option<Spanned<bool>>,
    /// `k = N` — fat-tree port count.
    pub k: Option<Spanned<u64>>,
    /// `dim = N` — hypercube dimension.
    pub dim: Option<Spanned<u64>>,
    /// Explicit `node`/`channel` declarations, in order (order is
    /// semantic: it assigns the dense node and channel ids).
    pub decls: Vec<Decl>,
}

/// One explicit-topology declaration.
#[derive(Clone, Debug, PartialEq)]
pub enum Decl {
    /// `node "NAME"`
    Node(NodeDecl),
    /// `channel "SRC" -> "DST" [lane N] [cap N flits] [label "L"]`
    Channel(ChannelDecl),
}

/// An explicit node declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeDecl {
    /// The node's unique name.
    pub name: Spanned<String>,
}

/// An explicit channel declaration. The parser fills `lane`/`cap`
/// defaults (lane 0, `1 flits`) so the AST — and therefore the
/// canonical hash — does not distinguish written defaults from omitted
/// ones.
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelDecl {
    /// Transmitting node name.
    pub src: Spanned<String>,
    /// Receiving node name.
    pub dst: Spanned<String>,
    /// Virtual-channel lane index (default 0).
    pub lane: Spanned<u64>,
    /// Flit-queue capacity (default `1 flits`).
    pub cap: Spanned<Quantity>,
    /// Optional label (the paper figures' `cs` etc.).
    pub label: Option<Spanned<String>>,
}

/// The `routing` section.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Routing {
    /// `engine = ...` — a named engine from `wormroute::algorithms`,
    /// or `table` for explicit paths (required).
    pub engine: Spanned<String>,
    /// Explicit `path` declarations (`engine = table`).
    pub paths: Vec<PathDecl>,
}

/// One explicit routing path: `path "SRC" -> "DST" = [c0, c4, c7]`.
#[derive(Clone, Debug, PartialEq)]
pub struct PathDecl {
    /// Source node name.
    pub src: Spanned<String>,
    /// Destination node name.
    pub dst: Spanned<String>,
    /// Channel ids (`cN` references) in hop order.
    pub channels: Spanned<Vec<u64>>,
}

/// Synthetic traffic patterns.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum PatternKind {
    /// Bernoulli uniform-random injection (`rate`, `horizon`,
    /// `length`, `seed`).
    Uniform,
    /// Transpose permutation on a square 2-D mesh.
    Transpose,
    /// Bit-complement permutation on a 2-D mesh.
    BitComplement,
    /// All nodes send to `hotspot`.
    Hotspot,
    /// Only the explicit `message` declarations.
    Explicit,
}

impl PatternKind {
    /// The keyword spelled in specs.
    pub fn keyword(self) -> &'static str {
        match self {
            PatternKind::Uniform => "uniform",
            PatternKind::Transpose => "transpose",
            PatternKind::BitComplement => "bit_complement",
            PatternKind::Hotspot => "hotspot",
            PatternKind::Explicit => "explicit",
        }
    }

    /// Parse a pattern keyword.
    pub fn from_keyword(s: &str) -> Option<Self> {
        Some(match s {
            "uniform" => PatternKind::Uniform,
            "transpose" => PatternKind::Transpose,
            "bit_complement" => PatternKind::BitComplement,
            "hotspot" => PatternKind::Hotspot,
            "explicit" => PatternKind::Explicit,
            _ => return None,
        })
    }
}

/// The `traffic` section.
#[derive(Clone, Debug, PartialEq)]
pub struct Traffic {
    /// `pattern = ...` (required).
    pub pattern: Spanned<PatternKind>,
    /// `rate = 0.05` — per-node per-cycle injection probability.
    pub rate: Option<Spanned<Decimal>>,
    /// `horizon = N cycles` — injection window for `uniform`.
    pub horizon: Option<Spanned<Quantity>>,
    /// `length = N flits` — message length (patterns).
    pub length: Option<Spanned<Quantity>>,
    /// `max_length = N flits` — upper end of the uniform length range.
    pub max_length: Option<Spanned<Quantity>>,
    /// `seed = N` — RNG seed for `uniform`.
    pub seed: Option<Spanned<u64>>,
    /// `hotspot = "NODE"` — the hot node.
    pub hotspot: Option<Spanned<String>>,
    /// Explicit `message` declarations (appended after the pattern's).
    pub messages: Vec<MessageDecl>,
    /// `pause` declarations (per-router clock-skew model).
    pub pauses: Vec<PauseDecl>,
}

impl Default for Traffic {
    fn default() -> Self {
        Traffic {
            pattern: Spanned::dummy(PatternKind::Explicit),
            rate: None,
            horizon: None,
            length: None,
            max_length: None,
            seed: None,
            hotspot: None,
            messages: Vec::new(),
            pauses: Vec::new(),
        }
    }
}

/// One explicit message:
/// `message "SRC" -> "DST" length N flits [at N cycles]`.
#[derive(Clone, Debug, PartialEq)]
pub struct MessageDecl {
    /// Source node name.
    pub src: Spanned<String>,
    /// Destination node name.
    pub dst: Spanned<String>,
    /// Length in flits.
    pub length: Spanned<Quantity>,
    /// Earliest injection cycle (default 0).
    pub at: Option<Spanned<Quantity>>,
}

/// One clock-skew pause:
/// `pause "NODE" period N cycles offset N cycles`.
#[derive(Clone, Debug, PartialEq)]
pub struct PauseDecl {
    /// The paused router.
    pub node: Spanned<String>,
    /// Pause period in cycles.
    pub period: Spanned<Quantity>,
    /// Phase offset in cycles.
    pub offset: Spanned<Quantity>,
}

/// The `faults` section.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Faults {
    /// Deterministic events, in declaration order.
    pub events: Vec<FaultDecl>,
    /// `random(seed = N, outages = N, stalls = N, horizon = N cycles)`.
    pub random: Option<RandomFaults>,
}

/// One deterministic fault event (mirrors `wormfault::FaultEvent`).
#[derive(Clone, Debug, PartialEq)]
pub enum FaultDecl {
    /// `down cN @ T cycles`
    Down {
        /// Channel id.
        channel: Spanned<u64>,
        /// Failure time.
        at: Spanned<Quantity>,
    },
    /// `up cN @ T cycles`
    Up {
        /// Channel id.
        channel: Spanned<u64>,
        /// Repair time.
        at: Spanned<Quantity>,
    },
    /// `outage cN @ A..B cycles` (the unit covers the whole range).
    Outage {
        /// Channel id.
        channel: Spanned<u64>,
        /// Outage start (cycles).
        from: Spanned<u64>,
        /// Outage end, exclusive (cycles).
        until: Spanned<u64>,
    },
    /// `stall "NODE" @ T cycles for D cycles`
    Stall {
        /// The stalled router.
        node: Spanned<String>,
        /// Stall start.
        at: Spanned<Quantity>,
        /// Stall duration.
        dur: Spanned<Quantity>,
    },
    /// `drop mN @ T cycles`
    Drop {
        /// Message index into the resolved traffic list.
        msg: Spanned<u64>,
        /// Drop time.
        at: Spanned<Quantity>,
    },
    /// `corrupt mN @ T cycles`
    Corrupt {
        /// Message index into the resolved traffic list.
        msg: Spanned<u64>,
        /// Corruption time.
        at: Spanned<Quantity>,
    },
    /// `delay mN by D cycles`
    Delay {
        /// Message index into the resolved traffic list.
        msg: Spanned<u64>,
        /// Injection delay.
        by: Spanned<Quantity>,
    },
}

/// Seeded random fault generation
/// (mirrors `wormfault::FaultPlan::random`).
#[derive(Clone, Debug, PartialEq)]
pub struct RandomFaults {
    /// RNG seed.
    pub seed: Spanned<u64>,
    /// Number of channel outages.
    pub outages: Spanned<u64>,
    /// Number of router stalls.
    pub stalls: Spanned<u64>,
    /// Event horizon in cycles.
    pub horizon: Spanned<Quantity>,
}

/// Which verification pipeline the service runs for this spec.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash, Default)]
pub enum VerifyEngine {
    /// Classifier + lint registry (and fault re-verification when a
    /// fault plan is present). The default.
    #[default]
    Static,
    /// `static` plus exhaustive reachability search over the traffic's
    /// message set.
    Search,
    /// `static` plus a flit-level simulation run of the traffic under
    /// the fault plan.
    Sim,
    /// Everything applicable.
    Full,
}

impl VerifyEngine {
    /// The keyword spelled in specs.
    pub fn keyword(self) -> &'static str {
        match self {
            VerifyEngine::Static => "static",
            VerifyEngine::Search => "search",
            VerifyEngine::Sim => "sim",
            VerifyEngine::Full => "full",
        }
    }

    /// Parse an engine keyword.
    pub fn from_keyword(s: &str) -> Option<Self> {
        Some(match s {
            "static" => VerifyEngine::Static,
            "search" => VerifyEngine::Search,
            "sim" => VerifyEngine::Sim,
            "full" => VerifyEngine::Full,
            _ => return None,
        })
    }
}

/// Incremental-SCC engine selection.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum SccName {
    /// Haeupler–Kavitha–Mathew–Sen–Tarjan balanced two-way engine.
    Hkmst,
    /// Pearce–Kelly online topological ordering.
    PearceKelly,
}

impl SccName {
    /// The keyword spelled in specs.
    pub fn keyword(self) -> &'static str {
        match self {
            SccName::Hkmst => "hkmst",
            SccName::PearceKelly => "pearce_kelly",
        }
    }
}

/// Lint severity names for `verify.lint` overrides.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum SeverityName {
    /// Informational.
    Allow,
    /// Worth attention.
    Warn,
    /// Spec error.
    Deny,
}

impl SeverityName {
    /// The keyword spelled in specs.
    pub fn keyword(self) -> &'static str {
        match self {
            SeverityName::Allow => "allow",
            SeverityName::Warn => "warn",
            SeverityName::Deny => "deny",
        }
    }
}

/// One lint severity override: `W101 = allow`.
#[derive(Clone, Debug, PartialEq)]
pub struct LintOverride {
    /// The `W`-code.
    pub code: Spanned<String>,
    /// The effective severity.
    pub severity: Spanned<SeverityName>,
}

/// The `verify` section: engine kinds, budgets, severity overrides.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Verify {
    /// `engine = static|search|sim|full` (default `static`).
    pub engine: Option<Spanned<VerifyEngine>>,
    /// `scc = hkmst|pearce_kelly` (default `hkmst`).
    pub scc: Option<Spanned<SccName>>,
    /// `max_cycles = N` — elementary-cycle enumeration budget.
    pub max_cycles: Option<Spanned<u64>>,
    /// `max_candidates = N` — candidate enumeration budget per cycle.
    pub max_candidates: Option<Spanned<u64>>,
    /// `max_states = N` — search state budget.
    pub max_states: Option<Spanned<u64>>,
    /// `threads = N` — search worker threads.
    pub threads: Option<Spanned<u64>>,
    /// `stall_budget = N cycles` — adversarial stalls for the search.
    pub stall_budget: Option<Spanned<Quantity>>,
    /// `model_exact = true` — re-verify theorem shortcuts by search.
    pub model_exact: Option<Spanned<bool>>,
    /// `deny_warnings = true` — promote lint warnings to errors.
    pub deny_warnings: Option<Spanned<bool>>,
    /// `capacity = N flits` — channel-buffer override for search/sim.
    pub capacity: Option<Spanned<Quantity>>,
    /// `horizon = N cycles` — simulation run budget.
    pub horizon: Option<Spanned<Quantity>>,
    /// `lint { WNNN = severity, ... }` overrides.
    pub lint: Vec<LintOverride>,
}
