//! Recursive-descent parser for `wormspec/1`.
//!
//! The grammar (EBNF in `docs/SPEC.md`) is LL(1) over the token stream
//! of [`crate::lexer`]: a version header, then named sections in any
//! order. Section keys are typed here — quantities must carry the
//! right unit, enumerations must name a known keyword — so resolution
//! code downstream starts from a well-typed AST.

use crate::ast::*;
use crate::diag::{codes, Span, SpecError};
use crate::lexer::{lex, Tok, Token};

/// Parse a `wormspec/1` document.
pub fn parse(source: &str) -> Result<Spec, SpecError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.spec()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, code: &'static str, msg: impl Into<String>, span: Span) -> SpecError {
        SpecError::new(code, msg, span)
    }

    fn unexpected(&self, expected: &str) -> SpecError {
        let t = self.peek();
        self.error(
            codes::UNEXPECTED,
            format!("expected {expected}, found {}", t.tok.describe()),
            t.span,
        )
    }

    fn expect_tok(&mut self, tok: Tok, expected: &str) -> Result<Span, SpecError> {
        if self.peek().tok == tok {
            Ok(self.next().span)
        } else {
            Err(self.unexpected(expected))
        }
    }

    /// Any identifier.
    fn ident(&mut self, expected: &str) -> Result<Spanned<String>, SpecError> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                let span = self.next().span;
                Ok(Spanned::new(s, span))
            }
            _ => Err(self.unexpected(expected)),
        }
    }

    /// A specific keyword identifier.
    fn keyword(&mut self, kw: &str) -> Result<Span, SpecError> {
        match &self.peek().tok {
            Tok::Ident(s) if s == kw => Ok(self.next().span),
            _ => Err(self.unexpected(&format!("`{kw}`"))),
        }
    }

    fn string(&mut self, expected: &str) -> Result<Spanned<String>, SpecError> {
        match &self.peek().tok {
            Tok::Str(s) => {
                let s = s.clone();
                let span = self.next().span;
                Ok(Spanned::new(s, span))
            }
            _ => Err(self.unexpected(expected)),
        }
    }

    fn int(&mut self, expected: &str) -> Result<Spanned<u64>, SpecError> {
        match self.peek().tok {
            Tok::Int(n) => {
                let span = self.next().span;
                Ok(Spanned::new(n, span))
            }
            _ => Err(self.unexpected(expected)),
        }
    }

    /// `N <unit>` with the unit *required* to match.
    fn quantity(&mut self, unit: Unit) -> Result<Spanned<Quantity>, SpecError> {
        let n = self.int(&format!("a quantity in {}", unit.keyword()))?;
        match &self.peek().tok {
            Tok::Ident(s) => {
                if let Some(found) = Unit::from_keyword(s) {
                    let uspan = self.next().span;
                    if found != unit {
                        return Err(self.error(
                            codes::UNIT,
                            format!(
                                "wrong unit: expected `{}`, found `{}`",
                                unit.keyword(),
                                found.keyword()
                            ),
                            uspan,
                        ));
                    }
                    Ok(Spanned::new(Quantity::new(n.value, unit), n.span.to(uspan)))
                } else {
                    Err(self.error(
                        codes::UNIT,
                        format!(
                            "missing unit: this quantity is measured in `{}`",
                            unit.keyword()
                        ),
                        n.span,
                    ))
                }
            }
            _ => Err(self.error(
                codes::UNIT,
                format!(
                    "missing unit: this quantity is measured in `{}`",
                    unit.keyword()
                ),
                n.span,
            )),
        }
    }

    fn bool_value(&mut self) -> Result<Spanned<bool>, SpecError> {
        let id = self.ident("`true` or `false`")?;
        match id.value.as_str() {
            "true" => Ok(Spanned::new(true, id.span)),
            "false" => Ok(Spanned::new(false, id.span)),
            other => Err(self.error(
                codes::ENUM,
                format!("expected `true` or `false`, found `{other}`"),
                id.span,
            )),
        }
    }

    /// `[1, 2, 3]`
    fn int_list(&mut self) -> Result<Spanned<Vec<u64>>, SpecError> {
        let lo = self.expect_tok(Tok::LBracket, "`[`")?;
        let mut items = Vec::new();
        loop {
            match self.peek().tok {
                Tok::RBracket => break,
                Tok::Int(n) => {
                    self.next();
                    items.push(n);
                    if self.peek().tok == Tok::Comma {
                        self.next();
                    }
                }
                _ => return Err(self.unexpected("an integer or `]`")),
            }
        }
        let hi = self.next().span; // RBracket
        Ok(Spanned::new(items, lo.to(hi)))
    }

    /// A prefixed reference like `c3` (channels) or `m0` (messages).
    fn reference(&mut self, prefix: char, what: &str) -> Result<Spanned<u64>, SpecError> {
        let id = self.ident(&format!("a {what} reference like `{prefix}0`"))?;
        let rest = id.value.strip_prefix(prefix).ok_or_else(|| {
            self.error(
                codes::REF,
                format!(
                    "expected a {what} reference like `{prefix}0`, found `{}`",
                    id.value
                ),
                id.span,
            )
        })?;
        let n: u64 = rest.parse().map_err(|_| {
            self.error(
                codes::REF,
                format!("malformed {what} reference `{}`", id.value),
                id.span,
            )
        })?;
        Ok(Spanned::new(n, id.span))
    }

    /// `[c0, c4, c7]`
    fn channel_list(&mut self) -> Result<Spanned<Vec<u64>>, SpecError> {
        let lo = self.expect_tok(Tok::LBracket, "`[`")?;
        let mut items = Vec::new();
        loop {
            match &self.peek().tok {
                Tok::RBracket => break,
                Tok::Ident(_) => {
                    items.push(self.reference('c', "channel")?.value);
                    if self.peek().tok == Tok::Comma {
                        self.next();
                    }
                }
                _ => return Err(self.unexpected("a channel reference or `]`")),
            }
        }
        let hi = self.next().span; // RBracket
        Ok(Spanned::new(items, lo.to(hi)))
    }

    fn spec(&mut self) -> Result<Spec, SpecError> {
        // Header: `wormspec/1`.
        self.keyword("wormspec").map_err(|e| {
            SpecError::new(codes::VERSION, "a spec starts with `wormspec/1`", e.span)
        })?;
        self.expect_tok(Tok::Slash, "`/` in the `wormspec/1` header")?;
        let version = self.int("the version number in `wormspec/1`")?;
        if version.value != 1 {
            return Err(self.error(
                codes::VERSION,
                format!(
                    "unsupported spec version {} (this reader speaks wormspec/1)",
                    version.value
                ),
                version.span,
            ));
        }

        let mut topology: Option<Topology> = None;
        let mut routing: Option<Routing> = None;
        let mut traffic: Option<Traffic> = None;
        let mut faults: Option<Faults> = None;
        let mut verify: Option<Verify> = None;

        while self.peek().tok != Tok::Eof {
            let name = self.ident("a section name")?;
            self.expect_tok(Tok::LBrace, "`{` opening the section")?;
            macro_rules! fill {
                ($slot:ident, $parse:expr) => {{
                    if $slot.is_some() {
                        return Err(self.error(
                            codes::DUPLICATE_SECTION,
                            format!("section `{}` appears twice", name.value),
                            name.span,
                        ));
                    }
                    $slot = Some($parse?);
                }};
            }
            match name.value.as_str() {
                "topology" => fill!(topology, self.topology()),
                "routing" => fill!(routing, self.routing()),
                "traffic" => fill!(traffic, self.traffic()),
                "faults" => fill!(faults, self.faults()),
                "verify" => fill!(verify, self.verify()),
                other => {
                    return Err(self.error(
                        codes::UNKNOWN_SECTION,
                        format!(
                            "unknown section `{other}` (sections: topology, routing, traffic, faults, verify)"
                        ),
                        name.span,
                    ));
                }
            }
        }

        let eof = self.peek().span;
        let topology = topology.ok_or_else(|| {
            SpecError::new(codes::MISSING, "missing required section `topology`", eof)
        })?;
        let routing = routing.ok_or_else(|| {
            SpecError::new(codes::MISSING, "missing required section `routing`", eof)
        })?;
        Ok(Spec {
            topology,
            routing,
            traffic,
            faults,
            verify,
        })
    }

    fn topology(&mut self) -> Result<Topology, SpecError> {
        let mut t = Topology::default();
        let mut kind: Option<Spanned<TopologyKind>> = None;
        loop {
            let key = match &self.peek().tok {
                Tok::RBrace => {
                    self.next();
                    break;
                }
                Tok::Ident(_) => self.ident("a topology key or declaration")?,
                _ => return Err(self.unexpected("a topology key, `node`, `channel`, or `}`")),
            };
            match key.value.as_str() {
                "node" => {
                    let name = self.string("the node name as a string")?;
                    t.decls.push(Decl::Node(NodeDecl { name }));
                }
                "channel" => {
                    let src = self.string("the source node name")?;
                    self.expect_tok(Tok::Arrow, "`->` between channel endpoints")?;
                    let dst = self.string("the destination node name")?;
                    let mut lane = Spanned::new(0, src.span);
                    let mut cap = Spanned::new(Quantity::new(1, Unit::Flits), src.span);
                    let mut label = None;
                    // Optional modifiers, fixed order: lane, cap, label.
                    if matches!(&self.peek().tok, Tok::Ident(s) if s == "lane") {
                        self.next();
                        lane = self.int("the lane index")?;
                    }
                    if matches!(&self.peek().tok, Tok::Ident(s) if s == "cap") {
                        self.next();
                        cap = self.quantity(Unit::Flits)?;
                    }
                    if matches!(&self.peek().tok, Tok::Ident(s) if s == "label") {
                        self.next();
                        label = Some(self.string("the channel label as a string")?);
                    }
                    t.decls.push(Decl::Channel(ChannelDecl {
                        src,
                        dst,
                        lane,
                        cap,
                        label,
                    }));
                }
                _ => {
                    self.expect_tok(Tok::Eq, "`=` after the key")?;
                    macro_rules! set {
                        ($slot:expr, $value:expr) => {{
                            if $slot.is_some() {
                                return Err(self.error(
                                    codes::DUPLICATE_KEY,
                                    format!("key `{}` assigned twice", key.value),
                                    key.span,
                                ));
                            }
                            $slot = Some($value?);
                        }};
                    }
                    match key.value.as_str() {
                        "kind" => {
                            let id = self.ident("a topology kind")?;
                            let k = TopologyKind::from_keyword(&id.value).ok_or_else(|| {
                                self.error(
                                    codes::ENUM,
                                    format!("unknown topology kind `{}`", id.value),
                                    id.span,
                                )
                            })?;
                            if kind.is_some() {
                                return Err(self.error(
                                    codes::DUPLICATE_KEY,
                                    "key `kind` assigned twice",
                                    key.span,
                                ));
                            }
                            kind = Some(Spanned::new(k, id.span));
                        }
                        "dims" => set!(t.dims, self.int_list()),
                        "vcs" => set!(t.vcs, self.quantity(Unit::Lanes)),
                        "nodes" => set!(t.nodes, self.int("the node count")),
                        "direction" => {
                            let id = self.ident("`unidirectional` or `bidirectional`")?;
                            let d = match id.value.as_str() {
                                "unidirectional" => RingDirection::Unidirectional,
                                "bidirectional" => RingDirection::Bidirectional,
                                other => {
                                    return Err(self.error(
                                        codes::ENUM,
                                        format!("unknown ring direction `{other}`"),
                                        id.span,
                                    ));
                                }
                            };
                            if t.direction.is_some() {
                                return Err(self.error(
                                    codes::DUPLICATE_KEY,
                                    "key `direction` assigned twice",
                                    key.span,
                                ));
                            }
                            t.direction = Some(Spanned::new(d, id.span));
                        }
                        "groups" => set!(t.groups, self.int("the group count")),
                        "routers" => set!(t.routers, self.int("the routers-per-group count")),
                        "local_lanes" => set!(t.local_lanes, self.int_list()),
                        "global_lanes" => set!(t.global_lanes, self.int_list()),
                        "valiant" => set!(t.valiant, self.bool_value()),
                        "k" => set!(t.k, self.int("the fat-tree arity")),
                        "dim" => set!(t.dim, self.int("the hypercube dimension")),
                        other => {
                            return Err(self.error(
                                codes::UNKNOWN_KEY,
                                format!("unknown topology key `{other}`"),
                                key.span,
                            ));
                        }
                    }
                }
            }
        }
        t.kind = kind.ok_or_else(|| {
            SpecError::new(
                codes::MISSING,
                "the topology section needs `kind = ...`",
                self.peek().span,
            )
        })?;
        Ok(t)
    }

    fn routing(&mut self) -> Result<Routing, SpecError> {
        let mut engine: Option<Spanned<String>> = None;
        let mut paths = Vec::new();
        loop {
            let key = match &self.peek().tok {
                Tok::RBrace => {
                    self.next();
                    break;
                }
                Tok::Ident(_) => self.ident("a routing key")?,
                _ => return Err(self.unexpected("`engine`, `path`, or `}`")),
            };
            match key.value.as_str() {
                "engine" => {
                    self.expect_tok(Tok::Eq, "`=` after `engine`")?;
                    let id = self.ident("a routing engine name")?;
                    if engine.is_some() {
                        return Err(self.error(
                            codes::DUPLICATE_KEY,
                            "key `engine` assigned twice",
                            key.span,
                        ));
                    }
                    engine = Some(id);
                }
                "path" => {
                    let src = self.string("the source node name")?;
                    self.expect_tok(Tok::Arrow, "`->` between path endpoints")?;
                    let dst = self.string("the destination node name")?;
                    self.expect_tok(Tok::Eq, "`=` before the channel list")?;
                    let channels = self.channel_list()?;
                    paths.push(PathDecl { src, dst, channels });
                }
                other => {
                    return Err(self.error(
                        codes::UNKNOWN_KEY,
                        format!("unknown routing key `{other}`"),
                        key.span,
                    ));
                }
            }
        }
        let engine = engine.ok_or_else(|| {
            SpecError::new(
                codes::MISSING,
                "the routing section needs `engine = ...` (use `engine = table` for explicit paths)",
                self.peek().span,
            )
        })?;
        Ok(Routing { engine, paths })
    }

    fn traffic(&mut self) -> Result<Traffic, SpecError> {
        let mut t = Traffic::default();
        let mut pattern: Option<Spanned<PatternKind>> = None;
        loop {
            let key = match &self.peek().tok {
                Tok::RBrace => {
                    self.next();
                    break;
                }
                Tok::Ident(_) => self.ident("a traffic key or declaration")?,
                _ => return Err(self.unexpected("a traffic key, `message`, `pause`, or `}`")),
            };
            macro_rules! set {
                ($slot:expr, $value:expr) => {{
                    if $slot.is_some() {
                        return Err(self.error(
                            codes::DUPLICATE_KEY,
                            format!("key `{}` assigned twice", key.value),
                            key.span,
                        ));
                    }
                    $slot = Some($value?);
                }};
            }
            match key.value.as_str() {
                "message" => {
                    let src = self.string("the source node name")?;
                    self.expect_tok(Tok::Arrow, "`->` between message endpoints")?;
                    let dst = self.string("the destination node name")?;
                    self.keyword("length")?;
                    let length = self.quantity(Unit::Flits)?;
                    let at = if matches!(&self.peek().tok, Tok::Ident(s) if s == "at") {
                        self.next();
                        Some(self.quantity(Unit::Cycles)?)
                    } else {
                        None
                    };
                    t.messages.push(MessageDecl {
                        src,
                        dst,
                        length,
                        at,
                    });
                }
                "pause" => {
                    let node = self.string("the paused node name")?;
                    self.keyword("period")?;
                    let period = self.quantity(Unit::Cycles)?;
                    self.keyword("offset")?;
                    let offset = self.quantity(Unit::Cycles)?;
                    t.pauses.push(PauseDecl {
                        node,
                        period,
                        offset,
                    });
                }
                "pattern" => {
                    self.expect_tok(Tok::Eq, "`=` after `pattern`")?;
                    let id = self.ident("a traffic pattern")?;
                    let p = PatternKind::from_keyword(&id.value).ok_or_else(|| {
                        self.error(
                            codes::ENUM,
                            format!("unknown traffic pattern `{}`", id.value),
                            id.span,
                        )
                    })?;
                    if pattern.is_some() {
                        return Err(self.error(
                            codes::DUPLICATE_KEY,
                            "key `pattern` assigned twice",
                            key.span,
                        ));
                    }
                    pattern = Some(Spanned::new(p, id.span));
                }
                "rate" => {
                    self.expect_tok(Tok::Eq, "`=` after `rate`")?;
                    let d = match &self.peek().tok {
                        Tok::Decimal(text) => {
                            let text = text.clone();
                            let span = self.next().span;
                            Spanned::new(Decimal(text), span)
                        }
                        Tok::Int(n) => {
                            let n = *n;
                            let span = self.next().span;
                            Spanned::new(Decimal(n.to_string()), span)
                        }
                        _ => return Err(self.unexpected("an injection rate like `0.05`")),
                    };
                    if t.rate.is_some() {
                        return Err(self.error(
                            codes::DUPLICATE_KEY,
                            "key `rate` assigned twice",
                            key.span,
                        ));
                    }
                    t.rate = Some(d);
                }
                "horizon" => {
                    self.expect_tok(Tok::Eq, "`=` after `horizon`")?;
                    set!(t.horizon, self.quantity(Unit::Cycles));
                }
                "length" => {
                    self.expect_tok(Tok::Eq, "`=` after `length`")?;
                    set!(t.length, self.quantity(Unit::Flits));
                }
                "max_length" => {
                    self.expect_tok(Tok::Eq, "`=` after `max_length`")?;
                    set!(t.max_length, self.quantity(Unit::Flits));
                }
                "seed" => {
                    self.expect_tok(Tok::Eq, "`=` after `seed`")?;
                    set!(t.seed, self.int("the RNG seed"));
                }
                "hotspot" => {
                    self.expect_tok(Tok::Eq, "`=` after `hotspot`")?;
                    set!(t.hotspot, self.string("the hot node name"));
                }
                other => {
                    return Err(self.error(
                        codes::UNKNOWN_KEY,
                        format!("unknown traffic key `{other}`"),
                        key.span,
                    ));
                }
            }
        }
        t.pattern = pattern.ok_or_else(|| {
            SpecError::new(
                codes::MISSING,
                "the traffic section needs `pattern = ...` (use `pattern = explicit` for message lists)",
                self.peek().span,
            )
        })?;
        Ok(t)
    }

    fn faults(&mut self) -> Result<Faults, SpecError> {
        let mut f = Faults::default();
        loop {
            let key = match &self.peek().tok {
                Tok::RBrace => {
                    self.next();
                    break;
                }
                Tok::Ident(_) => self.ident("a fault declaration")?,
                _ => return Err(self.unexpected("a fault declaration or `}`")),
            };
            match key.value.as_str() {
                "down" | "up" => {
                    let channel = self.reference('c', "channel")?;
                    self.expect_tok(Tok::At, "`@` before the time")?;
                    let at = self.quantity(Unit::Cycles)?;
                    f.events.push(if key.value == "down" {
                        FaultDecl::Down { channel, at }
                    } else {
                        FaultDecl::Up { channel, at }
                    });
                }
                "outage" => {
                    let channel = self.reference('c', "channel")?;
                    self.expect_tok(Tok::At, "`@` before the time range")?;
                    let from = self.int("the outage start")?;
                    self.expect_tok(Tok::DotDot, "`..` in the outage range")?;
                    let until = self.int("the outage end")?;
                    self.keyword("cycles").map_err(|e| {
                        SpecError::new(
                            codes::UNIT,
                            "outage ranges are measured in `cycles`",
                            e.span,
                        )
                    })?;
                    f.events.push(FaultDecl::Outage {
                        channel,
                        from,
                        until,
                    });
                }
                "stall" => {
                    let node = self.string("the stalled node name")?;
                    self.expect_tok(Tok::At, "`@` before the time")?;
                    let at = self.quantity(Unit::Cycles)?;
                    self.keyword("for")?;
                    let dur = self.quantity(Unit::Cycles)?;
                    f.events.push(FaultDecl::Stall { node, at, dur });
                }
                "drop" | "corrupt" => {
                    let msg = self.reference('m', "message")?;
                    self.expect_tok(Tok::At, "`@` before the time")?;
                    let at = self.quantity(Unit::Cycles)?;
                    f.events.push(if key.value == "drop" {
                        FaultDecl::Drop { msg, at }
                    } else {
                        FaultDecl::Corrupt { msg, at }
                    });
                }
                "delay" => {
                    let msg = self.reference('m', "message")?;
                    self.keyword("by")?;
                    let by = self.quantity(Unit::Cycles)?;
                    f.events.push(FaultDecl::Delay { msg, by });
                }
                "random" => {
                    if f.random.is_some() {
                        return Err(self.error(
                            codes::DUPLICATE_KEY,
                            "`random(...)` declared twice",
                            key.span,
                        ));
                    }
                    self.expect_tok(Tok::LParen, "`(` after `random`")?;
                    self.keyword("seed")?;
                    self.expect_tok(Tok::Eq, "`=` after `seed`")?;
                    let seed = self.int("the RNG seed")?;
                    self.expect_tok(Tok::Comma, "`,`")?;
                    self.keyword("outages")?;
                    self.expect_tok(Tok::Eq, "`=` after `outages`")?;
                    let outages = self.int("the outage count")?;
                    self.expect_tok(Tok::Comma, "`,`")?;
                    self.keyword("stalls")?;
                    self.expect_tok(Tok::Eq, "`=` after `stalls`")?;
                    let stalls = self.int("the stall count")?;
                    self.expect_tok(Tok::Comma, "`,`")?;
                    self.keyword("horizon")?;
                    self.expect_tok(Tok::Eq, "`=` after `horizon`")?;
                    let horizon = self.quantity(Unit::Cycles)?;
                    self.expect_tok(Tok::RParen, "`)` closing `random(...)`")?;
                    f.random = Some(RandomFaults {
                        seed,
                        outages,
                        stalls,
                        horizon,
                    });
                }
                other => {
                    return Err(self.error(
                        codes::UNKNOWN_KEY,
                        format!(
                            "unknown fault declaration `{other}` (known: down, up, outage, stall, drop, corrupt, delay, random)"
                        ),
                        key.span,
                    ));
                }
            }
        }
        Ok(f)
    }

    fn verify(&mut self) -> Result<Verify, SpecError> {
        let mut v = Verify::default();
        loop {
            let key = match &self.peek().tok {
                Tok::RBrace => {
                    self.next();
                    break;
                }
                Tok::Ident(_) => self.ident("a verify key")?,
                _ => return Err(self.unexpected("a verify key or `}`")),
            };
            macro_rules! set {
                ($slot:expr, $value:expr) => {{
                    self.expect_tok(Tok::Eq, "`=` after the key")?;
                    if $slot.is_some() {
                        return Err(self.error(
                            codes::DUPLICATE_KEY,
                            format!("key `{}` assigned twice", key.value),
                            key.span,
                        ));
                    }
                    $slot = Some($value?);
                }};
            }
            match key.value.as_str() {
                "engine" => {
                    self.expect_tok(Tok::Eq, "`=` after `engine`")?;
                    let id = self.ident("a verify engine")?;
                    let e = VerifyEngine::from_keyword(&id.value).ok_or_else(|| {
                        self.error(
                            codes::ENUM,
                            format!(
                                "unknown verify engine `{}` (known: static, search, sim, full)",
                                id.value
                            ),
                            id.span,
                        )
                    })?;
                    if v.engine.is_some() {
                        return Err(self.error(
                            codes::DUPLICATE_KEY,
                            "key `engine` assigned twice",
                            key.span,
                        ));
                    }
                    v.engine = Some(Spanned::new(e, id.span));
                }
                "scc" => {
                    self.expect_tok(Tok::Eq, "`=` after `scc`")?;
                    let id = self.ident("`hkmst` or `pearce_kelly`")?;
                    let s = match id.value.as_str() {
                        "hkmst" => SccName::Hkmst,
                        "pearce_kelly" => SccName::PearceKelly,
                        other => {
                            return Err(self.error(
                                codes::ENUM,
                                format!(
                                    "unknown SCC engine `{other}` (known: hkmst, pearce_kelly)"
                                ),
                                id.span,
                            ));
                        }
                    };
                    if v.scc.is_some() {
                        return Err(self.error(
                            codes::DUPLICATE_KEY,
                            "key `scc` assigned twice",
                            key.span,
                        ));
                    }
                    v.scc = Some(Spanned::new(s, id.span));
                }
                "max_cycles" => set!(v.max_cycles, self.int("the cycle budget")),
                "max_candidates" => set!(v.max_candidates, self.int("the candidate budget")),
                "max_states" => set!(v.max_states, self.int("the state budget")),
                "threads" => set!(v.threads, self.int("the worker thread count")),
                "stall_budget" => set!(v.stall_budget, self.quantity(Unit::Cycles)),
                "model_exact" => set!(v.model_exact, self.bool_value()),
                "deny_warnings" => set!(v.deny_warnings, self.bool_value()),
                "capacity" => set!(v.capacity, self.quantity(Unit::Flits)),
                "horizon" => set!(v.horizon, self.quantity(Unit::Cycles)),
                "lint" => {
                    self.expect_tok(Tok::LBrace, "`{` opening the lint override block")?;
                    loop {
                        match &self.peek().tok {
                            Tok::RBrace => {
                                self.next();
                                break;
                            }
                            Tok::Ident(_) => {
                                let code = self.ident("a lint code like `W101`")?;
                                if v.lint.iter().any(|o| o.code.value == code.value) {
                                    return Err(self.error(
                                        codes::DUPLICATE_KEY,
                                        format!("lint code `{}` overridden twice", code.value),
                                        code.span,
                                    ));
                                }
                                let ok = code.value.len() == 4
                                    && code.value.starts_with('W')
                                    && code.value[1..].chars().all(|c| c.is_ascii_digit());
                                if !ok {
                                    return Err(self.error(
                                        codes::REF,
                                        format!(
                                            "malformed lint code `{}` (expected `WNNN`)",
                                            code.value
                                        ),
                                        code.span,
                                    ));
                                }
                                self.expect_tok(Tok::Eq, "`=` after the lint code")?;
                                let sev = self.ident("`allow`, `warn`, or `deny`")?;
                                let severity = match sev.value.as_str() {
                                    "allow" => SeverityName::Allow,
                                    "warn" => SeverityName::Warn,
                                    "deny" => SeverityName::Deny,
                                    other => {
                                        return Err(self.error(
                                            codes::ENUM,
                                            format!("unknown severity `{other}` (known: allow, warn, deny)"),
                                            sev.span,
                                        ));
                                    }
                                };
                                v.lint.push(LintOverride {
                                    code,
                                    severity: Spanned::new(severity, sev.span),
                                });
                                if self.peek().tok == Tok::Comma {
                                    self.next();
                                }
                            }
                            _ => return Err(self.unexpected("a lint code or `}`")),
                        }
                    }
                }
                other => {
                    return Err(self.error(
                        codes::UNKNOWN_KEY,
                        format!("unknown verify key `{other}`"),
                        key.span,
                    ));
                }
            }
        }
        // Override order is not semantic (they fill a severity map), so
        // the AST keeps them sorted: canonical-by-construction.
        v.lint.sort_by(|a, b| a.code.value.cmp(&b.code.value));
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_mesh_spec() {
        let spec = parse(
            "wormspec/1\n\
             topology { kind = mesh dims = [3, 3] }\n\
             routing { engine = dimension_order }\n",
        )
        .unwrap();
        assert_eq!(spec.topology.kind.value, TopologyKind::Mesh);
        assert_eq!(spec.topology.dims.as_ref().unwrap().value, vec![3, 3]);
        assert_eq!(spec.routing.engine.value, "dimension_order");
    }

    #[test]
    fn parses_explicit_topology_and_table() {
        let spec = parse(
            "wormspec/1\n\
             topology {\n\
               kind = explicit\n\
               node \"A\"\n\
               node \"B\"\n\
               channel \"A\" -> \"B\" lane 1 cap 2 flits label \"cs\"\n\
               channel \"B\" -> \"A\"\n\
             }\n\
             routing {\n\
               engine = table\n\
               path \"A\" -> \"B\" = [c0]\n\
               path \"B\" -> \"A\" = [c1]\n\
             }\n",
        )
        .unwrap();
        assert_eq!(spec.topology.decls.len(), 4);
        match &spec.topology.decls[2] {
            Decl::Channel(c) => {
                assert_eq!(c.lane.value, 1);
                assert_eq!(c.cap.value, Quantity::new(2, Unit::Flits));
                assert_eq!(c.label.as_ref().unwrap().value, "cs");
            }
            other => panic!("expected channel, got {other:?}"),
        }
        // Defaults are desugared at parse time.
        match &spec.topology.decls[3] {
            Decl::Channel(c) => {
                assert_eq!(c.lane.value, 0);
                assert_eq!(c.cap.value, Quantity::new(1, Unit::Flits));
                assert!(c.label.is_none());
            }
            other => panic!("expected channel, got {other:?}"),
        }
        assert_eq!(spec.routing.paths.len(), 2);
        assert_eq!(spec.routing.paths[0].channels.value, vec![0]);
    }

    #[test]
    fn wrong_unit_is_rejected_with_unit_code() {
        let err = parse(
            "wormspec/1\n\
             topology { kind = mesh dims = [2, 2] vcs = 2 flits }\n\
             routing { engine = dimension_order }\n",
        )
        .unwrap_err();
        assert_eq!(err.code, codes::UNIT);
    }

    #[test]
    fn missing_unit_is_rejected() {
        let err = parse(
            "wormspec/1\n\
             topology { kind = mesh dims = [2, 2] }\n\
             routing { engine = dimension_order }\n\
             verify { stall_budget = 2 }\n",
        )
        .unwrap_err();
        assert_eq!(err.code, codes::UNIT);
    }

    #[test]
    fn unknown_keys_sections_and_kinds_have_stable_codes() {
        let bad_section = parse("wormspec/1\nnope { }\n").unwrap_err();
        assert_eq!(bad_section.code, codes::UNKNOWN_SECTION);

        let bad_kind =
            parse("wormspec/1\ntopology { kind = blob }\nrouting { engine = x }\n").unwrap_err();
        assert_eq!(bad_kind.code, codes::ENUM);

        let bad_key =
            parse("wormspec/1\ntopology { kind = mesh wat = 3 }\nrouting { engine = x }\n")
                .unwrap_err();
        assert_eq!(bad_key.code, codes::UNKNOWN_KEY);

        let dup =
            parse("wormspec/1\ntopology { kind = mesh kind = mesh }\nrouting { engine = x }\n")
                .unwrap_err();
        assert_eq!(dup.code, codes::DUPLICATE_KEY);
    }

    #[test]
    fn version_gate() {
        let err =
            parse("wormspec/2\ntopology { kind = mesh }\nrouting { engine = x }\n").unwrap_err();
        assert_eq!(err.code, codes::VERSION);
    }

    #[test]
    fn parses_faults_and_verify() {
        let spec = parse(
            "wormspec/1\n\
             topology { kind = ring nodes = 4 }\n\
             routing { engine = clockwise_ring }\n\
             traffic {\n\
               pattern = explicit\n\
               message \"n0\" -> \"n2\" length 3 flits at 1 cycles\n\
               pause \"n1\" period 4 cycles offset 1 cycles\n\
             }\n\
             faults {\n\
               down c0 @ 10 cycles\n\
               outage c1 @ 5..9 cycles\n\
               stall \"n1\" @ 3 cycles for 2 cycles\n\
               delay m0 by 4 cycles\n\
               random(seed = 42, outages = 2, stalls = 1, horizon = 100 cycles)\n\
             }\n\
             verify {\n\
               engine = search\n\
               scc = pearce_kelly\n\
               max_states = 100000\n\
               stall_budget = 2 cycles\n\
               lint { W101 = allow, W004 = deny }\n\
             }\n",
        )
        .unwrap();
        let f = spec.faults.as_ref().unwrap();
        assert_eq!(f.events.len(), 4);
        assert!(f.random.is_some());
        let v = spec.verify.as_ref().unwrap();
        assert_eq!(v.engine.as_ref().unwrap().value, VerifyEngine::Search);
        assert_eq!(v.scc.as_ref().unwrap().value, SccName::PearceKelly);
        assert_eq!(v.lint.len(), 2);
        assert_eq!(spec.traffic.as_ref().unwrap().messages.len(), 1);
        assert_eq!(spec.traffic.as_ref().unwrap().pauses.len(), 1);
    }
}
