//! Diagnostics: byte spans, stable error codes, and rendered messages
//! with line/column positions and a source snippet.
//!
//! Every error produced while lexing, parsing, or *resolving* a spec
//! (the downstream crates' `from_spec` constructors reuse this type)
//! carries a [`Span`] into the original source text and a stable
//! `E`-code documented in `docs/SPEC.md`'s error catalog, so tooling
//! can match on codes while humans read rendered snippets.

use std::fmt;

/// A half-open byte range `[lo, hi)` into the spec source text.
///
/// Spans are *positional metadata*, not semantics: two ASTs that
/// differ only in spans compare equal (see [`crate::ast::Spanned`]),
/// which is what makes the `parse(print(ast)) == ast` round-trip
/// guarantee expressible at all.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: usize,
    /// Byte offset one past the last character.
    pub hi: usize,
}

impl Span {
    /// A span covering `[lo, hi)`.
    pub fn new(lo: usize, hi: usize) -> Self {
        Span { lo, hi }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// A zero-width span (used by programmatically built ASTs, e.g.
    /// the lifting of an existing network into an explicit spec).
    pub fn dummy() -> Span {
        Span::default()
    }
}

/// Stable error codes for the `wormspec/1` error catalog
/// (`docs/SPEC.md`). Codes never change meaning; new codes append.
pub mod codes {
    /// Unexpected character in the input.
    pub const LEX: &str = "E001";
    /// Unexpected token (expected something else).
    pub const UNEXPECTED: &str = "E002";
    /// Unsupported `wormspec/N` version.
    pub const VERSION: &str = "E003";
    /// Unknown section name.
    pub const UNKNOWN_SECTION: &str = "E004";
    /// Section appears twice.
    pub const DUPLICATE_SECTION: &str = "E005";
    /// Unknown key for the section.
    pub const UNKNOWN_KEY: &str = "E006";
    /// Key assigned twice.
    pub const DUPLICATE_KEY: &str = "E007";
    /// Wrong or missing unit on a quantity.
    pub const UNIT: &str = "E008";
    /// Enumerated value (kind, engine, severity, ...) not recognized.
    pub const ENUM: &str = "E009";
    /// Malformed reference (`cN` channel, `mN` message, `WNNN` code).
    pub const REF: &str = "E010";
    /// Numeric value out of range.
    pub const RANGE: &str = "E011";
    /// A required key or declaration is missing.
    pub const MISSING: &str = "E012";
    /// The spec is internally inconsistent (e.g. duplicate node name,
    /// a key that contradicts the declared topology kind).
    pub const CONFLICT: &str = "E013";
    /// Resolution failure: the spec is well-formed but names an
    /// entity the built scenario does not have (unknown node, channel
    /// index past the end, unrouted pair, ...).
    pub const RESOLVE: &str = "E014";
}

/// A spec error: stable code, human message, and source span.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct SpecError {
    /// Stable `E`-code (see [`codes`]).
    pub code: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Where in the source the error points.
    pub span: Span,
}

impl SpecError {
    /// Construct an error.
    pub fn new(code: &'static str, message: impl Into<String>, span: Span) -> Self {
        SpecError {
            code,
            message: message.into(),
            span,
        }
    }

    /// 1-based `(line, column)` of the span start within `source`.
    pub fn position(&self, source: &str) -> (usize, usize) {
        position_of(source, self.span.lo)
    }

    /// Render the error with position, message, and a caret snippet:
    ///
    /// ```text
    /// spec.wspec:3:11: error[E009]: unknown topology kind `mersh`
    ///    |
    ///  3 |   kind = mersh
    ///    |          ^^^^^
    /// ```
    pub fn render(&self, source: &str, origin: &str) -> String {
        let (line, col) = self.position(source);
        let mut out = format!(
            "{origin}:{line}:{col}: error[{}]: {}\n",
            self.code, self.message
        );
        if let Some(text) = source.lines().nth(line.saturating_sub(1)) {
            let gutter = line.to_string();
            let pad = " ".repeat(gutter.len());
            out.push_str(&format!("{pad} |\n{gutter} | {text}\n"));
            let width = source[self.span.lo..self.span.hi.min(source.len())]
                .chars()
                .count()
                .max(1);
            out.push_str(&format!(
                "{pad} | {}{}\n",
                " ".repeat(col.saturating_sub(1)),
                "^".repeat(width.min(text.chars().count().saturating_sub(col - 1).max(1)))
            ));
        }
        out
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error[{}]: {}", self.code, self.message)
    }
}

impl std::error::Error for SpecError {}

/// 1-based `(line, column)` of byte offset `at` within `source`
/// (column counts characters, not bytes).
pub fn position_of(source: &str, at: usize) -> (usize, usize) {
    let at = at.min(source.len());
    let mut line = 1;
    let mut line_start = 0;
    for (i, b) in source.bytes().enumerate().take(at) {
        if b == b'\n' {
            line += 1;
            line_start = i + 1;
        }
    }
    let col = source[line_start..at].chars().count() + 1;
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let src = "abc\ndef\nghi";
        assert_eq!(position_of(src, 0), (1, 1));
        assert_eq!(position_of(src, 2), (1, 3));
        assert_eq!(position_of(src, 4), (2, 1));
        assert_eq!(position_of(src, 9), (3, 2));
    }

    #[test]
    fn render_contains_snippet_and_caret() {
        let src = "topology {\n  kind = mersh\n}\n";
        let err = SpecError::new(
            codes::ENUM,
            "unknown topology kind `mersh`",
            Span::new(20, 25),
        );
        let rendered = err.render(src, "spec.wspec");
        assert!(
            rendered.contains("spec.wspec:2:10: error[E009]"),
            "{rendered}"
        );
        assert!(rendered.contains("kind = mersh"), "{rendered}");
        assert!(rendered.contains("^^^^^"), "{rendered}");
    }

    #[test]
    fn spans_join() {
        assert_eq!(Span::new(3, 5).to(Span::new(9, 12)), Span::new(3, 12));
    }
}
