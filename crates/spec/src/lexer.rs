//! Hand-rolled lexer for `wormspec/1`.
//!
//! Produces a flat token stream with byte spans. Comments (`#` to end
//! of line) and whitespace are skipped — they can never influence the
//! AST, which is what makes the canonical content hash stable across
//! reformatting.

use crate::diag::{codes, Span, SpecError};

/// A token kind plus its payload.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Bare word: keywords, section names, engine names, references
    /// (`c3`, `m0`, `W101`), unit keywords.
    Ident(String),
    /// Quoted string with escapes resolved.
    Str(String),
    /// Unsigned integer literal.
    Int(u64),
    /// Decimal literal (normalized text, e.g. `0.05`).
    Decimal(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
    /// `,`
    Comma,
    /// `->`
    Arrow,
    /// `@`
    At,
    /// `..`
    DotDot,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

impl Tok {
    /// Human description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Str(s) => format!("string {s:?}"),
            Tok::Int(n) => format!("`{n}`"),
            Tok::Decimal(d) => format!("`{d}`"),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Eq => "`=`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Arrow => "`->`".into(),
            Tok::At => "`@`".into(),
            Tok::DotDot => "`..`".into(),
            Tok::Slash => "`/`".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub tok: Tok,
    /// Where it sits in the source.
    pub span: Span,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lex a whole source text into tokens (ending with [`Tok::Eof`]).
pub fn lex(source: &str) -> Result<Vec<Token>, SpecError> {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Skip whitespace and comments.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == '#' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let lo = i;
        let tok = match c {
            '{' => {
                i += 1;
                Tok::LBrace
            }
            '}' => {
                i += 1;
                Tok::RBrace
            }
            '[' => {
                i += 1;
                Tok::LBracket
            }
            ']' => {
                i += 1;
                Tok::RBracket
            }
            '(' => {
                i += 1;
                Tok::LParen
            }
            ')' => {
                i += 1;
                Tok::RParen
            }
            '=' => {
                i += 1;
                Tok::Eq
            }
            ',' => {
                i += 1;
                Tok::Comma
            }
            '@' => {
                i += 1;
                Tok::At
            }
            '/' => {
                i += 1;
                Tok::Slash
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    i += 2;
                    Tok::Arrow
                } else {
                    return Err(SpecError::new(
                        codes::LEX,
                        "stray `-` (did you mean `->`?)",
                        Span::new(lo, lo + 1),
                    ));
                }
            }
            '.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    i += 2;
                    Tok::DotDot
                } else {
                    return Err(SpecError::new(
                        codes::LEX,
                        "stray `.` (ranges are written `a..b`)",
                        Span::new(lo, lo + 1),
                    ));
                }
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None | Some(b'\n') => {
                            return Err(SpecError::new(
                                codes::LEX,
                                "unterminated string literal",
                                Span::new(lo, i),
                            ));
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = bytes.get(i + 1).copied();
                            match esc {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                _ => {
                                    return Err(SpecError::new(
                                        codes::LEX,
                                        "unknown string escape (supported: \\\" \\\\ \\n \\t)",
                                        Span::new(i, i + 2),
                                    ));
                                }
                            }
                            i += 2;
                        }
                        Some(_) => {
                            // Consume one UTF-8 character.
                            let ch = source[i..].chars().next().expect("in-bounds char");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                Tok::Str(s)
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // A decimal point followed by digits makes a Decimal —
                // but `..` is a range, not a fraction.
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &source[lo..i];
                    Tok::Decimal(normalize_decimal(text))
                } else {
                    let text = &source[lo..i];
                    match text.parse::<u64>() {
                        Ok(n) => Tok::Int(n),
                        Err(_) => {
                            return Err(SpecError::new(
                                codes::RANGE,
                                format!("integer literal `{text}` exceeds 64 bits"),
                                Span::new(lo, i),
                            ));
                        }
                    }
                }
            }
            c if is_ident_start(c) => {
                while i < bytes.len() && is_ident_continue(bytes[i] as char) {
                    i += 1;
                }
                Tok::Ident(source[lo..i].to_string())
            }
            other => {
                return Err(SpecError::new(
                    codes::LEX,
                    format!("unexpected character `{other}`"),
                    Span::new(lo, lo + other.len_utf8()),
                ));
            }
        };
        out.push(Token {
            tok,
            span: Span::new(lo, i),
        });
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span::new(source.len(), source.len()),
    });
    Ok(out)
}

/// Normalize a decimal numeral: strip leading zeros of the integer
/// part (keeping one) and trailing zeros of the fraction (dropping the
/// point if the fraction empties).
fn normalize_decimal(text: &str) -> String {
    let (int, frac) = text.split_once('.').expect("decimal has a point");
    let int = int.trim_start_matches('0');
    let int = if int.is_empty() { "0" } else { int };
    let frac = frac.trim_end_matches('0');
    if frac.is_empty() {
        int.to_string()
    } else {
        format!("{int}.{frac}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_structure_tokens() {
        assert_eq!(
            kinds("a { b = [1, 2] } # comment"),
            vec![
                Tok::Ident("a".into()),
                Tok::LBrace,
                Tok::Ident("b".into()),
                Tok::Eq,
                Tok::LBracket,
                Tok::Int(1),
                Tok::Comma,
                Tok::Int(2),
                Tok::RBracket,
                Tok::RBrace,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_arrows_ranges_and_decimals() {
        assert_eq!(
            kinds("\"A\" -> \"B\" 3..7 0.50"),
            vec![
                Tok::Str("A".into()),
                Tok::Arrow,
                Tok::Str("B".into()),
                Tok::Int(3),
                Tok::DotDot,
                Tok::Int(7),
                Tok::Decimal("0.5".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn string_escapes_resolve() {
        assert_eq!(
            kinds(r#""N\"*\\""#),
            vec![Tok::Str("N\"*\\".into()), Tok::Eof]
        );
    }

    #[test]
    fn unterminated_string_is_a_lex_error() {
        let err = lex("\"abc").unwrap_err();
        assert_eq!(err.code, codes::LEX);
    }

    #[test]
    fn spans_point_at_the_token() {
        let toks = lex("ab 12").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }
}
